//! Ablations of the design choices the paper calls out (DESIGN.md §7):
//! merge vs radix sort inside SpMSpV, atomic vs prefix compaction in
//! eWiseMult, SPA vs sort-based SpMSpV, fine-grained vs bulk
//! communication in the distributed SpMSpV.

use criterion::{criterion_group, criterion_main, Criterion};
use gblas_bench::workloads;
use gblas_core::algebra::semirings;
use gblas_core::ops::ewise::{ewise_filter_atomic, ewise_filter_prefix};
use gblas_core::ops::spmspv::{
    spmspv_first_visitor, spmspv_semiring_masked, spmspv_sort_based, MergeStrategy, SpMSpVOpts,
};
use gblas_core::par::ExecCtx;
use gblas_core::sort::SortAlgo;
use gblas_dist::ops::spmspv::{spmspv_dist, spmspv_dist_bulk};
use gblas_dist::{DistCsrMatrix, DistCtx, DistSparseVec, ProcGrid};
use gblas_sim::MachineConfig;

fn sort_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sort");
    g.sample_size(10);
    let n = 200_000;
    let a = workloads::er_matrix(n, 16, 7);
    let x = workloads::spmspv_vector(n, 5, 8);
    for (label, opts) in [
        ("merge", SpMSpVOpts { sort: SortAlgo::Merge, ..Default::default() }),
        ("radix", SpMSpVOpts { sort: SortAlgo::Radix, ..Default::default() }),
        ("bucket", SpMSpVOpts::with_merge(MergeStrategy::Bucketed)),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| spmspv_first_visitor(&a, &x, None, opts, &ExecCtx::with_threads(2)).unwrap())
        });
    }
    g.finish();
}

fn compaction_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_compaction");
    g.sample_size(10);
    let (x, y) = workloads::ewise_pair(500_000, 9);
    g.bench_function("atomic", |b| {
        b.iter(|| ewise_filter_atomic(&x, &y, &|_: f64, k| k, &ExecCtx::with_threads(2)).unwrap())
    });
    g.bench_function("prefix", |b| {
        b.iter(|| ewise_filter_prefix(&x, &y, &|_: f64, k| k, &ExecCtx::with_threads(2)).unwrap())
    });
    g.finish();
}

fn spa_vs_sort_based(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_spmspv_algo");
    g.sample_size(10);
    let n = 100_000;
    let a = workloads::er_matrix(n, 8, 11);
    let x = workloads::spmspv_vector(n, 2, 12);
    let ring = semirings::plus_times_f64();
    // the SPA algorithm under both merge strategies, against the
    // sort-everything oracle
    for (label, merge) in
        [("spa_sorted", MergeStrategy::SortBased), ("spa_bucketed", MergeStrategy::Bucketed)]
    {
        g.bench_function(label, |b| {
            b.iter(|| {
                spmspv_semiring_masked(
                    &a,
                    &x,
                    &ring,
                    None,
                    SpMSpVOpts::with_merge(merge),
                    &ExecCtx::serial(),
                )
                .unwrap()
            })
        });
    }
    g.bench_function("sort_based", |b| {
        b.iter(|| spmspv_sort_based(&a, &x, &ring, &ExecCtx::serial()).unwrap())
    });
    g.finish();
}

fn fine_vs_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_comm");
    g.sample_size(10);
    let n = 50_000;
    let a = workloads::er_matrix(n, 16, 13);
    let x = workloads::spmspv_vector(n, 2, 14);
    let grid = ProcGrid::square_for(16);
    let da = DistCsrMatrix::from_global(&a, grid);
    let dx = DistSparseVec::from_global(&x, 16);
    g.bench_function("fine", |b| {
        b.iter(|| {
            let dctx = DistCtx::new(MachineConfig::edison_cluster(16, 24));
            spmspv_dist(&da, &dx, &dctx).unwrap()
        })
    });
    g.bench_function("bulk", |b| {
        b.iter(|| {
            let dctx = DistCtx::new(MachineConfig::edison_cluster(16, 24));
            spmspv_dist_bulk(&da, &dx, &dctx).unwrap()
        })
    });
    g.finish();
}

fn row_vs_column_representation(c: &mut Criterion) {
    // Fig 6's remark: row-wise vs column-wise representation changes
    // neither the algorithm nor its complexity.
    let mut g = c.benchmark_group("ablation_representation");
    g.sample_size(10);
    let n = 100_000;
    let a = workloads::er_matrix(n, 8, 15);
    let a_csc = gblas_core::container::CscMatrix::from_csr(&a);
    let x = workloads::spmspv_vector(n, 2, 16);
    let ring = semirings::plus_times_f64();
    g.bench_function("csr_row_wise", |b| {
        b.iter(|| {
            gblas_core::ops::mxv::mxv_sparse::<_, _, f64, _, _>(&a, &x, &ring, &ExecCtx::serial())
                .unwrap()
        })
    });
    g.bench_function("csc_column_wise", |b| {
        b.iter(|| {
            gblas_core::ops::mxv::mxv_sparse_csc::<_, _, f64, _, _>(
                &a_csc,
                &x,
                &ring,
                &ExecCtx::serial(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    sort_ablation,
    compaction_ablation,
    spa_vs_sort_based,
    fine_vs_bulk,
    row_vs_column_representation
);
criterion_main!(benches);
