//! Real-execution microbench of the Apply kernel (Fig 1 workload, scaled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::workloads;
use gblas_core::ops::apply::apply_vec_inplace;
use gblas_core::par::ExecCtx;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_apply");
    g.sample_size(10);
    let x = workloads::vector(1_000_000, 10);
    for threads in [1usize, 2] {
        g.bench_with_input(BenchmarkId::new("apply", threads), &threads, |b, &t| {
            b.iter_batched(
                || x.clone(),
                |mut v| {
                    let ctx = ExecCtx::with_threads(t);
                    apply_vec_inplace(&mut v, &|a: f64| a * 1.000001, &ctx);
                    v
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
