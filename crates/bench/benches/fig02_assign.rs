//! Assign1 (indexed, log-time) vs Assign2 (bulk) — Fig 2's shared-memory
//! contrast, real execution.

use criterion::{criterion_group, criterion_main, Criterion};
use gblas_bench::workloads;
use gblas_core::container::SparseVec;
use gblas_core::ops::assign::{assign_v1, assign_v2};
use gblas_core::par::ExecCtx;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_assign");
    g.sample_size(10);
    let b = workloads::vector(200_000, 20);
    g.bench_function("assign_v1", |bch| {
        bch.iter(|| {
            let mut a = SparseVec::new(b.capacity());
            assign_v1(&mut a, &b, &ExecCtx::with_threads(2)).unwrap();
            a
        })
    });
    g.bench_function("assign_v2", |bch| {
        bch.iter(|| {
            let mut a = SparseVec::new(b.capacity());
            assign_v2(&mut a, &b, &ExecCtx::with_threads(2)).unwrap();
            a
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
