//! Distributed Assign2 across node counts (Fig 3 workload, scaled) —
//! wall time of the full simulation pipeline (shard copies + pricing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::workloads;
use gblas_dist::ops::assign::assign_v2;
use gblas_dist::{DistCtx, DistSparseVec};
use gblas_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_assign_dist");
    g.sample_size(10);
    let b = workloads::vector(200_000, 30);
    for p in [1usize, 4, 16] {
        let bd = DistSparseVec::from_global(&b, p);
        g.bench_with_input(BenchmarkId::new("assign_v2", p), &p, |bch, &p| {
            bch.iter(|| {
                let mut a = DistSparseVec::empty(b.capacity(), p);
                let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
                assign_v2(&mut a, &bd, &dctx).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
