//! Shared-memory eWiseMult (Fig 4 workload, scaled): the paper's atomic
//! compaction vs the suggested thread-private + prefix-sum variant.

use criterion::{criterion_group, criterion_main, Criterion};
use gblas_bench::workloads;
use gblas_core::ops::ewise::{ewise_filter_atomic, ewise_filter_prefix};
use gblas_core::par::ExecCtx;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_ewisemult");
    g.sample_size(10);
    let (x, y) = workloads::ewise_pair(1_000_000, 40);
    g.bench_function("atomic", |b| {
        b.iter(|| ewise_filter_atomic(&x, &y, &|_: f64, k| k, &ExecCtx::with_threads(2)).unwrap())
    });
    g.bench_function("prefix", |b| {
        b.iter(|| ewise_filter_prefix(&x, &y, &|_: f64, k| k, &ExecCtx::with_threads(2)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
