//! Distributed eWiseMult (Fig 5 workload, scaled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::workloads;
use gblas_core::ops::ewise::EwiseVariant;
use gblas_dist::ops::ewise::ewise_mult_dist;
use gblas_dist::{DistCtx, DistDenseVec, DistSparseVec};
use gblas_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_ewisemult_dist");
    g.sample_size(10);
    let (x, y) = workloads::ewise_pair(500_000, 50);
    for p in [1usize, 8] {
        let dx = DistSparseVec::from_global(&x, p);
        let dy = DistDenseVec::from_global(&y, p);
        g.bench_with_input(BenchmarkId::new("ewise", p), &p, |b, &p| {
            b.iter(|| {
                let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
                ewise_mult_dist(&dx, &dy, &|_: f64, k| k, EwiseVariant::Atomic, &dctx).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
