//! Shared-memory SpMSpV (Fig 7 configurations, scaled to n = 100K).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::{figs::SPMSPV_CONFIGS, workloads};
use gblas_core::ops::spmspv::{spmspv_first_visitor, SpMSpVOpts};
use gblas_core::par::ExecCtx;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_spmspv");
    g.sample_size(10);
    let n = 100_000;
    for &(d, f) in SPMSPV_CONFIGS {
        let a = workloads::er_matrix(n, d, 70 + d as u64);
        let x = workloads::spmspv_vector(n, f, 70 + d as u64 + f as u64);
        g.bench_with_input(BenchmarkId::new("spmspv", format!("d{d}-f{f}")), &(), |b, _| {
            b.iter(|| {
                spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ExecCtx::with_threads(2))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
