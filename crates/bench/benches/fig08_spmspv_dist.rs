//! Distributed SpMSpV (Fig 8 workload, scaled to n = 50K).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::workloads;
use gblas_dist::ops::spmspv::spmspv_dist;
use gblas_dist::{DistCsrMatrix, DistCtx, DistSparseVec, ProcGrid};
use gblas_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_spmspv_dist");
    g.sample_size(10);
    let n = 50_000;
    let a = workloads::er_matrix(n, 16, 96);
    let x = workloads::spmspv_vector(n, 2, 98);
    for p in [1usize, 4, 16] {
        let grid = ProcGrid::square_for(p);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dx = DistSparseVec::from_global(&x, p);
        g.bench_with_input(BenchmarkId::new("spmspv_dist", p), &p, |b, &p| {
            b.iter(|| {
                let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
                spmspv_dist(&da, &dx, &dctx).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
