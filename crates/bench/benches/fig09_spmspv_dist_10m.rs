//! Distributed SpMSpV at the larger Fig 9 scale (n = 200K stands in for
//! the paper's 10M on CI hardware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::{figs::SPMSPV_CONFIGS, workloads};
use gblas_dist::ops::spmspv::spmspv_dist;
use gblas_dist::{DistCsrMatrix, DistCtx, DistSparseVec, ProcGrid};
use gblas_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_spmspv_dist_10m");
    g.sample_size(10);
    let n = 200_000;
    let p = 16usize;
    let grid = ProcGrid::square_for(p);
    for &(d, f) in SPMSPV_CONFIGS {
        let a = workloads::er_matrix(n, d, 90 + d as u64);
        let x = workloads::spmspv_vector(n, f, 90 + d as u64 + f as u64);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dx = DistSparseVec::from_global(&x, p);
        g.bench_with_input(BenchmarkId::new("spmspv_dist", format!("d{d}-f{f}")), &(), |b, _| {
            b.iter(|| {
                let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
                spmspv_dist(&da, &dx, &dctx).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
