//! Assign with colocated locales (Fig 10 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gblas_bench::workloads;
use gblas_dist::ops::assign::{assign_v1, assign_v2};
use gblas_dist::{DistCtx, DistSparseVec};
use gblas_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_colocated");
    g.sample_size(10);
    let b = workloads::vector(10_000, 100);
    for locales in [1usize, 8, 32] {
        let bd = DistSparseVec::from_global(&b, locales);
        g.bench_with_input(BenchmarkId::new("assign_v1", locales), &locales, |bch, &l| {
            bch.iter(|| {
                let mut a = DistSparseVec::empty(b.capacity(), l);
                let dctx = DistCtx::new(MachineConfig::edison_colocated(l));
                assign_v1(&mut a, &bd, &dctx).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("assign_v2", locales), &locales, |bch, &l| {
            bch.iter(|| {
                let mut a = DistSparseVec::empty(b.capacity(), l);
                let dctx = DistCtx::new(MachineConfig::edison_colocated(l));
                assign_v2(&mut a, &bd, &dctx).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
