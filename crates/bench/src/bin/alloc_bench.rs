//! Allocation-accounting harness for the iterative kernels.
//!
//! Installs a counting global allocator (behind the `bench` feature) and
//! measures, per iteration of each workload, (a) raw allocator traffic
//! (malloc calls + bytes requested) and (b) workspace-pool behaviour
//! (checkout hits vs misses), with pooling on and off
//! (`GBLAS_WORKSPACE=off` equivalent via `WorkspacePool::set_enabled`).
//!
//! Workloads mirror the iteration structure of the real algorithms:
//!
//! - **bfs**: the `bfs_on` level loop — one masked first-visitor SpMSpV
//!   per level; an iteration is one level.
//! - **pagerank**: the `pagerank_on` power loop — one SpMV plus the
//!   dangling/convergence folds; an iteration is one power step.
//! - **spmspv**: repeated `spmspv_semiring` calls with a fixed operand —
//!   the steady-state inner kernel on its own.
//! - **mxm**: repeated multi-stage SUMMA SpGEMM (`A·A` on a 2×2 grid) —
//!   the MCL expansion workload; per-stage receive slices and the dense
//!   SPA accumulator check out of the locale workspace pools, so the
//!   steady state must be pool-miss free just like the vector kernels.
//!
//! Each workload runs one untimed warm-up pass first so the pool shelves
//! reach their steady working set; the measured pass then samples every
//! iteration. "Steady" rows skip the first [`WARMUP_ITERS`] measured
//! iterations. Results are written as JSON (default `BENCH_alloc.json`).
//!
//! `--check` runs at a reduced scale and exits nonzero if the pooled BFS
//! steady state performs any pool-miss checkouts — the CI gate for
//! "zero-allocation hot paths".
//!
//! A `sched` section records the inspector–executor schedule cache's
//! behaviour on the simulated cluster (one distributed BFS and one
//! PageRank run on a 2×2 grid): plan builds, replays and invalidations
//! from the metrics registry. `regress` gates these one-sidedly — builds
//! must not grow (a kernel falling off the schedule path re-inspects
//! every iteration) and replays must not collapse.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gblas_bench::workloads;
use gblas_core::algebra::{semirings, Plus};
use gblas_core::backend::{GblasBackend, MaskSpec, SharedBackend};
use gblas_core::container::{CsrMatrix, SparseVec};
use gblas_core::ops::spmspv::{spmspv_semiring, SpMSpVOpts, SpMSpVOutput};
use gblas_core::par::ExecCtx;
use gblas_core::workspace::WorkspaceStats;

/// Counting allocator: forwards to [`System`], tallying every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counters are monotonic
// side-channels and never influence allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Measured iterations skipped before the "steady" aggregate.
const WARMUP_ITERS: usize = 2;

/// Per-iteration deltas: allocator traffic plus pool checkouts.
#[derive(Debug, Clone, Copy, Default)]
struct IterSample {
    allocs: u64,
    bytes: u64,
    pool_hits: u64,
    pool_misses: u64,
}

/// Rolling snapshot used to turn cumulative counters into deltas.
struct Probe {
    allocs: u64,
    bytes: u64,
    ws: WorkspaceStats,
}

impl Probe {
    fn start(ctx: &ExecCtx) -> Self {
        Probe {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: ALLOC_BYTES.load(Ordering::Relaxed),
            ws: ctx.workspace().stats(),
        }
    }

    /// Delta since the previous call (or since `start`).
    fn sample(&mut self, ctx: &ExecCtx) -> IterSample {
        let allocs = ALLOCS.load(Ordering::Relaxed);
        let bytes = ALLOC_BYTES.load(Ordering::Relaxed);
        let ws = ctx.workspace().stats();
        let d = ws.saturating_sub(&self.ws);
        let out = IterSample {
            allocs: allocs - self.allocs,
            bytes: bytes - self.bytes,
            pool_hits: d.pool_hits,
            pool_misses: d.pool_misses,
        };
        self.allocs = allocs;
        self.bytes = bytes;
        self.ws = ws;
        out
    }
}

/// One workload × one pooling mode.
struct RunStats {
    iterations: usize,
    wall_ms: f64,
    samples: Vec<IterSample>,
}

impl RunStats {
    fn steady(&self) -> &[IterSample] {
        if self.samples.len() > WARMUP_ITERS {
            &self.samples[WARMUP_ITERS..]
        } else {
            &self.samples
        }
    }

    fn steady_mean(&self, f: impl Fn(&IterSample) -> u64) -> f64 {
        let s = self.steady();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(&f).sum::<u64>() as f64 / s.len() as f64
    }

    fn steady_misses_total(&self) -> u64 {
        self.steady().iter().map(|s| s.pool_misses).sum()
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"iterations\": {}, \"wall_ms\": {:.2}, \"steady\": ",
                "{{\"allocs_per_iter\": {:.1}, \"bytes_per_iter\": {:.1}, ",
                "\"pool_hits_per_iter\": {:.1}, \"pool_misses_per_iter\": {:.1}}}, ",
                "\"total\": {{\"allocs\": {}, \"bytes\": {}}}}}"
            ),
            self.iterations,
            self.wall_ms,
            self.steady_mean(|s| s.allocs),
            self.steady_mean(|s| s.bytes),
            self.steady_mean(|s| s.pool_hits),
            self.steady_mean(|s| s.pool_misses),
            self.samples.iter().map(|s| s.allocs).sum::<u64>(),
            self.samples.iter().map(|s| s.bytes).sum::<u64>(),
        )
    }
}

/// BFS level loop, mirrored from `gblas_graph::bfs_on` so each level can
/// be sampled individually.
fn bfs_levels(
    a: &CsrMatrix<f64>,
    source: usize,
    ctx: &ExecCtx,
    probe: Option<&mut Probe>,
) -> Vec<IterSample> {
    let backend = SharedBackend::new(ctx);
    let n = backend.mat_nrows(a);
    let mut visited = backend.dense_filled(n, false);
    backend.dense_set(&mut visited, source, true);
    let mut frontier = backend.sparse_from_sorted(n, vec![source], vec![source]).unwrap();
    let mut samples = Vec::new();
    let mut probe = probe;
    while backend.sparse_nnz(&frontier) > 0 {
        let next = backend
            .spmspv_first_visitor(
                a,
                &frontier,
                Some(MaskSpec::complement(&visited)),
                SpMSpVOpts::default(),
            )
            .unwrap();
        let entries = backend.sparse_entries(&next);
        let mut inds = Vec::with_capacity(entries.len());
        let mut vals = Vec::with_capacity(entries.len());
        for (v, _) in entries {
            backend.dense_set(&mut visited, v, true);
            inds.push(v);
            vals.push(v);
        }
        frontier = backend.sparse_from_sorted(n, inds, vals).unwrap();
        if let Some(p) = probe.as_deref_mut() {
            samples.push(p.sample(ctx));
        }
    }
    samples
}

fn run_bfs(a: &CsrMatrix<f64>, ctx: &ExecCtx, pooled: bool) -> RunStats {
    ctx.workspace().set_enabled(pooled);
    bfs_levels(a, 0, ctx, None); // warm the shelves at full frontier width
    let mut probe = Probe::start(ctx);
    let t0 = Instant::now();
    let samples = bfs_levels(a, 0, ctx, Some(&mut probe));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    RunStats { iterations: samples.len(), wall_ms, samples }
}

/// PageRank power loop, mirrored from `gblas_graph::pagerank_on`; the
/// stochastic-scaling setup runs before sampling starts.
fn pagerank_iters(
    a: &CsrMatrix<f64>,
    iters: usize,
    ctx: &ExecCtx,
    probe: Option<&mut Probe>,
) -> Vec<IterSample> {
    let backend = SharedBackend::new(ctx);
    let n = backend.mat_nrows(a);
    let ones: CsrMatrix<f64> = backend.mat_map(a, &|_, _, _| 1.0f64).unwrap();
    let outdeg: Vec<f64> = backend.reduce_rows(&ones, &Plus).unwrap();
    let w: CsrMatrix<f64> = {
        let deg = &outdeg;
        backend.mat_map(&ones, &|i, _, _| 1.0 / deg[i].max(1.0)).unwrap()
    };
    let ring = semirings::plus_times_f64();
    let damping = 0.85;
    let base = (1.0 - damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut samples = Vec::new();
    let mut probe = probe;
    for _ in 0..iters {
        let dangling: f64 = (0..n).filter(|&i| outdeg[i] == 0.0).map(|i| pr[i]).sum();
        let x = backend.dense_from_vec(pr.clone());
        let spread = backend.dense_to_vec(&backend.spmv(&w, &x, &ring).unwrap());
        for v in 0..n {
            pr[v] = base + damping * (spread[v] + dangling / n as f64);
        }
        if let Some(p) = probe.as_deref_mut() {
            samples.push(p.sample(ctx));
        }
    }
    samples
}

fn run_pagerank(a: &CsrMatrix<f64>, iters: usize, ctx: &ExecCtx, pooled: bool) -> RunStats {
    ctx.workspace().set_enabled(pooled);
    pagerank_iters(a, 2, ctx, None);
    let mut probe = Probe::start(ctx);
    let t0 = Instant::now();
    let samples = pagerank_iters(a, iters, ctx, Some(&mut probe));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    RunStats { iterations: samples.len(), wall_ms, samples }
}

fn run_spmspv(
    a: &CsrMatrix<f64>,
    x: &SparseVec<f64>,
    iters: usize,
    ctx: &ExecCtx,
    pooled: bool,
) -> RunStats {
    ctx.workspace().set_enabled(pooled);
    let ring = semirings::plus_times_f64();
    for _ in 0..2 {
        let _: SpMSpVOutput<f64> = spmspv_semiring(a, x, &ring, ctx).unwrap();
    }
    let mut probe = Probe::start(ctx);
    let t0 = Instant::now();
    let mut samples = Vec::new();
    for _ in 0..iters {
        let _: SpMSpVOutput<f64> = spmspv_semiring(a, x, &ring, ctx).unwrap();
        samples.push(probe.sample(ctx));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    RunStats { iterations: samples.len(), wall_ms, samples }
}

/// The SUMMA SpGEMM workload: `A·A` on a simulated 2×2 grid, one
/// distributed multiply per iteration. The local multiply kernels (heap /
/// hash / dense SPA) and the stage slice buffers check out of the
/// per-locale workspace pools, so pooled steady state should allocate
/// nothing per stage beyond the result assembly.
fn run_mxm(a: &CsrMatrix<f64>, iters: usize, pooled: bool) -> RunStats {
    use gblas_dist::{DistCsrMatrix, DistCtx, ProcGrid};
    use gblas_sim::MachineConfig;

    let grid = ProcGrid::new(2, 2);
    let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
    dctx.set_workspace_enabled(pooled);
    let da = DistCsrMatrix::from_global(a, grid);
    let ring = semirings::plus_times_f64();
    for _ in 0..2 {
        let _ = gblas_dist::ops::mxm::mxm_dist(&da, &da, &ring, &dctx).expect("warm-up mxm");
    }
    let mut allocs = ALLOCS.load(Ordering::Relaxed);
    let mut bytes = ALLOC_BYTES.load(Ordering::Relaxed);
    let mut ws = dctx.workspace_stats();
    let t0 = Instant::now();
    let mut samples = Vec::new();
    for _ in 0..iters {
        let _ = gblas_dist::ops::mxm::mxm_dist(&da, &da, &ring, &dctx).expect("measured mxm");
        let (na, nb, nw) = (
            ALLOCS.load(Ordering::Relaxed),
            ALLOC_BYTES.load(Ordering::Relaxed),
            dctx.workspace_stats(),
        );
        let d = nw.saturating_sub(&ws);
        samples.push(IterSample {
            allocs: na - allocs,
            bytes: nb - bytes,
            pool_hits: d.pool_hits,
            pool_misses: d.pool_misses,
        });
        allocs = na;
        bytes = nb;
        ws = nw;
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    RunStats { iterations: samples.len(), wall_ms, samples }
}

/// Schedule-cache accounting for one distributed algorithm run:
/// `(iterations, builds, replays, invalidations)` plus the JSON row.
fn sched_workload(name: &str, a: &CsrMatrix<f64>) -> String {
    use gblas_dist::ops::spmspv::CommStrategy;
    use gblas_dist::{DistCsrMatrix, DistCtx, ProcGrid};
    use gblas_sim::MachineConfig;

    let grid = ProcGrid::new(2, 2);
    let da = DistCsrMatrix::from_global(a, grid);
    let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
    let iterations = match name {
        "bfs" => {
            let (r, _) = gblas_graph::bfs_dist_with(
                &da,
                0,
                CommStrategy::Bulk,
                SpMSpVOpts::default(),
                &dctx,
            )
            .expect("dist bfs");
            *r.levels.as_slice().iter().max().unwrap_or(&0) as usize
        }
        _ => {
            let (_, iters, _) =
                gblas_graph::pagerank_dist_on(&da, gblas_graph::PageRankOptions::default(), &dctx)
                    .expect("dist pagerank");
            iters
        }
    };
    let m = dctx.metrics().snapshot();
    eprintln!(
        "  sched/{name}: {} iterations, {} builds, {} replays, {} invalidations",
        iterations, m.sched_builds, m.sched_replays, m.sched_invalidations
    );
    format!(
        "    {{\"name\": \"{name}\", \"iterations\": {iterations}, \"builds\": {}, \
         \"replays\": {}, \"invalidations\": {}}}",
        m.sched_builds, m.sched_replays, m.sched_invalidations
    )
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_alloc.json");
    let mut n = 20_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check = true;
                n = 2_000;
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--n" => n = args.next().expect("--n needs a value").parse().expect("--n usize"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let degree = 8;
    let threads = 4;
    let pr_iters = 10;
    let spmspv_iters = 10;
    let mxm_iters = 8;
    let ctx = ExecCtx::new(threads, 2);
    let a = workloads::er_matrix(n, degree, 7);
    let x = workloads::spmspv_vector(n, 10, 11);

    eprintln!("alloc_bench: n={n} degree={degree} nnz={} threads={threads}", a.nnz());

    // Unpooled first so the pooled run's shelves are not pre-warmed by it
    // (set_enabled(false) drains the shelves anyway, but order makes the
    // wall-clock comparison symmetric: both modes start cold).
    let mut sections = Vec::new();
    for (name, runner) in [("bfs", 0usize), ("pagerank", 1), ("spmspv", 2), ("mxm", 3)] {
        let run = |pooled: bool| match runner {
            0 => run_bfs(&a, &ctx, pooled),
            1 => run_pagerank(&a, pr_iters, &ctx, pooled),
            2 => run_spmspv(&a, &x, spmspv_iters, &ctx, pooled),
            _ => run_mxm(&a, mxm_iters, pooled),
        };
        let unpooled = run(false);
        let pooled = run(true);
        eprintln!(
            "  {name:8} pooled: {:7.1} allocs/iter, {:5.1} misses/iter, {:8.2} ms | \
             unpooled: {:7.1} allocs/iter, {:8.2} ms",
            pooled.steady_mean(|s| s.allocs),
            pooled.steady_mean(|s| s.pool_misses),
            pooled.wall_ms,
            unpooled.steady_mean(|s| s.allocs),
            unpooled.wall_ms,
        );
        sections.push((name, pooled, unpooled));
    }

    let body: Vec<String> = sections
        .iter()
        .map(|(name, pooled, unpooled)| {
            format!(
                "    {{\"name\": \"{name}\", \"pooled\": {}, \"unpooled\": {}}}",
                pooled.to_json(),
                unpooled.to_json()
            )
        })
        .collect();
    let sched_body: Vec<String> =
        ["bfs", "pagerank"].iter().map(|name| sched_workload(name, &a)).collect();
    let json = format!(
        "{{\n  \"config\": {{\"n\": {n}, \"degree\": {degree}, \"nnz\": {}, \
         \"threads\": {threads}, \"warmup_iters\": {WARMUP_ITERS}}},\n  \"workloads\": [\n{}\n  ],\n  \"sched\": [\n{}\n  ]\n}}\n",
        a.nnz(),
        body.join(",\n"),
        sched_body.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_alloc.json");
    eprintln!("alloc_bench: wrote {out_path}");

    if check {
        let bfs_pooled = &sections[0].1;
        let misses = bfs_pooled.steady_misses_total();
        if misses != 0 {
            eprintln!(
                "alloc_bench --check FAILED: BFS steady state performed {misses} pool-miss \
                 checkouts (expected 0)"
            );
            std::process::exit(1);
        }
        eprintln!("alloc_bench --check OK: BFS steady state is pool-miss free");
    }
}
