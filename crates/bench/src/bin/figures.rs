//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run -p gblas-bench --release --bin figures -- [--fig N|all] [--scale S] [--out DIR]
//!                                                     [--trace FILE] [--spmspv-merge sort|bucket]
//! ```
//!
//! * `--fig N` — a figure number 1..10 (6 is the SPA diagram: no data);
//!   `ablations` for the design-choice sweeps, `algorithms` for the
//!   node sweep of the newly-distributed analytics (triangles, k-core,
//!   MIS, betweenness via the backend trait), `imbalance` for the trace
//!   profiler's load-imbalance factor vs locale count (BFS and PageRank),
//!   `serving` for the query-serving throughput-vs-batch-size sweep
//!   (batched multi-source BFS vs the k-loop baseline), `direction` for
//!   the direction-optimizing BFS ablation (auto vs static push/pull on
//!   a skewed RMAT graph), `overlap` for the split-phase (compute/comm
//!   overlap) pricing ablation over BFS and PageRank node sweeps;
//!   `all` (default) runs everything.
//! * `--scale S` — divide the paper's large input sizes (1M/10M/100M) by
//!   `S` for quick runs; default 1 (full paper sizes, needs ~8 GB RAM and
//!   a few minutes).
//! * `--out DIR` — CSV output directory, default `results`.
//! * `--spmspv-merge sort|bucket` — merge strategy for the SpMSpV figures
//!   (7–9): the paper's comparison sort or the sort-free bucketed merge.
//! * `--trace FILE` — record every simulated operation across all figures
//!   into one trace: Chrome trace-event JSON, or JSONL when `FILE` ends in
//!   `.jsonl`. Metrics are printed at the end.

use gblas_bench::figs::run_fig_with;
use gblas_core::ops::spmspv::{MergeStrategy, SpMSpVOpts};
use gblas_core::trace::sink;
use std::path::PathBuf;

fn main() {
    let mut figs: Vec<usize> = (1..=10).collect();
    let mut ablations = true;
    let mut algorithms = true;
    let mut imbalance = true;
    let mut serving = true;
    let mut direction = true;
    let mut overlap = true;
    let mut spgemm = true;
    let mut scale = 1usize;
    let mut out = PathBuf::from("results");
    let mut trace_out: Option<String> = None;
    let mut opts = SpMSpVOpts::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                let v = args.get(i).expect("--fig needs a value");
                if v == "ablations" {
                    figs = Vec::new();
                    algorithms = false;
                    imbalance = false;
                    serving = false;
                    direction = false;
                    overlap = false;
                    spgemm = false;
                } else if v == "algorithms" {
                    figs = Vec::new();
                    ablations = false;
                    imbalance = false;
                    serving = false;
                    direction = false;
                    overlap = false;
                    spgemm = false;
                } else if v == "imbalance" {
                    figs = Vec::new();
                    ablations = false;
                    algorithms = false;
                    serving = false;
                    direction = false;
                    overlap = false;
                    spgemm = false;
                } else if v == "serving" {
                    figs = Vec::new();
                    ablations = false;
                    algorithms = false;
                    imbalance = false;
                    direction = false;
                    overlap = false;
                    spgemm = false;
                } else if v == "direction" {
                    figs = Vec::new();
                    ablations = false;
                    algorithms = false;
                    imbalance = false;
                    serving = false;
                    overlap = false;
                    spgemm = false;
                } else if v == "overlap" {
                    figs = Vec::new();
                    ablations = false;
                    algorithms = false;
                    imbalance = false;
                    serving = false;
                    direction = false;
                    spgemm = false;
                } else if v == "spgemm" {
                    figs = Vec::new();
                    ablations = false;
                    algorithms = false;
                    imbalance = false;
                    serving = false;
                    direction = false;
                    overlap = false;
                } else if v != "all" {
                    figs = vec![v.parse().expect(
                        "--fig expects 1..10, 'ablations', 'algorithms', 'imbalance', \
                         'serving', 'direction', 'overlap', 'spgemm' or 'all'",
                    )];
                    ablations = false;
                    algorithms = false;
                    imbalance = false;
                    serving = false;
                    direction = false;
                    overlap = false;
                    spgemm = false;
                }
            }
            "--scale" => {
                i += 1;
                scale = args.get(i).expect("--scale needs a value").parse().expect("integer scale");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out needs a value"));
            }
            "--trace" => {
                i += 1;
                trace_out = Some(args.get(i).expect("--trace needs a value").clone());
            }
            "--spmspv-merge" => {
                i += 1;
                let v = args.get(i).expect("--spmspv-merge needs a value");
                opts = SpMSpVOpts::with_merge(
                    MergeStrategy::parse(v).expect("--spmspv-merge expects sort|bucket"),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig N|ablations|algorithms|imbalance|serving|direction|\
                     overlap|spgemm|all] [--scale S] [--out DIR] [--trace FILE] \
                     [--spmspv-merge sort|bucket]"
                );
                return;
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    println!("# chapel-graphblas-rs figure harness");
    println!("# scale = {scale} (paper sizes divided by this)");
    println!("# spmspv merge = {}", opts.merge.name());
    let tracing = trace_out.as_ref().map(|_| gblas_bench::figs::enable_tracing());
    for n in figs {
        if n == 6 {
            println!(
                "\n=== fig06 — SPA diagram (Fig 6): illustrative only, nothing to measure ==="
            );
            continue;
        }
        let t0 = std::time::Instant::now();
        for fig in run_fig_with(n, scale, opts) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# fig {n} regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if ablations {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::figs::fig_ablations(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# ablations regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if algorithms {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::figs::fig_algorithms(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# algorithms sweep regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if imbalance {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::figs::fig_imbalance(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# imbalance sweep regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if serving {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::serve::fig_serving(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# serving sweep regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if direction {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::figs::fig_direction(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# direction sweep regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if overlap {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::figs::fig_overlap(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# overlap sweep regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if spgemm {
        let t0 = std::time::Instant::now();
        for fig in gblas_bench::figs::fig_spgemm(scale) {
            fig.print();
            match fig.write_csv(&out) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("(csv write failed: {e})"),
            }
        }
        eprintln!("# spgemm sweep regenerated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if let (Some(path), Some((recorder, metrics))) = (trace_out, tracing) {
        let trace = recorder.snapshot();
        let text =
            if path.ends_with(".jsonl") { sink::jsonl(&trace) } else { sink::chrome_trace(&trace) };
        match std::fs::write(&path, text) {
            Ok(()) => println!(
                "# trace: {} spans, {} events, {:.6}s simulated -> {path}",
                trace.spans.len(),
                trace.instants.len(),
                trace.sim_end()
            ),
            Err(e) => eprintln!("# trace write failed: {e}"),
        }
        println!("# metrics:");
        print!("{}", metrics.snapshot());
    }
}
