//! Perf-regression gate: diff a fresh `alloc_bench` result against the
//! committed `BENCH_alloc.json` baseline, with tolerances.
//!
//! ```text
//! cargo run -p gblas-bench --bin regress -- \
//!     [--baseline BENCH_alloc.json] --candidate NEW.json [--check] [--tolerance PCT]
//! ```
//!
//! The gate compares the *allocation* metrics — steady-state allocs,
//! bytes, pool hits and misses per iteration — which are stable across
//! machines, and deliberately ignores wall-clock (too noisy for CI).
//! Regressions are one-sided: using *less* memory than the baseline
//! passes; the failure modes gated here are pooled hot paths that start
//! allocating again, pools that stop being reused, and workloads whose
//! allocation volume quietly grows. The `sched` section is gated the
//! same way: schedule builds must not grow (a kernel falling off the
//! inspector–executor path re-inspects every iteration) and replays
//! must not collapse.
//!
//! The two files must describe the same experiment: their `config`
//! objects (n, degree, nnz, threads, warmup) are compared exactly, and a
//! mismatch is an error rather than a meaningless diff. After an
//! intentional workload change, regenerate the baseline with
//! `cargo run -p gblas-bench --features bench --bin alloc_bench`.
//!
//! `--check` exits 1 when any metric fails; without it the diff is
//! informational. Exit code 2 is reserved for usage/IO errors.

use gblas_core::trace::sink::{parse_json, JsonValue};

/// Relative tolerance (fraction) applied to the volume metrics.
const DEFAULT_TOLERANCE: f64 = 0.25;
/// Absolute slack for per-iteration allocation counts.
const ALLOC_FLOOR: f64 = 2.0;
/// Absolute slack for per-iteration byte volumes.
const BYTES_FLOOR: f64 = 4096.0;
/// Absolute slack for pool misses (a miss is a cold checkout; steady
/// state should have almost none).
const MISS_FLOOR: f64 = 1.0;

fn fail(msg: &str) -> ! {
    eprintln!("regress: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> JsonValue {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse_json(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn num(v: &JsonValue, key: &str, ctx: &str) -> f64 {
    v.get(key)
        .and_then(JsonValue::as_num)
        .unwrap_or_else(|| fail(&format!("{ctx}: missing number '{key}'")))
}

fn steady<'a>(workload: &'a JsonValue, mode: &str, ctx: &str) -> &'a JsonValue {
    workload
        .get(mode)
        .and_then(|m| m.get("steady"))
        .unwrap_or_else(|| fail(&format!("{ctx}: missing {mode}.steady")))
}

/// One comparison row; `ok` is one-sided per the metric's direction.
struct Check {
    label: String,
    base: f64,
    cand: f64,
    ok: bool,
}

impl Check {
    /// Gate an increase: candidate may not exceed baseline by more than
    /// the relative tolerance plus an absolute floor.
    fn upper(label: String, base: f64, cand: f64, tol: f64, floor: f64) -> Check {
        Check { label, base, cand, ok: cand <= base * (1.0 + tol) + floor }
    }

    /// Gate a collapse: candidate may not fall below baseline by more
    /// than the relative tolerance plus an absolute floor.
    fn lower(label: String, base: f64, cand: f64, tol: f64, floor: f64) -> Check {
        Check { label, base, cand, ok: cand >= base * (1.0 - tol) - floor }
    }
}

fn main() {
    let mut baseline = String::from("BENCH_alloc.json");
    let mut candidate: Option<String> = None;
    let mut check = false;
    let mut tol = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = args.next().unwrap_or_else(|| fail("--baseline needs a path"))
            }
            "--candidate" => {
                candidate = Some(args.next().unwrap_or_else(|| fail("--candidate needs a path")))
            }
            "--check" => check = true,
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| fail("--tolerance needs a percentage"));
                tol = v.parse::<f64>().unwrap_or_else(|_| fail("--tolerance expects a number"))
                    / 100.0;
            }
            "--help" | "-h" => {
                println!(
                    "usage: regress [--baseline FILE] --candidate FILE [--check] [--tolerance PCT]"
                );
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let candidate = candidate.unwrap_or_else(|| fail("--candidate FILE is required"));

    let base = load(&baseline);
    let cand = load(&candidate);

    // The experiments must match before their metrics can be compared.
    let (Some(JsonValue::Obj(bc)), Some(cc)) = (base.get("config"), cand.get("config")) else {
        fail("both files need a 'config' object");
    };
    for (key, want) in bc {
        let got = cc.get(key);
        if got != Some(want) {
            fail(&format!(
                "config mismatch on '{key}': baseline {want:?} vs candidate {got:?} — \
                 regenerate the baseline if the workload changed intentionally"
            ));
        }
    }

    let workloads = |v: &JsonValue, path: &str| -> Vec<JsonValue> {
        match v.get("workloads") {
            Some(JsonValue::Arr(items)) => items.clone(),
            _ => fail(&format!("{path}: missing 'workloads' array")),
        }
    };
    let base_wl = workloads(&base, &baseline);
    let cand_wl = workloads(&cand, &candidate);

    let mut checks: Vec<Check> = Vec::new();
    for bw in &base_wl {
        let name = bw
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| fail("workload without a name"))
            .to_string();
        let Some(cw) = cand_wl
            .iter()
            .find(|w| w.get("name").and_then(JsonValue::as_str) == Some(name.as_str()))
        else {
            fail(&format!("candidate is missing workload '{name}'"));
        };
        for mode in ["pooled", "unpooled"] {
            let bs = steady(bw, mode, &name);
            let cs = steady(cw, mode, &name);
            let ctx = format!("{name}/{mode}");
            checks.push(Check::upper(
                format!("{ctx} allocs/iter"),
                num(bs, "allocs_per_iter", &ctx),
                num(cs, "allocs_per_iter", &ctx),
                tol,
                ALLOC_FLOOR,
            ));
            checks.push(Check::upper(
                format!("{ctx} bytes/iter"),
                num(bs, "bytes_per_iter", &ctx),
                num(cs, "bytes_per_iter", &ctx),
                tol,
                BYTES_FLOOR,
            ));
        }
        // Pool behaviour is only meaningful with pooling on: steady-state
        // misses must stay near zero, and reuse must not collapse.
        let bs = steady(bw, "pooled", &name);
        let cs = steady(cw, "pooled", &name);
        let ctx = format!("{name}/pooled");
        checks.push(Check::upper(
            format!("{ctx} pool misses/iter"),
            num(bs, "pool_misses_per_iter", &ctx),
            num(cs, "pool_misses_per_iter", &ctx),
            0.0,
            MISS_FLOOR,
        ));
        checks.push(Check::lower(
            format!("{ctx} pool hits/iter"),
            num(bs, "pool_hits_per_iter", &ctx),
            num(cs, "pool_hits_per_iter", &ctx),
            tol,
            ALLOC_FLOOR,
        ));
    }

    // Schedule-cache metrics, gated one-sidedly: plan builds must not
    // grow (a kernel falling off the schedule path re-inspects every
    // iteration) and replays must not collapse (the cache going cold).
    // Invalidations are informational — the fixed workload should show
    // zero, but a legitimate workload change can move them.
    if let Some(JsonValue::Arr(base_sched)) = base.get("sched") {
        let cand_sched = match cand.get("sched") {
            Some(JsonValue::Arr(items)) => items.clone(),
            _ => fail(&format!("{candidate}: missing 'sched' array (baseline has one)")),
        };
        for bw in base_sched {
            let name = bw
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| fail("sched workload without a name"))
                .to_string();
            let Some(cw) = cand_sched
                .iter()
                .find(|w| w.get("name").and_then(JsonValue::as_str) == Some(name.as_str()))
            else {
                fail(&format!("candidate is missing sched workload '{name}'"));
            };
            let ctx = format!("sched/{name}");
            checks.push(Check::upper(
                format!("{ctx} builds"),
                num(bw, "builds", &ctx),
                num(cw, "builds", &ctx),
                0.0,
                0.0,
            ));
            checks.push(Check::lower(
                format!("{ctx} replays"),
                num(bw, "replays", &ctx),
                num(cw, "replays", &ctx),
                tol,
                0.0,
            ));
        }
    }

    println!("regress: {candidate} vs baseline {baseline} (tolerance {:.0}%)", tol * 100.0);
    println!("{:<34} {:>14} {:>14}  status", "metric", "baseline", "candidate");
    let mut failures = 0usize;
    for c in &checks {
        println!(
            "{:<34} {:>14.1} {:>14.1}  {}",
            c.label,
            c.base,
            c.cand,
            if c.ok { "ok" } else { "REGRESSION" }
        );
        if !c.ok {
            failures += 1;
        }
    }
    if failures > 0 {
        println!("{failures} of {} checks regressed", checks.len());
        if check {
            std::process::exit(1);
        }
        println!("(informational run; pass --check to fail on regressions)");
    } else {
        println!("all {} checks within tolerance", checks.len());
    }
}
