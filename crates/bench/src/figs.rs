//! Generators for every figure of the paper.
//!
//! Each `figN` function executes the paper's workload for real (the same
//! kernels the library ships), collects the measured work/communication
//! profiles, and prices them with the calibrated Edison model. See
//! DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured notes.

use crate::output::{FigPoint, Figure};
use crate::workloads;
use crate::{NODES, THREADS};
use gblas_core::ops::apply::apply_vec_inplace;
use gblas_core::ops::ewise::{ewise_filter_atomic, EwiseVariant};
use gblas_core::ops::spmspv::{spmspv_first_visitor, MergeStrategy, SpMSpVOpts};
use gblas_core::par::ExecCtx;
use gblas_core::trace::{MetricsRegistry, TraceRecorder};
use gblas_dist::ops::apply::{apply_v1 as dist_apply_v1, apply_v2 as dist_apply_v2};
use gblas_dist::ops::assign::{assign_v1 as dist_assign_v1, assign_v2 as dist_assign_v2};
use gblas_dist::ops::ewise::ewise_mult_dist;
use gblas_dist::ops::spmspv::spmspv_dist;
use gblas_dist::{DistCsrMatrix, DistCtx, DistDenseVec, DistSparseVec, ProcGrid};
use gblas_sim::{CostModel, MachineConfig, SimReport};
use std::sync::{Arc, OnceLock};

/// Locale counts used by Fig 10 (colocated on one node).
pub const COLOCATED: &[usize] = &[1, 2, 4, 8, 16, 32];

/// Shared recorder/metrics installed by [`enable_tracing`]; every
/// simulated [`DistCtx`] the harness builds reports into it.
static TRACING: OnceLock<(TraceRecorder, Arc<MetricsRegistry>)> = OnceLock::new();

/// Capture traces for every figure run in this process (`--trace` in the
/// `figures` binary). Returns the shared recorder; subsequent calls return
/// the same one. Ops from all figures land end-to-end on one simulated
/// timeline.
pub fn enable_tracing() -> (TraceRecorder, Arc<MetricsRegistry>) {
    let (r, m) =
        TRACING.get_or_init(|| (TraceRecorder::new(), Arc::new(MetricsRegistry::default())));
    (r.clone(), Arc::clone(m))
}

/// Build a `DistCtx`, instrumented when [`enable_tracing`] was called.
fn dist_ctx(machine: MachineConfig) -> DistCtx {
    match TRACING.get() {
        Some((r, m)) => DistCtx::with_instrumentation(machine, r.clone(), Arc::clone(m)),
        None => DistCtx::new(machine),
    }
}

/// Price a shared-memory execution at `t` simulated threads.
fn run_shm(t: usize, f: impl FnOnce(&ExecCtx)) -> SimReport {
    let ctx = ExecCtx::simulated(t);
    f(&ctx);
    CostModel::edison().profile_time(&ctx.take_profile(), t)
}

/// Fig 1: Apply, shared-memory (left) and distributed (right), 10M-nonzero
/// random sparse vectors.
pub fn fig1(scale: usize) -> Vec<Figure> {
    let nnz = workloads::scaled(10_000_000, scale, 10_000);
    let global = workloads::vector(nnz, 10);
    let bump = |v: f64| v * 1.000001;

    let mut shm = Figure::new("fig01-shm", "Apply, shared memory, nnz=10M (Fig 1 left)", "threads");
    for version in ["Apply1", "Apply2"] {
        let mut points = Vec::new();
        for &t in THREADS {
            let mut x = global.clone();
            let report = run_shm(t, |ctx| apply_vec_inplace(&mut x, &bump, ctx));
            points.push(FigPoint { x: t, report });
        }
        shm.push_series(version, points);
    }

    let mut dist = Figure::new(
        "fig01-dist",
        "Apply, distributed memory, nnz=10M, 24 threads/node (Fig 1 right)",
        "nodes",
    );
    for version in ["Apply1", "Apply2"] {
        let mut points = Vec::new();
        for &p in NODES {
            let mut x = DistSparseVec::from_global(&global, p);
            let dctx = dist_ctx(MachineConfig::edison_cluster(p, 24));
            let report = if version == "Apply1" {
                dist_apply_v1(&mut x, &bump, &dctx).expect("apply_v1")
            } else {
                dist_apply_v2(&mut x, &bump, &dctx).expect("apply_v2")
            };
            points.push(FigPoint { x: p, report });
        }
        dist.push_series(version, points);
    }
    vec![shm, dist]
}

/// Fig 2: Assign, shared-memory and distributed, 1M-nonzero vectors.
pub fn fig2(scale: usize) -> Vec<Figure> {
    let nnz = workloads::scaled(1_000_000, scale, 10_000);
    let b = workloads::vector(nnz, 20);

    let mut shm = Figure::new("fig02-shm", "Assign, shared memory, nnz=1M (Fig 2 left)", "threads");
    for version in ["Assign1", "Assign2"] {
        let mut points = Vec::new();
        for &t in THREADS {
            let mut a = gblas_core::container::SparseVec::new(b.capacity());
            let report = run_shm(t, |ctx| {
                if version == "Assign1" {
                    gblas_core::ops::assign::assign_v1(&mut a, &b, ctx).expect("assign1");
                } else {
                    gblas_core::ops::assign::assign_v2(&mut a, &b, ctx).expect("assign2");
                }
            });
            points.push(FigPoint { x: t, report });
        }
        shm.push_series(version, points);
    }

    let mut dist = Figure::new(
        "fig02-dist",
        "Assign, distributed memory, nnz=1M, 24 threads/node (Fig 2 right)",
        "nodes",
    );
    for version in ["Assign1", "Assign2"] {
        let mut points = Vec::new();
        for &p in NODES {
            let bd = DistSparseVec::from_global(&b, p);
            let mut a = DistSparseVec::empty(b.capacity(), p);
            let dctx = dist_ctx(MachineConfig::edison_cluster(p, 24));
            let report = if version == "Assign1" {
                dist_assign_v1(&mut a, &bd, &dctx).expect("assign_v1")
            } else {
                dist_assign_v2(&mut a, &bd, &dctx).expect("assign_v2")
            };
            points.push(FigPoint { x: p, report });
        }
        dist.push_series(version, points);
    }
    vec![shm, dist]
}

/// Fig 3: distributed Assign2 at 1M and 100M nonzeros.
pub fn fig3(scale: usize) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig03",
        "Assign2, distributed, nnz in {1M, 100M}, 24 threads/node (Fig 3)",
        "nodes",
    );
    for (label, base) in [("nnz=1M", 1_000_000usize), ("nnz=100M", 100_000_000)] {
        let nnz = workloads::scaled(base, scale, 10_000);
        let b = workloads::vector(nnz, 30);
        let mut points = Vec::new();
        for &p in NODES {
            let bd = DistSparseVec::from_global(&b, p);
            let mut a = DistSparseVec::empty(b.capacity(), p);
            let dctx = dist_ctx(MachineConfig::edison_cluster(p, 24));
            let report = dist_assign_v2(&mut a, &bd, &dctx).expect("assign_v2");
            points.push(FigPoint { x: p, report });
        }
        fig.push_series(label, points);
    }
    vec![fig]
}

/// Fig 4: shared-memory eWiseMult (sparse × dense boolean filter keeping
/// about half the entries) at 10K, 1M and 100M nonzeros.
pub fn fig4(scale: usize) -> Vec<Figure> {
    let mut fig =
        Figure::new("fig04", "eWiseMult, shared memory, nnz in {10K, 1M, 100M} (Fig 4)", "threads");
    for (label, base, min) in [
        ("nnz=10K", 10_000usize, 10_000usize),
        ("nnz=1M", 1_000_000, 10_000),
        ("nnz=100M", 100_000_000, 10_000),
    ] {
        let nnz = workloads::scaled(base, scale, min);
        let (x, y) = workloads::ewise_pair(nnz, 40);
        let mut points = Vec::new();
        for &t in THREADS {
            let report = run_shm(t, |ctx| {
                let _ = ewise_filter_atomic(&x, &y, &|_: f64, keep| keep, ctx).expect("ewise");
            });
            points.push(FigPoint { x: t, report });
        }
        fig.push_series(label, points);
    }
    vec![fig]
}

/// Fig 5: distributed eWiseMult at 1 thread/node (left) and 24
/// threads/node (right), 1M and 100M nonzeros.
pub fn fig5(scale: usize) -> Vec<Figure> {
    let mut out = Vec::new();
    for (fig_id, title, threads) in [
        ("fig05-1t", "eWiseMult, distributed, 1 thread/node (Fig 5 left)", 1usize),
        ("fig05-24t", "eWiseMult, distributed, 24 threads/node (Fig 5 right)", 24),
    ] {
        let mut fig = Figure::new(fig_id, title, "nodes");
        for (label, base) in [("nnz=1M", 1_000_000usize), ("nnz=100M", 100_000_000)] {
            let nnz = workloads::scaled(base, scale, 10_000);
            let (x, y) = workloads::ewise_pair(nnz, 50);
            let mut points = Vec::new();
            for &p in NODES {
                let dx = DistSparseVec::from_global(&x, p);
                let dy = DistDenseVec::from_global(&y, p);
                let dctx = dist_ctx(MachineConfig::edison_cluster(p, threads));
                let (_, report) =
                    ewise_mult_dist(&dx, &dy, &|_: f64, keep| keep, EwiseVariant::Atomic, &dctx)
                        .expect("ewise dist");
                points.push(FigPoint { x: p, report });
            }
            fig.push_series(label, points);
        }
        out.push(fig);
    }
    out
}

/// The three SpMSpV configurations of Figs 7–9: `(d, f%)`.
pub const SPMSPV_CONFIGS: &[(usize, usize)] = &[(16, 2), (4, 2), (16, 20)];

/// Fig 7: shared-memory SpMSpV component breakdown (SPA / Sorting /
/// Output) on Erdős–Rényi matrices with n = 1M.
pub fn fig7(scale: usize) -> Vec<Figure> {
    fig7_with(scale, SpMSpVOpts::default())
}

/// Fig 7 with explicit SpMSpV options, so the same component breakdown
/// can be produced under the sort-free bucketed merge.
pub fn fig7_with(scale: usize, opts: SpMSpVOpts) -> Vec<Figure> {
    let n = workloads::scaled(1_000_000, scale, 20_000);
    let mut out = Vec::new();
    for &(d, f) in SPMSPV_CONFIGS {
        let a = workloads::er_matrix(n, d, 70 + d as u64);
        let x = workloads::spmspv_vector(n, f, 70 + d as u64 + f as u64);
        let mut fig = Figure::new(
            &format!("fig07-d{d}-f{f}"),
            &format!(
                "SpMSpV shared memory ({} merge), ER n=1M d={d} f={f}% (Fig 7)",
                opts.merge.name()
            ),
            "threads",
        );
        let mut points = Vec::new();
        for &t in THREADS {
            let report = run_shm(t, |ctx| {
                let _ = spmspv_first_visitor(&a, &x, None, opts, ctx).expect("spmspv");
            });
            points.push(FigPoint { x: t, report });
        }
        fig.push_series("components", points);
        out.push(fig);
    }
    out
}

/// Figs 8–9: distributed SpMSpV component breakdown (Gather / Local
/// multiply / Scatter). `n_base` is 1M for Fig 8 and 10M for Fig 9.
fn spmspv_dist_figure(
    fig_prefix: &str,
    n_base: usize,
    scale: usize,
    opts: SpMSpVOpts,
) -> Vec<Figure> {
    use gblas_dist::ops::spmspv::{spmspv_dist_with, CommStrategy};
    let n = workloads::scaled(n_base, scale, 20_000);
    let mut out = Vec::new();
    for &(d, f) in SPMSPV_CONFIGS {
        let a = workloads::er_matrix(n, d, 80 + d as u64);
        let x = workloads::spmspv_vector(n, f, 80 + d as u64 + f as u64);
        let mut fig = Figure::new(
            &format!("{fig_prefix}-d{d}-f{f}"),
            &format!(
                "SpMSpV distributed ({} merge), ER n={n} d={d} f={f}%, 24 threads/node ({})",
                opts.merge.name(),
                if n_base >= 10_000_000 { "Fig 9" } else { "Fig 8" }
            ),
            "nodes",
        );
        let mut points = Vec::new();
        for &p in NODES {
            let grid = ProcGrid::square_for(p);
            let da = DistCsrMatrix::from_global(&a, grid);
            let dx = DistSparseVec::from_global(&x, p);
            let dctx = dist_ctx(MachineConfig::edison_cluster(p, 24));
            let (_, report) = spmspv_dist_with(&da, &dx, None, CommStrategy::Fine, opts, &dctx)
                .expect("spmspv dist");
            points.push(FigPoint { x: p, report });
        }
        fig.push_series("components", points);
        out.push(fig);
    }
    out
}

/// Fig 8: distributed SpMSpV, n = 1M.
pub fn fig8(scale: usize) -> Vec<Figure> {
    fig8_with(scale, SpMSpVOpts::default())
}

/// Fig 8 with explicit SpMSpV options.
pub fn fig8_with(scale: usize, opts: SpMSpVOpts) -> Vec<Figure> {
    spmspv_dist_figure("fig08", 1_000_000, scale, opts)
}

/// Fig 9: distributed SpMSpV, n = 10M.
pub fn fig9(scale: usize) -> Vec<Figure> {
    fig9_with(scale, SpMSpVOpts::default())
}

/// Fig 9 with explicit SpMSpV options.
pub fn fig9_with(scale: usize, opts: SpMSpVOpts) -> Vec<Figure> {
    spmspv_dist_figure("fig09", 10_000_000, scale, opts)
}

/// Fig 10: Assign with 1–32 locales colocated on a single node, 1 thread
/// per locale, 10K nonzeros.
pub fn fig10(_scale: usize) -> Vec<Figure> {
    let b = workloads::vector(10_000, 100);
    let mut fig = Figure::new(
        "fig10",
        "Assign, multiple locales on one node, 1 thread/locale, nnz=10K (Fig 10)",
        "locales",
    );
    for version in ["Assign1", "Assign2"] {
        let mut points = Vec::new();
        for &locales in COLOCATED {
            let bd = DistSparseVec::from_global(&b, locales);
            let mut a = DistSparseVec::empty(b.capacity(), locales);
            let dctx = dist_ctx(MachineConfig::edison_colocated(locales));
            let report = if version == "Assign1" {
                dist_assign_v1(&mut a, &bd, &dctx).expect("assign_v1")
            } else {
                dist_assign_v2(&mut a, &bd, &dctx).expect("assign_v2")
            };
            points.push(FigPoint { x: locales, report });
        }
        fig.push_series(version, points);
    }
    vec![fig]
}

/// Simulated ablations of the paper's suggested improvements (DESIGN.md
/// §7), priced on the same Edison model as the figures:
///
/// * radix vs merge sort inside SpMSpV ("a less expensive integer sorting
///   algorithm (e.g., radix sort) is expected to reduce the sorting
///   cost", §III-D);
/// * atomic vs thread-private/prefix-sum compaction in eWiseMult ("we can
///   avoid the atomic variable", §III-C);
/// * fine-grained vs bulk-synchronous communication in the distributed
///   SpMSpV (§IV).
pub fn fig_ablations(scale: usize) -> Vec<Figure> {
    use gblas_core::sort::SortAlgo;
    let mut out = Vec::new();

    // --- merge-strategy ablation on the Fig 7 flagship config: the two
    // comparison sorts versus the sort-free bucket merge ---
    let n = workloads::scaled(1_000_000, scale, 20_000);
    let a = workloads::er_matrix(n, 16, 170);
    let x = workloads::spmspv_vector(n, 2, 171);
    let mut sort_fig = Figure::new(
        "ablation-sort",
        "SpMSpV merge step: merge/radix sort vs sort-free buckets (ER n=1M d=16 f=2%)",
        "threads",
    );
    for (label, opts) in [
        ("merge", SpMSpVOpts { sort: SortAlgo::Merge, ..Default::default() }),
        ("radix", SpMSpVOpts { sort: SortAlgo::Radix, ..Default::default() }),
        ("bucket", SpMSpVOpts::with_merge(MergeStrategy::Bucketed)),
    ] {
        let mut points = Vec::new();
        for &t in THREADS {
            let report = run_shm(t, |ctx| {
                let _ = spmspv_first_visitor(&a, &x, None, opts, ctx).expect("spmspv");
            });
            points.push(FigPoint { x: t, report });
        }
        sort_fig.push_series(label, points);
    }
    out.push(sort_fig);

    // --- compaction ablation on the Fig 4 flagship size ---
    let nnz = workloads::scaled(100_000_000, scale.max(10), 100_000);
    let (ex, ey) = workloads::ewise_pair(nnz, 172);
    let mut comp_fig = Figure::new(
        "ablation-compaction",
        "eWiseMult compaction: atomic fetch-add vs thread-private + prefix sum",
        "threads",
    );
    for (label, variant) in [("atomic", EwiseVariant::Atomic), ("prefix", EwiseVariant::Prefix)] {
        let mut points = Vec::new();
        for &t in THREADS {
            let report = run_shm(t, |ctx| {
                let _ =
                    gblas_core::ops::ewise::ewise_filter(&ex, &ey, &|_: f64, k| k, variant, ctx)
                        .expect("ewise");
            });
            points.push(FigPoint { x: t, report });
        }
        comp_fig.push_series(label, points);
    }
    out.push(comp_fig);

    // --- communication ablation on the Fig 8 flagship config ---
    let nc = workloads::scaled(1_000_000, scale, 20_000);
    let ac = workloads::er_matrix(nc, 16, 173);
    let xc = workloads::spmspv_vector(nc, 2, 174);
    let mut comm_fig = Figure::new(
        "ablation-comm",
        "Distributed SpMSpV: Listing-8 fine-grained vs bulk-synchronous (§IV)",
        "nodes",
    );
    for (label, bulk) in [("fine-grained", false), ("bulk", true)] {
        let mut points = Vec::new();
        for &p in NODES {
            let grid = ProcGrid::square_for(p);
            let da = DistCsrMatrix::from_global(&ac, grid);
            let dx = DistSparseVec::from_global(&xc, p);
            let dctx = dist_ctx(MachineConfig::edison_cluster(p, 24));
            let (_, report) = if bulk {
                gblas_dist::ops::spmspv::spmspv_dist_bulk(&da, &dx, &dctx).expect("bulk")
            } else {
                spmspv_dist(&da, &dx, &dctx).expect("fine")
            };
            points.push(FigPoint { x: p, report });
        }
        comm_fig.push_series(label, points);
    }
    out.push(comm_fig);
    out
}

/// Beyond-the-paper node sweep of the four analytics the backend-generic
/// algorithm layer newly runs distributed (triangles, k-core, MIS,
/// betweenness): each point executes the *same* generic algorithm text
/// as the shared-memory run, on the simulated Edison cluster, and
/// reports the priced comm/compute ledger. Exposed as `--fig algorithms`
/// in the `figures` binary.
pub fn fig_algorithms(scale: usize) -> Vec<Figure> {
    let n = workloads::scaled(100_000, scale, 2_000);
    let a = gblas_core::gen::erdos_renyi_symmetric(n, 8, 175);
    let mut fig = Figure::new(
        "algorithms-dist",
        "Newly-distributed analytics via the backend trait (ER symmetric d=8)",
        "nodes",
    );
    type Runner = fn(&DistCsrMatrix<f64>, &DistCtx) -> SimReport;
    let runners: [(&str, Runner); 4] = [
        ("triangles", |da, dctx| gblas_graph::triangle_count_dist(da, dctx).expect("triangles").1),
        ("kcore", |da, dctx| gblas_graph::core_numbers_dist(da, dctx).expect("kcore").1),
        ("mis", |da, dctx| gblas_graph::maximal_independent_set_dist(da, 42, dctx).expect("mis").1),
        ("bc", |da, dctx| gblas_graph::betweenness_dist(da, &[0, 1, 2, 3], dctx).expect("bc").1),
    ];
    for (label, run) in runners {
        let mut points = Vec::new();
        for &p in NODES {
            // triangles runs a sparse SUMMA, which needs a square grid
            let grid = if label == "triangles" {
                let q = (p as f64).sqrt() as usize;
                ProcGrid::new(q.max(1), q.max(1))
            } else {
                ProcGrid::square_for(p)
            };
            let da = DistCsrMatrix::from_global(&a, grid);
            let dctx = dist_ctx(MachineConfig::edison_cluster(grid.locales(), 24));
            let report = run(&da, &dctx);
            points.push(FigPoint { x: p, report });
        }
        fig.push_series(label, points);
    }
    vec![fig]
}

/// Beyond-the-paper observability figure (`--fig imbalance`): the
/// trace profiler's whole-run load-imbalance factor (max/mean locale
/// work) versus locale count for BFS and PageRank, alongside the mean
/// per-locale busy/comm/idle split the factor summarizes. Each point
/// traces its own run on a dedicated recorder (independent of `--trace`'s
/// process-global one), profiles the span tree, and reports the derived
/// quantities — the chart version of `gblas-cli profile`.
pub fn fig_imbalance(scale: usize) -> Vec<Figure> {
    use gblas_core::trace::profile::profile;
    use gblas_dist::ops::spmspv::CommStrategy;
    use gblas_dist::DistBackend;

    let n = workloads::scaled(100_000, scale, 2_000);
    let a = workloads::er_matrix(n, 8, 176);
    let mut fig = Figure::new(
        "imbalance",
        "Load imbalance (max/mean locale work) vs locales, ER d=8",
        "nodes",
    );
    for algo in ["bfs", "pagerank"] {
        let mut points = Vec::new();
        for &p in NODES {
            let grid = ProcGrid::square_for(p);
            let da = DistCsrMatrix::from_global(&a, grid);
            let mut dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            dctx.enable_tracing();
            // BFS uses the paper's fine-grained Listing-8 gather, PageRank
            // the aggregated bulk path — matching the CLI's strategy split.
            let strategy = if algo == "bfs" { CommStrategy::Fine } else { CommStrategy::Bulk };
            let backend = DistBackend::with_strategy(&dctx, strategy);
            if algo == "bfs" {
                gblas_graph::bfs_on(&backend, &da, 0, SpMSpVOpts::default()).expect("bfs");
            } else {
                gblas_graph::pagerank_on(&backend, &da, gblas_graph::PageRankOptions::default())
                    .expect("pagerank");
            }
            let prof = profile(&dctx.recorder().snapshot());
            let locales = prof.locales.max(1) as f64;
            let mut report = SimReport::default();
            report.push("imbalance", prof.imbalance());
            report.push("busy", prof.locale_totals.iter().map(|u| u.busy).sum::<f64>() / locales);
            report.push("comm", prof.locale_totals.iter().map(|u| u.comm).sum::<f64>() / locales);
            report.push("idle", prof.locale_totals.iter().map(|u| u.idle).sum::<f64>() / locales);
            points.push(FigPoint { x: p, report });
        }
        fig.push_series(algo, points);
    }
    vec![fig]
}

/// Beyond-the-paper ablation (`--fig direction`): direction-optimizing
/// BFS under the adaptive selection policy versus the two static
/// policies, on a skewed RMAT graph where neither static direction wins
/// everywhere — push wastes edge traversals on the hub-dominated middle
/// levels, pull wastes full-vertex scans on the sparse head and tail.
/// `auto` switches per level from the measured frontier density, so its
/// priced total should match or beat the best static policy at every
/// node count (the `selection-smoke` CI job gates on exactly that).
pub fn fig_direction(scale: usize) -> Vec<Figure> {
    use gblas_core::ops::selection::SelectionPolicy;
    use gblas_dist::ops::spmspv::CommStrategy;

    // Floor of 2^16 vertices: below that the full-vertex pull scans are
    // so cheap that static pull wins every level and the sweep shows
    // nothing. RMAT wants a power-of-two count: floor log2 of the target.
    let target = workloads::scaled(1 << 22, scale, 1 << 16);
    let rmat_scale = usize::BITS - 1 - target.leading_zeros();
    let a = gblas_core::gen::rmat(rmat_scale, 16, 177);
    let title = format!(
        "Direction-optimizing BFS: auto vs static push/pull (RMAT scale {rmat_scale} ef=16)"
    );
    let mut fig = Figure::new("direction", &title, "nodes");
    for (label, policy) in [
        ("push", SelectionPolicy::Push),
        ("pull", SelectionPolicy::Pull),
        ("auto", SelectionPolicy::Auto),
    ] {
        let mut points = Vec::new();
        for &p in NODES {
            let grid = ProcGrid::square_for(p);
            let da = DistCsrMatrix::from_global(&a, grid);
            let dctx = dist_ctx(MachineConfig::edison_cluster(grid.locales(), 24));
            let (_, _, report) = gblas_graph::bfs_selected_dist(
                &da,
                0,
                policy,
                CommStrategy::Bulk,
                SpMSpVOpts::default(),
                &dctx,
            )
            .expect("bfs_selected");
            points.push(FigPoint { x: p, report });
        }
        fig.push_series(label, points);
    }
    vec![fig]
}

/// Beyond-the-paper ablation (`--fig overlap`): split-phase pricing
/// versus the default sum pricing, BFS and PageRank over a node sweep.
/// With overlap on, every op phase is charged `max(comm, compute)`
/// instead of `comm + compute` — modeling a runtime that posts its
/// schedule-aggregated transfers asynchronously and computes under them.
/// The interesting shape is the crossover: at small node counts local
/// compute dominates and overlap hides nearly all the communication; as
/// the sweep scales out, per-locale compute shrinks while the gather
/// traffic does not, the phases go communication-bound, and the two
/// pricing curves converge — past the crossover there is nothing left
/// to hide the messages behind. Results and the comm ledger are
/// bit-identical between the two series (the `overlap-smoke` CI job
/// gates on that); only the simulated seconds move.
pub fn fig_overlap(scale: usize) -> Vec<Figure> {
    use gblas_dist::ops::spmspv::CommStrategy;

    let n = workloads::scaled(1 << 21, scale, 4_000);
    let a = gblas_core::gen::erdos_renyi(n, 16, 271);
    let title =
        format!("Compute/communication overlap: sum vs split-phase pricing (ER n={n} d=16)");
    let mut fig = Figure::new("overlap", &title, "nodes");
    for algo in ["bfs", "pagerank"] {
        for overlap in [false, true] {
            let mut points = Vec::new();
            for &p in NODES {
                let grid = ProcGrid::square_for(p);
                let da = DistCsrMatrix::from_global(&a, grid);
                let dctx = dist_ctx(MachineConfig::edison_cluster(grid.locales(), 24));
                dctx.set_overlap(overlap);
                let report = if algo == "bfs" {
                    let (_, report) = gblas_graph::bfs_dist_with(
                        &da,
                        0,
                        CommStrategy::Bulk,
                        SpMSpVOpts::default(),
                        &dctx,
                    )
                    .expect("bfs");
                    report
                } else {
                    let (_, _, report) = gblas_graph::pagerank_dist_on(
                        &da,
                        gblas_graph::PageRankOptions::default(),
                        &dctx,
                    )
                    .expect("pagerank");
                    report
                };
                points.push(FigPoint { x: p, report });
            }
            let pricing = if overlap { "overlap" } else { "sum" };
            fig.push_series(&format!("{algo}+{pricing}"), points);
        }
    }
    vec![fig]
}

/// Node counts for the SpGEMM sweep: all perfect squares so the
/// single-stage baseline (square grids only) can run at every point.
pub const SPGEMM_NODES: &[usize] = &[1, 4, 16, 64, 256];

/// Beyond-the-paper sweep (`--fig spgemm`): hypersparse SpGEMM (`A·A`
/// over plus-times on an RMAT graph) priced at 1–256 simulated nodes,
/// three algorithms per point:
///
/// * **single** — the legacy single-stage SUMMA: whole CSR blocks
///   broadcast per stage, square grids only. Its wire format carries a
///   full `rowptr` per block, which at high node counts dwarfs the
///   nonzeros — the hypersparse failure mode DCSC exists to fix.
/// * **summa2d** — the multi-stage SUMMA: per-stage DCSC/CSR column
///   slices whose wire bytes scale with *occupied* rows and nonzeros,
///   density-adaptive local kernels (heap/hash/dense-SPA).
/// * **summa3d** — the communication-avoiding variant: the same
///   multiply on a `total/L`-locale subgrid with `L = auto_layers`
///   replication layers; stages round-robin across layers and partial
///   results merge with a binomial allreduce. Smaller broadcast groups
///   per stage buy a merge tree at the end — the trade pays off once
///   broadcast fan-out dominates, i.e. at the largest node counts.
///
/// Two RMAT scales so the crossovers are visible on both a graph whose
/// blocks go hypersparse early and one that stays denser longer.
pub fn fig_spgemm(scale: usize) -> Vec<Figure> {
    use gblas_core::algebra::semirings;
    use gblas_dist::ops::mxm::{auto_layers, mxm_dist_masked_with, MxmAlgo};

    let mut figs = Vec::new();
    for base in [1usize << 14, 1 << 16] {
        let target = workloads::scaled(base, scale, 1 << 9);
        let rmat_scale = usize::BITS - 1 - target.leading_zeros();
        let a = gblas_core::gen::rmat(rmat_scale, 8, 331);
        let title = format!(
            "Hypersparse SpGEMM: single-stage vs multi-stage vs 3-D SUMMA \
             (RMAT scale {rmat_scale} ef=8, A·A plus-times)"
        );
        let mut fig = Figure::new(&format!("spgemm-s{rmat_scale}"), &title, "nodes");
        for algo_name in ["single", "summa2d", "summa3d"] {
            let mut points = Vec::new();
            for &nodes in SPGEMM_NODES {
                let (grid, algo) = match algo_name {
                    "single" => (ProcGrid::square_for(nodes), MxmAlgo::Single),
                    "summa2d" => (ProcGrid::square_for(nodes), MxmAlgo::Summa2d),
                    _ => {
                        let layers = auto_layers(nodes);
                        (ProcGrid::square_for(nodes / layers), MxmAlgo::Summa3d { layers })
                    }
                };
                let da = DistCsrMatrix::from_global(&a, grid);
                let dctx = dist_ctx(MachineConfig::edison_cluster(nodes, 24));
                let ring = semirings::plus_times_f64();
                let (_, report) = mxm_dist_masked_with::<f64, f64, f64, _, _, bool>(
                    &da, &da, &ring, None, algo, &dctx,
                )
                .expect("spgemm");
                points.push(FigPoint { x: nodes, report });
            }
            fig.push_series(algo_name, points);
        }
        figs.push(fig);
    }
    figs
}

/// Run one figure by number. Figure 6 is the SPA diagram — nothing to
/// measure — so it returns an empty set.
pub fn run_fig(n: usize, scale: usize) -> Vec<Figure> {
    run_fig_with(n, scale, SpMSpVOpts::default())
}

/// Run one figure by number with explicit SpMSpV options; the SpMSpV
/// figures (7–9) honor the merge strategy, the rest ignore it.
pub fn run_fig_with(n: usize, scale: usize, opts: SpMSpVOpts) -> Vec<Figure> {
    match n {
        1 => fig1(scale),
        2 => fig2(scale),
        3 => fig3(scale),
        4 => fig4(scale),
        5 => fig5(scale),
        6 => Vec::new(),
        7 => fig7_with(scale, opts),
        8 => fig8_with(scale, opts),
        9 => fig9_with(scale, opts),
        10 => fig10(scale),
        _ => panic!("the paper has figures 1-10, got {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Heavily scaled-down shape checks: these run the full pipeline of
    // every figure and assert the paper's qualitative findings.

    const S: usize = 1000; // divide all big sizes by 1000

    #[test]
    fn fig1_shapes() {
        let figs = fig1(200); // nnz = 50K: big enough that spawn overhead is amortized
        let shm = &figs[0];
        // near-perfect scaling at 24-ish threads (we check 16 for the
        // scaled-down size)
        let sp = shm.speedup("Apply1", 16).unwrap();
        assert!(sp > 8.0, "shared-memory Apply speedup {sp}");
        let dist = &figs[1];
        // Apply1 collapses versus Apply2 beyond one node
        let a1 = dist.series[0].points.iter().find(|p| p.x == 8).unwrap().report.total();
        let a2 = dist.series[1].points.iter().find(|p| p.x == 8).unwrap().report.total();
        assert!(a1 > 20.0 * a2, "Apply1 {a1} vs Apply2 {a2}");
    }

    #[test]
    fn fig2_shapes() {
        let figs = fig2(S);
        let shm = &figs[0];
        // Assign2 is roughly an order of magnitude faster than Assign1
        let a1 = shm.series[0].points[0].report.total();
        let a2 = shm.series[1].points[0].report.total();
        assert!(a1 > 4.0 * a2, "Assign1 {a1} vs Assign2 {a2} at 1 thread");
        let dist = &figs[1];
        let d1 = dist.series[0].points.iter().find(|p| p.x == 16).unwrap().report.total();
        let d2 = dist.series[1].points.iter().find(|p| p.x == 16).unwrap().report.total();
        assert!(d1 > 20.0 * d2, "distributed Assign1 {d1} vs Assign2 {d2}");
    }

    #[test]
    fn fig3_large_scales_small_flattens() {
        let figs = fig3(100); // 1M -> 10K, 100M -> 1M
        let fig = &figs[0];
        let sp_large = fig.speedup("nnz=100M", 16).unwrap();
        assert!(sp_large > 3.0, "100M-series speedup {sp_large}");
    }

    #[test]
    fn fig4_large_input_scales() {
        let figs = fig4(100);
        let sp = figs[0].speedup("nnz=100M", 16).unwrap();
        assert!(sp > 5.0, "eWiseMult 100M speedup {sp}");
    }

    #[test]
    fn fig7_sort_dominates() {
        let figs = fig7(50); // n = 20K
        for fig in &figs {
            let p1 = &fig.series[0].points[0].report;
            assert!(
                p1.phase("sort") > p1.phase("spa"),
                "{}: sorting should dominate the SPA step ({} vs {})",
                fig.id,
                p1.phase("sort"),
                p1.phase("spa")
            );
        }
    }

    #[test]
    fn fig8_gather_grows_and_dominates() {
        let figs = fig8(50);
        let fig = &figs[0]; // d=16, f=2%
        let at = |x: usize| fig.series[0].points.iter().find(|p| p.x == x).unwrap().report.clone();
        let r1 = at(1);
        let r16 = at(16);
        assert!(r16.phase("gather") > 5.0 * r1.phase("gather"));
        assert!(r16.phase("gather") > r16.phase("local"));
        // local multiply scales
        assert!(r16.phase("local") < r1.phase("local"));
    }

    #[test]
    fn fig_overlap_saves_where_comm_and_compute_balance() {
        let figs = fig_overlap(500); // n = 4194
        let fig = &figs[0];
        assert_eq!(fig.series.len(), 4);
        for algo in ["bfs", "pagerank"] {
            let series = |name: String| {
                fig.series.iter().find(|s| s.name == name).unwrap_or_else(|| panic!("{name}"))
            };
            let sum = series(format!("{algo}+sum"));
            let ovl = series(format!("{algo}+overlap"));
            let mut best_saving = 0.0f64;
            for (ps, po) in sum.points.iter().zip(&ovl.points) {
                assert_eq!(ps.x, po.x);
                let (ts, to) = (ps.report.total(), po.report.total());
                // split-phase pricing can only hide time, never add it
                assert!(to <= ts + 1e-12, "{algo} p={}: overlap {to} > sum {ts}", ps.x);
                if ts > 0.0 {
                    best_saving = best_saving.max((ts - to) / ts);
                }
            }
            assert!(
                best_saving > 0.05,
                "{algo}: overlap never saved anything (best {best_saving})"
            );
        }
    }

    #[test]
    fn fig_spgemm_multistage_and_3d_win_at_scale() {
        let figs = fig_spgemm(16); // RMAT scales 10 and 12
        assert_eq!(figs.len(), 2);
        let mut multistage_wins = false;
        let mut threed_wins = false;
        for fig in &figs {
            let series = |name: &str| {
                fig.series.iter().find(|s| s.name == name).unwrap_or_else(|| panic!("{name}"))
            };
            let at = |name: &str, x: usize| {
                series(name).points.iter().find(|p| p.x == x).unwrap().report.total()
            };
            // The acceptance shape: multi-stage DCSC SUMMA strictly beats
            // the single-stage CSR broadcast once blocks go hypersparse
            // (>= 64 nodes), and the communication-avoiding 3-D variant
            // beats flat 2-D at the largest machine — each on at least
            // one of the two RMAT scales.
            if at("summa2d", 64) < at("single", 64) && at("summa2d", 256) < at("single", 256) {
                multistage_wins = true;
            }
            if at("summa3d", 256) < at("summa2d", 256) {
                threed_wins = true;
            }
            // Sanity: every series priced real work at every point.
            for s in &fig.series {
                assert_eq!(s.points.len(), SPGEMM_NODES.len());
                for p in &s.points {
                    assert!(p.report.total() > 0.0, "{}: empty report at {}", s.name, p.x);
                }
            }
        }
        assert!(multistage_wins, "multi-stage never beat single-stage at >=64 nodes");
        assert!(threed_wins, "3-D never beat 2-D at 256 nodes");
    }

    #[test]
    fn fig10_colocation_degrades() {
        let figs = fig10(1);
        let fig = &figs[0];
        for s in &fig.series {
            let first = s.points.first().unwrap().report.total();
            let last = s.points.last().unwrap().report.total();
            assert!(last > 2.0 * first, "{}: {first} -> {last}", s.name);
        }
    }
}
