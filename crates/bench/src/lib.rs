//! # gblas-bench — regenerating every figure of the paper
//!
//! The paper's evaluation is Figures 1–10 (Figure 6 is a diagram). For
//! each figure this crate provides a generator producing the same series
//! the paper plots — thread/node sweeps with per-component breakdowns —
//! over the same workloads (Erdős–Rényi matrices and random vectors at
//! the paper's sizes), priced by the calibrated Edison model in
//! `gblas-sim`.
//!
//! * `cargo run -p gblas-bench --release --bin figures -- --fig all`
//!   regenerates everything, printing paper-style rows and writing
//!   `results/figNN.csv`.
//! * `cargo bench` runs criterion microbenches of the *real* kernel
//!   execution underlying each figure (regression tracking for the
//!   library itself), plus the ablations the paper suggests (radix vs
//!   merge sort, atomic vs prefix compaction, fine-grained vs bulk
//!   communication).
//!
//! `--scale S` divides the large input sizes by `S` for quick runs on
//! small machines; the simulated-time *shapes* are scale-free because the
//! cost model is linear in the counters.

pub mod figs;
pub mod output;
pub mod serve;
pub mod workloads;

pub use output::{FigPoint, Figure, Series};

/// Thread counts of the shared-memory sweeps (the paper's x-axis).
pub const THREADS: &[usize] = &[1, 2, 4, 8, 16, 32];
/// Node counts of the distributed sweeps.
pub const NODES: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
