//! Figure data containers, table printing, CSV writing.

use gblas_sim::SimReport;
use std::io::Write;
use std::path::Path;

/// One sweep point: x (threads or nodes) and the simulated phase times.
#[derive(Debug, Clone)]
pub struct FigPoint {
    /// Thread or node count.
    pub x: usize,
    /// Simulated phase breakdown.
    pub report: SimReport,
}

/// One plotted line (e.g. "Apply1", "nnz=100M", "Gather Input").
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Sweep points in x order.
    pub points: Vec<FigPoint>,
}

/// A full figure: everything needed to print the paper's plot as a table.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. "fig01-shm".
    pub id: String,
    /// Human title quoting the paper's caption.
    pub title: String,
    /// Meaning of x ("threads" or "nodes").
    pub xlabel: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Assemble a figure.
    pub fn new(id: &str, title: &str, xlabel: &str) -> Self {
        Figure { id: id.into(), title: title.into(), xlabel: xlabel.into(), series: Vec::new() }
    }

    /// Append a series.
    pub fn push_series(&mut self, name: &str, points: Vec<FigPoint>) {
        self.series.push(Series { name: name.into(), points });
    }

    /// All phase names appearing anywhere in the figure, in first-seen
    /// order.
    fn phase_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for s in &self.series {
            for p in &s.points {
                for n in p.report.phase_names() {
                    if !names.iter().any(|m| m == n) {
                        names.push(n.to_string());
                    }
                }
            }
        }
        names
    }

    /// Print a paper-style table to stdout.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        let phases = self.phase_names();
        let multi = phases.len() > 1;
        for s in &self.series {
            println!("-- {}", s.name);
            print!("{:>8}  {:>12}", self.xlabel, "total(s)");
            if multi {
                for ph in &phases {
                    print!("  {ph:>12}");
                }
            }
            println!();
            for p in &s.points {
                print!("{:>8}  {:>12.6}", p.x, p.report.total());
                if multi {
                    for ph in &phases {
                        print!("  {:>12.6}", p.report.phase(ph));
                    }
                }
                println!();
            }
        }
    }

    /// Write `dir/<id>.csv` with columns
    /// `figure,series,x,phase,seconds` (one row per phase plus a `total`
    /// row per point).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "figure,series,x,phase,seconds")?;
        for s in &self.series {
            for p in &s.points {
                for ph in p.report.iter() {
                    writeln!(f, "{},{},{},{},{}", self.id, s.name, p.x, ph.name, ph.seconds)?;
                }
                writeln!(f, "{},{},{},total,{}", self.id, s.name, p.x, p.report.total())?;
            }
        }
        Ok(path)
    }

    /// Speedup of a series between its first and the point at `x`
    /// (convenience for EXPERIMENTS.md summaries and tests).
    pub fn speedup(&self, series: &str, x: usize) -> Option<f64> {
        let s = self.series.iter().find(|s| s.name == series)?;
        let first = s.points.first()?;
        let at = s.points.iter().find(|p| p.x == x)?;
        Some(first.report.total() / at.report.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ph: &[(&str, f64)]) -> SimReport {
        let mut r = SimReport::default();
        for (n, s) in ph {
            r.push(n, *s);
        }
        r
    }

    #[test]
    fn csv_round_trip() {
        let mut fig = Figure::new("figtest", "t", "threads");
        fig.push_series(
            "A",
            vec![
                FigPoint { x: 1, report: report(&[("spa", 1.0), ("sort", 2.0)]) },
                FigPoint { x: 2, report: report(&[("spa", 0.5), ("sort", 1.0)]) },
            ],
        );
        let dir = std::env::temp_dir().join("gblas_bench_test");
        let path = fig.write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("figure,series,x,phase,seconds"));
        assert!(text.contains("figtest,A,1,spa,1"));
        assert!(text.contains("figtest,A,2,total,1.5"));
    }

    #[test]
    fn speedup_helper() {
        let mut fig = Figure::new("f", "t", "threads");
        fig.push_series(
            "A",
            vec![
                FigPoint { x: 1, report: report(&[("p", 8.0)]) },
                FigPoint { x: 4, report: report(&[("p", 2.0)]) },
            ],
        );
        assert_eq!(fig.speedup("A", 4), Some(4.0));
        assert_eq!(fig.speedup("B", 4), None);
    }
}
