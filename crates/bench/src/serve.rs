//! Query-serving throughput harness: batched multi-source analytics
//! versus a one-query-at-a-time loop.
//!
//! The batched kernels (`gblas_graph::multi`, `gblas_dist::ops::expand`)
//! exist to serve *query streams*: BFS/SSSP/PPR requests arriving over
//! time, where answering k of them per masked-SpGEMM sweep amortizes the
//! per-superstep message latency k-fold. This module measures that claim
//! end to end:
//!
//! * a **deterministic request generator** ([`generate_requests`]) with
//!   uniform / Poisson / bursty arrival processes, seeded so every run
//!   replays the identical stream;
//! * an **admission policy** ([`ServePolicy`]): the server admits up to
//!   `max_batch` requests per dispatch but never holds the oldest one
//!   longer than `max_wait` — the batch-window vs latency-SLO knob;
//! * a **FIFO single-server simulation** ([`simulate_serving`]) that
//!   charges each batch its measured service time — the *simulated*
//!   clock of the distributed backend, or the wall clock of the shared
//!   one — and reports QPS plus p50/p99 tail latency ([`ServeReport`]);
//! * an **equivalence check** ([`verify_batched_equivalence`]): batched
//!   answers must be bit-identical per source to the k single-source
//!   runs they replace, on both backends.
//!
//! `gblas-cli serve-bench` drives this interactively; `--fig serving`
//! sweeps throughput against batch size.

use crate::output::{FigPoint, Figure};
use crate::workloads;
use gblas_core::container::CsrMatrix;
use gblas_core::error::{GblasError, Result};
use gblas_core::ops::spmspv::SpMSpVOpts;
use gblas_core::par::ExecCtx;
use gblas_dist::ops::spmspv::CommStrategy;
use gblas_dist::{DistCsrMatrix, DistCtx, ProcGrid};
use gblas_graph::{bfs, bfs_dist_with, bfs_multi, bfs_multi_dist};
use gblas_sim::{MachineConfig, SimReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Shape of the inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalDist {
    /// Evenly spaced arrivals at exactly `rate` per second.
    Uniform,
    /// Exponential inter-arrival times with mean `1/rate` (a Poisson
    /// process — the standard open-loop serving model).
    Poisson,
    /// Groups of eight arrive back to back, then a long gap; the mean
    /// rate still equals `rate`. Stresses the admission policy.
    Bursty,
}

/// A parsed `--arrival` specification: distribution plus mean rate.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalSpec {
    /// Inter-arrival shape.
    pub dist: ArrivalDist,
    /// Mean arrival rate in requests per second.
    pub rate: f64,
}

impl ArrivalSpec {
    /// Parse `"uniform:RATE"`, `"poisson:RATE"` or `"bursty:RATE"`.
    pub fn parse(s: &str) -> Option<ArrivalSpec> {
        let (name, rate) = s.split_once(':')?;
        let rate: f64 = rate.parse().ok()?;
        if rate.is_nan() || rate <= 0.0 {
            return None;
        }
        let dist = match name {
            "uniform" => ArrivalDist::Uniform,
            "poisson" => ArrivalDist::Poisson,
            "bursty" => ArrivalDist::Bursty,
            _ => return None,
        };
        Some(ArrivalSpec { dist, rate })
    }
}

/// One query: a BFS source arriving at a point in time.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Sequence number (arrival order).
    pub id: usize,
    /// Arrival time in seconds from stream start.
    pub arrival: f64,
    /// Query source vertex.
    pub source: usize,
}

/// Generate `count` requests over `n_vertices` with the given arrival
/// process, fully determined by `seed`.
pub fn generate_requests(
    count: usize,
    n_vertices: usize,
    spec: ArrivalSpec,
    seed: u64,
) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(count);
    for id in 0..count {
        let gap = match spec.dist {
            ArrivalDist::Uniform => 1.0 / spec.rate,
            ArrivalDist::Poisson => {
                let u: f64 = rng.gen();
                -(1.0 - u).ln() / spec.rate
            }
            // eight arrive together, then one long gap preserving the rate
            ArrivalDist::Bursty => {
                if id % 8 == 0 {
                    8.0 / spec.rate
                } else {
                    0.0
                }
            }
        };
        t += gap;
        let source = if n_vertices == 0 { 0 } else { rng.gen_range(0..n_vertices) };
        out.push(Request { id, arrival: t, source });
    }
    out
}

/// Admission policy: dispatch a batch when it holds `max_batch` requests
/// or when the oldest admitted request has waited `max_wait` seconds,
/// whichever comes first.
#[derive(Debug, Clone, Copy)]
pub struct ServePolicy {
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Maximum time the oldest request may wait for batch-mates.
    pub max_wait: f64,
}

impl ServePolicy {
    /// Batch-window policy: fill up to `max_batch`, wait at most `window`.
    pub fn batch_window(max_batch: usize, window: f64) -> ServePolicy {
        ServePolicy { max_batch: max_batch.max(1), max_wait: window.max(0.0) }
    }

    /// Latency-SLO policy: batch size is unbounded; the queueing-delay
    /// budget `slo` alone decides when to dispatch.
    pub fn latency_slo(slo: f64) -> ServePolicy {
        ServePolicy { max_batch: usize::MAX, max_wait: slo.max(0.0) }
    }

    /// The k-loop baseline: every request dispatches alone, immediately.
    pub fn immediate() -> ServePolicy {
        ServePolicy { max_batch: 1, max_wait: 0.0 }
    }
}

/// Result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Mode label ("batched" / "loop").
    pub label: String,
    /// Requests served.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Completion time of the last batch (seconds).
    pub makespan: f64,
    /// Sustained throughput: requests / makespan.
    pub qps: f64,
    /// Mean request latency (arrival to batch completion), seconds.
    pub mean_latency: f64,
    /// Median request latency, seconds.
    pub p50: f64,
    /// 99th-percentile request latency, seconds.
    pub p99: f64,
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>7}: {} requests in {} batches | QPS {:>10.1} | latency mean {:.3}ms p50 {:.3}ms \
             p99 {:.3}ms | makespan {:.3}ms",
            self.label,
            self.requests,
            self.batches,
            self.qps,
            self.mean_latency * 1e3,
            self.p50 * 1e3,
            self.p99 * 1e3,
            self.makespan * 1e3,
        )
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// FIFO single-server queueing simulation. `service` maps a batch of
/// sources to its service time in seconds (simulated or wall clock);
/// requests must be in arrival order. End of stream flushes a partial
/// batch immediately (the server never waits for requests that will
/// never come).
pub fn simulate_serving(
    label: &str,
    requests: &[Request],
    policy: ServePolicy,
    service: &mut dyn FnMut(&[usize]) -> Result<f64>,
) -> Result<ServeReport> {
    let mut clock = 0.0f64;
    let mut latencies = Vec::with_capacity(requests.len());
    let mut batches = 0usize;
    let mut i = 0usize;
    while i < requests.len() {
        // The batch opens when its oldest request reaches the server.
        let open = requests[i].arrival.max(clock);
        let deadline = open + policy.max_wait;
        let mut j = i + 1;
        while j < requests.len() && j - i < policy.max_batch && requests[j].arrival <= deadline {
            j += 1;
        }
        let full = j - i >= policy.max_batch;
        let dispatch =
            if full || j == requests.len() { open.max(requests[j - 1].arrival) } else { deadline };
        let sources: Vec<usize> = requests[i..j].iter().map(|r| r.source).collect();
        let service_time = service(&sources)?;
        let done = dispatch + service_time;
        for r in &requests[i..j] {
            latencies.push(done - r.arrival);
        }
        clock = done;
        batches += 1;
        i = j;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let makespan = clock;
    let n = requests.len();
    Ok(ServeReport {
        label: label.to_string(),
        requests: n,
        batches,
        makespan,
        qps: if makespan > 0.0 { n as f64 / makespan } else { 0.0 },
        mean_latency: if n > 0 { latencies.iter().sum::<f64>() / n as f64 } else { 0.0 },
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    })
}

/// Distributed serving benchmark on the simulated cluster: the batched
/// server (one `bfs_multi_dist` per batch) versus the k-loop baseline
/// (one bulk-strategy `bfs_dist` per request). Service times are the
/// backends' simulated clocks. Returns `(batched, loop)` reports.
pub fn serve_bench_dist(
    a: &CsrMatrix<f64>,
    locales: usize,
    requests: &[Request],
    policy: ServePolicy,
) -> Result<(ServeReport, ServeReport)> {
    let grid = ProcGrid::square_for(locales.max(1));
    let da = DistCsrMatrix::from_global(a, grid);
    let machine = || MachineConfig::edison_cluster(grid.locales(), 24);
    let batched = simulate_serving("batched", requests, policy, &mut |sources| {
        let dctx = DistCtx::new(machine());
        let (_, report) = bfs_multi_dist(&da, sources, &dctx)?;
        Ok(report.total())
    })?;
    let looped = simulate_serving("loop", requests, ServePolicy::immediate(), &mut |sources| {
        let mut total = 0.0;
        for &s in sources {
            let dctx = DistCtx::new(machine());
            let (_, report) =
                bfs_dist_with(&da, s, CommStrategy::Bulk, SpMSpVOpts::default(), &dctx)?;
            total += report.total();
        }
        Ok(total)
    })?;
    Ok((batched, looped))
}

/// Shared-memory serving benchmark: batched `bfs_multi` versus a loop of
/// `bfs`, timed on the wall clock. Returns `(batched, loop)` reports.
pub fn serve_bench_shared(
    a: &CsrMatrix<f64>,
    threads: usize,
    requests: &[Request],
    policy: ServePolicy,
) -> Result<(ServeReport, ServeReport)> {
    let ctx = ExecCtx::with_threads(threads.max(1));
    let batched = simulate_serving("batched", requests, policy, &mut |sources| {
        let t0 = std::time::Instant::now();
        bfs_multi(a, sources, &ctx)?;
        Ok(t0.elapsed().as_secs_f64())
    })?;
    let looped = simulate_serving("loop", requests, ServePolicy::immediate(), &mut |sources| {
        let t0 = std::time::Instant::now();
        for &s in sources {
            bfs(a, s, &ctx)?;
        }
        Ok(t0.elapsed().as_secs_f64())
    })?;
    Ok((batched, looped))
}

/// Check the serving contract: the batched answers must equal the
/// single-source answers for every request, on both backends. Errors on
/// the first mismatching slot.
pub fn verify_batched_equivalence(
    a: &CsrMatrix<f64>,
    sources: &[usize],
    locales: usize,
) -> Result<()> {
    let ctx = ExecCtx::serial();
    let shared_batch = bfs_multi(a, sources, &ctx)?;
    for (s, &src) in sources.iter().enumerate() {
        let single = bfs(a, src, &ctx)?;
        if shared_batch[s] != single {
            return Err(GblasError::InvalidArgument(format!(
                "shared batched BFS diverges from single-source at slot {s} (source {src})"
            )));
        }
    }
    let grid = ProcGrid::square_for(locales.max(1));
    let da = DistCsrMatrix::from_global(a, grid);
    let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
    let (dist_batch, _) = bfs_multi_dist(&da, sources, &dctx)?;
    for (s, &src) in sources.iter().enumerate() {
        if dist_batch[s] != shared_batch[s] {
            return Err(GblasError::InvalidArgument(format!(
                "distributed batched BFS diverges from shared at slot {s} (source {src})"
            )));
        }
        let sctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
        let (single, _) =
            bfs_dist_with(&da, src, CommStrategy::Bulk, SpMSpVOpts::default(), &sctx)?;
        if dist_batch[s] != single {
            return Err(GblasError::InvalidArgument(format!(
                "distributed batched BFS diverges from single-source at slot {s} (source {src})"
            )));
        }
    }
    Ok(())
}

/// `--fig serving`: simulated throughput (QPS) and tail latency versus
/// batch size on an RMAT graph, batched server against the k-loop
/// baseline. The request stream saturates the server (arrivals far
/// faster than service), so every batch fills to its `k` and the figure
/// isolates the batching win: one fused message per locale pair per
/// level instead of k request/reply exchanges.
pub fn fig_serving(scale: usize) -> Vec<Figure> {
    let target = workloads::scaled(1 << 14, scale, 256);
    let exp = usize::BITS - 1 - target.leading_zeros();
    let a = gblas_core::gen::rmat(exp, 8, workloads::SEED + 99);
    let locales = 16usize;
    let n_requests = 64usize;
    let spec = ArrivalSpec { dist: ArrivalDist::Poisson, rate: 1e6 };
    let requests = generate_requests(n_requests, a.nrows(), spec, workloads::SEED + 100);
    let mut fig = Figure::new(
        "serving-throughput",
        &format!("Query serving: QPS vs batch size (RMAT scale {exp}, {locales} locales)"),
        "batch size",
    );
    let mut batched_points = Vec::new();
    let mut loop_points = Vec::new();
    let mut loop_report: Option<ServeReport> = None;
    for &k in &[1usize, 2, 4, 8, 16, 32] {
        let policy = ServePolicy::batch_window(k, 1.0);
        let (batched, looped) = match &loop_report {
            // the k-loop baseline ignores k — run it once and reuse
            Some(l) => {
                let b = serve_bench_dist(&a, locales, &requests, policy)
                    .map(|(b, _)| b)
                    .expect("serving run");
                (b, l.clone())
            }
            None => {
                let (b, l) = serve_bench_dist(&a, locales, &requests, policy).expect("serving run");
                loop_report = Some(l.clone());
                (b, l)
            }
        };
        println!(
            "serving k={k:>2}: batched QPS {:>10.1} vs loop QPS {:>10.1} ({:.2}x)",
            batched.qps,
            looped.qps,
            batched.qps / looped.qps.max(f64::MIN_POSITIVE)
        );
        batched_points.push(FigPoint { x: k, report: serve_point(&batched) });
        loop_points.push(FigPoint { x: k, report: serve_point(&looped) });
    }
    fig.push_series("batched", batched_points);
    fig.push_series("k-loop", loop_points);
    vec![fig]
}

/// Pack a serving report into the CSV/print row shape (`qps` is a rate,
/// the latency rows are seconds).
fn serve_point(r: &ServeReport) -> SimReport {
    let mut report = SimReport::default();
    report.push("qps", r.qps);
    report.push("p50", r.p50);
    report.push("p99", r.p99);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_specs_parse() {
        assert!(matches!(
            ArrivalSpec::parse("poisson:5000"),
            Some(ArrivalSpec { dist: ArrivalDist::Poisson, .. })
        ));
        assert!(matches!(
            ArrivalSpec::parse("uniform:10"),
            Some(ArrivalSpec { dist: ArrivalDist::Uniform, .. })
        ));
        assert!(matches!(
            ArrivalSpec::parse("bursty:100"),
            Some(ArrivalSpec { dist: ArrivalDist::Bursty, .. })
        ));
        assert!(ArrivalSpec::parse("poisson").is_none());
        assert!(ArrivalSpec::parse("poisson:-3").is_none());
        assert!(ArrivalSpec::parse("weird:5").is_none());
    }

    #[test]
    fn request_streams_are_deterministic_and_ordered() {
        let spec = ArrivalSpec { dist: ArrivalDist::Poisson, rate: 1000.0 };
        let a = generate_requests(50, 100, spec, 7);
        let b = generate_requests(50, 100, spec, 7);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.source, y.source);
            assert!((x.arrival - y.arrival).abs() < 1e-12);
        }
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.source < 100));
    }

    #[test]
    fn admission_policy_batches_and_flushes() {
        // 5 requests all arriving at once, batch cap 2: batches 2+2+1
        let reqs: Vec<Request> =
            (0..5).map(|id| Request { id, arrival: 0.0, source: id }).collect();
        let mut sizes = Vec::new();
        let report =
            simulate_serving("test", &reqs, ServePolicy::batch_window(2, 1.0), &mut |sources| {
                sizes.push(sources.len());
                Ok(0.001)
            })
            .unwrap();
        assert_eq!(sizes, vec![2, 2, 1]);
        assert_eq!(report.batches, 3);
        assert_eq!(report.requests, 5);
        assert!(report.p99 >= report.p50);
    }

    #[test]
    fn latency_slo_policy_waits_at_most_the_budget() {
        // Two requests 10ms apart with a 1ms SLO: they cannot share a batch.
        let reqs = vec![
            Request { id: 0, arrival: 0.0, source: 0 },
            Request { id: 1, arrival: 0.010, source: 1 },
        ];
        let report =
            simulate_serving("test", &reqs, ServePolicy::latency_slo(0.001), &mut |_| Ok(0.0001))
                .unwrap();
        assert_eq!(report.batches, 2);
    }

    #[test]
    fn batched_beats_loop_on_simulated_qps_at_k8() {
        // The acceptance criterion: on an rmat-style input, batched
        // serving wins on simulated QPS at k >= 8.
        let a = gblas_core::gen::rmat(9, 8, workloads::SEED + 99);
        let spec = ArrivalSpec { dist: ArrivalDist::Poisson, rate: 1e6 };
        let requests = generate_requests(16, a.nrows(), spec, workloads::SEED + 100);
        let (batched, looped) =
            serve_bench_dist(&a, 16, &requests, ServePolicy::batch_window(8, 1.0)).unwrap();
        assert!(
            batched.qps > looped.qps,
            "batched {:.1} QPS must beat loop {:.1} QPS at k=8",
            batched.qps,
            looped.qps
        );
    }

    #[test]
    fn equivalence_check_passes_on_real_input() {
        let a = gblas_core::gen::rmat(8, 8, 5);
        verify_batched_equivalence(&a, &[0, 3, 3, 200], 4).unwrap();
    }

    #[test]
    fn shared_serving_runs_and_reports() {
        let a = gblas_core::gen::erdos_renyi(300, 5, 9);
        let spec = ArrivalSpec { dist: ArrivalDist::Bursty, rate: 1e5 };
        let requests = generate_requests(12, 300, spec, 3);
        let (batched, looped) =
            serve_bench_shared(&a, 2, &requests, ServePolicy::batch_window(4, 1.0)).unwrap();
        assert_eq!(batched.requests, 12);
        assert_eq!(looped.requests, 12);
        assert!(batched.batches <= looped.batches);
        assert!(batched.makespan > 0.0);
    }
}
