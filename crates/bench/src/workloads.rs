//! Workload builders with the paper's parameters.
//!
//! §II-A: Erdős–Rényi matrices `G(n, d/n)` (`d` nonzeros per row in
//! expectation) and random sparse vectors of density `f = nnz/capacity`.
//! All sizes accept a divisor (`scale`) so the sweeps run on small
//! machines; seeds are fixed so every run is reproducible.

use gblas_core::container::{DenseVec, SparseVec};
use gblas_core::gen;

/// Base seed; figure-specific offsets keep workloads distinct.
pub const SEED: u64 = 20170529; // IPDPSW 2017

/// Divide `base` by `scale`, keeping at least `min`.
pub fn scaled(base: usize, scale: usize, min: usize) -> usize {
    (base / scale.max(1)).max(min)
}

/// A random sparse vector with `nnz` nonzeros (capacity `2·nnz`, matching
/// the paper's unspecified-but-sparse setting).
pub fn vector(nnz: usize, seed_offset: u64) -> SparseVec<f64> {
    gen::random_sparse_vec(nnz * 2, nnz, SEED + seed_offset)
}

/// The paper's eWiseMult pair: a sparse vector plus a boolean dense vector
/// that keeps about half the entries (§III-C).
pub fn ewise_pair(nnz: usize, seed_offset: u64) -> (SparseVec<f64>, DenseVec<bool>) {
    let x = vector(nnz, seed_offset);
    let y = gen::random_dense_bool(x.capacity(), 0.5, SEED + seed_offset + 1);
    (x, y)
}

/// An Erdős–Rényi matrix with `n` rows/columns and `d` nonzeros per row.
pub fn er_matrix(n: usize, d: usize, seed_offset: u64) -> gblas_core::container::CsrMatrix<f64> {
    gen::erdos_renyi(n, d, SEED + seed_offset)
}

/// The SpMSpV input vector: `f`-dense over `n` rows (`nnz = n·f`).
pub fn spmspv_vector(n: usize, f_percent: usize, seed_offset: u64) -> SparseVec<f64> {
    let nnz = (n * f_percent / 100).max(1);
    gen::random_sparse_vec(n, nnz, SEED + 1000 + seed_offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_floors_at_min() {
        assert_eq!(scaled(100, 1, 1), 100);
        assert_eq!(scaled(100, 8, 1), 12);
        assert_eq!(scaled(100, 1000, 5), 5);
    }

    #[test]
    fn vector_density_is_half() {
        let v = vector(1000, 0);
        assert_eq!(v.nnz(), 1000);
        assert_eq!(v.capacity(), 2000);
    }

    #[test]
    fn ewise_pair_aligned() {
        let (x, y) = ewise_pair(500, 3);
        assert_eq!(x.capacity(), y.len());
    }

    #[test]
    fn spmspv_vector_density() {
        let v = spmspv_vector(10_000, 2, 0);
        assert_eq!(v.nnz(), 200);
        assert_eq!(v.capacity(), 10_000);
        let v20 = spmspv_vector(10_000, 20, 0);
        assert_eq!(v20.nnz(), 2_000);
    }
}
