//! `gblas-cli` — graph analytics from the command line.
//!
//! ```text
//! gblas-cli <command> [--input FILE.mtx | --gen er:N:D | --gen rmat:SCALE:EF]
//!           [--source V] [--threads T] [--symmetrize] [--seed S]
//!           [--simulate NODES] [--trace FILE] [--overlap] [--mxm-grid 2d|3d]
//!           [--spmspv-merge sort|bucket|auto] [--selection auto|push|pull]
//!
//! commands:
//!   info        matrix shape, nnz, degree statistics
//!   bfs         breadth-first search from --source (default 0)
//!   sssp        single-source shortest paths from --source
//!   pagerank    PageRank (top 10 printed)
//!   cc          connected components (requires symmetric input; use --symmetrize)
//!   triangles   triangle count (requires symmetric input; use --symmetrize)
//!   kcore       k-core decomposition (requires symmetric input; use --symmetrize)
//!   mis         maximal independent set, seeded by --seed (requires symmetric input)
//!   bc          betweenness centrality from --source (or all if --source omitted and n <= 2000)
//!   mcl         Markov clustering via repeated SpGEMM expansion
//!               (requires symmetric input; use --symmetrize)
//!   serve-bench query-serving throughput: batched multi-source BFS vs a
//!               one-query-at-a-time loop over a generated request stream
//!               (--requests N --batch K --window SECONDS
//!               --arrival uniform|poisson|bursty:RATE --verify); simulated
//!               cluster clock with --simulate NODES, wall clock otherwise
//!   trace       summarize a saved JSONL trace (--input trace.jsonl)
//!   profile     analyze a saved JSONL trace (--input trace.jsonl
//!               [--format text|markdown|json]): per-locale busy/comm/idle,
//!               load imbalance, critical path with slack, locale-to-locale
//!               communication matrix, message-size percentiles
//! ```
//!
//! `--spmspv-merge` selects how the frontier algorithms merge SpMSpV
//! results each round: `sort` (the paper's merge/radix sort), `bucket`
//! (the sort-free bucketed merge), or `auto` (pick by frontier size; the
//! `GBLAS_MERGE` environment variable overrides all of these). All give
//! identical output.
//!
//! `--selection` routes `bfs`, `cc` and `sssp` through the
//! direction-optimizing drivers: `auto` switches push/pull per iteration
//! from the measured frontier density, `push`/`pull` pin one direction.
//! Results are bit-identical to the static drivers; each decision shows
//! up in traces as a `select` span with `dir`/`fmt`/`merge` attributes.
//!
//! `--overlap` switches the simulated cluster's pricing to split-phase
//! (compute/communication overlap): every op phase is charged
//! `max(comm, compute)` instead of `comm + compute`, modeling a runtime
//! that posts its aggregated transfers asynchronously and overlaps them
//! with local work. Results and the comm ledger are identical either
//! way — only the simulated seconds move; traces carry the per-op
//! `overlap_saved_s` attribute. (`GBLAS_OVERLAP=1` is the env spelling;
//! `GBLAS_SCHED=off` disables the inspector–executor schedule cache for
//! ablation.)
//!
//! Every algorithm is a single generic function over the backend trait,
//! so with `--simulate NODES` **every** analytic (bfs, sssp, pagerank,
//! cc, triangles, kcore, mis, bc, mcl) also runs — same algorithm text —
//! on the simulated distributed machine and prints where the time would
//! go on the paper's Cray XC30. The matrix-heavy analytics (`triangles`,
//! `mcl`) run the multi-stage DCSC SUMMA, which accepts any rectangular
//! locale grid, so no node count is rounded away; `--mxm-grid 3d` runs
//! their SpGEMMs on the communication-avoiding 3-D grid instead (the
//! node count splits into `auto_layers` replication layers over a
//! smaller base grid). Adding `--trace
//! FILE` records every simulated operation (spans per op/phase/locale)
//! and writes a Chrome trace-event file (load it in `chrome://tracing` /
//! Perfetto), or a JSONL stream if `FILE` ends in `.jsonl`; cumulative
//! metrics are printed either way.

use gblas_core::backend::{GblasBackend, SharedBackend};
use gblas_core::container::CsrMatrix;
use gblas_core::error::{GblasError, Result};
use gblas_core::ops::selection::{Direction, SelectionPolicy};
use gblas_core::ops::spmspv::{MergeStrategy, SpMSpVOpts};
use gblas_core::par::ExecCtx;
use gblas_core::trace::{profile, sink};
use gblas_core::{gen, io};
use gblas_dist::ops::spmspv::CommStrategy;
use gblas_dist::{DistBackend, DistCsrMatrix, DistCtx, MxmAlgo, ProcGrid};
use gblas_sim::MachineConfig;

const USAGE_COMMANDS: &str =
    "info|bfs|sssp|pagerank|cc|triangles|kcore|mis|bc|mcl|serve-bench|trace|profile";

struct Args {
    command: String,
    input: Option<String>,
    generate: Option<String>,
    source: usize,
    threads: usize,
    symmetrize: bool,
    seed: u64,
    simulate: Option<usize>,
    trace_out: Option<String>,
    merge: MergeStrategy,
    selection: Option<SelectionPolicy>,
    format: String,
    requests: usize,
    batch: usize,
    window: f64,
    arrival: String,
    verify: bool,
    overlap: bool,
    mxm_grid: String,
}

fn parse_args() -> std::result::Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command (try --help)")?;
    let mut args = Args {
        command,
        input: None,
        generate: None,
        source: 0,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        symmetrize: false,
        seed: 1,
        simulate: None,
        trace_out: None,
        merge: MergeStrategy::default(),
        selection: None,
        format: "text".to_string(),
        requests: 64,
        batch: 8,
        window: 0.005,
        arrival: "poisson:2000".to_string(),
        verify: false,
        overlap: false,
        mxm_grid: "2d".to_string(),
    };
    let mut rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let need = |i: usize, rest: &mut Vec<String>| -> std::result::Result<String, String> {
            rest.get(i + 1).cloned().ok_or_else(|| format!("{} needs a value", rest[i]))
        };
        match rest[i].as_str() {
            "--input" => {
                args.input = Some(need(i, &mut rest)?);
                i += 2;
            }
            "--gen" => {
                args.generate = Some(need(i, &mut rest)?);
                i += 2;
            }
            "--source" => {
                args.source = need(i, &mut rest)?.parse().map_err(|_| "bad --source")?;
                i += 2;
            }
            "--threads" => {
                args.threads = need(i, &mut rest)?.parse().map_err(|_| "bad --threads")?;
                i += 2;
            }
            "--seed" => {
                args.seed = need(i, &mut rest)?.parse().map_err(|_| "bad --seed")?;
                i += 2;
            }
            "--simulate" => {
                args.simulate = Some(need(i, &mut rest)?.parse().map_err(|_| "bad --simulate")?);
                i += 2;
            }
            "--trace" => {
                args.trace_out = Some(need(i, &mut rest)?);
                i += 2;
            }
            "--format" => {
                let v = need(i, &mut rest)?;
                if !matches!(v.as_str(), "text" | "markdown" | "json") {
                    return Err(format!("bad --format '{v}' (text|markdown|json)"));
                }
                args.format = v;
                i += 2;
            }
            "--spmspv-merge" => {
                let v = need(i, &mut rest)?;
                args.merge = MergeStrategy::parse(&v)
                    .ok_or_else(|| format!("bad --spmspv-merge '{v}' (sort|bucket|auto)"))?;
                i += 2;
            }
            "--selection" => {
                let v = need(i, &mut rest)?;
                args.selection = Some(
                    SelectionPolicy::parse(&v)
                        .ok_or_else(|| format!("bad --selection '{v}' (auto|push|pull)"))?,
                );
                i += 2;
            }
            "--requests" => {
                args.requests = need(i, &mut rest)?.parse().map_err(|_| "bad --requests")?;
                i += 2;
            }
            "--batch" => {
                args.batch = need(i, &mut rest)?.parse().map_err(|_| "bad --batch")?;
                i += 2;
            }
            "--window" => {
                args.window = need(i, &mut rest)?.parse().map_err(|_| "bad --window")?;
                i += 2;
            }
            "--arrival" => {
                args.arrival = need(i, &mut rest)?;
                i += 2;
            }
            "--verify" => {
                args.verify = true;
                i += 1;
            }
            "--overlap" => {
                args.overlap = true;
                i += 1;
            }
            "--mxm-grid" => {
                let v = need(i, &mut rest)?;
                if !matches!(v.as_str(), "2d" | "3d") {
                    return Err(format!("bad --mxm-grid '{v}' (2d|3d)"));
                }
                args.mxm_grid = v;
                i += 2;
            }
            "--symmetrize" => {
                args.symmetrize = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn load(args: &Args) -> Result<CsrMatrix<f64>> {
    let mut a = if let Some(path) = &args.input {
        io::read_matrix_market_file(std::path::Path::new(path))?
    } else if let Some(spec) = &args.generate {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["er", n, d] => {
                let n: usize = n.parse().map_err(|_| bad_spec(spec))?;
                let d: usize = d.parse().map_err(|_| bad_spec(spec))?;
                gen::erdos_renyi(n, d, args.seed)
            }
            ["rmat", scale, ef] => {
                let scale: u32 = scale.parse().map_err(|_| bad_spec(spec))?;
                let ef: usize = ef.parse().map_err(|_| bad_spec(spec))?;
                gen::rmat(scale, ef, args.seed)
            }
            _ => return Err(bad_spec(spec)),
        }
    } else {
        return Err(GblasError::InvalidArgument(
            "provide --input FILE.mtx or --gen er:N:D | rmat:SCALE:EF".into(),
        ));
    };
    if args.symmetrize {
        let mut coo = gblas_core::container::CooMatrix::new(a.nrows(), a.ncols());
        for (i, j, &v) in a.iter() {
            if i != j {
                coo.push(i, j, v)?;
                coo.push(j, i, v)?;
            }
        }
        a = coo.to_csr_with(gblas_core::container::DupPolicy::KeepLast, |x, _| x)?;
    }
    Ok(a)
}

fn bad_spec(spec: &str) -> GblasError {
    GblasError::InvalidArgument(format!("bad --gen spec '{spec}' (er:N:D or rmat:SCALE:EF)"))
}

/// Build the simulated cluster, with trace capture on when `--trace` was
/// given.
fn sim_ctx(nodes: usize, args: &Args) -> DistCtx {
    let mut dctx = DistCtx::new(MachineConfig::edison_cluster(nodes, 24));
    if args.trace_out.is_some() {
        dctx.enable_tracing();
    }
    if args.overlap {
        dctx.set_overlap(true);
    }
    dctx
}

/// After a simulated run: write the trace file (Chrome JSON, or JSONL when
/// the path ends in `.jsonl`) and dump the metrics registry.
fn finish_sim(dctx: &DistCtx, args: &Args) -> Result<()> {
    let Some(path) = &args.trace_out else { return Ok(()) };
    let trace = dctx.recorder().snapshot();
    let text =
        if path.ends_with(".jsonl") { sink::jsonl(&trace) } else { sink::chrome_trace(&trace) };
    std::fs::write(path, text)
        .map_err(|e| GblasError::InvalidArgument(format!("cannot write {path}: {e}")))?;
    println!(
        "trace: {} spans, {} events, {:.6}s simulated -> {path}",
        trace.spans.len(),
        trace.instants.len(),
        trace.sim_end()
    );
    println!("metrics:");
    print!("{}", dctx.metrics().snapshot());
    Ok(())
}

/// `trace` subcommand: reload a JSONL trace and print the summary table.
fn summarize_trace(args: &Args) -> Result<()> {
    let path = args.input.as_ref().ok_or_else(|| {
        GblasError::InvalidArgument("trace needs --input FILE.jsonl (a saved JSONL trace)".into())
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| GblasError::InvalidArgument(format!("cannot read {path}: {e}")))?;
    if text.trim_start().starts_with('[') {
        return Err(GblasError::InvalidArgument(
            "this looks like a Chrome trace; the trace subcommand reads the JSONL format \
             (--trace FILE.jsonl)"
                .into(),
        ));
    }
    let trace = sink::from_jsonl(&text).map_err(GblasError::InvalidArgument)?;
    print!("{}", sink::summary(&trace));
    Ok(())
}

/// `profile` subcommand: reload a JSONL trace and print the full
/// analysis — per-locale breakdown, load imbalance, critical path, comm
/// matrix, and histograms — in the requested format.
fn profile_trace(args: &Args) -> Result<()> {
    let path = args.input.as_ref().ok_or_else(|| {
        GblasError::InvalidArgument("profile needs --input FILE.jsonl (a saved JSONL trace)".into())
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| GblasError::InvalidArgument(format!("cannot read {path}: {e}")))?;
    if text.trim_start().starts_with('[') {
        return Err(GblasError::InvalidArgument(
            "this looks like a Chrome trace; the profile subcommand reads the JSONL format \
             (--trace FILE.jsonl)"
                .into(),
        ));
    }
    let trace = sink::from_jsonl(&text).map_err(GblasError::InvalidArgument)?;
    let p = profile::profile(&trace);
    match args.format.as_str() {
        "markdown" => print!("{}", profile::render_markdown(&p)),
        "json" => println!("{}", profile::render_json(&p)),
        _ => print!("{}", profile::render_text(&p)),
    }
    Ok(())
}

fn degree_stats(a: &CsrMatrix<f64>) -> (usize, usize, f64) {
    let mut min = usize::MAX;
    let mut max = 0usize;
    for i in 0..a.nrows() {
        let d = a.row_nnz(i);
        min = min.min(d);
        max = max.max(d);
    }
    (min.min(max), max, a.nnz() as f64 / a.nrows().max(1) as f64)
}

/// Format the top-scoring vertices of a dense score vector.
fn top_vertices(scores: &[f64], k: usize, fmt: impl Fn(f64) -> String) -> String {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // total_cmp: a NaN score (degenerate input) must not panic the CLI
    order.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]));
    let mut out = String::new();
    for (rank, &v) in order.iter().take(k).enumerate() {
        out.push_str(&format!("\n  #{:<2} vertex {:>8}  score {}", rank + 1, v, fmt(scores[v])));
    }
    out
}

/// Run-length summary of the per-iteration direction choices, e.g.
/// `" [directions: push x2, pull x3, push]"`.
fn dir_summary(decisions: &[gblas_core::ops::selection::Decision]) -> String {
    if decisions.is_empty() {
        return String::new();
    }
    let mut runs: Vec<(Direction, usize)> = Vec::new();
    for d in decisions {
        match runs.last_mut() {
            Some((dir, count)) if *dir == d.dir => *count += 1,
            _ => runs.push((d.dir, 1)),
        }
    }
    let body: Vec<String> =
        runs.iter()
            .map(|(dir, count)| {
                if *count == 1 {
                    dir.name().to_string()
                } else {
                    format!("{} x{count}", dir.name())
                }
            })
            .collect();
    format!(" [directions: {}]", body.join(", "))
}

/// The bc source set: `--source` when given (or on big graphs), else all.
fn bc_sources(args: &Args, n: usize) -> Vec<usize> {
    if args.source != 0 || n > 2000 {
        vec![args.source]
    } else {
        (0..n).collect()
    }
}

/// Run one analytic on any backend and summarize the result.
///
/// This is the whole dispatch: the shared-memory run and the `--simulate`
/// run call the identical function with a different `B`, which is the
/// point of the backend trait — one algorithm text, two substrates.
fn run_algo<B: GblasBackend>(backend: &B, a: &B::Matrix<f64>, args: &Args) -> Result<String> {
    let opts = SpMSpVOpts::with_merge(args.merge);
    Ok(match args.command.as_str() {
        "bfs" => {
            let (r, dirs) = if let Some(policy) = args.selection {
                let (r, decisions) =
                    gblas_graph::bfs_selected_on(backend, a, args.source, policy, opts)?;
                (r, dir_summary(&decisions))
            } else {
                (gblas_graph::bfs_on(backend, a, args.source, opts)?, String::new())
            };
            format!(
                "bfs from {}: reached {} vertices, max level {}{dirs}",
                args.source,
                r.reached(),
                r.levels.as_slice().iter().max().unwrap_or(&0)
            )
        }
        "sssp" => {
            let (dist, dirs) = if let Some(policy) = args.selection {
                let (dist, decisions) =
                    gblas_graph::sssp_selected_on(backend, a, args.source, policy, opts)?;
                (dist, dir_summary(&decisions))
            } else {
                (gblas_graph::sssp_on(backend, a, args.source, opts)?, String::new())
            };
            let reached = dist.as_slice().iter().filter(|d| d.is_finite()).count();
            let furthest =
                dist.as_slice().iter().filter(|d| d.is_finite()).cloned().fold(0.0, f64::max);
            format!(
                "sssp from {}: {} reachable, max distance {:.4}{dirs}",
                args.source, reached, furthest
            )
        }
        "pagerank" => {
            let (pr, iters) =
                gblas_graph::pagerank_on(backend, a, gblas_graph::PageRankOptions::default())?;
            format!(
                "pagerank converged in {iters} iterations{}",
                top_vertices(pr.as_slice(), 10, |s| format!("{s:.6e}"))
            )
        }
        "cc" => {
            let (labels, dirs) = if let Some(policy) = args.selection {
                let (labels, decisions) =
                    gblas_graph::connected_components_selected_on(backend, a, policy, opts)?;
                (labels, dir_summary(&decisions))
            } else {
                (gblas_graph::connected_components_on(backend, a)?, String::new())
            };
            format!("{} connected components{dirs}", gblas_graph::cc::component_count(&labels))
        }
        "triangles" => {
            let t = gblas_graph::triangle_count_on(backend, a)?;
            format!("{t} triangles")
        }
        "kcore" => {
            let core = gblas_graph::core_numbers_on(backend, a)?;
            let kmax = core.as_slice().iter().max().copied().unwrap_or(0);
            let in_kmax = core.as_slice().iter().filter(|&&c| c == kmax).count();
            format!("degeneracy {kmax} ({in_kmax} vertices in the {kmax}-core)")
        }
        "mis" => {
            let set = gblas_graph::maximal_independent_set_on(backend, a, args.seed)?;
            let size = set.as_slice().iter().filter(|&&b| b).count();
            format!(
                "maximal independent set: {size} of {} vertices (seed {})",
                set.len(),
                args.seed
            )
        }
        "mcl" => {
            let (labels, iters) =
                gblas_graph::markov_cluster_on(backend, a, gblas_graph::MclOptions::default())?;
            let clusters: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
            format!("mcl: {} clusters in {iters} iterations", clusters.len())
        }
        "bc" => {
            let sources = bc_sources(args, backend.mat_nrows(a));
            let bc = gblas_graph::betweenness_on(backend, a, &sources)?;
            format!(
                "betweenness over {} source(s); top vertices:{}",
                sources.len(),
                top_vertices(bc.as_slice(), 5, |s| format!("{s:.4}"))
            )
        }
        other => {
            return Err(GblasError::InvalidArgument(format!(
                "unknown command '{other}' ({USAGE_COMMANDS})"
            )));
        }
    })
}

/// `serve-bench` subcommand: replay a generated query stream through the
/// batched server and the one-query-at-a-time loop, and report QPS plus
/// tail latency for both. With `--simulate NODES` the service times come
/// from the distributed backend's simulated clock; otherwise from the
/// shared backend's wall clock.
fn serve_bench_cmd(a: &CsrMatrix<f64>, args: &Args) -> Result<()> {
    use gblas_bench::serve;
    let spec = serve::ArrivalSpec::parse(&args.arrival).ok_or_else(|| {
        GblasError::InvalidArgument(format!(
            "bad --arrival '{}' (uniform|poisson|bursty:RATE)",
            args.arrival
        ))
    })?;
    if args.batch == 0 {
        return Err(GblasError::InvalidArgument("--batch must be at least 1".into()));
    }
    let requests = serve::generate_requests(args.requests, a.nrows(), spec, args.seed);
    let policy = serve::ServePolicy::batch_window(args.batch, args.window);
    println!(
        "serving {} requests ({}), batch <= {}, window {:.1}ms",
        args.requests,
        args.arrival,
        args.batch,
        args.window * 1e3
    );
    let (batched, looped) = if let Some(nodes) = args.simulate {
        let r = serve::serve_bench_dist(a, nodes, &requests, policy)?;
        println!("clock: simulated ({} Edison nodes)", ProcGrid::square_for(nodes).locales());
        r
    } else {
        let r = serve::serve_bench_shared(a, args.threads, &requests, policy)?;
        println!("clock: wall ({} threads)", args.threads);
        r
    };
    println!("{batched}");
    println!("{looped}");
    println!("batched/loop QPS: {:.2}x", batched.qps / looped.qps.max(f64::MIN_POSITIVE));
    if args.verify {
        let sources: Vec<usize> = requests.iter().map(|r| r.source).collect();
        serve::verify_batched_equivalence(a, &sources, args.simulate.unwrap_or(4))?;
        println!(
            "verified: batched results bit-identical to single-source runs \
             ({} queries, both backends)",
            sources.len()
        );
    }
    Ok(())
}

/// Pick the locale grid for `--simulate`: the most square `pr x pc`
/// factorization of the node count. The multi-stage SUMMA accepts any
/// rectangular grid, so the matrix analytics (`triangles`, `mcl`) no
/// longer round the node count down to a perfect square.
fn sim_grid(nodes: usize) -> ProcGrid {
    ProcGrid::square_for(nodes)
}

/// The per-command communication strategy for the sparse-vector kernels
/// (the paper's fine-grained Listing 8 for BFS, aggregated for the rest).
fn sim_strategy(command: &str) -> CommStrategy {
    if command == "bfs" {
        CommStrategy::Fine
    } else {
        CommStrategy::Bulk
    }
}

fn run() -> Result<()> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e.contains("--help") || e.contains("missing command") {
                eprintln!("usage: gblas-cli <{USAGE_COMMANDS}> [options]");
                eprintln!("see the crate docs for the option list");
            }
            return Err(GblasError::InvalidArgument(e));
        }
    };
    if args.command == "trace" {
        return summarize_trace(&args);
    }
    if args.command == "profile" {
        return profile_trace(&args);
    }
    let mut a = load(&args)?;
    if args.command == "mcl" {
        // MCL's flow interpretation needs self-loops; add them once on
        // the global matrix so both backends see the identical input.
        a = gblas_graph::mcl::add_self_loops(&a)?;
    }
    let ctx = ExecCtx::with_threads(args.threads);
    println!(
        "matrix: {}x{}, {} stored entries{}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        if args.symmetrize { " (symmetrized)" } else { "" }
    );

    if args.command == "info" {
        let (dmin, dmax, davg) = degree_stats(&a);
        println!("out-degree: min {dmin}, max {dmax}, mean {davg:.2}");
        return Ok(());
    }

    if args.command == "serve-bench" {
        return serve_bench_cmd(&a, &args);
    }

    let t0 = std::time::Instant::now();
    let summary = run_algo(&SharedBackend::new(&ctx), &a, &args)?;
    println!("{summary} ({:.2?})", t0.elapsed());

    if let Some(nodes) = args.simulate {
        // The 3-D variant deals the SUMMA stages across `layers`
        // replication layers: the machine keeps every node, but the
        // operand grid shrinks to nodes/layers locales.
        let (grid, algo) = if args.mxm_grid == "3d" {
            let layers = gblas_dist::auto_layers(nodes).max(1);
            let grid = sim_grid(nodes / layers.max(1));
            (grid, MxmAlgo::Summa3d { layers })
        } else {
            (sim_grid(nodes), MxmAlgo::Summa2d)
        };
        let nodes = match algo {
            MxmAlgo::Summa3d { layers } => grid.locales() * layers,
            _ => grid.locales(),
        };
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = sim_ctx(nodes, &args);
        let backend = DistBackend::with_strategy(&dctx, sim_strategy(&args.command)).with_mxm(algo);
        let dist_summary = run_algo(&backend, &da, &args)?;
        let report = backend.take_report();
        if dist_summary != summary {
            println!("(distributed result) {dist_summary}");
        }
        println!("simulated on {nodes} Edison nodes: {report}");
        let attributions = report.attributions();
        if !attributions.is_empty() {
            let list: Vec<String> =
                attributions.iter().map(|(phase, l)| format!("{phase}=L{l}")).collect();
            println!("slowest locale per phase: {}", list.join(" "));
        }
        finish_sim(&dctx, &args)?;
    }
    if args.trace_out.is_some() && args.simulate.is_none() {
        eprintln!("note: --trace records the simulated run; add --simulate NODES");
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
