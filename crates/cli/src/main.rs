//! `gblas-cli` — graph analytics from the command line.
//!
//! ```text
//! gblas-cli <command> [--input FILE.mtx | --gen er:N:D | --gen rmat:SCALE:EF]
//!           [--source V] [--threads T] [--symmetrize] [--seed S]
//!           [--simulate NODES] [--trace FILE] [--spmspv-merge sort|bucket]
//!
//! commands:
//!   info        matrix shape, nnz, degree statistics
//!   bfs         breadth-first search from --source (default 0)
//!   sssp        single-source shortest paths from --source
//!   pagerank    PageRank (top 10 printed)
//!   cc          connected components (requires symmetric input; use --symmetrize)
//!   triangles   triangle count (requires symmetric input; use --symmetrize)
//!   bc          betweenness centrality from --source (or all if --source omitted and n <= 2000)
//!   trace       summarize a saved JSONL trace (--input trace.jsonl)
//! ```
//!
//! `--spmspv-merge` selects how `bfs` and `sssp` merge SpMSpV results each
//! frontier round: `sort` (the paper's merge/radix sort) or `bucket` (the
//! sort-free bucketed merge). Both give identical output.
//!
//! With `--simulate NODES`, `bfs`, `sssp`, `pagerank` and `cc` also run on
//! the simulated distributed machine and print where the time would go on
//! the paper's Cray XC30. Adding `--trace FILE` records every simulated
//! operation (spans per op/phase/locale) and writes a Chrome trace-event
//! file (load it in `chrome://tracing` / Perfetto), or a JSONL stream if
//! `FILE` ends in `.jsonl`; cumulative metrics are printed either way.

use gblas_core::container::CsrMatrix;
use gblas_core::error::{GblasError, Result};
use gblas_core::ops::spmspv::{MergeStrategy, SpMSpVOpts};
use gblas_core::par::ExecCtx;
use gblas_core::trace::sink;
use gblas_core::{gen, io};
use gblas_dist::{DistCsrMatrix, DistCtx, ProcGrid};
use gblas_sim::MachineConfig;

struct Args {
    command: String,
    input: Option<String>,
    generate: Option<String>,
    source: usize,
    threads: usize,
    symmetrize: bool,
    seed: u64,
    simulate: Option<usize>,
    trace_out: Option<String>,
    merge: MergeStrategy,
}

fn parse_args() -> std::result::Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command (try --help)")?;
    let mut args = Args {
        command,
        input: None,
        generate: None,
        source: 0,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        symmetrize: false,
        seed: 1,
        simulate: None,
        trace_out: None,
        merge: MergeStrategy::default(),
    };
    let mut rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let need = |i: usize, rest: &mut Vec<String>| -> std::result::Result<String, String> {
            rest.get(i + 1).cloned().ok_or_else(|| format!("{} needs a value", rest[i]))
        };
        match rest[i].as_str() {
            "--input" => {
                args.input = Some(need(i, &mut rest)?);
                i += 2;
            }
            "--gen" => {
                args.generate = Some(need(i, &mut rest)?);
                i += 2;
            }
            "--source" => {
                args.source = need(i, &mut rest)?.parse().map_err(|_| "bad --source")?;
                i += 2;
            }
            "--threads" => {
                args.threads = need(i, &mut rest)?.parse().map_err(|_| "bad --threads")?;
                i += 2;
            }
            "--seed" => {
                args.seed = need(i, &mut rest)?.parse().map_err(|_| "bad --seed")?;
                i += 2;
            }
            "--simulate" => {
                args.simulate = Some(need(i, &mut rest)?.parse().map_err(|_| "bad --simulate")?);
                i += 2;
            }
            "--trace" => {
                args.trace_out = Some(need(i, &mut rest)?);
                i += 2;
            }
            "--spmspv-merge" => {
                let v = need(i, &mut rest)?;
                args.merge = MergeStrategy::parse(&v)
                    .ok_or_else(|| format!("bad --spmspv-merge '{v}' (sort|bucket)"))?;
                i += 2;
            }
            "--symmetrize" => {
                args.symmetrize = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn load(args: &Args) -> Result<CsrMatrix<f64>> {
    let mut a = if let Some(path) = &args.input {
        io::read_matrix_market_file(std::path::Path::new(path))?
    } else if let Some(spec) = &args.generate {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["er", n, d] => {
                let n: usize = n.parse().map_err(|_| bad_spec(spec))?;
                let d: usize = d.parse().map_err(|_| bad_spec(spec))?;
                gen::erdos_renyi(n, d, args.seed)
            }
            ["rmat", scale, ef] => {
                let scale: u32 = scale.parse().map_err(|_| bad_spec(spec))?;
                let ef: usize = ef.parse().map_err(|_| bad_spec(spec))?;
                gen::rmat(scale, ef, args.seed)
            }
            _ => return Err(bad_spec(spec)),
        }
    } else {
        return Err(GblasError::InvalidArgument(
            "provide --input FILE.mtx or --gen er:N:D | rmat:SCALE:EF".into(),
        ));
    };
    if args.symmetrize {
        let mut coo = gblas_core::container::CooMatrix::new(a.nrows(), a.ncols());
        for (i, j, &v) in a.iter() {
            if i != j {
                coo.push(i, j, v)?;
                coo.push(j, i, v)?;
            }
        }
        a = coo.to_csr_with(gblas_core::container::DupPolicy::KeepLast, |x, _| x)?;
    }
    Ok(a)
}

fn bad_spec(spec: &str) -> GblasError {
    GblasError::InvalidArgument(format!("bad --gen spec '{spec}' (er:N:D or rmat:SCALE:EF)"))
}

/// Build the simulated cluster, with trace capture on when `--trace` was
/// given.
fn sim_ctx(nodes: usize, args: &Args) -> DistCtx {
    let mut dctx = DistCtx::new(MachineConfig::edison_cluster(nodes, 24));
    if args.trace_out.is_some() {
        dctx.enable_tracing();
    }
    dctx
}

/// After a simulated run: write the trace file (Chrome JSON, or JSONL when
/// the path ends in `.jsonl`) and dump the metrics registry.
fn finish_sim(dctx: &DistCtx, args: &Args) -> Result<()> {
    let Some(path) = &args.trace_out else { return Ok(()) };
    let trace = dctx.recorder().snapshot();
    let text =
        if path.ends_with(".jsonl") { sink::jsonl(&trace) } else { sink::chrome_trace(&trace) };
    std::fs::write(path, text)
        .map_err(|e| GblasError::InvalidArgument(format!("cannot write {path}: {e}")))?;
    println!(
        "trace: {} spans, {} events, {:.6}s simulated -> {path}",
        trace.spans.len(),
        trace.instants.len(),
        trace.sim_end()
    );
    println!("metrics:");
    print!("{}", dctx.metrics().snapshot());
    Ok(())
}

/// `trace` subcommand: reload a JSONL trace and print the summary table.
fn summarize_trace(args: &Args) -> Result<()> {
    let path = args.input.as_ref().ok_or_else(|| {
        GblasError::InvalidArgument("trace needs --input FILE.jsonl (a saved JSONL trace)".into())
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| GblasError::InvalidArgument(format!("cannot read {path}: {e}")))?;
    if text.trim_start().starts_with('[') {
        return Err(GblasError::InvalidArgument(
            "this looks like a Chrome trace; the trace subcommand reads the JSONL format \
             (--trace FILE.jsonl)"
                .into(),
        ));
    }
    let trace = sink::from_jsonl(&text).map_err(GblasError::InvalidArgument)?;
    print!("{}", sink::summary(&trace));
    Ok(())
}

fn degree_stats(a: &CsrMatrix<f64>) -> (usize, usize, f64) {
    let mut min = usize::MAX;
    let mut max = 0usize;
    for i in 0..a.nrows() {
        let d = a.row_nnz(i);
        min = min.min(d);
        max = max.max(d);
    }
    (min.min(max), max, a.nnz() as f64 / a.nrows().max(1) as f64)
}

fn run() -> Result<()> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e.contains("--help") || e.contains("missing command") {
                eprintln!(
                    "usage: gblas-cli <info|bfs|sssp|pagerank|cc|triangles|bc|trace> [options]"
                );
                eprintln!("see the crate docs for the option list");
            }
            return Err(GblasError::InvalidArgument(e));
        }
    };
    if args.command == "trace" {
        return summarize_trace(&args);
    }
    let a = load(&args)?;
    let ctx = ExecCtx::with_threads(args.threads);
    println!(
        "matrix: {}x{}, {} stored entries{}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        if args.symmetrize { " (symmetrized)" } else { "" }
    );

    match args.command.as_str() {
        "info" => {
            let (dmin, dmax, davg) = degree_stats(&a);
            println!("out-degree: min {dmin}, max {dmax}, mean {davg:.2}");
        }
        "bfs" => {
            let t0 = std::time::Instant::now();
            let r =
                gblas_graph::bfs_with(&a, args.source, SpMSpVOpts::with_merge(args.merge), &ctx)?;
            println!(
                "bfs from {}: reached {} vertices, max level {} ({:.2?})",
                args.source,
                r.reached(),
                r.levels.as_slice().iter().max().unwrap_or(&0),
                t0.elapsed()
            );
            if let Some(nodes) = args.simulate {
                let grid = ProcGrid::square_for(nodes);
                let da = DistCsrMatrix::from_global(&a, grid);
                let dctx = sim_ctx(nodes, &args);
                let (dr, report) = gblas_graph::bfs_dist_with(
                    &da,
                    args.source,
                    gblas_dist::ops::spmspv::CommStrategy::Fine,
                    SpMSpVOpts::with_merge(args.merge),
                    &dctx,
                )?;
                assert_eq!(dr.levels, r.levels);
                println!("simulated on {nodes} Edison nodes: {report}");
                finish_sim(&dctx, &args)?;
            }
        }
        "sssp" => {
            let t0 = std::time::Instant::now();
            let dist =
                gblas_graph::sssp_with(&a, args.source, SpMSpVOpts::with_merge(args.merge), &ctx)?;
            let reached = dist.as_slice().iter().filter(|d| d.is_finite()).count();
            let furthest =
                dist.as_slice().iter().filter(|d| d.is_finite()).cloned().fold(0.0, f64::max);
            println!(
                "sssp from {}: {} reachable, max distance {:.4} ({:.2?})",
                args.source,
                reached,
                furthest,
                t0.elapsed()
            );
            if let Some(nodes) = args.simulate {
                let grid = ProcGrid::square_for(nodes);
                let da = DistCsrMatrix::from_global(&a, grid);
                let dctx = sim_ctx(nodes, &args);
                let (_, report) = gblas_graph::sssp_dist_with(
                    &da,
                    args.source,
                    gblas_dist::ops::spmspv::CommStrategy::Bulk,
                    SpMSpVOpts::with_merge(args.merge),
                    &dctx,
                )?;
                println!("simulated on {nodes} Edison nodes: {report}");
                finish_sim(&dctx, &args)?;
            }
        }
        "pagerank" => {
            let t0 = std::time::Instant::now();
            let (pr, iters) =
                gblas_graph::pagerank(&a, gblas_graph::PageRankOptions::default(), &ctx)?;
            println!("pagerank converged in {iters} iterations ({:.2?})", t0.elapsed());
            let mut order: Vec<usize> = (0..a.nrows()).collect();
            order.sort_by(|&x, &y| pr[y].partial_cmp(&pr[x]).unwrap());
            for (k, &v) in order.iter().take(10).enumerate() {
                println!("  #{:<2} vertex {:>8}  score {:.6e}", k + 1, v, pr[v]);
            }
            if let Some(nodes) = args.simulate {
                let grid = ProcGrid::square_for(nodes);
                let dctx = sim_ctx(nodes, &args);
                let (_, _, report) = gblas_graph::pagerank_dist(
                    &a,
                    grid,
                    gblas_graph::PageRankOptions::default(),
                    &dctx,
                )?;
                println!("simulated on {nodes} Edison nodes: {report}");
                finish_sim(&dctx, &args)?;
            }
        }
        "cc" => {
            let t0 = std::time::Instant::now();
            let labels = gblas_graph::connected_components(&a, &ctx)?;
            println!(
                "{} connected components ({:.2?})",
                gblas_graph::cc::component_count(&labels),
                t0.elapsed()
            );
            if let Some(nodes) = args.simulate {
                let grid = ProcGrid::square_for(nodes);
                let da = DistCsrMatrix::from_global(&a, grid);
                let dctx = sim_ctx(nodes, &args);
                let (_, report) = gblas_graph::connected_components_dist(&da, &dctx)?;
                println!("simulated on {nodes} Edison nodes: {report}");
                finish_sim(&dctx, &args)?;
            }
        }
        "triangles" => {
            let t0 = std::time::Instant::now();
            let t = gblas_graph::triangle_count(&a, &ctx)?;
            println!("{t} triangles ({:.2?})", t0.elapsed());
        }
        "bc" => {
            let sources: Vec<usize> = if args.source != 0 || a.nrows() > 2000 {
                vec![args.source]
            } else {
                (0..a.nrows()).collect()
            };
            let t0 = std::time::Instant::now();
            let bc = gblas_graph::betweenness(&a, &sources, &ctx)?;
            let mut order: Vec<usize> = (0..a.nrows()).collect();
            order.sort_by(|&x, &y| bc[y].partial_cmp(&bc[x]).unwrap());
            println!(
                "betweenness over {} source(s) ({:.2?}); top vertices:",
                sources.len(),
                t0.elapsed()
            );
            for (k, &v) in order.iter().take(5).enumerate() {
                println!("  #{:<2} vertex {:>8}  score {:.4}", k + 1, v, bc[v]);
            }
        }
        other => {
            return Err(GblasError::InvalidArgument(format!(
                "unknown command '{other}' (info|bfs|sssp|pagerank|cc|triangles|bc|trace)"
            )));
        }
    }
    if args.trace_out.is_some() && args.simulate.is_none() {
        eprintln!("note: --trace records the simulated run; add --simulate NODES");
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
