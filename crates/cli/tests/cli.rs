//! End-to-end tests of the `gblas-cli` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_gblas-cli")).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn info_on_generated_graph() {
    let (ok, stdout, _) = run(&["info", "--gen", "er:2000:5", "--seed", "3"]);
    assert!(ok);
    assert!(stdout.contains("matrix: 2000x2000"));
    assert!(stdout.contains("out-degree"));
}

#[test]
fn bfs_with_simulation() {
    let (ok, stdout, _) = run(&["bfs", "--gen", "er:5000:8", "--source", "7", "--simulate", "4"]);
    assert!(ok);
    assert!(stdout.contains("bfs from 7"));
    assert!(stdout.contains("simulated on 4 Edison nodes"));
    assert!(stdout.contains("gather="));
}

#[test]
fn pagerank_prints_top_vertices() {
    let (ok, stdout, _) = run(&["pagerank", "--gen", "rmat:10:8"]);
    assert!(ok);
    assert!(stdout.contains("pagerank converged"));
    assert!(stdout.contains("#1"));
}

#[test]
fn cc_and_triangles_need_symmetry_flag_to_make_sense() {
    let (ok, stdout, _) = run(&["cc", "--gen", "er:3000:6", "--symmetrize"]);
    assert!(ok);
    assert!(stdout.contains("connected components"));
    let (ok2, stdout2, _) = run(&["triangles", "--gen", "er:1000:6", "--symmetrize"]);
    assert!(ok2);
    assert!(stdout2.contains("triangles"));
}

#[test]
fn sssp_reports_reachability() {
    let (ok, stdout, _) = run(&["sssp", "--gen", "er:2000:5", "--source", "0"]);
    assert!(ok);
    assert!(stdout.contains("sssp from 0"));
    assert!(stdout.contains("reachable"));
}

#[test]
fn reads_matrix_market_files() {
    // create a small file, then analyze it
    let dir = std::env::temp_dir().join("gblas_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.mtx");
    let a = gblas_core::gen::erdos_renyi(500, 4, 9);
    gblas_core::io::write_matrix_market_file(&path, &a).unwrap();
    let (ok, stdout, _) = run(&["info", "--input", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("matrix: 500x500"));
}

#[test]
fn traced_bfs_profiles_end_to_end() {
    let dir = std::env::temp_dir().join("gblas_cli_profile_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("bfs.jsonl");
    let trace_arg = trace.to_str().unwrap();
    let (ok, stdout, _) =
        run(&["bfs", "--gen", "er:2000:8", "--simulate", "4", "--trace", trace_arg, "--seed", "3"]);
    assert!(ok);
    assert!(stdout.contains("slowest locale per phase:"), "got: {stdout}");
    assert!(trace.exists());

    // text report: imbalance, critical path, and a populated comm matrix
    let (ok, text, _) = run(&["profile", "--input", trace_arg]);
    assert!(ok);
    assert!(text.contains("load imbalance"), "got: {text}");
    assert!(text.contains("critical path"));
    assert!(text.contains("communication matrix"));
    assert!(text.contains("spmspv_dist/gather"));

    // the comm-matrix byte total must equal the run's bytes_sent counter
    let metrics_bytes: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("bytes_sent"))
        .expect("metrics dump present")
        .trim()
        .parse()
        .unwrap();
    assert!(
        text.contains(&format!("total: {metrics_bytes} bytes")),
        "profile bytes must match metrics bytes_sent={metrics_bytes}: {text}"
    );

    // JSON profile parses and markdown renders tables
    let (ok, json, _) = run(&["profile", "--input", trace_arg, "--format", "json"]);
    assert!(ok);
    assert!(json.starts_with("{\"schema\":\"gblas-profile-v1\""), "got: {json}");
    assert!(json.contains(&format!("\"total_bytes\":{metrics_bytes}")));
    let (ok, md, _) = run(&["profile", "--input", trace_arg, "--format", "markdown"]);
    assert!(ok);
    assert!(md.contains("## Critical path"));

    // bad format and missing input fail cleanly
    let (ok, _, stderr) = run(&["profile", "--input", trace_arg, "--format", "xml"]);
    assert!(!ok);
    assert!(stderr.contains("bad --format"));
    let (ok, _, stderr) = run(&["profile"]);
    assert!(!ok);
    assert!(stderr.contains("--input"));
}

#[test]
fn errors_are_clean_not_panics() {
    let (ok, _, stderr) = run(&["bogus-command", "--gen", "er:10:2"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
    let (ok2, _, stderr2) = run(&["bfs"]);
    assert!(!ok2);
    assert!(stderr2.contains("error:"));
    let (ok3, _, stderr3) = run(&["bfs", "--gen", "nonsense"]);
    assert!(!ok3);
    assert!(stderr3.contains("error:"));
}
