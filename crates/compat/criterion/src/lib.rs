//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Implements just enough of the criterion surface for this workspace's
//! `harness = false` benches to build and run without registry access:
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is honest but simple: each benchmark runs `sample_size`
//! samples after one warm-up and reports min / median / max wall time to
//! stdout. No statistical analysis, HTML reports, or comparison against
//! saved baselines.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Times closures; handed to benchmark bodies.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, `samples` times (plus one warm-up).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.results.push(t0.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.results.push(t0.elapsed());
        }
    }
}

fn report(name: &str, results: &mut [Duration]) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    results.sort();
    let min = results[0];
    let med = results[results.len() / 2];
    let max = results[results.len() - 1];
    println!(
        "{name:<40} min {:>12.3?}  median {:>12.3?}  max {:>12.3?}  ({} samples)",
        min,
        med,
        max,
        results.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut body: F) {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        body(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.results);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) {
        self.run(id.to_string(), body);
    }

    /// Benchmark a closure receiving `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut body: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id.clone(), |b| body(b, input));
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name}");
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut b = Bencher { samples: 10, results: Vec::new() };
        body(&mut b);
        report(id, &mut b.results);
        self
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_expected_sample_count() {
        let mut g = Criterion::default();
        let mut group = g.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // one warm-up + 3 samples
        assert_eq!(runs, 4);
        group.finish();
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut g = Criterion::default();
        let mut group = g.benchmark_group("t2");
        group.sample_size(2);
        let mut setups = 0usize;
        group.bench_with_input(BenchmarkId::new("b", 1), &(), |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
        group.finish();
    }
}
