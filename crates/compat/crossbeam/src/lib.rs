//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`,
//! which std has provided natively since 1.63 (`std::thread::scope`). This
//! shim adapts the std API to crossbeam's signatures: `scope` returns a
//! `Result` (std instead propagates child panics by panicking, so the
//! `Err` arm is never constructed here) and the spawn closure receives a
//! `&Scope` for nested spawning.

pub mod thread {
    //! Scoped threads, crossbeam-flavoured.

    /// Result of a scope: `Err` would carry a child panic payload;
    /// std-backed scopes resume the panic instead, so this is always `Ok`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle that can spawn borrowed-data threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives this scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all threads it spawns are joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|s| s.spawn(|_| 21).join().unwrap() * 2).unwrap();
        assert_eq!(v, 42);
    }
}
