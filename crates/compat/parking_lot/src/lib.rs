//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free surface:
//! `lock()` returns the guard directly. A poisoned lock (a thread panicked
//! while holding it) is recovered rather than propagated — the workspace
//! treats a panic under a lock as fatal to the test anyway, and
//! `parking_lot` itself has no poisoning.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s guard-returning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s guard-returning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
