//! Offline stand-in for `proptest` (1.x API subset).
//!
//! The build environment has no registry access, so this crate reimplements
//! exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) over functions whose arguments are `name in strategy`;
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer/float ranges and 2-tuples;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`arbitrary::any`] (for `bool`);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Deterministic**: case `k` of every test derives its generator from
//!   `k` alone, so failures reproduce exactly with no persistence files.
//! * **No shrinking**: a failing case reports its index and seed in the
//!   panic message; inputs are small by construction in this suite, so
//!   minimisation matters little.
//! * **Replay**: setting `PROPTEST_REPLAY=<case>` re-runs just that case
//!   of every `proptest!` test in the process — the deterministic
//!   per-case seeding makes that exact reproduction, not approximation.

pub mod test_runner {
    //! Case configuration and the per-case generator.

    /// Mirror of `proptest::test_runner::Config` (only `cases` is used).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// SplitMix64 generator; cheap, deterministic, good enough for test
    /// input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// The generator for the `case`-th case of a test.
        pub fn for_case(case: u32) -> Self {
            TestRng(seed_for_case(case))
        }

        /// Current internal state (the seed, before any draws).
        pub fn state(&self) -> u64 {
            self.0
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound > 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// The SplitMix64 seed that [`TestRng::for_case`] starts case `case`
    /// from; reported in failure messages so cases can be reproduced out
    /// of band.
    pub fn seed_for_case(case: u32) -> u64 {
        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)
    }

    /// Drive `f` over the configured cases, replaying a single case when
    /// `replay` is set. On a panicking case, re-panics with a message
    /// naming the case index, its seed, and the `PROPTEST_REPLAY`
    /// incantation that re-runs just that case.
    ///
    /// Exposed (rather than private to the macro) so the shim's own tests
    /// can exercise the driver without racing on the process environment.
    pub fn run_cases_with<F: Fn(u32)>(cases: u32, replay: Option<u32>, f: F) {
        let to_run: Vec<u32> = match replay {
            Some(case) => vec![case],
            None => (0..cases).collect(),
        };
        for case in to_run {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(case)));
            if let Err(payload) = result {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_string()
                };
                panic!(
                    "proptest case {case} failed (seed {:#018x}): {msg}\n\
                     replay just this case with PROPTEST_REPLAY={case}",
                    seed_for_case(case)
                );
            }
        }
    }

    /// The macro entry point: [`run_cases_with`] with the replay case
    /// taken from the `PROPTEST_REPLAY` environment variable (ignored
    /// when unset or unparsable).
    pub fn run_cases<F: Fn(u32)>(cfg: &Config, f: F) {
        let replay =
            std::env::var("PROPTEST_REPLAY").ok().and_then(|v| v.trim().parse::<u32>().ok());
        run_cases_with(cfg.cases, replay, f);
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    (self.start as u128 + rng.below(span) as u128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as u128 - s as u128 + 1) as u64;
                    (s as u128 + rng.below(span) as u128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Collection-size specifications: a fixed length or a length range.
    pub trait SizeRange {
        /// Draw a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements generated by `elem`.
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; bound the attempts so a small
            // element domain cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 32 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A set of (up to) `size` distinct elements generated by `elem`.
    pub fn btree_set<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> BTreeSetStrategy<S, Z> {
        BTreeSetStrategy { elem, size }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — what the tests import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::...`).
        pub use crate::collection;
    }
}

/// Assert inside a property (plain `assert!` here: no shrinking to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: an optional config header, then test functions
/// whose arguments are `name in strategy` pairs. Each expands to a `#[test]`
/// running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(&cfg, |case| {
                    let mut prop_rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)*
                    $body
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 5u64..=6, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn collections_obey_size(v in prop::collection::vec(0usize..100, 7),
                                 s in prop::collection::btree_set(0usize..100, 0..=10)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(s.len() <= 10);
        }

        #[test]
        fn flat_map_chains(pair in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0usize..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn failing_case_reports_index_seed_and_replay_hint() {
        let err = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases_with(10, None, |case| {
                assert!(case != 7, "boom at {case}");
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("case 7 failed"), "{msg}");
        assert!(msg.contains("boom at 7"), "{msg}");
        assert!(msg.contains(&format!("{:#018x}", crate::test_runner::seed_for_case(7))), "{msg}");
        assert!(msg.contains("PROPTEST_REPLAY=7"), "{msg}");
    }

    #[test]
    fn replay_runs_only_the_requested_case() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        crate::test_runner::run_cases_with(100, Some(42), |case| seen.lock().unwrap().push(case));
        assert_eq!(*seen.lock().unwrap(), vec![42]);
    }

    #[test]
    fn passing_cases_all_run_in_order() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        crate::test_runner::run_cases_with(5, None, |case| seen.lock().unwrap().push(case));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0usize..1000;
        let a: Vec<usize> = (0..10).map(|c| s.generate(&mut TestRng::for_case(c))).collect();
        let b: Vec<usize> = (0..10).map(|c| s.generate(&mut TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }
}
