//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the *small* slice of `rand` it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] over a deterministic xoshiro256** generator seeded
//! via SplitMix64 (the same seeding scheme the real `rand_xoshiro` uses).
//!
//! Determinism is a feature here, not a bug: every workload generator in
//! `gblas-core::gen` is seed-addressed, and the figure harness and tests
//! rely on a given `(generator, seed)` pair always producing the same
//! graph. The shim makes no attempt at cryptographic quality.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** — fast, 256-bit state, good equidistribution.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand_xoshiro does.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256StarStar { s: [next(), next(), next(), next()] }
    }
}

impl Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe core: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias is irrelevant for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + hi as u128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                if s == 0 && e as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (e as u128 - s as u128 + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (s as u128 + hi as u128) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling surface of `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Named generator aliases matching `rand::rngs`.
    /// "Small" fast generator — here the same xoshiro256** core.
    pub type SmallRng = super::Xoshiro256StarStar;
    /// "Standard" generator — identical core in this shim.
    pub type StdRng = super::Xoshiro256StarStar;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
        for _ in 0..1000 {
            let v = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
