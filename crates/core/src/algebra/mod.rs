//! GraphBLAS algebra: unary/binary operators, monoids, and semirings.
//!
//! "A powerful aspect of GraphBLAS is its ability to work on arbitrary
//! semirings, monoids, and functions" (§III). This module supplies:
//!
//! * [`UnaryOp`] / [`BinaryOp`] — plain function objects. Any
//!   `Fn(A) -> C + Sync` / `Fn(A, B) -> C + Sync` closure qualifies via a
//!   blanket impl, and the named structs in [`ops`] provide the standard
//!   GraphBLAS built-ins.
//! * [`Monoid`] — an associative binary operator with an identity element,
//!   used as the "add" of a semiring and by `reduce`.
//! * [`Semiring`] — add monoid plus multiply operator. The ready-made
//!   rings in [`semirings`] cover plus-times (numeric), min-plus (tropical
//!   shortest paths), or-and (boolean reachability), and the
//!   min-first/second parent semirings used by BFS.

pub mod monoid;
pub mod ops;
pub mod semiring;

pub use monoid::{ComMonoid, Monoid, MonoidFn};
pub use ops::*;
pub use semiring::{semirings, Semiring};

/// A unary function `A -> C`, applied to every stored value by `Apply`.
///
/// Implemented for all `Fn(A) -> C + Sync` closures, so
/// `apply(&mut v, &|x: f64| x * 2.0, ..)` works directly.
pub trait UnaryOp<A, C>: Sync {
    /// Evaluate the operator.
    fn eval(&self, a: A) -> C;
}

impl<A, C, F> UnaryOp<A, C> for F
where
    F: Fn(A) -> C + Sync,
{
    #[inline(always)]
    fn eval(&self, a: A) -> C {
        self(a)
    }
}

/// A binary function `(A, B) -> C` — a GraphBLAS *function* in the paper's
/// terminology: "simply a binary operator ... allowed in operations that do
/// not require an identity element (e.g. eWiseMult)" (§III).
pub trait BinaryOp<A, B, C>: Sync {
    /// Evaluate the operator.
    fn eval(&self, a: A, b: B) -> C;
}

impl<A, B, C, F> BinaryOp<A, B, C> for F
where
    F: Fn(A, B) -> C + Sync,
{
    #[inline(always)]
    fn eval(&self, a: A, b: B) -> C {
        self(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_unary_ops() {
        fn takes_op(op: &impl UnaryOp<i32, i32>) -> i32 {
            op.eval(20)
        }
        assert_eq!(takes_op(&|x: i32| x + 1), 21);
    }

    #[test]
    fn closures_are_binary_ops() {
        fn takes_op(op: &impl BinaryOp<i32, i32, i32>) -> i32 {
            op.eval(3, 4)
        }
        assert_eq!(takes_op(&|a: i32, b: i32| a * b), 12);
    }
}
