//! Monoids: associative binary operators with an identity element.
//!
//! "A GraphBLAS monoid is a semiring with only one binary operator and an
//! identity element" (§III). Monoids are the *add* half of a semiring and
//! the operator of `reduce`.

use super::ops::{Max, Min, Plus, Scalar, Times};
use super::BinaryOp;

/// An associative binary operator `T × T -> T` with identity.
///
/// Associativity is a semantic contract the type system cannot check; the
/// property tests in this crate verify it for all provided instances on
/// sampled inputs.
pub trait Monoid<T>: BinaryOp<T, T, T> {
    /// The identity element: `combine(identity(), x) == x`.
    fn identity(&self) -> T;
    /// Combine two values (same as [`BinaryOp::eval`], kept for clarity at
    /// call sites that require the monoid contract).
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        self.eval(a, b)
    }
}

/// Marker trait: the monoid is also commutative, allowing tree-shaped and
/// out-of-order parallel reductions.
pub trait ComMonoid<T>: Monoid<T> {}

impl<T: Scalar> Monoid<T> for Plus {
    #[inline(always)]
    fn identity(&self) -> T {
        T::zero()
    }
}
impl<T: Scalar> ComMonoid<T> for Plus {}

impl<T: Scalar> Monoid<T> for Times {
    #[inline(always)]
    fn identity(&self) -> T {
        T::one()
    }
}
impl<T: Scalar> ComMonoid<T> for Times {}

impl<T: Scalar> Monoid<T> for Min {
    #[inline(always)]
    fn identity(&self) -> T {
        T::max_value()
    }
}
impl<T: Scalar> ComMonoid<T> for Min {}

impl<T: Scalar> Monoid<T> for Max {
    #[inline(always)]
    fn identity(&self) -> T {
        T::min_value()
    }
}
impl<T: Scalar> ComMonoid<T> for Max {}

/// A monoid built from an arbitrary closure plus an identity value, for
/// user-defined algebras:
///
/// ```
/// use gblas_core::algebra::{Monoid, MonoidFn};
/// let gcd = MonoidFn::new(|a: u64, b: u64| {
///     let (mut a, mut b) = (a, b);
///     while b != 0 { let t = a % b; a = b; b = t; }
///     a
/// }, 0);
/// assert_eq!(gcd.combine(12, 18), 6);
/// assert_eq!(gcd.combine(gcd.identity(), 7), 7);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonoidFn<F, T> {
    op: F,
    id: T,
}

impl<F, T> MonoidFn<F, T> {
    /// Wrap `op` with identity `id`. The caller asserts associativity and
    /// that `id` is a true identity.
    pub fn new(op: F, id: T) -> Self {
        MonoidFn { op, id }
    }
}

impl<F, T> BinaryOp<T, T, T> for MonoidFn<F, T>
where
    F: Fn(T, T) -> T + Sync,
    T: Copy + Send + Sync,
{
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> T {
        (self.op)(a, b)
    }
}

impl<F, T> Monoid<T> for MonoidFn<F, T>
where
    F: Fn(T, T) -> T + Sync,
    T: Copy + Send + Sync,
{
    #[inline(always)]
    fn identity(&self) -> T {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identity<T: PartialEq + Copy + std::fmt::Debug>(m: &impl Monoid<T>, samples: &[T]) {
        for &s in samples {
            assert_eq!(m.combine(m.identity(), s), s);
            assert_eq!(m.combine(s, m.identity()), s);
        }
    }

    #[test]
    fn plus_identity_is_zero() {
        check_identity(&Plus, &[0i64, 1, -5, 1 << 40]);
        check_identity(&Plus, &[0.0f64, 2.5, -3.25]);
        check_identity(&Plus, &[false, true]);
    }

    #[test]
    fn times_identity_is_one() {
        check_identity(&Times, &[1i32, -4, 9]);
        check_identity(&Times, &[true, false]);
    }

    #[test]
    fn min_max_identities_are_extremes() {
        check_identity(&Min, &[0.5f32, -8.0, 1e30]);
        check_identity(&Max, &[u16::MAX, 0, 42]);
    }

    #[test]
    fn monoid_fn_custom() {
        let longest = MonoidFn::new(|a: u32, b: u32| if a >= b { a } else { b }, 0);
        assert_eq!(longest.combine(3, 9), 9);
        check_identity(&longest, &[0, 7, u32::MAX]);
    }
}
