//! Named standard operators (the GraphBLAS built-in function library).
//!
//! Each operator is a zero-sized struct implementing [`BinaryOp`] or
//! [`UnaryOp`]; zero-sized types monomorphize to direct calls with no
//! indirection, which matters because these run once per nonzero in the
//! innermost loops of every operation.

use super::{BinaryOp, UnaryOp};

/// Numeric-ish scalars usable with the named operators.
///
/// Deliberately minimal: just the constants the standard monoids need.
/// `bool` participates with `or` as addition and `and` as multiplication,
/// so boolean semirings (reachability) come for free.
pub trait Scalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `a + b` in the scalar's natural arithmetic (`or` for bool).
    fn nat_add(a: Self, b: Self) -> Self;
    /// `a * b` in the scalar's natural arithmetic (`and` for bool).
    fn nat_mul(a: Self, b: Self) -> Self;
    /// Largest representable value (identity of `min`).
    fn max_value() -> Self;
    /// Smallest representable value (identity of `max`).
    fn min_value() -> Self;
    /// `min(a, b)` under the scalar's natural order.
    fn nat_min(a: Self, b: Self) -> Self;
    /// `max(a, b)` under the scalar's natural order.
    fn nat_max(a: Self, b: Self) -> Self;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            #[inline(always)] fn zero() -> Self { 0 }
            #[inline(always)] fn one() -> Self { 1 }
            #[inline(always)] fn nat_add(a: Self, b: Self) -> Self { a.wrapping_add(b) }
            #[inline(always)] fn nat_mul(a: Self, b: Self) -> Self { a.wrapping_mul(b) }
            #[inline(always)] fn max_value() -> Self { <$t>::MAX }
            #[inline(always)] fn min_value() -> Self { <$t>::MIN }
            #[inline(always)] fn nat_min(a: Self, b: Self) -> Self { a.min(b) }
            #[inline(always)] fn nat_max(a: Self, b: Self) -> Self { a.max(b) }
        }
    )*};
}
impl_scalar_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            #[inline(always)] fn zero() -> Self { 0.0 }
            #[inline(always)] fn one() -> Self { 1.0 }
            #[inline(always)] fn nat_add(a: Self, b: Self) -> Self { a + b }
            #[inline(always)] fn nat_mul(a: Self, b: Self) -> Self { a * b }
            #[inline(always)] fn max_value() -> Self { <$t>::INFINITY }
            #[inline(always)] fn min_value() -> Self { <$t>::NEG_INFINITY }
            #[inline(always)] fn nat_min(a: Self, b: Self) -> Self { a.min(b) }
            #[inline(always)] fn nat_max(a: Self, b: Self) -> Self { a.max(b) }
        }
    )*};
}
impl_scalar_float!(f32, f64);

impl Scalar for bool {
    #[inline(always)]
    fn zero() -> Self {
        false
    }
    #[inline(always)]
    fn one() -> Self {
        true
    }
    #[inline(always)]
    fn nat_add(a: Self, b: Self) -> Self {
        a || b
    }
    #[inline(always)]
    fn nat_mul(a: Self, b: Self) -> Self {
        a && b
    }
    #[inline(always)]
    fn max_value() -> Self {
        true
    }
    #[inline(always)]
    fn min_value() -> Self {
        false
    }
    #[inline(always)]
    fn nat_min(a: Self, b: Self) -> Self {
        a && b
    }
    #[inline(always)]
    fn nat_max(a: Self, b: Self) -> Self {
        a || b
    }
}

/// `Plus(a, b) = a + b` (logical OR on bool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Plus;
impl<T: Scalar> BinaryOp<T, T, T> for Plus {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> T {
        T::nat_add(a, b)
    }
}

/// `Times(a, b) = a * b` (logical AND on bool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Times;
impl<T: Scalar> BinaryOp<T, T, T> for Times {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> T {
        T::nat_mul(a, b)
    }
}

/// `Min(a, b)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;
impl<T: Scalar> BinaryOp<T, T, T> for Min {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> T {
        T::nat_min(a, b)
    }
}

/// `Max(a, b)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;
impl<T: Scalar> BinaryOp<T, T, T> for Max {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> T {
        T::nat_max(a, b)
    }
}

/// `First(a, _) = a` — GraphBLAS `GrB_FIRST`; with a min/any monoid this
/// builds the "parent" semirings BFS uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct First;
impl<A: Copy + Send + Sync, B> BinaryOp<A, B, A> for First {
    #[inline(always)]
    fn eval(&self, a: A, _b: B) -> A {
        a
    }
}

/// `Second(_, b) = b` — GraphBLAS `GrB_SECOND`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Second;
impl<A, B: Copy + Send + Sync> BinaryOp<A, B, B> for Second {
    #[inline(always)]
    fn eval(&self, _a: A, b: B) -> B {
        b
    }
}

/// `Pair(_, _) = 1` — GraphBLAS `GxB_PAIR`; with a plus monoid it counts
/// intersections (the triangle-counting multiply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pair;
impl<A, B, C: Scalar> BinaryOp<A, B, C> for Pair {
    #[inline(always)]
    fn eval(&self, _a: A, _b: B) -> C {
        C::one()
    }
}

/// Logical OR on anything truthy (here: bool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LOr;
impl BinaryOp<bool, bool, bool> for LOr {
    #[inline(always)]
    fn eval(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// Logical AND.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LAnd;
impl BinaryOp<bool, bool, bool> for LAnd {
    #[inline(always)]
    fn eval(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// `Minus(a, b) = a - b` — GraphBLAS `GrB_MINUS` (wrapping on integers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Minus;
impl BinaryOp<f64, f64, f64> for Minus {
    #[inline(always)]
    fn eval(&self, a: f64, b: f64) -> f64 {
        a - b
    }
}
impl BinaryOp<f32, f32, f32> for Minus {
    #[inline(always)]
    fn eval(&self, a: f32, b: f32) -> f32 {
        a - b
    }
}
impl BinaryOp<i64, i64, i64> for Minus {
    #[inline(always)]
    fn eval(&self, a: i64, b: i64) -> i64 {
        a.wrapping_sub(b)
    }
}

/// `Div(a, b) = a / b` — GraphBLAS `GrB_DIV` (floating point only; the
/// integer semantics of `GrB_DIV` are a known portability trap, so this
/// library simply does not offer them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Div;
impl BinaryOp<f64, f64, f64> for Div {
    #[inline(always)]
    fn eval(&self, a: f64, b: f64) -> f64 {
        a / b
    }
}
impl BinaryOp<f32, f32, f32> for Div {
    #[inline(always)]
    fn eval(&self, a: f32, b: f32) -> f32 {
        a / b
    }
}

/// Comparison ops returning `bool`: `GrB_GT`, `GrB_LT`, `GrB_EQ`,
/// `GrB_NE`. Useful as the `keep` predicate of `select`/`eWiseMult`
/// filters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gt;
impl<T: Scalar + PartialOrd> BinaryOp<T, T, bool> for Gt {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> bool {
        a > b
    }
}

/// Strictly-less comparison, `GrB_LT`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lt;
impl<T: Scalar + PartialOrd> BinaryOp<T, T, bool> for Lt {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> bool {
        a < b
    }
}

/// Equality comparison, `GrB_EQ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Eq;
impl<T: Scalar> BinaryOp<T, T, bool> for Eq {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> bool {
        a == b
    }
}

/// Inequality comparison, `GrB_NE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ne;
impl<T: Scalar> BinaryOp<T, T, bool> for Ne {
    #[inline(always)]
    fn eval(&self, a: T, b: T) -> bool {
        a != b
    }
}

/// Identity unary op, `GrB_IDENTITY`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;
impl<T: Copy + Send + Sync> UnaryOp<T, T> for Identity {
    #[inline(always)]
    fn eval(&self, a: T) -> T {
        a
    }
}

/// Additive inverse, `GrB_AINV`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Negate;
impl UnaryOp<f64, f64> for Negate {
    #[inline(always)]
    fn eval(&self, a: f64) -> f64 {
        -a
    }
}
impl UnaryOp<i64, i64> for Negate {
    #[inline(always)]
    fn eval(&self, a: i64) -> i64 {
        -a
    }
}

/// Multiplicative inverse, `GrB_MINV` (floating point).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recip;
impl UnaryOp<f64, f64> for Recip {
    #[inline(always)]
    fn eval(&self, a: f64) -> f64 {
        1.0 / a
    }
}

/// Absolute value, `GrB_ABS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Abs;
impl UnaryOp<f64, f64> for Abs {
    #[inline(always)]
    fn eval(&self, a: f64) -> f64 {
        a.abs()
    }
}
impl UnaryOp<i64, i64> for Abs {
    #[inline(always)]
    fn eval(&self, a: i64) -> i64 {
        a.abs()
    }
}

/// Constant-one unary op, `GxB_ONE`: structural "forget the values".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct One;
impl<T, C: Scalar> UnaryOp<T, C> for One {
    #[inline(always)]
    fn eval(&self, _a: T) -> C {
        C::one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_numeric() {
        assert_eq!(Plus.eval(2i64, 3i64), 5);
        assert_eq!(Times.eval(2.0f64, 3.0f64), 6.0);
    }

    #[test]
    fn bool_algebra_is_or_and() {
        assert!(Plus.eval(true, false));
        assert!(!Plus.eval(false, false));
        assert!(Times.eval(true, true));
        assert!(!Times.eval(true, false));
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(Min.eval(f64::INFINITY, 3.0), 3.0);
        assert_eq!(Max.eval(i32::MIN, -7), -7);
        assert_eq!(<i64 as Scalar>::max_value(), i64::MAX);
    }

    #[test]
    fn first_second_pair() {
        assert_eq!(First.eval(1u32, 9.5f64), 1);
        assert_eq!(Second.eval(1u32, 9.5f64), 9.5);
        let c: u64 = Pair.eval(123i32, 4.5f32);
        assert_eq!(c, 1);
    }

    #[test]
    fn unary_builtins() {
        assert_eq!(Identity.eval(42u8), 42);
        assert_eq!(Negate.eval(2.5f64), -2.5);
        assert_eq!(Negate.eval(-7i64), 7);
    }

    #[test]
    fn wrapping_int_add_does_not_panic() {
        assert_eq!(Plus.eval(u8::MAX, 1u8), 0);
    }

    #[test]
    fn minus_div_ops() {
        assert_eq!(Minus.eval(5.0f64, 3.0f64), 2.0);
        assert_eq!(Minus.eval(i64::MIN, 1i64), i64::MAX);
        assert_eq!(Div.eval(6.0f64, 3.0f64), 2.0);
        assert!(Div.eval(1.0f64, 0.0f64).is_infinite());
    }

    #[test]
    fn comparison_ops() {
        assert!(Gt.eval(2.0f64, 1.0f64));
        assert!(!Gt.eval(1.0f64, 1.0f64));
        assert!(Lt.eval(1u32, 2u32));
        assert!(Eq.eval(3i64, 3i64));
        assert!(Ne.eval(true, false));
    }

    #[test]
    fn more_unary_ops() {
        assert_eq!(Recip.eval(4.0f64), 0.25);
        assert_eq!(Abs.eval(-7i64), 7);
        assert_eq!(Abs.eval(-2.5f64), 2.5);
        let one: u32 = One.eval(-123.456f64);
        assert_eq!(one, 1);
    }
}
