//! Semirings: the algebra `SpMSpV`, `SpMV` and `MxM` compute over.
//!
//! "A GraphBLAS semiring allows overloading the scalar multiplication and
//! addition with user defined binary operators. A semiring also has to
//! contain an additive identity element." (§III)

use super::monoid::Monoid;
use super::ops::{Max, Min, Pair, Plus, Scalar, Second, Times};
use super::BinaryOp;

/// A GraphBLAS semiring: an *add* monoid over the output domain `C` and a
/// *multiply* operator `A × B -> C`.
///
/// `A` is the domain of the left operand (vector in `x A`, matrix in `A x`),
/// `B` of the right, `C` of the result. The structure is a plain pair so
/// arbitrary combinations can be assembled on the fly:
///
/// ```
/// use gblas_core::algebra::{Semiring, Min, Plus};
/// // tropical (shortest-path) semiring: add = min, multiply = +
/// let tropical: Semiring<Min, Plus> = Semiring::new(Min, Plus);
/// # let _ = tropical;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Semiring<AddM, MulOp> {
    /// Additive monoid (must be associative with identity).
    pub add: AddM,
    /// Multiplicative binary operator.
    pub mul: MulOp,
}

impl<AddM, MulOp> Semiring<AddM, MulOp> {
    /// Assemble a semiring from its two halves.
    pub fn new(add: AddM, mul: MulOp) -> Self {
        Semiring { add, mul }
    }

    /// The additive identity ("zero") of the semiring for output domain `C`.
    #[inline(always)]
    pub fn zero<C>(&self) -> C
    where
        AddM: Monoid<C>,
    {
        self.add.identity()
    }

    /// `a ⊗ b`.
    #[inline(always)]
    pub fn multiply<A, B, C>(&self, a: A, b: B) -> C
    where
        MulOp: BinaryOp<A, B, C>,
    {
        self.mul.eval(a, b)
    }

    /// `a ⊕ b`.
    #[inline(always)]
    pub fn accumulate<C>(&self, a: C, b: C) -> C
    where
        AddM: Monoid<C>,
    {
        self.add.combine(a, b)
    }
}

/// Ready-made semirings covering the classic graph algorithms.
pub mod semirings {
    use super::*;

    /// Conventional arithmetic `(+, ×)` over any [`Scalar`]; PageRank,
    /// counting walks, numeric SpGEMM.
    pub fn plus_times<T: Scalar>() -> Semiring<Plus, Times> {
        Semiring::new(Plus, Times)
    }

    /// `(+, ×)` over `f64` (the most common instantiation, named for
    /// convenience in examples and docs).
    pub fn plus_times_f64() -> Semiring<Plus, Times> {
        plus_times::<f64>()
    }

    /// Tropical `(min, +)`: single-source shortest paths via repeated
    /// SpMSpV/SpMV.
    pub fn min_plus() -> Semiring<Min, Plus> {
        Semiring::new(Min, Plus)
    }

    /// `(max, +)`: critical-path / longest-path relaxations on DAGs.
    pub fn max_plus() -> Semiring<Max, Plus> {
        Semiring::new(Max, Plus)
    }

    /// Boolean `(or, and)`: plain reachability — the BFS "hello world"
    /// (§III: the operations "can be composed to implement an efficient
    /// breadth-first search").
    pub fn or_and() -> Semiring<Plus, Times> {
        // On `bool`, `Plus` *is* logical OR and `Times` *is* logical AND
        // (see `Scalar for bool`), so this shares the numeric structs.
        Semiring::new(Plus, Times)
    }

    /// Parent semiring `(min, second)`: the multiply hands through the
    /// candidate parent id carried by the frontier, the min picks a
    /// deterministic winner. Used by the BFS tree construction, mirroring
    /// the paper's SpMSpV which stores "the row index as value"
    /// (Listing 7, line 25).
    pub fn min_second() -> Semiring<Min, Second> {
        Semiring::new(Min, Second)
    }

    /// `(plus, pair)`: counts structural intersections; with a mask this is
    /// the triangle-counting semiring.
    pub fn plus_pair() -> Semiring<Plus, Pair> {
        Semiring::new(Plus, Pair)
    }
}

#[cfg(test)]
mod tests {
    use super::semirings::*;

    #[test]
    fn plus_times_behaves_like_arithmetic() {
        let s = plus_times_f64();
        let z: f64 = s.zero();
        assert_eq!(z, 0.0);
        let prod: f64 = s.multiply(3.0f64, 4.0f64);
        assert_eq!(prod, 12.0);
        assert_eq!(s.accumulate(prod, 1.0), 13.0);
    }

    #[test]
    fn tropical_zero_is_infinity() {
        let s = min_plus();
        let z: f64 = s.zero();
        assert_eq!(z, f64::INFINITY);
        let relaxed: f64 = s.multiply(2.0f64, 3.0f64); // path extension
        assert_eq!(s.accumulate(relaxed, 10.0), 5.0);
    }

    #[test]
    fn boolean_reachability() {
        let s = or_and();
        let z: bool = s.zero();
        assert!(!z);
        let reach: bool = s.multiply(true, true);
        assert!(s.accumulate(reach, false));
    }

    #[test]
    fn parent_semiring_keeps_minimum_parent() {
        let s = min_second();
        // multiply(frontier-parent-id, edge) -> candidate parent id
        let c1: u64 = s.multiply(false, 7u64);
        let c2: u64 = s.multiply(false, 3u64);
        assert_eq!(s.accumulate(c1, c2), 3);
        let z: u64 = s.zero();
        assert_eq!(z, u64::MAX);
    }

    #[test]
    fn plus_pair_counts() {
        let s = plus_pair();
        let one: u64 = s.multiply(9.0f64, 4.0f64);
        assert_eq!(one, 1);
        assert_eq!(s.accumulate(one, 5u64), 6);
    }
}
