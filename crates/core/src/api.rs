//! A GraphBLAS-C-flavoured front-end: masks, accumulators, descriptors.
//!
//! The paper targets "the upcoming GraphBLAS specification and the C
//! language API \[which\] contains approximately ten distinct functions"
//! (§III). The modules under [`crate::ops`] implement the kernels; this
//! module composes them into the C API's calling convention:
//!
//! ```text
//! w⟨mask⟩ = w accum op(args...)        // GrB_*(w, mask, accum, op, args, desc)
//! ```
//!
//! with the standard write semantics: the operation result `t` is merged
//! into `w` under the (possibly complemented) mask, optionally combined
//! with the old value by the `accum` binary operator, and with
//! `GrB_REPLACE` deleting `w`'s entries outside the mask.

use crate::algebra::{BinaryOp, Monoid, Semiring, UnaryOp};
use crate::container::{CsrMatrix, SparseVec};
use crate::error::Result;
use crate::mask::VecMask;
use crate::ops::spmspv::{spmspv_semiring_masked, SpMSpVOpts};
use crate::par::{Counters, ExecCtx};

/// Execution descriptor (the subset of `GrB_Descriptor` the library
/// honours).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Descriptor {
    /// Complement the mask (`GrB_COMP`).
    pub mask_complement: bool,
    /// Clear entries of the output that fall outside the mask
    /// (`GrB_REPLACE`).
    pub replace: bool,
}

impl Descriptor {
    /// The all-defaults descriptor.
    pub fn none() -> Self {
        Self::default()
    }

    /// With the mask complemented.
    pub fn comp() -> Self {
        Descriptor { mask_complement: true, ..Self::default() }
    }

    /// With replace semantics.
    pub fn replace() -> Self {
        Descriptor { replace: true, ..Self::default() }
    }
}

/// Apply `desc.mask_complement` to an optional mask.
fn effective_mask<'a>(mask: Option<&VecMask<'a>>, desc: Descriptor) -> Option<VecMask<'a>> {
    mask.map(|m| if desc.mask_complement { m.complement() } else { *m })
}

/// The standard GraphBLAS write-back: merge result `t` into `w` under
/// `mask`/`accum`/`replace`.
fn write_back<T: Copy>(
    w: &mut SparseVec<T>,
    t: SparseVec<T>,
    mask: Option<&VecMask<'_>>,
    accum: Option<&impl BinaryOp<T, T, T>>,
    replace: bool,
    counters: &mut Counters,
) -> Result<()> {
    let allowed = |i: usize, c: &mut Counters| mask.map(|m| m.allows(i, c)).unwrap_or(true);
    let (wi, wv) = (w.indices(), w.values());
    let (ti, tv) = (t.indices(), t.values());
    let mut out_i = Vec::with_capacity(wi.len() + ti.len());
    let mut out_v = Vec::with_capacity(wi.len() + ti.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < wi.len() || q < ti.len() {
        counters.elems += 1;
        if q >= ti.len() || (p < wi.len() && wi[p] < ti[q]) {
            // only the old value exists here
            let i = wi[p];
            let keep = if replace { allowed(i, counters) } else { true };
            if keep {
                out_i.push(i);
                out_v.push(wv[p]);
            }
            p += 1;
        } else if p >= wi.len() || ti[q] < wi[p] {
            // only the new value exists here
            let i = ti[q];
            if allowed(i, counters) {
                out_i.push(i);
                out_v.push(tv[q]);
            }
            q += 1;
        } else {
            // both exist
            let i = wi[p];
            if allowed(i, counters) {
                let v = match accum {
                    Some(op) => {
                        counters.flops += 1;
                        op.eval(wv[p], tv[q])
                    }
                    None => tv[q],
                };
                out_i.push(i);
                out_v.push(v);
            } else if !replace {
                out_i.push(i);
                out_v.push(wv[p]);
            }
            p += 1;
            q += 1;
        }
    }
    *w = SparseVec::from_sorted(w.capacity(), out_i, out_v)?;
    Ok(())
}

/// `w⟨mask⟩ = w accum (x ⊗ A)` — GraphBLAS `GrB_vxm` (the paper's SpMSpV
/// orientation).
#[allow(clippy::too_many_arguments)]
pub fn vxm<T, AddM, MulOp, Acc>(
    w: &mut SparseVec<T>,
    mask: Option<&VecMask<'_>>,
    accum: Option<&Acc>,
    ring: &Semiring<AddM, MulOp>,
    x: &SparseVec<T>,
    a: &CsrMatrix<T>,
    desc: Descriptor,
    ctx: &ExecCtx,
) -> Result<()>
where
    T: Copy + Send + Sync + 'static,
    AddM: Monoid<T>,
    MulOp: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let em = effective_mask(mask, desc);
    let t = spmspv_semiring_masked(a, x, ring, em.as_ref(), SpMSpVOpts::default(), ctx)?.vector;
    let mut c = Counters::default();
    write_back(w, t, em.as_ref(), accum, desc.replace, &mut c)?;
    ctx.record("write-back", |pc| pc.merge(&c));
    Ok(())
}

/// `w⟨mask⟩ = w accum (A ⊗ x)` — GraphBLAS `GrB_mxv`.
#[allow(clippy::too_many_arguments)]
pub fn mxv<T, AddM, MulOp, Acc>(
    w: &mut SparseVec<T>,
    mask: Option<&VecMask<'_>>,
    accum: Option<&Acc>,
    ring: &Semiring<AddM, MulOp>,
    a: &CsrMatrix<T>,
    x: &SparseVec<T>,
    desc: Descriptor,
    ctx: &ExecCtx,
) -> Result<()>
where
    T: Copy + Send + Sync + PartialEq + 'static,
    AddM: Monoid<T>,
    MulOp: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let em = effective_mask(mask, desc);
    let raw = crate::ops::mxv::mxv_sparse(a, x, ring, ctx)?;
    let t = match em.as_ref() {
        Some(m) => {
            let mut c = Counters::default();
            let filtered = m.filter(&raw, &mut c);
            ctx.record("mask", |pc| pc.merge(&c));
            filtered
        }
        None => raw,
    };
    let mut c = Counters::default();
    write_back(w, t, em.as_ref(), accum, desc.replace, &mut c)?;
    ctx.record("write-back", |pc| pc.merge(&c));
    Ok(())
}

/// `w⟨mask⟩ = w accum op(u)` — GraphBLAS `GrB_apply` on vectors.
#[allow(clippy::too_many_arguments)]
pub fn apply<T, Op, Acc>(
    w: &mut SparseVec<T>,
    mask: Option<&VecMask<'_>>,
    accum: Option<&Acc>,
    op: &Op,
    u: &SparseVec<T>,
    desc: Descriptor,
    ctx: &ExecCtx,
) -> Result<()>
where
    T: Copy + Send + Sync,
    Op: UnaryOp<T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let em = effective_mask(mask, desc);
    let t = crate::ops::apply::apply_vec(u, op, ctx);
    let mut c = Counters::default();
    write_back(w, t, em.as_ref(), accum, desc.replace, &mut c)?;
    ctx.record("write-back", |pc| pc.merge(&c));
    Ok(())
}

/// `w⟨mask⟩ = w accum (u .* v)` — GraphBLAS `GrB_eWiseMult` on vectors.
#[allow(clippy::too_many_arguments)]
pub fn ewise_mult<T, Op, Acc>(
    w: &mut SparseVec<T>,
    mask: Option<&VecMask<'_>>,
    accum: Option<&Acc>,
    op: &Op,
    u: &SparseVec<T>,
    v: &SparseVec<T>,
    desc: Descriptor,
    ctx: &ExecCtx,
) -> Result<()>
where
    T: Copy + Send + Sync,
    Op: BinaryOp<T, T, T>,
    Acc: BinaryOp<T, T, T>,
{
    let em = effective_mask(mask, desc);
    let t: SparseVec<T> = crate::ops::ewise::ewise_mult(u, v, op, ctx)?;
    let mut c = Counters::default();
    write_back(w, t, em.as_ref(), accum, desc.replace, &mut c)?;
    ctx.record("write-back", |pc| pc.merge(&c));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{semirings, Plus, Times};
    use crate::container::DenseVec;

    fn v(cap: usize, entries: &[(usize, f64)]) -> SparseVec<f64> {
        SparseVec::from_pairs(cap, entries.to_vec()).unwrap()
    }

    #[test]
    fn vxm_plain_replaces_w() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let x = v(4, &[(0, 1.0), (1, 1.0)]);
        let mut w = v(4, &[(3, 9.0)]);
        let ctx = ExecCtx::serial();
        vxm(
            &mut w,
            None,
            None::<&Plus>,
            &semirings::plus_times_f64(),
            &x,
            &a,
            Descriptor::none(),
            &ctx,
        )
        .unwrap();
        // no mask, no accum: t merged over w; w[3] untouched (t has no entry there)
        assert_eq!(w.indices(), &[1, 2, 3]);
        assert_eq!(w.values(), &[2.0, 3.0, 9.0]);
    }

    #[test]
    fn vxm_with_accum_combines_old_and_new() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 5.0)]).unwrap();
        let x = v(3, &[(0, 1.0)]);
        let mut w = v(3, &[(1, 10.0)]);
        let ctx = ExecCtx::serial();
        vxm(
            &mut w,
            None,
            Some(&Plus),
            &semirings::plus_times_f64(),
            &x,
            &a,
            Descriptor::none(),
            &ctx,
        )
        .unwrap();
        assert_eq!(w.values(), &[15.0]);
    }

    #[test]
    fn replace_clears_outside_mask() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0)]).unwrap();
        let x = v(4, &[(0, 1.0)]);
        let mut w = v(4, &[(2, 7.0), (3, 8.0)]);
        let bits = DenseVec::from_vec(vec![false, true, true, false]);
        let mask = VecMask::dense(&bits);
        let ctx = ExecCtx::serial();
        vxm(
            &mut w,
            Some(&mask),
            None::<&Plus>,
            &semirings::plus_times_f64(),
            &x,
            &a,
            Descriptor::replace(),
            &ctx,
        )
        .unwrap();
        // mask allows {1, 2}: new value at 1 written, old value at 2 kept,
        // old value at 3 (outside mask) deleted by replace.
        assert_eq!(w.indices(), &[1, 2]);
        assert_eq!(w.values(), &[1.0, 7.0]);
    }

    #[test]
    fn complement_descriptor_flips_mask() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 4.0), (0, 2, 5.0)]).unwrap();
        let x = v(3, &[(0, 1.0)]);
        let bits = DenseVec::from_vec(vec![false, true, false]);
        let mask = VecMask::dense(&bits);
        let ctx = ExecCtx::serial();
        let mut w1 = SparseVec::new(3);
        vxm(
            &mut w1,
            Some(&mask),
            None::<&Plus>,
            &semirings::plus_times_f64(),
            &x,
            &a,
            Descriptor::none(),
            &ctx,
        )
        .unwrap();
        assert_eq!(w1.indices(), &[1]);
        let mut w2 = SparseVec::new(3);
        vxm(
            &mut w2,
            Some(&mask),
            None::<&Plus>,
            &semirings::plus_times_f64(),
            &x,
            &a,
            Descriptor::comp(),
            &ctx,
        )
        .unwrap();
        assert_eq!(w2.indices(), &[2]);
    }

    #[test]
    fn mxv_and_vxm_are_transpose_duals() {
        let a = crate::gen::erdos_renyi(60, 4, 501);
        let at = crate::ops::transpose::transpose(&a, &ExecCtx::serial()).unwrap();
        let x = crate::gen::random_sparse_vec(60, 10, 502);
        let ctx = ExecCtx::serial();
        let mut w1 = SparseVec::new(60);
        vxm(
            &mut w1,
            None,
            None::<&Plus>,
            &semirings::plus_times_f64(),
            &x,
            &a,
            Descriptor::none(),
            &ctx,
        )
        .unwrap();
        let mut w2 = SparseVec::new(60);
        mxv(
            &mut w2,
            None,
            None::<&Plus>,
            &semirings::plus_times_f64(),
            &at,
            &x,
            Descriptor::none(),
            &ctx,
        )
        .unwrap();
        assert_eq!(w1.indices(), w2.indices());
        for (p, q) in w1.values().iter().zip(w2.values()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_with_mask_and_accum() {
        let u = v(4, &[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let mut w = v(4, &[(1, 100.0)]);
        let bits = DenseVec::from_vec(vec![true, true, false, false]);
        let mask = VecMask::dense(&bits);
        let ctx = ExecCtx::serial();
        apply(&mut w, Some(&mask), Some(&Plus), &|x: f64| x * 10.0, &u, Descriptor::none(), &ctx)
            .unwrap();
        // allowed {0,1}: w[0] = 10, w[1] = 100 + 20; index 2 masked out.
        assert_eq!(w.indices(), &[0, 1]);
        assert_eq!(w.values(), &[10.0, 120.0]);
    }

    #[test]
    fn ewise_mult_api() {
        let u = v(4, &[(0, 2.0), (2, 3.0)]);
        let vv = v(4, &[(0, 5.0), (3, 7.0)]);
        let mut w = SparseVec::new(4);
        let ctx = ExecCtx::serial();
        ewise_mult(&mut w, None, None::<&Plus>, &Times, &u, &vv, Descriptor::none(), &ctx).unwrap();
        assert_eq!(w.indices(), &[0]);
        assert_eq!(w.values(), &[10.0]);
    }

    #[test]
    fn bfs_written_against_the_c_style_api() {
        // The "hello world" again, this time through vxm with mask +
        // replace, as the GraphBLAS C examples write it.
        let a =
            CsrMatrix::from_triplets(5, 5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 1.0)])
                .unwrap();
        let ctx = ExecCtx::serial();
        let mut visited = DenseVec::filled(5, false);
        visited[0] = true;
        let mut frontier = v(5, &[(0, 1.0)]);
        let mut levels = vec![-1i32; 5];
        levels[0] = 0;
        let mut level = 0;
        while frontier.nnz() > 0 {
            level += 1;
            let mask = VecMask::dense(&visited);
            let mut next = SparseVec::new(5);
            vxm(
                &mut next,
                Some(&mask),
                None::<&Plus>,
                &semirings::plus_times_f64(),
                &frontier,
                &a,
                Descriptor::comp(), // not-yet-visited
                &ctx,
            )
            .unwrap();
            let reached: Vec<usize> = next.indices().to_vec();
            for &i in &reached {
                visited[i] = true;
                levels[i] = level;
            }
            frontier = next;
        }
        assert_eq!(levels, vec![0, 1, 2, 3, 1]);
    }
}
