//! The backend trait: one algorithm layer, many execution substrates.
//!
//! The paper's central structural lesson (§IV) is that *algorithms* should
//! be written once against GraphBLAS primitives while *backends* encode
//! locality — its Apply1/Assign1 versions are the same algorithm text as
//! Apply2/Assign2, differing only in how the backend maps iterations to
//! locales. [`GblasBackend`] makes that split a compile-time contract: a
//! graph algorithm is a single generic function over `B: GblasBackend`,
//! and the choice of shared-memory ([`SharedBackend`]) or simulated
//! distributed memory (`gblas_dist::backend::DistBackend`) is made at the
//! call site, exactly like CombBLAS 2.0's process/thread backends.
//!
//! What lives on which side of the line:
//!
//! * **algorithm layer** — iteration structure, frontier logic,
//!   convergence tests, per-vertex driver state (levels, labels,
//!   distances). Driver state is small and global by construction; the
//!   distributed backend treats it as replicated control state, which is
//!   what the paper's Chapel driver loops do implicitly.
//! * **backend layer** — containers ([`GblasBackend::Matrix`],
//!   [`GblasBackend::SparseVec`], [`GblasBackend::DenseVec`]), the
//!   primitive ops (SpMSpV / SpMV / SpGEMM / transpose / select / map /
//!   reduce) with masks and semirings, and all cost accounting: the
//!   distributed backend threads `CommStrategy`, `SpMSpVOpts`, and the
//!   `SimReport` ledger through every call; the shared backend charges its
//!   instrumented `ExecCtx`.
//!
//! Masks cross the boundary as [`MaskSpec`] — a dense boolean vector in
//! the backend's own layout plus a complement flag — so `q⟨¬visited⟩ =
//! Aᵀq` reads identically whether the bits live in one address space or
//! are block-distributed with the output.

use crate::algebra::{BinaryOp, ComMonoid, Monoid, Scalar, Semiring};
use crate::container::{CsrMatrix, DenseVec, SparseFrontier, SparseVec};
use crate::error::Result;
use crate::mask::VecMask;
use crate::ops;
use crate::ops::spmspv::SpMSpVOpts;
use crate::par::ExecCtx;

/// A dense boolean output mask in the backend's native vector layout.
///
/// `complement = true` is GraphBLAS `GrB_COMP`: allow where the bit is
/// *false* (BFS's "not yet visited").
#[derive(Debug, Clone, Copy)]
pub struct MaskSpec<'a, V> {
    /// The mask bits, in the backend's dense-vector representation.
    pub bits: &'a V,
    /// Allow where the bit is `false` instead of `true`.
    pub complement: bool,
}

impl<'a, V> MaskSpec<'a, V> {
    /// Allow output entries where the bit is `true`.
    pub fn new(bits: &'a V) -> Self {
        MaskSpec { bits, complement: false }
    }

    /// Allow output entries where the bit is `false`.
    pub fn complement(bits: &'a V) -> Self {
        MaskSpec { bits, complement: true }
    }
}

/// A GraphBLAS execution backend: containers plus the primitive operation
/// set, with all locality and accounting decisions behind the interface.
///
/// Predicates and map functions always receive **global** coordinates —
/// the distributed backend translates block-local positions before calling
/// them, so algorithm code never sees the partition.
pub trait GblasBackend {
    /// Sparse matrix in this backend's layout.
    type Matrix<T: Scalar>;
    /// Sparse vector in this backend's layout.
    type SparseVec<T: Scalar>;
    /// Dense vector in this backend's layout.
    type DenseVec<T: Scalar>;
    /// Multi-source frontier (the CombBLAS 2.0 `n×k` sparse frontier
    /// matrix): `k` per-source sparse vectors in this backend's layout.
    type Frontier<T: Scalar>;

    /// Human-readable backend name (for traces and error messages).
    fn name(&self) -> &'static str;

    // ---- matrix queries ----------------------------------------------

    /// Number of matrix rows.
    fn mat_nrows<T: Scalar>(&self, a: &Self::Matrix<T>) -> usize;
    /// Number of matrix columns.
    fn mat_ncols<T: Scalar>(&self, a: &Self::Matrix<T>) -> usize;
    /// Number of stored entries.
    fn mat_nnz<T: Scalar>(&self, a: &Self::Matrix<T>) -> usize;

    // ---- structural matrix ops ---------------------------------------

    /// `Apply` with coordinates: `B[i,j] = f(i, j, A[i,j])` over stored
    /// entries, possibly changing the value type. Local on every backend.
    fn mat_map<T: Scalar, U: Scalar>(
        &self,
        a: &Self::Matrix<T>,
        f: &(impl Fn(usize, usize, T) -> U + Sync),
    ) -> Result<Self::Matrix<U>>;

    /// `GrB_select`: keep the stored entries where `pred(i, j, v)` holds.
    fn mat_select<T: Scalar>(
        &self,
        a: &Self::Matrix<T>,
        pred: &(impl Fn(usize, usize, T) -> bool + Sync),
    ) -> Result<Self::Matrix<T>>;

    /// `B = Aᵀ`.
    fn mat_transpose<T: Scalar>(&self, a: &Self::Matrix<T>) -> Result<Self::Matrix<T>>;

    /// Masked SpGEMM: `C⟨M⟩ = A ⊗ B` (structural mask intersection).
    fn mxm_masked<A, B, C, AddM, MulOp, M>(
        &self,
        a: &Self::Matrix<A>,
        b: &Self::Matrix<B>,
        ring: &Semiring<AddM, MulOp>,
        mask: Option<&Self::Matrix<M>>,
    ) -> Result<Self::Matrix<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        M: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>;

    /// Row-wise reduction `y[i] = ⊕_j A[i,j]`, returned as a *global*
    /// driver-side vector (identity for empty rows). Block partials are
    /// combined in ascending column-block order, i.e. the serial fold
    /// order — exact for the integer-valued data the algorithms feed it.
    fn reduce_rows<T: Scalar, M>(&self, a: &Self::Matrix<T>, monoid: &M) -> Result<Vec<T>>
    where
        M: Monoid<T>;

    /// Whole-matrix reduction `⊕_{ij} A[i,j]` with a commutative monoid.
    fn reduce_mat<T: Scalar, M>(&self, a: &Self::Matrix<T>, monoid: &M) -> Result<T>
    where
        M: ComMonoid<T>;

    // ---- vector kernels ----------------------------------------------

    /// BFS kernel: `y⟨mask⟩ = x Aᵀ`-structure with first-writer-wins
    /// parents. The frontier's values are ignored; the output stores, per
    /// reached column, the global row id of its first visitor.
    fn spmspv_first_visitor<T: Scalar>(
        &self,
        a: &Self::Matrix<T>,
        x: &Self::SparseVec<usize>,
        mask: Option<MaskSpec<'_, Self::DenseVec<bool>>>,
        opts: SpMSpVOpts,
    ) -> Result<Self::SparseVec<usize>>;

    /// General masked SpMSpV: `y[j]⟨mask⟩ = ⊕_i x[i] ⊗ A[i,j]`.
    fn spmspv_semiring<A, B, C, AddM, MulOp>(
        &self,
        a: &Self::Matrix<B>,
        x: &Self::SparseVec<A>,
        ring: &Semiring<AddM, MulOp>,
        mask: Option<MaskSpec<'_, Self::DenseVec<bool>>>,
        opts: SpMSpVOpts,
    ) -> Result<Self::SparseVec<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>;

    /// Dense SpMV in the column orientation the algorithms use:
    /// `y[j] = ⊕_i x[i] ⊗ A[i,j]` (`y = x A`).
    fn spmv<A, B, C, AddM, MulOp>(
        &self,
        a: &Self::Matrix<B>,
        x: &Self::DenseVec<A>,
        ring: &Semiring<AddM, MulOp>,
    ) -> Result<Self::DenseVec<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>;

    // ---- batched multi-source kernels --------------------------------

    /// Build an `capacity×k` frontier from per-source entry lists
    /// (unsorted; duplicate indices within one source are an error).
    fn frontier_from_entries<T: Scalar>(
        &self,
        capacity: usize,
        entries: Vec<Vec<(usize, T)>>,
    ) -> Result<Self::Frontier<T>>;

    /// Export every source's entries in ascending global index order.
    fn frontier_entries<T: Scalar>(&self, f: &Self::Frontier<T>) -> Vec<Vec<(usize, T)>>;

    /// Total stored entries across the batch (the loop-termination test).
    fn frontier_nnz<T: Scalar>(&self, f: &Self::Frontier<T>) -> usize;

    /// Batched BFS expansion — one masked-SpGEMM level step: row `s` of
    /// the output is `f_s · A` under the **complement** of `visited[s]`
    /// (source `s`'s not-yet-visited mask), with first-writer-wins parent
    /// values. Per source, bit-identical to
    /// [`GblasBackend::spmspv_first_visitor`] on that source alone.
    fn expand_first_visitor<T: Scalar>(
        &self,
        a: &Self::Matrix<T>,
        f: &Self::Frontier<usize>,
        visited: &[Self::DenseVec<bool>],
        opts: SpMSpVOpts,
    ) -> Result<Self::Frontier<usize>>;

    /// Batched semiring expansion (unmasked): row `s` of the output is
    /// `y_s[j] = ⊕_i f_s[i] ⊗ A[i,j]`. Per source, bit-identical to
    /// [`GblasBackend::spmspv_semiring`] on that source alone.
    fn expand_semiring<A, B, C, AddM, MulOp>(
        &self,
        a: &Self::Matrix<B>,
        f: &Self::Frontier<A>,
        ring: &Semiring<AddM, MulOp>,
        opts: SpMSpVOpts,
    ) -> Result<Self::Frontier<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>;

    /// Batched dense SpMM in the column orientation:
    /// `ys[s][j] = ⊕_i xs[s][i] ⊗ A[i,j]`. Per column, bit-identical to
    /// [`GblasBackend::spmv`] on that column alone.
    fn spmm_dense<A, B, C, AddM, MulOp>(
        &self,
        a: &Self::Matrix<B>,
        xs: &[Self::DenseVec<A>],
        ring: &Semiring<AddM, MulOp>,
    ) -> Result<Vec<Self::DenseVec<C>>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>;

    // ---- adaptive selection ------------------------------------------

    /// Pull-direction BFS kernel over `at = Aᵀ`: for each **unvisited**
    /// destination, claim its minimum in-frontier in-neighbor as parent
    /// (early exit per row). Bit-identical to
    /// [`GblasBackend::spmspv_first_visitor`] under the complement-of-
    /// visited mask on a deterministic schedule — the contract the
    /// direction-optimizing traversals rely on when they switch
    /// mid-traversal.
    fn pull_first_visitor<T: Scalar>(
        &self,
        at: &Self::Matrix<T>,
        frontier: &Self::DenseVec<bool>,
        visited: &Self::DenseVec<bool>,
    ) -> Result<Self::SparseVec<usize>>;

    /// Promote a sparse frontier to its dense bitmap representation
    /// (true at every stored index). Local on every backend: the bitmap
    /// segments are block-aligned with the sparse shards.
    fn sparse_to_bitmap<T: Scalar>(&self, x: &Self::SparseVec<T>) -> Result<Self::DenseVec<bool>>;

    /// Demote a bitmap frontier to the sorted index list; each stored
    /// value is its own index (the identity frontier BFS pushes from).
    fn bitmap_to_sparse(&self, bits: &Self::DenseVec<bool>) -> Result<Self::SparseVec<usize>>;

    /// The selection thresholds tuned for this backend's machine. The
    /// default (and every shared-memory backend) is the Beamer constants;
    /// the distributed backend scales them by its locale count
    /// ([`ops::selection::SelectionThresholds::for_locales`]) because
    /// communication, not local compute, dominates its per-level cost.
    fn selection_thresholds(&self) -> ops::selection::SelectionThresholds {
        ops::selection::SelectionThresholds::default()
    }

    /// Record one adaptive-selection decision as a `select` trace span
    /// with `algo`/`dir`/`fmt`/`merge` attributes. The distributed
    /// backend also prices the `⌈log₂ p⌉`-round allreduce that makes the
    /// globally-agreed density counts real communication, exactly like
    /// [`GblasBackend::allreduce_scalar`].
    fn record_decision(
        &self,
        algo: &'static str,
        iter: usize,
        d: ops::selection::Decision,
        nnz_f: usize,
        unexplored: usize,
    ) -> Result<()>;

    // ---- driver <-> backend data movement ----------------------------

    /// A dense vector of `len` copies of `fill`.
    fn dense_filled<T: Scalar>(&self, len: usize, fill: T) -> Self::DenseVec<T>;

    /// Import a global driver-side vector into the backend layout.
    fn dense_from_vec<T: Scalar>(&self, v: Vec<T>) -> Self::DenseVec<T>;

    /// Export a backend vector to a global driver-side vector.
    fn dense_to_vec<T: Scalar>(&self, v: &Self::DenseVec<T>) -> Vec<T>;

    /// Point update `v[i] = value` (driver-side control state; the
    /// distributed backend pokes the owning locale's segment).
    fn dense_set<T: Scalar>(&self, v: &mut Self::DenseVec<T>, i: usize, value: T);

    /// Build a sparse vector from globally-sorted `(indices, values)`.
    fn sparse_from_sorted<T: Scalar>(
        &self,
        capacity: usize,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self::SparseVec<T>>;

    /// Export the stored entries in ascending global index order.
    fn sparse_entries<T: Scalar>(&self, x: &Self::SparseVec<T>) -> Vec<(usize, T)>;

    /// Number of stored entries.
    fn sparse_nnz<T: Scalar>(&self, x: &Self::SparseVec<T>) -> usize;

    // ---- accounting ---------------------------------------------------

    /// Charge one global scalar decision (a convergence flag, a dangling
    /// sum) to the ledger under `phase`. The shared backend is a no-op;
    /// the distributed backend prices a `⌈log₂ p⌉`-round binomial tree.
    fn allreduce_scalar(&self, phase: &'static str) -> Result<()>;

    /// Cumulative workspace-pool accounting for this backend: pool hits,
    /// misses and fresh allocations made on behalf of kernels run through
    /// it. The shared backend reads its [`ExecCtx`]'s pool; the
    /// distributed backend aggregates its per-locale pools. Generic
    /// algorithms can subtract two snapshots to assert that steady-state
    /// iterations allocate nothing.
    fn workspace_stats(&self) -> crate::workspace::WorkspaceStats;
}

/// The shared-memory backend: plain CSR containers driven by an
/// instrumented [`ExecCtx`]. All ops delegate to `gblas_core::ops`.
#[derive(Debug, Clone, Copy)]
pub struct SharedBackend<'a> {
    /// The execution context every op runs under.
    pub ctx: &'a ExecCtx,
}

impl<'a> SharedBackend<'a> {
    /// Wrap an execution context as a backend.
    pub fn new(ctx: &'a ExecCtx) -> Self {
        SharedBackend { ctx }
    }
}

/// Convert a backend mask into the shared kernels' [`VecMask`].
fn vec_mask<'m>(m: &MaskSpec<'m, DenseVec<bool>>) -> VecMask<'m> {
    let vm = VecMask::dense(m.bits);
    if m.complement {
        vm.complement()
    } else {
        vm
    }
}

impl GblasBackend for SharedBackend<'_> {
    type Matrix<T: Scalar> = CsrMatrix<T>;
    type SparseVec<T: Scalar> = SparseVec<T>;
    type DenseVec<T: Scalar> = DenseVec<T>;
    type Frontier<T: Scalar> = SparseFrontier<T>;

    fn name(&self) -> &'static str {
        "shared"
    }

    fn mat_nrows<T: Scalar>(&self, a: &CsrMatrix<T>) -> usize {
        a.nrows()
    }

    fn mat_ncols<T: Scalar>(&self, a: &CsrMatrix<T>) -> usize {
        a.ncols()
    }

    fn mat_nnz<T: Scalar>(&self, a: &CsrMatrix<T>) -> usize {
        a.nnz()
    }

    fn mat_map<T: Scalar, U: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        f: &(impl Fn(usize, usize, T) -> U + Sync),
    ) -> Result<CsrMatrix<U>> {
        Ok(ops::apply::map_mat(a, f, self.ctx))
    }

    fn mat_select<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        pred: &(impl Fn(usize, usize, T) -> bool + Sync),
    ) -> Result<CsrMatrix<T>> {
        Ok(ops::select::select_mat(a, pred, self.ctx))
    }

    fn mat_transpose<T: Scalar>(&self, a: &CsrMatrix<T>) -> Result<CsrMatrix<T>> {
        ops::transpose::transpose(a, self.ctx)
    }

    fn mxm_masked<A, B, C, AddM, MulOp, M>(
        &self,
        a: &CsrMatrix<A>,
        b: &CsrMatrix<B>,
        ring: &Semiring<AddM, MulOp>,
        mask: Option<&CsrMatrix<M>>,
    ) -> Result<CsrMatrix<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        M: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        ops::mxm::mxm(a, b, ring, mask, self.ctx)
    }

    fn reduce_rows<T: Scalar, M>(&self, a: &CsrMatrix<T>, monoid: &M) -> Result<Vec<T>>
    where
        M: Monoid<T>,
    {
        Ok(ops::reduce::reduce_rows(a, monoid, self.ctx).into_vec())
    }

    fn reduce_mat<T: Scalar, M>(&self, a: &CsrMatrix<T>, monoid: &M) -> Result<T>
    where
        M: ComMonoid<T>,
    {
        Ok(ops::reduce::reduce_mat(a, monoid, self.ctx))
    }

    fn spmspv_first_visitor<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        x: &SparseVec<usize>,
        mask: Option<MaskSpec<'_, DenseVec<bool>>>,
        opts: SpMSpVOpts,
    ) -> Result<SparseVec<usize>> {
        let vm = mask.as_ref().map(vec_mask);
        ops::spmspv::spmspv_first_visitor(a, x, vm.as_ref(), opts, self.ctx)
    }

    fn spmspv_semiring<A, B, C, AddM, MulOp>(
        &self,
        a: &CsrMatrix<B>,
        x: &SparseVec<A>,
        ring: &Semiring<AddM, MulOp>,
        mask: Option<MaskSpec<'_, DenseVec<bool>>>,
        opts: SpMSpVOpts,
    ) -> Result<SparseVec<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        let vm = mask.as_ref().map(vec_mask);
        Ok(ops::spmspv::spmspv_semiring_masked(a, x, ring, vm.as_ref(), opts, self.ctx)?.vector)
    }

    fn spmv<A, B, C, AddM, MulOp>(
        &self,
        a: &CsrMatrix<B>,
        x: &DenseVec<A>,
        ring: &Semiring<AddM, MulOp>,
    ) -> Result<DenseVec<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        ops::spmv::spmv_col(a, x, ring, self.ctx)
    }

    fn frontier_from_entries<T: Scalar>(
        &self,
        capacity: usize,
        entries: Vec<Vec<(usize, T)>>,
    ) -> Result<SparseFrontier<T>> {
        SparseFrontier::from_entries(capacity, entries)
    }

    fn frontier_entries<T: Scalar>(&self, f: &SparseFrontier<T>) -> Vec<Vec<(usize, T)>> {
        f.to_entries()
    }

    fn frontier_nnz<T: Scalar>(&self, f: &SparseFrontier<T>) -> usize {
        f.nnz()
    }

    fn expand_first_visitor<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        f: &SparseFrontier<usize>,
        visited: &[DenseVec<bool>],
        opts: SpMSpVOpts,
    ) -> Result<SparseFrontier<usize>> {
        ops::expand::expand_first_visitor(a, f, visited, opts, self.ctx)
    }

    fn expand_semiring<A, B, C, AddM, MulOp>(
        &self,
        a: &CsrMatrix<B>,
        f: &SparseFrontier<A>,
        ring: &Semiring<AddM, MulOp>,
        opts: SpMSpVOpts,
    ) -> Result<SparseFrontier<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        ops::expand::expand_semiring(a, f, ring, opts, self.ctx)
    }

    fn spmm_dense<A, B, C, AddM, MulOp>(
        &self,
        a: &CsrMatrix<B>,
        xs: &[DenseVec<A>],
        ring: &Semiring<AddM, MulOp>,
    ) -> Result<Vec<DenseVec<C>>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        ops::expand::spmm_dense(a, xs, ring, self.ctx)
    }

    fn pull_first_visitor<T: Scalar>(
        &self,
        at: &CsrMatrix<T>,
        frontier: &DenseVec<bool>,
        visited: &DenseVec<bool>,
    ) -> Result<SparseVec<usize>> {
        ops::selection::pull_first_visitor(at, frontier, visited, self.ctx)
    }

    fn sparse_to_bitmap<T: Scalar>(&self, x: &SparseVec<T>) -> Result<DenseVec<bool>> {
        let mut bits = vec![false; x.capacity()];
        for &i in x.indices() {
            bits[i] = true;
        }
        Ok(DenseVec::from_vec(bits))
    }

    fn bitmap_to_sparse(&self, bits: &DenseVec<bool>) -> Result<SparseVec<usize>> {
        let indices: Vec<usize> =
            bits.as_slice().iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        SparseVec::from_sorted(bits.len(), indices.clone(), indices)
    }

    fn record_decision(
        &self,
        algo: &'static str,
        iter: usize,
        d: ops::selection::Decision,
        nnz_f: usize,
        unexplored: usize,
    ) -> Result<()> {
        let _op = self.ctx.trace_op_attrs(
            "select",
            nnz_f as u64,
            &[("iter", iter), ("unexplored", unexplored)],
            &[
                ("algo", algo),
                ("dir", d.dir.name()),
                ("fmt", d.fmt.name()),
                ("merge", d.merge.name()),
            ],
        );
        Ok(())
    }

    fn dense_filled<T: Scalar>(&self, len: usize, fill: T) -> DenseVec<T> {
        DenseVec::filled(len, fill)
    }

    fn dense_from_vec<T: Scalar>(&self, v: Vec<T>) -> DenseVec<T> {
        DenseVec::from_vec(v)
    }

    fn dense_to_vec<T: Scalar>(&self, v: &DenseVec<T>) -> Vec<T> {
        v.as_slice().to_vec()
    }

    fn dense_set<T: Scalar>(&self, v: &mut DenseVec<T>, i: usize, value: T) {
        v.as_mut_slice()[i] = value;
    }

    fn sparse_from_sorted<T: Scalar>(
        &self,
        capacity: usize,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<SparseVec<T>> {
        SparseVec::from_sorted(capacity, indices, values)
    }

    fn sparse_entries<T: Scalar>(&self, x: &SparseVec<T>) -> Vec<(usize, T)> {
        x.iter().map(|(i, &v)| (i, v)).collect()
    }

    fn sparse_nnz<T: Scalar>(&self, x: &SparseVec<T>) -> usize {
        x.nnz()
    }

    fn allreduce_scalar(&self, _phase: &'static str) -> Result<()> {
        Ok(())
    }

    fn workspace_stats(&self) -> crate::workspace::WorkspaceStats {
        self.ctx.workspace().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{semirings, Plus};
    use crate::gen;

    #[test]
    fn shared_backend_round_trips_vectors() {
        let ctx = ExecCtx::serial();
        let b = SharedBackend::new(&ctx);
        let d = b.dense_from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(b.dense_to_vec(&d), vec![1.0, 2.0, 3.0]);
        let s = b.sparse_from_sorted(5, vec![1, 4], vec![10u64, 40]).unwrap();
        assert_eq!(b.sparse_entries(&s), vec![(1, 10), (4, 40)]);
        assert_eq!(b.sparse_nnz(&s), 2);
    }

    #[test]
    fn shared_backend_ops_match_direct_calls() {
        let ctx = ExecCtx::serial();
        let b = SharedBackend::new(&ctx);
        let a = gen::erdos_renyi(50, 4, 17);
        // map to ones, reduce rows = degrees
        let ones: CsrMatrix<u64> = b.mat_map(&a, &|_, _, _| 1u64).unwrap();
        let deg = b.reduce_rows(&ones, &Plus).unwrap();
        for (i, &d) in deg.iter().enumerate() {
            assert_eq!(d as usize, a.row_nnz(i));
        }
        assert_eq!(b.reduce_mat(&ones, &Plus).unwrap() as usize, a.nnz());
        // select strictly-lower + transpose round-trip keeps nnz
        let l = b.mat_select(&a, &|i, j, _| j < i).unwrap();
        let u = b.mat_transpose(&l).unwrap();
        assert_eq!(b.mat_nnz(&l), b.mat_nnz(&u));
        // spmv against the direct kernel
        let x = b.dense_filled(50, 1.0f64);
        let y: DenseVec<f64> = b.spmv(&a, &x, &semirings::plus_times_f64()).unwrap();
        let want = ops::spmv::spmv_col(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        assert_eq!(y.as_slice(), want.as_slice());
    }
}
