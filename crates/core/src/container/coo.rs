//! COO (triplet) builder for assembling matrices.

use crate::error::{GblasError, Result};

/// What to do with duplicate `(row, col)` entries when converting to CSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupPolicy {
    /// Duplicates are an error (GraphBLAS `GrB_Matrix_build` without dup op).
    Error,
    /// Keep the last-pushed value.
    KeepLast,
    /// Sum duplicate values (the usual graph multi-edge collapse).
    Sum,
}

/// A mutable triplet store: push `(row, col, value)` in any order, then
/// convert to [`super::CsrMatrix`]. This is the `GrB_Matrix_build` path of
/// the GraphBLAS C API.
#[derive(Debug, Clone)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T> CooMatrix<T> {
    /// An empty builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, entries: Vec::new() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of pushed triplets (duplicates included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one entry, bounds-checked.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.nrows {
            return Err(GblasError::IndexOutOfBounds { index: row, capacity: self.nrows });
        }
        if col >= self.ncols {
            return Err(GblasError::IndexOutOfBounds { index: col, capacity: self.ncols });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Reserve space for `additional` more triplets.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Convert to CSR, resolving duplicates per `policy`.
    ///
    /// [`DupPolicy::Sum`] needs a combiner and must go through
    /// [`CooMatrix::to_csr_with`]; passing it here is an
    /// [`GblasError::InvalidArgument`].
    pub fn to_csr(mut self, policy: DupPolicy) -> Result<super::CsrMatrix<T>>
    where
        T: Copy,
    {
        if policy == DupPolicy::Sum {
            return Err(GblasError::InvalidArgument(
                "DupPolicy::Sum requires to_csr_with and a combiner".into(),
            ));
        }
        self.to_csr_with(policy, |a, _| a)
    }

    /// Convert to CSR with an explicit combiner used when `policy` is
    /// [`DupPolicy::Sum`] (the combiner defines what "sum" means — any
    /// binary op works, matching GraphBLAS `build`'s `dup` operator).
    pub fn to_csr_with(
        &mut self,
        policy: DupPolicy,
        combine: impl Fn(T, T) -> T,
    ) -> Result<super::CsrMatrix<T>>
    where
        T: Copy,
    {
        // Stable sort keeps push order within equal (row, col) keys so
        // KeepLast is well defined.
        self.entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colidx: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<T> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &self.entries {
            if last == Some((r, c)) {
                match policy {
                    DupPolicy::Error => {
                        return Err(GblasError::InvalidContainer(format!(
                            "duplicate entry at ({r}, {c})"
                        )));
                    }
                    DupPolicy::KeepLast => {
                        *values.last_mut().unwrap() = v;
                    }
                    DupPolicy::Sum => {
                        let slot = values.last_mut().unwrap();
                        *slot = combine(*slot, v);
                    }
                }
            } else {
                rowptr[r + 1] += 1;
                colidx.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        super::CsrMatrix::from_raw_parts(self.nrows, self.ncols, rowptr, colidx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_basic() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 9.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 5.0).unwrap();
        let a = coo.to_csr(DupPolicy::Error).unwrap();
        assert_eq!(a.rowptr(), &[0, 1, 3]);
        assert_eq!(a.colidx(), &[0, 0, 2]);
        assert_eq!(a.values(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn bounds_checked_push() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1).is_err());
        assert!(coo.push(0, 2, 1).is_err());
        assert!(coo.push(1, 1, 1).is_ok());
    }

    #[test]
    fn duplicate_policies() {
        let build = |policy| {
            let mut coo = CooMatrix::new(1, 2);
            coo.push(0, 1, 10).unwrap();
            coo.push(0, 1, 3).unwrap();
            coo.to_csr_with(policy, |a, b| a + b)
        };
        assert!(build(DupPolicy::Error).is_err());
        assert_eq!(build(DupPolicy::KeepLast).unwrap().values(), &[3]);
        assert_eq!(build(DupPolicy::Sum).unwrap().values(), &[13]);
    }

    #[test]
    fn empty_builder_gives_empty_matrix() {
        let coo = CooMatrix::<f32>::new(4, 4);
        let a = coo.to_csr(DupPolicy::Error).unwrap();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.rowptr(), &[0, 0, 0, 0, 0]);
    }
}
