//! Compressed Sparse Columns matrices.
//!
//! The paper draws its SPA figure column-wise and notes "Our actual Chapel
//! implementation is row-wise but we chose to draw the figure column-wise
//! for better visualization. Neither the algorithm nor its complexity is
//! affected by the use of row-wise vs column-wise representation" (Fig 6).
//! This module provides the column-wise representation so the claim can be
//! tested (and is: the `ablations` bench and the ops tests run SpMSpV both
//! ways).

use crate::error::{GblasError, Result};

/// A CSC matrix: the transpose-dual of [`super::CsrMatrix`].
///
/// Invariants mirror CSR with rows/columns swapped:
/// * `colptr` has length `ncols + 1`, is monotone, starts at 0;
/// * `rowidx` holds row ids, strictly increasing within each column;
/// * `values` is parallel to `rowidx`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<T>,
}

impl<T> CscMatrix<T> {
    /// An empty (all-zero) matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSC arrays, validating every invariant.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        if colptr.len() != ncols + 1 {
            return Err(GblasError::InvalidContainer(format!(
                "colptr length {} != ncols + 1 = {}",
                colptr.len(),
                ncols + 1
            )));
        }
        if colptr[0] != 0 {
            return Err(GblasError::InvalidContainer("colptr[0] != 0".into()));
        }
        if *colptr.last().unwrap() != rowidx.len() {
            return Err(GblasError::InvalidContainer(format!(
                "colptr[last] = {} != nnz = {}",
                colptr.last().unwrap(),
                rowidx.len()
            )));
        }
        if rowidx.len() != values.len() {
            return Err(GblasError::InvalidContainer(format!(
                "rowidx/values length mismatch: {} vs {}",
                rowidx.len(),
                values.len()
            )));
        }
        for w in colptr.windows(2) {
            if w[0] > w[1] {
                return Err(GblasError::InvalidContainer("colptr not monotone".into()));
            }
        }
        for j in 0..ncols {
            let col = &rowidx[colptr[j]..colptr[j + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(GblasError::InvalidContainer(format!(
                        "column {j}: row ids not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = col.last() {
                if last >= nrows {
                    return Err(GblasError::IndexOutOfBounds { index: last, capacity: nrows });
                }
            }
        }
        Ok(CscMatrix { nrows, ncols, colptr, rowidx, values })
    }

    /// Convert from CSR in `O(nnz + ncols)` by counting sort (the same
    /// kernel as transposition, reinterpreted).
    pub fn from_csr(a: &super::CsrMatrix<T>) -> Self
    where
        T: Copy,
    {
        let (nrows, ncols) = (a.nrows(), a.ncols());
        let nnz = a.nnz();
        let mut colptr = vec![0usize; ncols + 1];
        for &j in a.colidx() {
            colptr[j + 1] += 1;
        }
        for j in 0..ncols {
            colptr[j + 1] += colptr[j];
        }
        let mut cursor = colptr.clone();
        let mut rowidx = vec![0usize; nnz];
        let mut values: Vec<T> = Vec::with_capacity(nnz);
        // Walk rows in order so each column receives ascending row ids.
        let mut targets = vec![0usize; nnz];
        let mut pos = 0;
        for i in 0..nrows {
            let (cols, _) = a.row(i);
            for &j in cols {
                let t = cursor[j];
                cursor[j] += 1;
                rowidx[t] = i;
                targets[pos] = t;
                pos += 1;
            }
        }
        let mut vbuf: Vec<T> = if nnz == 0 { Vec::new() } else { vec![a.values()[0]; nnz] };
        for (p, v) in a.values().iter().enumerate() {
            vbuf[targets[p]] = *v;
        }
        values.extend(vbuf);
        CscMatrix { nrows, ncols, colptr, rowidx, values }
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> super::CsrMatrix<T>
    where
        T: Copy,
    {
        let nnz = self.nnz();
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &i in &self.rowidx {
            rowptr[i + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut cursor = rowptr.clone();
        let mut colidx = vec![0usize; nnz];
        let mut values: Vec<T> = if nnz == 0 { Vec::new() } else { vec![self.values[0]; nnz] };
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                let t = cursor[i];
                cursor[i] += 1;
                colidx[t] = j;
                values[t] = v;
            }
        }
        super::CsrMatrix::from_raw_parts(self.nrows, self.ncols, rowptr, colidx, values)
            .expect("column-order walk preserves CSR invariants")
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Column `j` as `(row ids, values)`.
    pub fn col(&self, j: usize) -> (&[usize], &[T]) {
        let r = self.colptr[j]..self.colptr[j + 1];
        (&self.rowidx[r.clone()], &self.values[r])
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Random access by binary search within column `j`.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (rows, vals) = self.col(j);
        rows.binary_search(&i).ok().map(|p| &vals[p])
    }

    /// Iterate `(row, col, &value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals.iter()).map(move |(&i, v)| (i, j, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::CsrMatrix;
    use super::*;
    use crate::gen;

    #[test]
    fn csr_round_trip() {
        let a = gen::erdos_renyi(90, 5, 201);
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nnz(), a.nnz());
        for (i, j, &v) in a.iter() {
            assert_eq!(c.get(i, j), Some(&v), "({i},{j})");
        }
        assert_eq!(c.to_csr(), a);
    }

    #[test]
    fn columns_are_sorted() {
        let a = gen::erdos_renyi(50, 8, 202);
        let c = CscMatrix::from_csr(&a);
        for j in 0..50 {
            let (rows, _) = c.col(j);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "col {j}");
        }
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(2, 1, vec![1, 1], vec![], Vec::<f64>::new()).is_err());
        assert!(CscMatrix::from_raw_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_raw_parts(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn empty_and_rectangular() {
        let e = CscMatrix::<i32>::empty(3, 4);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.to_csr(), CsrMatrix::empty(3, 4));
        let a = CsrMatrix::from_triplets(2, 5, &[(0, 4, 1.0), (1, 0, 2.0)]).unwrap();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 5);
        assert_eq!(c.col_nnz(4), 1);
        assert_eq!(c.to_csr(), a);
    }

    #[test]
    fn iter_is_column_major() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let c = CscMatrix::from_csr(&a);
        let order: Vec<(usize, usize)> = c.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(order, vec![(1, 0), (0, 1), (2, 1)]);
    }
}
