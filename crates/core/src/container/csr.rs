//! Compressed Sparse Rows matrices.

use crate::error::{GblasError, Result};

/// A CSR matrix, the one sparse-matrix format the paper uses: "we only
/// considered the Compressed Sparse Rows (CSR) format ... because this is
/// supported in Chapel" (§II-A). Exactly the paper's three arrays:
///
/// * `rowptr` — length `nrows + 1`, monotone; `rowptr[i]..rowptr[i+1]`
///   delimits row `i`'s nonzeros (the paper's `rowptrs`);
/// * `colidx` — column ids, **sorted within each row** ("Chapel keeps the
///   column ids of nonzeros within each row sorted");
/// * `values` — numerical values, parallel to `colidx`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<T>,
}

impl<T> CsrMatrix<T> {
    /// An empty (all-zero) matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSR arrays, validating every invariant.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        if rowptr.len() != nrows + 1 {
            return Err(GblasError::InvalidContainer(format!(
                "rowptr length {} != nrows + 1 = {}",
                rowptr.len(),
                nrows + 1
            )));
        }
        if rowptr[0] != 0 {
            return Err(GblasError::InvalidContainer("rowptr[0] != 0".into()));
        }
        if *rowptr.last().unwrap() != colidx.len() {
            return Err(GblasError::InvalidContainer(format!(
                "rowptr[last] = {} != nnz = {}",
                rowptr.last().unwrap(),
                colidx.len()
            )));
        }
        if colidx.len() != values.len() {
            return Err(GblasError::InvalidContainer(format!(
                "colidx/values length mismatch: {} vs {}",
                colidx.len(),
                values.len()
            )));
        }
        for w in rowptr.windows(2) {
            if w[0] > w[1] {
                return Err(GblasError::InvalidContainer("rowptr not monotone".into()));
            }
        }
        for r in 0..nrows {
            let row = &colidx[rowptr[r]..rowptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(GblasError::InvalidContainer(format!(
                        "row {r}: column ids not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(GblasError::IndexOutOfBounds { index: last, capacity: ncols });
                }
            }
        }
        Ok(CsrMatrix { nrows, ncols, rowptr, colidx, values })
    }

    /// Build from `(row, col, value)` triplets; duplicates are an error.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, T)]) -> Result<Self>
    where
        T: Copy,
    {
        let mut coo = super::CooMatrix::new(nrows, ncols);
        for &(r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        coo.to_csr(super::DupPolicy::Error)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The row-pointer array (`rowptrs` in the paper).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column-id array (`colids`).
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// The value array.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable values (structure is immutable, so invariants hold).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Row `i` as `(column ids, values)` slices — the constant-time
    /// row-start access CSR exists to provide.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let r = self.rowptr[i]..self.rowptr[i + 1];
        (&self.colidx[r.clone()], &self.values[r])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Random access to `A[i, j]` via binary search within row `i`.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| &vals[p])
    }

    /// Iterate `(row, col, &value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, v)| (r, c, v))
        })
    }

    /// Decompose into `(nrows, ncols, rowptr, colidx, values)`.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<T>) {
        (self.nrows, self.ncols, self.rowptr, self.colidx, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // [ .  1  .  2 ]
        // [ .  .  .  . ]
        // [ 3  .  4  . ]
        CsrMatrix::from_triplets(3, 4, &[(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0), (2, 2, 4.0)])
            .unwrap()
    }

    #[test]
    fn triplets_build_sorted_csr() {
        let a = sample();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.rowptr(), &[0, 2, 2, 4]);
        assert_eq!(a.row(0), (&[1usize, 3][..], &[1.0, 2.0][..]));
        assert_eq!(a.row(1), (&[][..], &[][..]));
        assert_eq!(a.row_nnz(2), 2);
    }

    #[test]
    fn get_random_access() {
        let a = sample();
        assert_eq!(a.get(0, 3), Some(&2.0));
        assert_eq!(a.get(1, 0), None);
        assert_eq!(a.get(2, 2), Some(&4.0));
    }

    #[test]
    fn iter_visits_in_row_major_order() {
        let a = sample();
        let trips: Vec<(usize, usize, f64)> = a.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(trips, vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0), (2, 2, 4.0)]);
    }

    #[test]
    fn from_raw_parts_validates() {
        // wrong rowptr length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // rowptr not starting at 0
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![1, 1], vec![], Vec::<f64>::new()).is_err());
        // non-monotone rowptr
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        // unsorted columns in a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // valid
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn duplicate_triplets_rejected() {
        let r = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::<i32>::empty(3, 5);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.row(2), (&[][..], &[][..]));
    }
}
