//! Dense vectors.

use crate::error::{GblasError, Result};

/// A dense vector: every position `0..len` holds a value.
///
/// Dense vectors are the `y` operand of the paper's sparse×dense
/// `eWiseMult` (Listing 6), the backing arrays of the SPA (Fig 6), and the
/// natural output of `reduce`-by-row.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVec<T> {
    values: Vec<T>,
}

impl<T> DenseVec<T> {
    /// A vector of `len` copies of `fill`.
    pub fn filled(len: usize, fill: T) -> Self
    where
        T: Clone,
    {
        DenseVec { values: vec![fill; len] }
    }

    /// Wrap an existing `Vec`.
    pub fn from_vec(values: Vec<T>) -> Self {
        DenseVec { values }
    }

    /// Build by evaluating `f` at every index.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> T) -> Self {
        DenseVec { values: (0..len).map(f).collect() }
    }

    /// The vector's length (== capacity == nnz for dense storage).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when length is zero.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Checked element read.
    pub fn get(&self, i: usize) -> Result<&T> {
        self.values
            .get(i)
            .ok_or(GblasError::IndexOutOfBounds { index: i, capacity: self.values.len() })
    }

    /// Checked element write.
    pub fn set(&mut self, i: usize, v: T) -> Result<()> {
        let cap = self.values.len();
        match self.values.get_mut(i) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(GblasError::IndexOutOfBounds { index: i, capacity: cap }),
        }
    }

    /// Borrow as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Borrow as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<T> {
        self.values
    }

    /// Extract the nonzero (≠ `zero`) entries as a sparse vector.
    pub fn to_sparse(&self, zero: T) -> super::SparseVec<T>
    where
        T: Copy + PartialEq,
    {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in self.values.iter().enumerate() {
            if v != zero {
                indices.push(i);
                values.push(v);
            }
        }
        super::SparseVec::from_sorted(self.values.len(), indices, values)
            .expect("indices from enumerate are sorted and in range")
    }
}

impl<T> std::ops::Index<usize> for DenseVec<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.values[i]
    }
}

impl<T> std::ops::IndexMut<usize> for DenseVec<T> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(DenseVec::filled(3, 7).as_slice(), &[7, 7, 7]);
        assert_eq!(DenseVec::from_fn(3, |i| i * 2).as_slice(), &[0, 2, 4]);
    }

    #[test]
    fn checked_access() {
        let mut v = DenseVec::filled(2, 0);
        v.set(1, 9).unwrap();
        assert_eq!(*v.get(1).unwrap(), 9);
        assert!(v.get(2).is_err());
        assert!(v.set(2, 1).is_err());
    }

    #[test]
    fn round_trip_sparse() {
        let d = DenseVec::from_vec(vec![0.0, 1.5, 0.0, -2.0]);
        let s = d.to_sparse(0.0);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.values(), &[1.5, -2.0]);
        assert_eq!(s.to_dense(0.0), d);
    }

    #[test]
    fn indexing_sugar() {
        let mut v = DenseVec::filled(2, 1);
        v[0] = 5;
        assert_eq!(v[0], 5);
    }
}
