//! Multi-column sparse frontier: `k` sparse vectors over one index space.
//!
//! The CombBLAS 2.0 batched-traversal representation: the frontiers of
//! `k` concurrent sources packed side by side as a sparse `n×k` matrix.
//! We store it row-major-by-source — one [`SparseVec`] per source — so
//! each column of the conceptual matrix keeps the exact layout the
//! single-source kernels consume, and a batched expansion degenerates to
//! the single-source kernel at `k = 1` bit for bit.

use crate::container::SparseVec;
use crate::error::{check_dims, Result};

/// A batch of `k` sparse frontiers sharing one capacity (vertex space).
///
/// Column `s` of the conceptual `n×k` frontier matrix is `rows[s]`:
/// source `s`'s current frontier as an index-sorted sparse vector.
#[derive(Debug, Clone)]
pub struct SparseFrontier<T> {
    capacity: usize,
    rows: Vec<SparseVec<T>>,
}

impl<T> SparseFrontier<T> {
    /// Wrap `k` per-source sparse vectors; every one must have the shared
    /// `capacity`.
    pub fn new(capacity: usize, rows: Vec<SparseVec<T>>) -> Result<Self> {
        for r in &rows {
            check_dims("frontier row capacity", capacity, r.capacity())?;
        }
        Ok(SparseFrontier { capacity, rows })
    }

    /// Build from per-source entry lists (unsorted, duplicate indices are
    /// an error — a frontier holds one value per vertex per source).
    pub fn from_entries(capacity: usize, entries: Vec<Vec<(usize, T)>>) -> Result<Self> {
        let rows = entries
            .into_iter()
            .map(|pairs| SparseVec::from_pairs(capacity, pairs))
            .collect::<Result<Vec<_>>>()?;
        Ok(SparseFrontier { capacity, rows })
    }

    /// A frontier of `k` empty per-source vectors.
    pub fn empty(capacity: usize, k: usize) -> Self {
        SparseFrontier { capacity, rows: (0..k).map(|_| SparseVec::new(capacity)).collect() }
    }

    /// Shared index-space size (the `n` of the `n×k` matrix).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of sources in the batch (the `k`).
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// Total stored entries across all sources.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.nnz()).sum()
    }

    /// Source `s`'s frontier.
    pub fn row(&self, s: usize) -> &SparseVec<T> {
        &self.rows[s]
    }

    /// All per-source frontiers, batch order.
    pub fn rows(&self) -> &[SparseVec<T>] {
        &self.rows
    }
}

impl<T: Copy> SparseFrontier<T> {
    /// Export every source's entries in ascending index order.
    pub fn to_entries(&self) -> Vec<Vec<(usize, T)>> {
        self.rows.iter().map(|r| r.iter().map(|(i, &v)| (i, v)).collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_exports_entries() {
        let f = SparseFrontier::from_entries(
            10,
            vec![vec![(3, 1.0), (1, 2.0)], vec![], vec![(9, 5.0)]],
        )
        .unwrap();
        assert_eq!(f.k(), 3);
        assert_eq!(f.capacity(), 10);
        assert_eq!(f.nnz(), 3);
        assert_eq!(f.to_entries(), vec![vec![(1, 2.0), (3, 1.0)], vec![], vec![(9, 5.0)]]);
    }

    #[test]
    fn rejects_out_of_range_and_duplicates() {
        assert!(SparseFrontier::from_entries(4, vec![vec![(4, 1.0)]]).is_err());
        assert!(SparseFrontier::from_entries(4, vec![vec![(1, 1.0), (1, 2.0)]]).is_err());
    }

    #[test]
    fn capacity_mismatch_is_error() {
        let r = SparseVec::<u32>::new(5);
        assert!(SparseFrontier::new(4, vec![r]).is_err());
    }

    #[test]
    fn empty_batch() {
        let f = SparseFrontier::<usize>::empty(7, 0);
        assert_eq!(f.k(), 0);
        assert_eq!(f.nnz(), 0);
    }
}
