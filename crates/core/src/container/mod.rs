//! Sparse and dense containers in the layout the paper uses (§II-A).
//!
//! * [`SparseVec`] — "the indices of sparse vectors are kept sorted and
//!   stored in an array"; `O(nnz)` space, binary-search random access.
//! * [`DenseVec`] — a plain dense array (the `y` operand of the paper's
//!   sparse×dense `eWiseMult`, SPA backing storage, BFS level arrays).
//! * [`CsrMatrix`] — Compressed Sparse Rows with column ids sorted within
//!   each row, "because this is supported in Chapel".
//! * [`CscMatrix`] — the column-wise dual (Fig 6 is drawn column-wise;
//!   the ops tests verify the paper's claim that the representation does
//!   not change the algorithm or its complexity).
//! * [`CooMatrix`] — a triplet builder for assembling matrices before
//!   conversion to CSR.
//! * [`SparseFrontier`] — the CombBLAS-2.0-style `n×k` multi-source
//!   frontier: `k` sparse vectors over one index space, one per source
//!   in a batched traversal.

mod coo;
mod csc;
mod csr;
mod dense_vec;
mod frontier;
mod sparse_vec;

pub use coo::{CooMatrix, DupPolicy};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense_vec::DenseVec;
pub use frontier::SparseFrontier;
pub use sparse_vec::SparseVec;
