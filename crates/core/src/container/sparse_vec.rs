//! Chapel-style sparse vectors: a sorted index array plus a value array.

use crate::error::{GblasError, Result};

/// A sparse vector over the domain `0..capacity`.
///
/// Invariants (checked by the constructors, preserved by every method):
/// * `indices` is strictly increasing (sorted, no duplicates);
/// * every index is `< capacity`;
/// * `indices.len() == values.len()`.
///
/// Terminology follows §II-A of the paper: `capacity(x)` is the number of
/// entries the vector *can* store (its dimension), `nnz(x)` the number it
/// *does* store, and `f = nnz(x)/capacity(x)` its density.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec<T> {
    capacity: usize,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T> SparseVec<T> {
    /// An empty sparse vector with the given capacity (dimension).
    pub fn new(capacity: usize) -> Self {
        SparseVec { capacity, indices: Vec::new(), values: Vec::new() }
    }

    /// Build from already-sorted, duplicate-free indices. Validates every
    /// invariant and reports the first violation.
    pub fn from_sorted(capacity: usize, indices: Vec<usize>, values: Vec<T>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(GblasError::InvalidContainer(format!(
                "index/value length mismatch: {} vs {}",
                indices.len(),
                values.len()
            )));
        }
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(GblasError::InvalidContainer(format!(
                    "indices not strictly increasing at {}..={}",
                    w[0], w[1]
                )));
            }
        }
        if let Some(&last) = indices.last() {
            if last >= capacity {
                return Err(GblasError::IndexOutOfBounds { index: last, capacity });
            }
        }
        Ok(SparseVec { capacity, indices, values })
    }

    /// Build from unsorted `(index, value)` pairs. Duplicate indices are an
    /// error (use [`SparseVec::from_pairs_combine`] to merge them).
    pub fn from_pairs(capacity: usize, mut pairs: Vec<(usize, T)>) -> Result<Self> {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(GblasError::InvalidContainer(format!("duplicate index {}", w[0].0)));
            }
        }
        let (indices, values): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        Self::from_sorted(capacity, indices, values)
    }

    /// Build from unsorted pairs, merging duplicate indices with `combine`.
    pub fn from_pairs_combine(
        capacity: usize,
        mut pairs: Vec<(usize, T)>,
        combine: impl Fn(T, T) -> T,
    ) -> Result<Self>
    where
        T: Copy,
    {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut indices: Vec<usize> = Vec::with_capacity(pairs.len());
        let mut values: Vec<T> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                let last = values.last_mut().unwrap();
                *last = combine(*last, v);
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        Self::from_sorted(capacity, indices, values)
    }

    /// The vector's dimension (`capacity(x)` in the paper).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored entries (`nnz(x)`).
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Density `f = nnz/capacity` (§II-A). Zero for a zero-capacity vector.
    pub fn density(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.capacity as f64
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The value array, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable values (indices stay fixed, so invariants hold).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Iterate `(index, &value)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.indices.iter().copied().zip(self.values.iter())
    }

    /// Random access by binary search — `O(log nnz)`, the cost §III-B
    /// blames for Assign1's slowness.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.indices.binary_search(&index).ok().map(|p| &self.values[p])
    }

    /// Like [`SparseVec::get`], but additionally counts the number of
    /// binary-search probe steps into `probes`, so instrumented code paths
    /// can charge the logarithmic access cost they actually incurred.
    pub fn get_probed(&self, index: usize, probes: &mut u64) -> Option<&T> {
        let mut lo = 0usize;
        let mut hi = self.indices.len();
        while lo < hi {
            *probes += 1;
            let mid = lo + (hi - lo) / 2;
            match self.indices[mid].cmp(&index) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(&self.values[mid]),
            }
        }
        None
    }

    /// Overwrite the value at an *existing* index (binary search +
    /// write, counting probes). Returns an error if the index is not
    /// present — growing a sorted array one element at a time is O(nnz)
    /// per insert and deliberately not offered.
    pub fn set_existing(&mut self, index: usize, value: T, probes: &mut u64) -> Result<()> {
        let mut lo = 0usize;
        let mut hi = self.indices.len();
        while lo < hi {
            *probes += 1;
            let mid = lo + (hi - lo) / 2;
            match self.indices[mid].cmp(&index) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    self.values[mid] = value;
                    return Ok(());
                }
            }
        }
        Err(GblasError::InvalidArgument(format!("index {index} not present in sparse vector")))
    }

    /// Drop all entries, keeping the capacity — Chapel's `DA.clear()`
    /// (Listing 4, line 4).
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Replace the index set wholesale (Chapel's `DA += DB` after a clear).
    /// Values are set to `fill`.
    pub fn assign_domain(&mut self, indices: &[usize], fill: T) -> Result<()>
    where
        T: Copy,
    {
        // Validate against this vector's capacity before committing.
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(GblasError::InvalidContainer(
                    "assign_domain: indices not strictly increasing".into(),
                ));
            }
        }
        if let Some(&last) = indices.last() {
            if last >= self.capacity {
                return Err(GblasError::IndexOutOfBounds { index: last, capacity: self.capacity });
            }
        }
        self.indices.clear();
        self.indices.extend_from_slice(indices);
        self.values.clear();
        self.values.resize(indices.len(), fill);
        Ok(())
    }

    /// Scatter into a dense vector of length `capacity`, with `default`
    /// elsewhere.
    pub fn to_dense(&self, default: T) -> super::DenseVec<T>
    where
        T: Copy,
    {
        let mut d = vec![default; self.capacity];
        for (i, v) in self.iter() {
            d[i] = *v;
        }
        super::DenseVec::from_vec(d)
    }

    /// Decompose into `(capacity, indices, values)`.
    pub fn into_parts(self) -> (usize, Vec<usize>, Vec<T>) {
        (self.capacity, self.indices, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = SparseVec::from_sorted(10, vec![1, 4, 7], vec![1.0, 4.0, 7.0]).unwrap();
        assert_eq!(v.capacity(), 10);
        assert_eq!(v.nnz(), 3);
        assert!((v.density() - 0.3).abs() < 1e-12);
        assert_eq!(v.get(4), Some(&4.0));
        assert_eq!(v.get(5), None);
    }

    #[test]
    fn rejects_unsorted_and_oob() {
        assert!(SparseVec::from_sorted(10, vec![4, 1], vec![0, 0]).is_err());
        assert!(SparseVec::from_sorted(10, vec![1, 1], vec![0, 0]).is_err());
        assert!(SparseVec::from_sorted(10, vec![10], vec![0]).is_err());
        assert!(SparseVec::from_sorted(10, vec![1], Vec::<i32>::new()).is_err());
    }

    #[test]
    fn from_pairs_sorts() {
        let v = SparseVec::from_pairs(5, vec![(3, 'c'), (0, 'a'), (2, 'b')]).unwrap();
        assert_eq!(v.indices(), &[0, 2, 3]);
        assert_eq!(v.values(), &['a', 'b', 'c']);
    }

    #[test]
    fn from_pairs_rejects_duplicates_but_combine_merges() {
        assert!(SparseVec::from_pairs(5, vec![(1, 2), (1, 3)]).is_err());
        let v =
            SparseVec::from_pairs_combine(5, vec![(1, 2), (1, 3), (0, 5)], |a, b| a + b).unwrap();
        assert_eq!(v.indices(), &[0, 1]);
        assert_eq!(v.values(), &[5, 5]);
    }

    #[test]
    fn probed_get_counts_probes_logarithmically() {
        let n = 1 << 12;
        let v = SparseVec::from_sorted(n, (0..n).collect(), vec![0u8; n]).unwrap();
        let mut probes = 0;
        assert!(v.get_probed(1234, &mut probes).is_some());
        assert!((1..=13).contains(&probes), "probes = {probes}");
        let mut probes_miss = 0;
        let w = SparseVec::from_sorted(n, (0..n).step_by(2).collect(), vec![0u8; n / 2]).unwrap();
        assert!(w.get_probed(5, &mut probes_miss).is_none());
        assert!(probes_miss >= 10, "miss probes = {probes_miss}");
    }

    #[test]
    fn set_existing_only_overwrites() {
        let mut v = SparseVec::from_sorted(8, vec![2, 5], vec![1, 1]).unwrap();
        let mut probes = 0;
        v.set_existing(5, 9, &mut probes).unwrap();
        assert_eq!(v.get(5), Some(&9));
        assert!(v.set_existing(3, 9, &mut probes).is_err());
    }

    #[test]
    fn clear_and_assign_domain() {
        let mut v = SparseVec::from_sorted(8, vec![1], vec![3.0]).unwrap();
        v.clear();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.capacity(), 8);
        v.assign_domain(&[0, 3, 7], 0.5).unwrap();
        assert_eq!(v.indices(), &[0, 3, 7]);
        assert_eq!(v.values(), &[0.5, 0.5, 0.5]);
        assert!(v.assign_domain(&[8], 0.0).is_err());
        assert!(v.assign_domain(&[3, 3], 0.0).is_err());
    }

    #[test]
    fn to_dense_scatter() {
        let v = SparseVec::from_sorted(4, vec![1, 3], vec![5, 7]).unwrap();
        let d = v.to_dense(0);
        assert_eq!(d.as_slice(), &[0, 5, 0, 7]);
    }

    #[test]
    fn density_of_zero_capacity_is_zero() {
        let v = SparseVec::<f64>::new(0);
        assert_eq!(v.density(), 0.0);
    }
}
