//! Error types shared by every gblas crate.

use std::fmt;

/// Errors produced by GraphBLAS operations.
///
/// Mirrors the error conditions of the GraphBLAS C API draft the paper
/// targets (§III): dimension/domain mismatches, out-of-range indices, and
/// malformed container invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GblasError {
    /// Two operands have incompatible dimensions
    /// (e.g. `eWiseMult` of a length-5 and a length-6 vector).
    DimensionMismatch {
        /// What the operation expected (human readable).
        expected: String,
        /// What it got.
        actual: String,
    },
    /// An index is outside the valid domain `0..capacity`.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container capacity it violated.
        capacity: usize,
    },
    /// A container invariant is violated (unsorted indices, duplicate
    /// indices, `rowptr` not monotone, …). Produced by the checked
    /// constructors.
    InvalidContainer(String),
    /// The operation is not defined for the given arguments
    /// (e.g. an empty index set where at least one element is required).
    InvalidArgument(String),
    /// A simulated communication failure that was injected via the fault
    /// hooks in `gblas-dist` and not recovered by retry.
    CommFailure(String),
}

impl fmt::Display for GblasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GblasError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            GblasError::IndexOutOfBounds { index, capacity } => {
                write!(f, "index {index} out of bounds for capacity {capacity}")
            }
            GblasError::InvalidContainer(msg) => write!(f, "invalid container: {msg}"),
            GblasError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            GblasError::CommFailure(msg) => write!(f, "communication failure: {msg}"),
        }
    }
}

impl std::error::Error for GblasError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, GblasError>;

/// Check that two lengths agree, producing a [`GblasError::DimensionMismatch`]
/// with a helpful message otherwise.
pub fn check_dims(what: &str, expected: usize, actual: usize) -> Result<()> {
    if expected == actual {
        Ok(())
    } else {
        Err(GblasError::DimensionMismatch {
            expected: format!("{what} = {expected}"),
            actual: format!("{what} = {actual}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e =
            GblasError::DimensionMismatch { expected: "len = 5".into(), actual: "len = 6".into() };
        assert_eq!(e.to_string(), "dimension mismatch: expected len = 5, got len = 6");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = GblasError::IndexOutOfBounds { index: 9, capacity: 4 };
        assert_eq!(e.to_string(), "index 9 out of bounds for capacity 4");
    }

    #[test]
    fn check_dims_ok_and_err() {
        assert!(check_dims("len", 3, 3).is_ok());
        let err = check_dims("len", 3, 4).unwrap_err();
        assert!(matches!(err, GblasError::DimensionMismatch { .. }));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(GblasError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("invalid argument"));
    }
}
