//! Seeded workload generators matching §II-A of the paper.
//!
//! "For simplicity, we only experimented with randomly generated matrices
//! and vectors. Randomly generated matrices give us precise control over
//! the nonzero distribution." All generators are deterministic in their
//! seed so every figure is reproducible bit-for-bit.

use crate::container::{CsrMatrix, DenseVec, SparseVec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample `k` distinct sorted indices from `0..n` (selection sampling,
/// Knuth's Algorithm S): exact count, already sorted, O(n).
pub fn sample_distinct_sorted(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    let mut out = Vec::with_capacity(k);
    let mut remaining = k;
    for i in 0..n {
        if remaining == 0 {
            break;
        }
        // Probability remaining/(n - i) of selecting index i.
        if (rng.gen_range(0..n - i)) < remaining {
            out.push(i);
            remaining -= 1;
        }
    }
    debug_assert_eq!(out.len(), k);
    out
}

/// An Erdős–Rényi-style sparse matrix `G(n, d/n)`: `n × n`, with `d`
/// nonzeros *in expectation* per row, uniformly placed. Per the paper's
/// model, each row draws `d` column ids uniformly at random; duplicates are
/// merged, so rows carry `≈ d` (at most `d`) entries. Values are uniform
/// in `[0, 1)`.
pub fn erdos_renyi(n: usize, d: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0usize);
    let mut colidx: Vec<usize> = Vec::with_capacity(n * d);
    let mut values: Vec<f64> = Vec::with_capacity(n * d);
    let mut row: Vec<usize> = Vec::with_capacity(d);
    for _ in 0..n {
        row.clear();
        for _ in 0..d {
            row.push(rng.gen_range(0..n));
        }
        row.sort_unstable();
        row.dedup();
        for &c in &row {
            colidx.push(c);
            values.push(rng.gen::<f64>());
        }
        rowptr.push(colidx.len());
    }
    CsrMatrix::from_raw_parts(n, n, rowptr, colidx, values)
        .expect("generator output satisfies CSR invariants")
}

/// An Erdős–Rényi pattern matrix with boolean values (adjacency only).
pub fn erdos_renyi_bool(n: usize, d: usize, seed: u64) -> CsrMatrix<bool> {
    let a = erdos_renyi(n, d, seed);
    let (nr, nc, rp, ci, vals) = a.into_raw_parts();
    let values = vec![true; vals.len()];
    CsrMatrix::from_raw_parts(nr, nc, rp, ci, values).expect("same structure")
}

/// A symmetric Erdős–Rényi matrix (undirected graph): the union of the
/// directed pattern and its transpose, diagonal removed. Used by the
/// triangle-counting example.
pub fn erdos_renyi_symmetric(n: usize, d: usize, seed: u64) -> CsrMatrix<f64> {
    let a = erdos_renyi(n, d, seed);
    let mut coo = crate::container::CooMatrix::new(n, n);
    for (r, c, &v) in a.iter() {
        if r != c {
            coo.push(r, c, v).unwrap();
            coo.push(c, r, v).unwrap();
        }
    }
    coo.to_csr_with(crate::container::DupPolicy::KeepLast, |a, _| a)
        .expect("symmetrized structure is valid")
}

/// A random sparse vector: `nnz` distinct positions out of `capacity`,
/// values uniform in `[0, 1)`. `f = nnz/capacity` is the paper's vector
/// density.
pub fn random_sparse_vec(capacity: usize, nnz: usize, seed: u64) -> SparseVec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let indices = sample_distinct_sorted(capacity, nnz, &mut rng);
    let values = (0..nnz).map(|_| rng.gen::<f64>()).collect();
    SparseVec::from_sorted(capacity, indices, values).expect("sampled indices are sorted/distinct")
}

/// A random sparse vector of `usize` values (e.g. candidate parent ids).
pub fn random_sparse_vec_usize(capacity: usize, nnz: usize, seed: u64) -> SparseVec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let indices = sample_distinct_sorted(capacity, nnz, &mut rng);
    let values = (0..nnz).map(|_| rng.gen_range(0..capacity)).collect();
    SparseVec::from_sorted(capacity, indices, values).expect("sampled indices are sorted/distinct")
}

/// An R-MAT (recursive matrix) power-law graph: `2^scale` vertices,
/// `edge_factor · 2^scale` edges placed by recursive quadrant descent with
/// the Graph500 probabilities `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
/// Duplicate edges are collapsed (summing weights), so the final nnz is
/// slightly below the nominal edge count — as in real Graph500 inputs.
///
/// ER matrices give "precise control over the nonzero distribution"
/// (§II-A) and are what the paper evaluates; R-MAT adds the skewed-degree
/// workloads a production library must also handle (used by the extra
/// examples and stress tests).
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrMatrix<f64> {
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = crate::container::CooMatrix::new(n, n);
    coo.reserve(n * edge_factor);
    for _ in 0..n * edge_factor {
        let (mut r, mut c) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let p: f64 = rng.gen();
            let (dr, dc) = if p < A {
                (0, 0)
            } else if p < A + B {
                (0, 1)
            } else if p < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            c |= dc << level;
        }
        coo.push(r, c, rng.gen::<f64>()).expect("rmat indices in range");
    }
    coo.to_csr_with(crate::container::DupPolicy::Sum, |a, b| a + b)
        .expect("rmat structure is valid")
}

/// A dense boolean vector with each entry independently `true` with
/// probability `frac_true` — the `y` operand of the paper's eWiseMult
/// experiments ("we initialize y in a way that half the entries in x are
/// kept", §III-C, i.e. `frac_true = 0.5`).
pub fn random_dense_bool(len: usize, frac_true: f64, seed: u64) -> DenseVec<bool> {
    let mut rng = SmallRng::seed_from_u64(seed);
    DenseVec::from_fn(len, |_| rng.gen::<f64>() < frac_true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_exact_sorted() {
        let mut rng = SmallRng::seed_from_u64(1);
        for (n, k) in [(10, 0), (10, 10), (100, 7), (1000, 500)] {
            let s = sample_distinct_sorted(n, k, &mut rng);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn erdos_renyi_shape_and_density() {
        let n = 2000;
        let d = 8;
        let a = erdos_renyi(n, d, 99);
        assert_eq!(a.nrows(), n);
        assert_eq!(a.ncols(), n);
        let avg = a.nnz() as f64 / n as f64;
        assert!((avg - d as f64).abs() < 0.5, "expected ≈{d} nnz/row, got {avg}");
        // values in range
        assert!(a.values().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn erdos_renyi_deterministic_in_seed() {
        let a = erdos_renyi(500, 4, 7);
        let b = erdos_renyi(500, 4, 7);
        let c = erdos_renyi(500, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a.colidx(), c.colidx());
    }

    #[test]
    fn symmetric_generator_is_symmetric() {
        let a = erdos_renyi_symmetric(300, 5, 3);
        for (r, c, _) in a.iter() {
            assert_ne!(r, c, "diagonal must be removed");
            assert!(a.get(c, r).is_some(), "missing mirror of ({r},{c})");
        }
    }

    #[test]
    fn random_sparse_vec_density() {
        let v = random_sparse_vec(10_000, 200, 5);
        assert_eq!(v.nnz(), 200);
        assert_eq!(v.capacity(), 10_000);
        assert!((v.density() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn rmat_shape_and_skew() {
        let a = rmat(10, 8, 77); // 1024 vertices, ~8192 edges
        assert_eq!(a.nrows(), 1024);
        assert!(a.nnz() > 6000 && a.nnz() <= 8192, "nnz = {}", a.nnz());
        // power-law skew: the max out-degree far exceeds the mean
        let max_deg = (0..1024).map(|i| a.row_nnz(i)).max().unwrap();
        let mean = a.nnz() as f64 / 1024.0;
        assert!(max_deg as f64 > 4.0 * mean, "expected skew: max {max_deg} vs mean {mean:.1}");
        // deterministic
        assert_eq!(a, rmat(10, 8, 77));
        assert_ne!(a.nnz(), rmat(10, 8, 78).nnz());
    }

    #[test]
    fn random_dense_bool_fraction() {
        let v = random_dense_bool(100_000, 0.5, 11);
        let trues = v.as_slice().iter().filter(|&&b| b).count();
        assert!((trues as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }
}
