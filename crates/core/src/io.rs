//! Matrix Market I/O.
//!
//! The de-facto interchange format for sparse matrices (and the format
//! every GraphBLAS implementation's test suites read). Supported subset:
//! `matrix coordinate real|integer|pattern general|symmetric`. Pattern
//! files read as value `1.0`; symmetric files are expanded to both
//! triangles on read.

use crate::container::{CooMatrix, CsrMatrix, DupPolicy};
use crate::error::{GblasError, Result};
use std::io::{BufRead, Write};

/// Value field of the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry of the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

fn parse_error(msg: impl Into<String>) -> GblasError {
    GblasError::InvalidArgument(format!("matrix market: {}", msg.into()))
}

/// Read a Matrix Market `coordinate` matrix from a reader.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix<f64>> {
    let mut lines = reader.lines();
    // Header line.
    let header = lines
        .next()
        .ok_or_else(|| parse_error("empty input"))?
        .map_err(|e| parse_error(e.to_string()))?;
    let h: Vec<String> = header.split_whitespace().map(|s| s.to_ascii_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(parse_error(format!("bad header line: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(parse_error(format!("unsupported format '{}' (only coordinate)", h[2])));
    }
    let field = match h[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_error(format!("unsupported field '{other}'"))),
    };
    let symmetry = match h[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(parse_error(format!("unsupported symmetry '{other}'"))),
    };
    // Size line (first non-comment line).
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| parse_error(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_error("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_error(format!("bad size token '{t}'"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(parse_error(format!("size line needs 3 numbers, got '{size_line}'")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    // Entries.
    let mut coo = CooMatrix::new(nrows, ncols);
    coo.reserve(if symmetry == Symmetry::Symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| parse_error(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        let need = if field == Field::Pattern { 2 } else { 3 };
        if toks.len() < need {
            return Err(parse_error(format!("bad entry line '{t}'")));
        }
        let i: usize =
            toks[0].parse().map_err(|_| parse_error(format!("bad row '{}'", toks[0])))?;
        let j: usize =
            toks[1].parse().map_err(|_| parse_error(format!("bad col '{}'", toks[1])))?;
        if i == 0 || j == 0 {
            return Err(parse_error("matrix market indices are 1-based"));
        }
        let v: f64 = if field == Field::Pattern {
            1.0
        } else {
            toks[2].parse().map_err(|_| parse_error(format!("bad value '{}'", toks[2])))?
        };
        coo.push(i - 1, j - 1, v)?;
        if symmetry == Symmetry::Symmetric && i != j {
            coo.push(j - 1, i - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_error(format!("size line promised {nnz} entries, found {seen}")));
    }
    coo.to_csr_with(DupPolicy::Sum, |a, b| a + b)
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<CsrMatrix<f64>> {
    let file = std::fs::File::open(path)
        .map_err(|e| parse_error(format!("open {}: {e}", path.display())))?;
    read_matrix_market(std::io::BufReader::new(file))
}

/// Write a matrix in `coordinate real general` form.
pub fn write_matrix_market<W: Write>(mut w: W, a: &CsrMatrix<f64>) -> Result<()> {
    let io_err = |e: std::io::Error| parse_error(format!("write: {e}"));
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(w, "% written by chapel-graphblas-rs").map_err(io_err)?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz()).map_err(io_err)?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v).map_err(io_err)?;
    }
    Ok(())
}

/// Write a matrix to a file on disk.
pub fn write_matrix_market_file(path: &std::path::Path, a: &CsrMatrix<f64>) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| parse_error(format!("create {}: {e}", path.display())))?;
    write_matrix_market(std::io::BufWriter::new(file), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip() {
        let a = gen::erdos_renyi(40, 4, 301);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        for (i, j, &v) in a.iter() {
            assert!((b.get(i, j).unwrap() - v).abs() < 1e-12);
        }
    }

    #[test]
    fn reads_pattern_and_comments() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    \n\
                    3 3 2\n\
                    1 2\n\
                    3 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), Some(&1.0));
        assert_eq!(a.get(2, 0), Some(&1.0));
    }

    #[test]
    fn reads_symmetric_expanding_both_triangles() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n\
                    2 1 5.0\n\
                    3 3 7.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3); // (1,0), (0,1), (2,2)
        assert_eq!(a.get(1, 0), Some(&5.0));
        assert_eq!(a.get(0, 1), Some(&5.0));
        assert_eq!(a.get(2, 2), Some(&7.0));
    }

    #[test]
    fn reads_integer_field() {
        let text = "%%MatrixMarket matrix coordinate integer general\n\
                    2 2 1\n\
                    1 1 42\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), Some(&42.0));
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n\
                    1 1 1.5\n\
                    1 1 2.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), Some(&4.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket tensor\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n2 2\n".as_bytes())
            .is_err());
        // wrong count
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // zero-based index
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
        // out of range
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn file_round_trip() {
        let a = gen::erdos_renyi(20, 3, 302);
        let dir = std::env::temp_dir().join("gblas_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        write_matrix_market_file(&path, &a).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a.nnz(), b.nnz());
    }
}
