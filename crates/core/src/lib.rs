//! # gblas-core — shared-memory GraphBLAS core
//!
//! This crate is the shared-memory heart of `chapel-graphblas-rs`, a Rust
//! reproduction of *"Towards a GraphBLAS Library in Chapel"* (Azad & Buluç,
//! IPDPS Workshops 2017). It provides:
//!
//! * **Algebra** ([`algebra`]): unary/binary operators, monoids and
//!   semirings, with the standard GraphBLAS instances (plus-times, min-plus,
//!   or-and, first/second, …).
//! * **Containers** ([`container`]): Chapel-style sparse vectors (sorted
//!   index set + values), dense vectors, CSR matrices (sorted column ids per
//!   row, exactly the layout §II-A of the paper describes) and a COO builder.
//! * **Operations** ([`ops`]): the paper's subset — `Apply`, `Assign`,
//!   `eWiseMult`, `SpMSpV` — each with the *two* implementations the paper
//!   contrasts (a naive "version 1" exercising fine-grained element access
//!   and an SPMD-style "version 2" that manipulates the low-level arrays
//!   directly), plus the rest of a useful GraphBLAS surface: `eWiseAdd`,
//!   `SpMV`, `MxM` (SpGEMM), `reduce`, `transpose`, `extract`, `select`.
//! * **Masks** ([`mask`]): structural/value masks with complement and
//!   replace semantics — the paper's §V "future work", implemented here.
//! * **Instrumented parallel runtime** ([`par`]): a fork-join executor with
//!   an explicit thread count that additionally records [`par::Counters`]
//!   (elements streamed, binary-search probes, atomic RMWs, sort work, SPA
//!   touches, tasks spawned). The `gblas-sim` crate prices those counters
//!   with a calibrated cost model of the paper's Cray XC30 platform so that
//!   the paper's figures can be regenerated on any machine.
//! * **Tracing & metrics** ([`trace`]): an opt-in span recorder on the
//!   simulated clock (operation → phase → per-locale segment) with Chrome
//!   trace-event / JSONL / summary exporters, plus an always-on registry of
//!   cumulative atomic metrics. Disabled recorders are free: one branch per
//!   call, no locks on the hot path.
//! * **Workspace pooling** ([`workspace`]): a per-context pool of
//!   generation-stamped SPAs, staging vectors and bucket/outbox scratch,
//!   checked out via RAII guards so iterative algorithms allocate on their
//!   first iteration and then run allocation-free (`GBLAS_WORKSPACE=off`
//!   restores per-call allocation; `pool_hits`/`pool_misses`/`allocs`/
//!   `alloc_bytes` metrics make the reuse observable).
//! * **Workload generators** ([`gen`]): seeded Erdős–Rényi matrices
//!   `G(n, d/n)` and random sparse/dense vectors, matching §II-A.
//!
//! ## Quick start
//!
//! ```
//! use gblas_core::container::{CsrMatrix, SparseVec};
//! use gblas_core::ops::spmspv::spmspv_semiring;
//! use gblas_core::algebra::semirings;
//! use gblas_core::par::ExecCtx;
//!
//! // A tiny 4x4 matrix: edges of a directed path 0 -> 1 -> 2 -> 3.
//! let a = CsrMatrix::<f64>::from_triplets(4, 4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
//! // A sparse "frontier" holding vertex 0.
//! let x = SparseVec::from_sorted(4, vec![0], vec![1.0]).unwrap();
//! let ctx = ExecCtx::serial();
//! let out = spmspv_semiring(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
//! assert_eq!(out.vector.indices(), &[1]); // one step of BFS reaches vertex 1
//! ```

pub mod algebra;
pub mod api;
pub mod backend;
pub mod container;
pub mod error;
pub mod gen;
pub mod io;
pub mod mask;
pub mod ops;
pub mod par;
pub mod sort;
pub mod spa;
pub mod trace;
pub mod workspace;

pub use backend::{GblasBackend, MaskSpec, SharedBackend};
pub use error::{GblasError, Result};
pub use workspace::{WorkspacePool, WorkspaceStats, WsGuard};
