//! Masks — the paper's §V "future work", implemented.
//!
//! "efficient implementations of novel concepts in GraphBLAS, such as
//! masks, have not been attempted in distributed memory before" (§V). A
//! mask restricts where an operation may write output entries. This module
//! provides vector masks in the two representations the library actually
//! uses:
//!
//! * a **sorted index list** (the structure of a sparse vector), and
//! * a **dense boolean bitmap** (e.g. a BFS `visited` array),
//!
//! each optionally **complemented** (GraphBLAS `GrB_COMP`): BFS's
//! "not yet visited" filter is `VecMask::dense(&visited).complement()`.

use crate::container::{DenseVec, SparseVec};
use crate::par::Counters;

#[derive(Debug, Clone, Copy)]
enum Repr<'a> {
    /// Sorted indices where the mask is set.
    Sorted(&'a [usize]),
    /// Bitmap; `true` means set.
    Dense(&'a [bool]),
}

/// A (possibly complemented) mask over vector indices.
#[derive(Debug, Clone, Copy)]
pub struct VecMask<'a> {
    repr: Repr<'a>,
    complement: bool,
}

impl<'a> VecMask<'a> {
    /// Structural mask: set wherever the sparse vector stores an entry.
    pub fn structural<T>(v: &'a SparseVec<T>) -> Self {
        VecMask { repr: Repr::Sorted(v.indices()), complement: false }
    }

    /// Mask from an explicit sorted index list.
    pub fn from_sorted_indices(indices: &'a [usize]) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        VecMask { repr: Repr::Sorted(indices), complement: false }
    }

    /// Mask from a dense boolean vector (`true` = set).
    pub fn dense(v: &'a DenseVec<bool>) -> Self {
        VecMask { repr: Repr::Dense(v.as_slice()), complement: false }
    }

    /// Flip the mask (GraphBLAS descriptor `GrB_COMP`).
    pub fn complement(mut self) -> Self {
        self.complement = !self.complement;
        self
    }

    /// Whether the complement flag is set.
    pub fn is_complemented(&self) -> bool {
        self.complement
    }

    /// May the operation write index `i`? Charges the lookup cost
    /// (binary-search probes for the sorted repr, one random access for the
    /// bitmap) to `counters`.
    pub fn allows(&self, i: usize, counters: &mut Counters) -> bool {
        let set = match self.repr {
            Repr::Sorted(indices) => {
                // instrumented binary search
                let mut lo = 0usize;
                let mut hi = indices.len();
                let mut found = false;
                while lo < hi {
                    counters.search_probes += 1;
                    let mid = lo + (hi - lo) / 2;
                    match indices[mid].cmp(&i) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => {
                            found = true;
                            break;
                        }
                    }
                }
                found
            }
            Repr::Dense(bits) => {
                counters.rand_access += 1;
                i < bits.len() && bits[i]
            }
        };
        set != self.complement
    }

    /// Apply the mask to a sparse vector, dropping disallowed entries.
    pub fn filter<T: Copy>(&self, v: &SparseVec<T>, counters: &mut Counters) -> SparseVec<T> {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &val) in v.iter() {
            if self.allows(i, counters) {
                indices.push(i);
                values.push(val);
            }
        }
        SparseVec::from_sorted(v.capacity(), indices, values)
            .expect("filtering preserves order and bounds")
    }
}

/// No mask: a convenience for call sites taking `Option<&VecMask>`.
pub const NO_MASK: Option<&VecMask<'static>> = None;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_mask_allows_stored_indices() {
        let v = SparseVec::from_sorted(10, vec![2, 5, 9], vec![1, 1, 1]).unwrap();
        let m = VecMask::structural(&v);
        let mut c = Counters::default();
        assert!(m.allows(2, &mut c));
        assert!(!m.allows(3, &mut c));
        assert!(c.search_probes > 0);
    }

    #[test]
    fn complement_flips() {
        let v = SparseVec::from_sorted(10, vec![2], vec![1]).unwrap();
        let m = VecMask::structural(&v).complement();
        let mut c = Counters::default();
        assert!(!m.allows(2, &mut c));
        assert!(m.allows(3, &mut c));
        assert!(m.is_complemented());
        // double complement is identity
        let m2 = m.complement();
        assert!(m2.allows(2, &mut c));
    }

    #[test]
    fn dense_mask() {
        let d = DenseVec::from_vec(vec![true, false, true]);
        let m = VecMask::dense(&d);
        let mut c = Counters::default();
        assert!(m.allows(0, &mut c));
        assert!(!m.allows(1, &mut c));
        // out of range is "not set"
        assert!(!m.allows(99, &mut c));
        assert!(m.complement().allows(99, &mut c));
        assert!(c.rand_access > 0);
    }

    #[test]
    fn filter_drops_disallowed() {
        let x = SparseVec::from_sorted(6, vec![0, 2, 4], vec![10, 20, 30]).unwrap();
        let visited = DenseVec::from_vec(vec![true, false, false, false, true, false]);
        let not_visited = VecMask::dense(&visited).complement();
        let mut c = Counters::default();
        let y = not_visited.filter(&x, &mut c);
        assert_eq!(y.indices(), &[2]);
        assert_eq!(y.values(), &[20]);
        assert_eq!(y.capacity(), 6);
    }
}
