//! `Apply`: a unary operator over every stored value (§III-A).
//!
//! "Apply takes a unary operator and a matrix (or a vector) as its input.
//! It applies the unary operator to every nonzero ... The computation
//! complexity of Apply is O(nnz) and it does not require any
//! communication."
//!
//! In shared memory the paper's two versions (Listing 2's flat `forall` and
//! Listing 3's per-locale `coforall`) perform identically — "both Apply1
//! and Apply2 show near-perfect scaling on a single node" — and they only
//! diverge in distributed memory (`gblas_dist::ops::apply`). The shared
//! memory kernel below is the common body both distributed versions call.

use crate::algebra::UnaryOp;
use crate::container::{CsrMatrix, SparseVec};
use crate::par::ExecCtx;

/// Phase name used by this op.
pub const PHASE: &str = "apply";

/// Apply `op` in place to every stored value of a sparse vector.
pub fn apply_vec_inplace<T: Copy + Send + Sync>(
    x: &mut SparseVec<T>,
    op: &impl UnaryOp<T, T>,
    ctx: &ExecCtx,
) {
    let n = x.nnz();
    let _op = ctx.trace_op("apply_vec_inplace", n as u64, &[("capacity", x.capacity())]);
    let values = x.values_mut();
    // Split the value array into per-task chunks (Chapel's `forall a in
    // spArr` with one task per thread).
    let chunks = crate::par::split_ranges(n, ctx.threads());
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(chunks.len());
    let mut rest: &mut [T] = values;
    for r in &chunks {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
        slices.push(head);
        rest = tail;
    }
    let slices: Vec<parking_lot::Mutex<&mut [T]>> =
        slices.into_iter().map(parking_lot::Mutex::new).collect();
    ctx.for_each_task(PHASE, slices.len(), |t, c| {
        let mut guard = slices[t].lock();
        for v in guard.iter_mut() {
            *v = op.eval(*v);
        }
        c.elems += guard.len() as u64;
        c.bytes_moved += (guard.len() * std::mem::size_of::<T>() * 2) as u64;
    });
}

/// Apply `op` to a sparse vector, producing a new vector (possibly of a
/// different value type) with the same structure.
pub fn apply_vec<T: Copy + Send + Sync, C: Copy + Send + Sync>(
    x: &SparseVec<T>,
    op: &impl UnaryOp<T, C>,
    ctx: &ExecCtx,
) -> SparseVec<C> {
    let outs = ctx.parallel_for(PHASE, x.nnz(), |r, c| {
        let vals: Vec<C> = x.values()[r.clone()].iter().map(|&v| op.eval(v)).collect();
        c.elems += r.len() as u64;
        c.bytes_moved += (r.len() * (std::mem::size_of::<T>() + std::mem::size_of::<C>())) as u64;
        vals
    });
    let mut values = Vec::with_capacity(x.nnz());
    for o in outs {
        values.extend(o);
    }
    SparseVec::from_sorted(x.capacity(), x.indices().to_vec(), values).expect("structure unchanged")
}

/// Apply a coordinate-aware map to every stored entry of a CSR matrix,
/// producing a new matrix (possibly of a different value type) with the
/// same structure: `B[i,j] = f(i, j, A[i,j])`.
pub fn map_mat<T: Copy + Send + Sync, C: Copy + Send + Sync>(
    a: &CsrMatrix<T>,
    f: &(impl Fn(usize, usize, T) -> C + Sync),
    ctx: &ExecCtx,
) -> CsrMatrix<C> {
    let chunks = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out: Vec<C> = Vec::new();
        for i in r.clone() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                out.push(f(i, j, v));
            }
            c.elems += cols.len() as u64;
            c.bytes_moved +=
                (cols.len() * (std::mem::size_of::<T>() + std::mem::size_of::<C>())) as u64;
        }
        out
    });
    let mut values = Vec::with_capacity(a.nnz());
    for chunk in chunks {
        values.extend(chunk);
    }
    CsrMatrix::from_raw_parts(
        a.nrows(),
        a.ncols(),
        a.rowptr().to_vec(),
        a.colidx().to_vec(),
        values,
    )
    .expect("structure unchanged")
}

/// Apply `op` in place to every stored value of a CSR matrix.
pub fn apply_mat_inplace<T: Copy + Send + Sync>(
    a: &mut CsrMatrix<T>,
    op: &impl UnaryOp<T, T>,
    ctx: &ExecCtx,
) {
    let n = a.nnz();
    let values = a.values_mut();
    let chunks = crate::par::split_ranges(n, ctx.threads());
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(chunks.len());
    let mut rest: &mut [T] = values;
    for r in &chunks {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
        slices.push(head);
        rest = tail;
    }
    let slices: Vec<parking_lot::Mutex<&mut [T]>> =
        slices.into_iter().map(parking_lot::Mutex::new).collect();
    ctx.for_each_task(PHASE, slices.len(), |t, c| {
        let mut guard = slices[t].lock();
        for v in guard.iter_mut() {
            *v = op.eval(*v);
        }
        c.elems += guard.len() as u64;
        c.bytes_moved += (guard.len() * std::mem::size_of::<T>() * 2) as u64;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::SparseVec;

    #[test]
    fn inplace_applies_to_all_values() {
        for threads in [1, 2, 8] {
            let mut x = SparseVec::from_sorted(10, vec![1, 3, 5], vec![1.0, 2.0, 3.0]).unwrap();
            let ctx = ExecCtx::new(threads, 2);
            apply_vec_inplace(&mut x, &|v: f64| v * 10.0, &ctx);
            assert_eq!(x.values(), &[10.0, 20.0, 30.0]);
            assert_eq!(x.indices(), &[1, 3, 5]); // structure untouched
            let prof = ctx.take_profile();
            assert_eq!(prof.phase(PHASE).elems, 3);
        }
    }

    #[test]
    fn apply_with_type_change() {
        let x = SparseVec::from_sorted(4, vec![0, 2], vec![1.5f64, 2.5]).unwrap();
        let ctx = ExecCtx::serial();
        let y = apply_vec(&x, &|v: f64| v > 2.0, &ctx);
        assert_eq!(y.values(), &[false, true]);
        assert_eq!(y.capacity(), 4);
    }

    #[test]
    fn apply_empty_vector_is_noop() {
        let mut x = SparseVec::<i32>::new(5);
        let ctx = ExecCtx::with_threads(4);
        apply_vec_inplace(&mut x, &|v: i32| v + 1, &ctx);
        assert_eq!(x.nnz(), 0);
    }

    #[test]
    fn apply_matrix_inplace() {
        let mut a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 1, 3)]).unwrap();
        let ctx = ExecCtx::with_threads(2);
        apply_mat_inplace(&mut a, &|v: i32| -v, &ctx);
        assert_eq!(a.values(), &[-1, -2, -3]);
    }

    #[test]
    fn counters_scale_with_nnz() {
        let n = 10_000;
        let x = SparseVec::from_sorted(n, (0..n).collect(), vec![1u8; n]).unwrap();
        let ctx = ExecCtx::simulated(24);
        let _ = apply_vec(&x, &|v: u8| v, &ctx);
        let c = ctx.take_profile().phase(PHASE);
        assert_eq!(c.elems, n as u64);
        assert_eq!(c.tasks, 24);
    }
}
