//! `Assign`: copy one sparse object into another (§III-B).
//!
//! The paper implements the restricted form where the source and
//! destination share the same distribution/capacity ("we implement a
//! restrictive version of Assign that requires the domains of A and B to
//! match"; complexity `O(nnz(A))`, no communication).
//!
//! * [`assign_v1`] is Listing 4: rebuild the destination's index set, then
//!   iterate the *domain* and copy element-by-element through indexed
//!   access — each access is an `O(log nnz)` binary search because "two
//!   sparse arrays are not allowed to iterate together (zipper iteration
//!   is not implemented for sparse arrays yet)". This makes Assign1 an
//!   order of magnitude slower (Fig 2, left).
//! * [`assign_v2`] is Listing 5: bulk-copy the index and value arrays
//!   directly ("dense arrays stored in each locale can be zippered").

use crate::container::SparseVec;
use crate::error::{check_dims, Result};
use crate::mask::VecMask;
use crate::par::ExecCtx;

/// Phase names used by this op.
pub const PHASE_DOMAIN: &str = "assign-domain";
/// Phase for the value-copy step.
pub const PHASE_VALUES: &str = "assign-values";

/// Listing 4: domain rebuild + per-element indexed copy (binary searches).
pub fn assign_v1<T: Copy + Send + Sync + Default + 'static>(
    a: &mut SparseVec<T>,
    b: &SparseVec<T>,
    ctx: &ExecCtx,
) -> Result<()> {
    check_dims("capacity", a.capacity(), b.capacity())?;
    let _op = ctx.trace_op("assign_v1", b.nnz() as u64, &[("capacity", a.capacity())]);
    // ------ Assign domain ------- (DA.clear(); DA += DB). Rebuilding a
    // sorted sparse domain is merge-class work (sort units), which is what
    // limits Assign to the paper's 5-8x scaling at 24 threads.
    ctx.record(PHASE_DOMAIN, |c| c.sort_elems += b.nnz() as u64);
    a.clear();
    a.assign_domain(b.indices(), T::default())?;
    // ------ Assign array ------- (forall i in DA do A[i] = B[i])
    // Both the read of B[i] and the write of A[i] go through logarithmic
    // indexed access, as in Chapel. Collect per-chunk (index, value) pairs
    // from B by search, then write them into A by search.
    let mut b_indices = ctx.ws_vec::<usize>();
    b_indices.extend_from_slice(a.indices()); // == b.indices()
    let reads = ctx.parallel_for(PHASE_VALUES, b_indices.len(), |r, c| {
        let mut out = ctx.ws_vec::<(usize, T)>();
        for &i in &b_indices[r.clone()] {
            let mut probes = 0;
            let v = *b.get_probed(i, &mut probes).expect("index came from b's domain");
            c.search_probes += probes;
            out.push((i, v));
        }
        c.elems += r.len() as u64;
        out
    });
    let mut probes = 0u64;
    for chunk in reads {
        for &(i, v) in chunk.iter() {
            a.set_existing(i, v, &mut probes)?;
        }
    }
    ctx.record(PHASE_VALUES, |c| c.search_probes += probes);
    Ok(())
}

/// Listing 5: bulk domain copy + zippered dense value copy.
pub fn assign_v2<T: Copy + Send + Sync + Default>(
    a: &mut SparseVec<T>,
    b: &SparseVec<T>,
    ctx: &ExecCtx,
) -> Result<()> {
    check_dims("capacity", a.capacity(), b.capacity())?;
    let _op = ctx.trace_op("assign_v2", b.nnz() as u64, &[("capacity", a.capacity())]);
    a.clear();
    if b.nnz() == 0 {
        return Ok(());
    }
    // ------ Assign domain ------- (locDA.mySparseBlock += locDB.mySparseBlock)
    ctx.record(PHASE_DOMAIN, |c| {
        c.sort_elems += b.nnz() as u64;
        c.bytes_moved += (b.nnz() * std::mem::size_of::<usize>()) as u64;
    });
    a.assign_domain(b.indices(), T::default())?;
    // ------ Assign array ------- zippered chunk copy of the value arrays.
    let src = b.values();
    let n = src.len();
    let chunks = crate::par::split_ranges(n, ctx.threads());
    let dst = a.values_mut();
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(chunks.len());
    let mut rest: &mut [T] = dst;
    for r in &chunks {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
        slices.push(head);
        rest = tail;
    }
    let slices: Vec<parking_lot::Mutex<(&mut [T], std::ops::Range<usize>)>> =
        slices.into_iter().zip(chunks.iter().cloned()).map(parking_lot::Mutex::new).collect();
    ctx.for_each_task(PHASE_VALUES, slices.len(), |t, c| {
        let mut guard = slices[t].lock();
        let (dst_chunk, range) = &mut *guard;
        dst_chunk.copy_from_slice(&src[range.clone()]);
        c.elems += dst_chunk.len() as u64;
        c.bytes_moved += (std::mem::size_of_val(*dst_chunk) * 2) as u64;
    });
    Ok(())
}

/// General subset assign, `w(I) = u` — GraphBLAS `GrB_assign` with an
/// index list: `w[I[k]] = u[k]` for every stored `u[k]`, other entries of
/// `w` preserved. `I` must be strictly increasing with `len ==
/// u.capacity()`; this is the unrestricted form whose distributed version
/// the paper notes "can require O((nnz(A)+nnz(B))/√p) communication"
/// (§III-B) — here in shared memory it is a sorted merge.
pub fn assign_subset<T: Copy + Send + Sync>(
    w: &mut SparseVec<T>,
    index_set: &[usize],
    u: &SparseVec<T>,
    ctx: &ExecCtx,
) -> Result<()> {
    use crate::error::GblasError;
    if index_set.len() != u.capacity() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("index set of length {}", u.capacity()),
            actual: format!("length {}", index_set.len()),
        });
    }
    for pair in index_set.windows(2) {
        if pair[0] >= pair[1] {
            return Err(GblasError::InvalidArgument(
                "assign index set must be strictly increasing".into(),
            ));
        }
    }
    if let Some(&last) = index_set.last() {
        if last >= w.capacity() {
            return Err(GblasError::IndexOutOfBounds { index: last, capacity: w.capacity() });
        }
    }
    // Translate u's entries into w coordinates (monotone because I is
    // sorted), then merge over w.
    let translated: Vec<(usize, T)> = u.iter().map(|(k, &v)| (index_set[k], v)).collect();
    let mut c = crate::par::Counters::default();
    let (wi, wv) = (w.indices(), w.values());
    let mut out_i = Vec::with_capacity(wi.len() + translated.len());
    let mut out_v = Vec::with_capacity(wi.len() + translated.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < wi.len() || q < translated.len() {
        c.elems += 1;
        if q >= translated.len() || (p < wi.len() && wi[p] < translated[q].0) {
            out_i.push(wi[p]);
            out_v.push(wv[p]);
            p += 1;
        } else if p >= wi.len() || translated[q].0 < wi[p] {
            out_i.push(translated[q].0);
            out_v.push(translated[q].1);
            q += 1;
        } else {
            out_i.push(translated[q].0);
            out_v.push(translated[q].1); // new value wins
            p += 1;
            q += 1;
        }
    }
    ctx.record(PHASE_VALUES, |pc| pc.merge(&c));
    *w = SparseVec::from_sorted(w.capacity(), out_i, out_v)?;
    Ok(())
}

/// Masked assign: `a[i] = b[i]` only where the mask allows; other entries
/// of `a` are preserved (GraphBLAS `GrB_assign` with a mask and
/// `GrB_REPLACE` unset). Both inputs must share a capacity.
pub fn assign_masked<T: Copy + Send + Sync>(
    a: &mut SparseVec<T>,
    b: &SparseVec<T>,
    mask: &VecMask<'_>,
    ctx: &ExecCtx,
) -> Result<()> {
    check_dims("capacity", a.capacity(), b.capacity())?;
    let mut c = crate::par::Counters::default();
    // Merge the surviving entries of b over a.
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut out_i: Vec<usize> = Vec::with_capacity(ai.len() + bi.len());
    let mut out_v: Vec<T> = Vec::with_capacity(ai.len() + bi.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < ai.len() || q < bi.len() {
        let take_b = q < bi.len() && (p >= ai.len() || bi[q] <= ai[p]);
        if take_b {
            let i = bi[q];
            let allowed = mask.allows(i, &mut c);
            if allowed {
                out_i.push(i);
                out_v.push(bv[q]);
            } else if p < ai.len() && ai[p] == i {
                out_i.push(i);
                out_v.push(av[p]);
            }
            if p < ai.len() && ai[p] == i {
                p += 1;
            }
            q += 1;
        } else {
            out_i.push(ai[p]);
            out_v.push(av[p]);
            p += 1;
        }
        c.elems += 1;
    }
    ctx.record(PHASE_VALUES, |pc| pc.merge(&c));
    *a = SparseVec::from_sorted(a.capacity(), out_i, out_v)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::DenseVec;

    fn sample_pair(n: usize) -> (SparseVec<f64>, SparseVec<f64>) {
        let b = SparseVec::from_sorted(n, vec![1, 4, 9, 17], vec![1.0, 4.0, 9.0, 17.0]).unwrap();
        let a = SparseVec::from_sorted(n, vec![0, 2], vec![-1.0, -2.0]).unwrap();
        (a, b)
    }

    #[test]
    fn v1_copies_exactly() {
        let (mut a, b) = sample_pair(32);
        let ctx = ExecCtx::with_threads(2);
        assign_v1(&mut a, &b, &ctx).unwrap();
        assert_eq!(a, b);
        let prof = ctx.take_profile();
        assert!(prof.phase(PHASE_VALUES).search_probes > 0, "v1 must pay log-time searches");
    }

    #[test]
    fn v2_copies_exactly_without_searches() {
        let (mut a, b) = sample_pair(32);
        let ctx = ExecCtx::with_threads(2);
        assign_v2(&mut a, &b, &ctx).unwrap();
        assert_eq!(a, b);
        let prof = ctx.take_profile();
        assert_eq!(prof.phase(PHASE_VALUES).search_probes, 0, "v2 must not search");
    }

    #[test]
    fn v1_and_v2_agree_on_larger_input() {
        let n = 10_000;
        let b = crate::gen::random_sparse_vec(n, 2_000, 42);
        let mut a1 = SparseVec::new(n);
        let mut a2 = SparseVec::new(n);
        let ctx = ExecCtx::with_threads(4);
        assign_v1(&mut a1, &b, &ctx).unwrap();
        assign_v2(&mut a2, &b, &ctx).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(a1, b);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let b = SparseVec::from_sorted(8, vec![1], vec![1.0]).unwrap();
        let mut a = SparseVec::new(9);
        let ctx = ExecCtx::serial();
        assert!(assign_v1(&mut a, &b, &ctx).is_err());
        assert!(assign_v2(&mut a, &b, &ctx).is_err());
    }

    #[test]
    fn assign_empty_source_clears_dest() {
        let mut a = SparseVec::from_sorted(5, vec![3], vec![1.0]).unwrap();
        let b = SparseVec::new(5);
        let ctx = ExecCtx::serial();
        assign_v2(&mut a, &b, &ctx).unwrap();
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn subset_assign_round_trips_with_extract() {
        // w(I) = u followed by extract(w, I) recovers u.
        let mut w = crate::gen::random_sparse_vec(50, 12, 77);
        let index_set: Vec<usize> = (0..50).step_by(3).collect(); // 17 slots
        let u = crate::gen::random_sparse_vec(index_set.len(), 6, 78);
        let ctx = ExecCtx::serial();
        assign_subset(&mut w, &index_set, &u, &ctx).unwrap();
        let back = crate::ops::extract::extract_vec(&w, &index_set, &ctx).unwrap();
        for (k, &v) in u.iter() {
            assert_eq!(back.get(k), Some(&v), "slot {k}");
        }
        // entries of w outside I are untouched
        let original = crate::gen::random_sparse_vec(50, 12, 77);
        for (i, &v) in original.iter() {
            if !index_set.contains(&i) {
                assert_eq!(w.get(i), Some(&v), "index {i}");
            }
        }
    }

    #[test]
    fn subset_assign_validates() {
        let mut w = SparseVec::<f64>::new(10);
        let u = SparseVec::from_sorted(3, vec![0], vec![1.0]).unwrap();
        let ctx = ExecCtx::serial();
        // wrong index-set length
        assert!(assign_subset(&mut w, &[1, 2], &u, &ctx).is_err());
        // unsorted
        assert!(assign_subset(&mut w, &[3, 2, 5], &u, &ctx).is_err());
        // out of bounds
        assert!(assign_subset(&mut w, &[1, 2, 10], &u, &ctx).is_err());
        // valid
        assert!(assign_subset(&mut w, &[1, 2, 5], &u, &ctx).is_ok());
        assert_eq!(w.get(1), Some(&1.0));
    }

    #[test]
    fn masked_assign_merges() {
        let mut a = SparseVec::from_sorted(8, vec![0, 2, 4], vec![10, 20, 30]).unwrap();
        let b = SparseVec::from_sorted(8, vec![2, 3, 4], vec![99, 98, 97]).unwrap();
        let allow = DenseVec::from_vec(vec![false, false, true, true, false, false, false, false]);
        let mask = VecMask::dense(&allow);
        let ctx = ExecCtx::serial();
        assign_masked(&mut a, &b, &mask, &ctx).unwrap();
        // index 2 and 3 allowed -> take b; index 4 masked out -> keep a's 30
        assert_eq!(a.indices(), &[0, 2, 3, 4]);
        assert_eq!(a.values(), &[10, 99, 98, 30]);
    }
}
