//! `eWiseMult` / `eWiseAdd`: element-wise products and sums (§III-C).
//!
//! "eWiseMult returns an object whose indices are the intersection of the
//! indices of the inputs. The values in this intersection set are
//! multiplied using the binary operator that is passed as a parameter.
//! Complexity O(nnz(A) + nnz(B)), no communication."
//!
//! The paper's measured specialization is a **sparse × dense** filter
//! (Listing 6): keep entry `x[i]` when a predicate of `(x[i], y[i])`
//! holds. Two compaction strategies are provided:
//!
//! * [`ewise_filter_atomic`] — the paper's code: survivors are compacted
//!   through an atomic `fetchAdd` cursor, which leaves them unsorted, so a
//!   sort follows ("we use an atomic variable to create a temporary dense
//!   array keepInd").
//! * [`ewise_filter_prefix`] — the paper's suggested improvement: "we can
//!   avoid the atomic variable by keeping a thread-private array in each
//!   thread and merge these thread-private arrays via a prefix sum
//!   operation". Per-task survivor lists over contiguous chunks are
//!   already sorted, so concatenation needs no sort at all.
//!
//! The general sparse∩sparse multiply and sparse∪sparse add complete the
//! GraphBLAS surface.

use crate::algebra::BinaryOp;
use crate::container::{DenseVec, SparseVec};
use crate::error::{check_dims, Result};
use crate::par::ExecCtx;
use crate::sort::parallel_merge_sort;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Phase for the scan/predicate step.
pub const PHASE_SCAN: &str = "ewise-scan";
/// Phase for sorting (atomic variant only).
pub const PHASE_SORT: &str = "ewise-sort";
/// Phase for building the output vector.
pub const PHASE_OUTPUT: &str = "ewise-output";

/// Listing 6: sparse×dense filter with atomic compaction. `keep(xv, yv)`
/// decides whether the entry survives.
pub fn ewise_filter_atomic<T, U>(
    x: &SparseVec<T>,
    y: &DenseVec<U>,
    keep: &(impl Fn(T, U) -> bool + Sync),
    ctx: &ExecCtx,
) -> Result<SparseVec<T>>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
{
    check_dims("capacity", x.capacity(), y.len())?;
    let nnz = x.nnz();
    // keepInd + atomic cursor k (Listing 6 lines 16–21). The dense staging
    // array is pooled scratch; stale contents are fine because only the
    // first `kept` slots — all freshly stored — are ever read back.
    let mut keep_ind = ctx.ws_vec::<AtomicUsize>();
    keep_ind.resize_with(nnz, || AtomicUsize::new(0));
    let k = AtomicUsize::new(0);
    let xi = x.indices();
    let xv = x.values();
    ctx.parallel_for(PHASE_SCAN, nnz, |r, c| {
        for p in r.clone() {
            let ind = xi[p];
            c.rand_access += 1; // lyArr[ind]
            if keep(xv[p], y[ind]) {
                let slot = k.fetch_add(1, Ordering::Relaxed);
                c.atomics += 1;
                keep_ind[slot].store(ind, Ordering::Relaxed);
            }
        }
        c.elems += r.len() as u64;
    });
    // Truncate and sort (the `+=` into a sparse domain sorts in Chapel).
    let kept = k.load(Ordering::Acquire);
    let mut indices: Vec<usize> =
        keep_ind[..kept].iter().map(|a| a.load(Ordering::Relaxed)).collect();
    parallel_merge_sort(&mut indices, ctx, PHASE_SORT);
    // Copy the surviving values by merge-walking x (both sorted).
    let values = gather_values(x, &indices, ctx);
    SparseVec::from_sorted(x.capacity(), indices, values)
}

/// The improved compaction: per-task survivor lists + concatenation
/// (prefix sum). Output of each contiguous chunk is already sorted, so no
/// sort step exists.
pub fn ewise_filter_prefix<T, U>(
    x: &SparseVec<T>,
    y: &DenseVec<U>,
    keep: &(impl Fn(T, U) -> bool + Sync),
    ctx: &ExecCtx,
) -> Result<SparseVec<T>>
where
    T: Copy + Send + Sync + 'static,
    U: Copy + Send + Sync,
{
    check_dims("capacity", x.capacity(), y.len())?;
    let xi = x.indices();
    let xv = x.values();
    let parts = ctx.parallel_for(PHASE_SCAN, x.nnz(), |r, c| {
        let mut inds = ctx.ws_vec::<usize>();
        let mut vals = ctx.ws_vec::<T>();
        for p in r.clone() {
            let ind = xi[p];
            c.rand_access += 1;
            if keep(xv[p], y[ind]) {
                inds.push(ind);
                vals.push(xv[p]);
            }
        }
        c.elems += r.len() as u64;
        (inds, vals)
    });
    let total: usize = parts.iter().map(|(i, _)| i.len()).sum();
    let mut indices = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (i, v) in parts {
        indices.extend_from_slice(&i);
        values.extend_from_slice(&v);
    }
    ctx.record(PHASE_OUTPUT, |c| {
        c.elems += total as u64;
        c.bytes_moved += (total * (std::mem::size_of::<usize>() + std::mem::size_of::<T>())) as u64;
    });
    SparseVec::from_sorted(x.capacity(), indices, values)
}

/// Gather `x`'s values at `sorted_indices` (all of which must be present)
/// by a linear merge walk.
fn gather_values<T: Copy + Send + Sync>(
    x: &SparseVec<T>,
    sorted_indices: &[usize],
    ctx: &ExecCtx,
) -> Vec<T> {
    let xi = x.indices();
    let xv = x.values();
    let mut values = Vec::with_capacity(sorted_indices.len());
    let mut p = 0usize;
    let mut c = crate::par::Counters::default();
    for &i in sorted_indices {
        while xi[p] < i {
            p += 1;
        }
        debug_assert_eq!(xi[p], i);
        values.push(xv[p]);
        c.elems += 1;
    }
    ctx.record(PHASE_OUTPUT, |pc| pc.merge(&c));
    values
}

/// General sparse ∩ sparse element-wise multiply on a binary operator:
/// `z[i] = op(a[i], b[i])` wherever both are stored.
pub fn ewise_mult<A, B, C, Op>(
    a: &SparseVec<A>,
    b: &SparseVec<B>,
    op: &Op,
    ctx: &ExecCtx,
) -> Result<SparseVec<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
    Op: BinaryOp<A, B, C>,
{
    check_dims("capacity", a.capacity(), b.capacity())?;
    let _op = ctx.trace_op("ewise_mult", (a.nnz() + b.nnz()) as u64, &[("capacity", a.capacity())]);
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut out_i = Vec::new();
    let mut out_v = Vec::new();
    let (mut p, mut q) = (0usize, 0usize);
    let mut c = crate::par::Counters::default();
    while p < ai.len() && q < bi.len() {
        c.elems += 1;
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                out_i.push(ai[p]);
                out_v.push(op.eval(av[p], bv[q]));
                c.flops += 1;
                p += 1;
                q += 1;
            }
        }
    }
    ctx.record(PHASE_SCAN, |pc| pc.merge(&c));
    SparseVec::from_sorted(a.capacity(), out_i, out_v)
}

/// Sparse ∪ sparse element-wise add: entries present in either input,
/// combined with `op` where both are present (GraphBLAS `eWiseAdd`).
pub fn ewise_add<T, Op>(
    a: &SparseVec<T>,
    b: &SparseVec<T>,
    op: &Op,
    ctx: &ExecCtx,
) -> Result<SparseVec<T>>
where
    T: Copy + Send + Sync,
    Op: BinaryOp<T, T, T>,
{
    check_dims("capacity", a.capacity(), b.capacity())?;
    let _op = ctx.trace_op("ewise_add", (a.nnz() + b.nnz()) as u64, &[("capacity", a.capacity())]);
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut out_i = Vec::with_capacity(ai.len() + bi.len());
    let mut out_v = Vec::with_capacity(ai.len() + bi.len());
    let (mut p, mut q) = (0usize, 0usize);
    let mut c = crate::par::Counters::default();
    while p < ai.len() || q < bi.len() {
        c.elems += 1;
        if q >= bi.len() || (p < ai.len() && ai[p] < bi[q]) {
            out_i.push(ai[p]);
            out_v.push(av[p]);
            p += 1;
        } else if p >= ai.len() || bi[q] < ai[p] {
            out_i.push(bi[q]);
            out_v.push(bv[q]);
            q += 1;
        } else {
            out_i.push(ai[p]);
            out_v.push(op.eval(av[p], bv[q]));
            c.flops += 1;
            p += 1;
            q += 1;
        }
    }
    ctx.record(PHASE_SCAN, |pc| pc.merge(&c));
    SparseVec::from_sorted(a.capacity(), out_i, out_v)
}

/// Which compaction strategy the figure harness should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EwiseVariant {
    /// The paper's atomic `fetchAdd` compaction (Listing 6).
    #[default]
    Atomic,
    /// Thread-private buffers + prefix sum (the suggested improvement).
    Prefix,
}

/// Dispatch on [`EwiseVariant`].
pub fn ewise_filter<T, U>(
    x: &SparseVec<T>,
    y: &DenseVec<U>,
    keep: &(impl Fn(T, U) -> bool + Sync),
    variant: EwiseVariant,
    ctx: &ExecCtx,
) -> Result<SparseVec<T>>
where
    T: Copy + Send + Sync + 'static,
    U: Copy + Send + Sync,
{
    match variant {
        EwiseVariant::Atomic => ewise_filter_atomic(x, y, keep, ctx),
        EwiseVariant::Prefix => ewise_filter_prefix(x, y, keep, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{Plus, Times};
    use crate::gen;

    fn filter_case(n: usize, nnz: usize) -> (SparseVec<f64>, DenseVec<bool>) {
        let x = gen::random_sparse_vec(n, nnz, 3);
        let y = gen::random_dense_bool(n, 0.5, 4);
        (x, y)
    }

    #[test]
    fn atomic_and_prefix_agree() {
        let (x, y) = filter_case(5_000, 800);
        let keep = |_xv: f64, yv: bool| yv;
        for threads in [1, 2, 8] {
            let ctx = ExecCtx::new(threads, 2);
            let a = ewise_filter_atomic(&x, &y, &keep, &ctx).unwrap();
            let b = ewise_filter_prefix(&x, &y, &keep, &ctx).unwrap();
            assert_eq!(a, b);
            // reference: manual filter
            for (i, &v) in a.iter() {
                assert!(y[i]);
                assert_eq!(x.get(i), Some(&v));
            }
            let expected = x.iter().filter(|&(i, _)| y[i]).count();
            assert_eq!(a.nnz(), expected);
        }
    }

    #[test]
    fn atomic_variant_pays_for_sort_prefix_does_not() {
        let (x, y) = filter_case(20_000, 5_000);
        let keep = |_: f64, yv: bool| yv;
        let ctx_a = ExecCtx::simulated(8);
        let _ = ewise_filter_atomic(&x, &y, &keep, &ctx_a).unwrap();
        let pa = ctx_a.take_profile();
        assert!(pa.phase(PHASE_SORT).sort_elems > 0);
        assert!(pa.phase(PHASE_SCAN).atomics > 0);

        let ctx_p = ExecCtx::simulated(8);
        let _ = ewise_filter_prefix(&x, &y, &keep, &ctx_p).unwrap();
        let pp = ctx_p.take_profile();
        assert_eq!(pp.phase(PHASE_SORT).sort_elems, 0);
        assert_eq!(pp.phase(PHASE_SCAN).atomics, 0);
    }

    #[test]
    fn ewise_mult_intersects() {
        let a = SparseVec::from_sorted(8, vec![1, 3, 5], vec![2.0, 3.0, 4.0]).unwrap();
        let b = SparseVec::from_sorted(8, vec![0, 3, 5, 7], vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let ctx = ExecCtx::serial();
        let z: SparseVec<f64> = ewise_mult(&a, &b, &Times, &ctx).unwrap();
        assert_eq!(z.indices(), &[3, 5]);
        assert_eq!(z.values(), &[60.0, 120.0]);
    }

    #[test]
    fn ewise_add_unions() {
        let a = SparseVec::from_sorted(8, vec![1, 3], vec![2.0, 3.0]).unwrap();
        let b = SparseVec::from_sorted(8, vec![3, 7], vec![20.0, 40.0]).unwrap();
        let ctx = ExecCtx::serial();
        let z = ewise_add(&a, &b, &Plus, &ctx).unwrap();
        assert_eq!(z.indices(), &[1, 3, 7]);
        assert_eq!(z.values(), &[2.0, 23.0, 40.0]);
    }

    #[test]
    fn empty_inputs() {
        let a = SparseVec::<f64>::new(4);
        let b = SparseVec::<f64>::new(4);
        let ctx = ExecCtx::serial();
        assert_eq!(ewise_mult::<_, _, f64, _>(&a, &b, &Times, &ctx).unwrap().nnz(), 0);
        assert_eq!(ewise_add(&a, &b, &Plus, &ctx).unwrap().nnz(), 0);
        let y = DenseVec::filled(4, true);
        assert_eq!(ewise_filter_atomic(&a, &y, &|_: f64, b| b, &ctx).unwrap().nnz(), 0);
    }

    #[test]
    fn dimension_mismatch() {
        let a = SparseVec::<f64>::new(4);
        let b = SparseVec::<f64>::new(5);
        let ctx = ExecCtx::serial();
        assert!(ewise_mult::<_, _, f64, _>(&a, &b, &Times, &ctx).is_err());
        assert!(ewise_add(&a, &b, &Plus, &ctx).is_err());
        let y = DenseVec::filled(3, true);
        assert!(ewise_filter_prefix(&a, &y, &|_: f64, b| b, &ctx).is_err());
    }

    #[test]
    fn filter_keeps_about_half_like_the_paper() {
        let (x, y) = filter_case(100_000, 10_000);
        let ctx = ExecCtx::with_threads(2);
        let z = ewise_filter_prefix(&x, &y, &|_: f64, yv| yv, &ctx).unwrap();
        let frac = z.nnz() as f64 / x.nnz() as f64;
        assert!((frac - 0.5).abs() < 0.05, "kept fraction {frac}");
    }
}
