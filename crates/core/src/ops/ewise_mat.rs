//! Element-wise matrix operations: `eWiseMult` / `eWiseAdd` on CSR.
//!
//! The GraphBLAS spec defines `eWiseMult`/`eWiseAdd` uniformly over
//! vectors and matrices (§III: "the API does not differentiate matrices as
//! sparse or dense"); the vector forms live in [`super::ewise`], these are
//! the matrix forms. Row-parallel: each task merges a contiguous block of
//! row pairs, so no synchronization is needed and per-row outputs stay
//! sorted.

use crate::algebra::BinaryOp;
use crate::container::CsrMatrix;
use crate::error::{GblasError, Result};
use crate::par::ExecCtx;

/// Phase name for matrix element-wise ops.
pub const PHASE: &str = "ewise-mat";

fn check_same_shape<A, B>(a: &CsrMatrix<A>, b: &CsrMatrix<B>) -> Result<()> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("{}x{}", a.nrows(), a.ncols()),
            actual: format!("{}x{}", b.nrows(), b.ncols()),
        });
    }
    Ok(())
}

/// `C = A .* B`: intersection of structures, values combined with `op`.
pub fn ewise_mult_mat<A, B, C, Op>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    op: &Op,
    ctx: &ExecCtx,
) -> Result<CsrMatrix<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
    Op: BinaryOp<A, B, C>,
{
    check_same_shape(a, b)?;
    let rows = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out: Vec<(Vec<usize>, Vec<C>)> = Vec::with_capacity(r.len());
        for i in r.clone() {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                c.elems += 1;
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        cols.push(ac[p]);
                        vals.push(op.eval(av[p], bv[q]));
                        c.flops += 1;
                        p += 1;
                        q += 1;
                    }
                }
            }
            out.push((cols, vals));
        }
        out
    });
    assemble(a.nrows(), a.ncols(), rows)
}

/// `C = A .+ B`: union of structures, values combined with `op` where both
/// are present.
pub fn ewise_add_mat<T, Op>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    op: &Op,
    ctx: &ExecCtx,
) -> Result<CsrMatrix<T>>
where
    T: Copy + Send + Sync,
    Op: BinaryOp<T, T, T>,
{
    check_same_shape(a, b)?;
    let rows = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out: Vec<(Vec<usize>, Vec<T>)> = Vec::with_capacity(r.len());
        for i in r.clone() {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::with_capacity(ac.len() + bc.len());
            let mut vals = Vec::with_capacity(ac.len() + bc.len());
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                c.elems += 1;
                if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                    cols.push(ac[p]);
                    vals.push(av[p]);
                    p += 1;
                } else if p >= ac.len() || bc[q] < ac[p] {
                    cols.push(bc[q]);
                    vals.push(bv[q]);
                    q += 1;
                } else {
                    cols.push(ac[p]);
                    vals.push(op.eval(av[p], bv[q]));
                    c.flops += 1;
                    p += 1;
                    q += 1;
                }
            }
            out.push((cols, vals));
        }
        out
    });
    assemble(a.nrows(), a.ncols(), rows)
}

fn assemble<C: Copy>(
    nrows: usize,
    ncols: usize,
    row_blocks: Vec<Vec<(Vec<usize>, Vec<C>)>>,
) -> Result<CsrMatrix<C>> {
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for block in row_blocks {
        for (cols, vals) in block {
            colidx.extend(cols);
            values.extend(vals);
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_raw_parts(nrows, ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{Plus, Times};
    use crate::gen;

    #[test]
    fn mult_is_structural_intersection() {
        let a = gen::erdos_renyi(80, 6, 1);
        let b = gen::erdos_renyi(80, 6, 2);
        for threads in [1, 4] {
            let ctx = ExecCtx::new(threads, 2);
            let c: CsrMatrix<f64> = ewise_mult_mat(&a, &b, &Times, &ctx).unwrap();
            for (i, j, &v) in c.iter() {
                let (x, y) = (a.get(i, j).unwrap(), b.get(i, j).unwrap());
                assert!((v - x * y).abs() < 1e-12);
            }
            let expect = a.iter().filter(|&(i, j, _)| b.get(i, j).is_some()).count();
            assert_eq!(c.nnz(), expect);
        }
    }

    #[test]
    fn add_is_structural_union() {
        let a = gen::erdos_renyi(60, 4, 3);
        let b = gen::erdos_renyi(60, 4, 4);
        let ctx = ExecCtx::with_threads(2);
        let c = ewise_add_mat(&a, &b, &Plus, &ctx).unwrap();
        for (i, j, &v) in c.iter() {
            let expect = a.get(i, j).copied().unwrap_or(0.0) + b.get(i, j).copied().unwrap_or(0.0);
            assert!((v - expect).abs() < 1e-12);
        }
        let mut union = 0usize;
        for (i, j, _) in a.iter() {
            let _ = (i, j);
            union += 1;
        }
        union += b.iter().filter(|&(i, j, _)| a.get(i, j).is_none()).count();
        assert_eq!(c.nnz(), union);
    }

    #[test]
    fn add_with_self_doubles() {
        let a = gen::erdos_renyi(30, 3, 5);
        let ctx = ExecCtx::serial();
        let c = ewise_add_mat(&a, &a, &Plus, &ctx).unwrap();
        assert_eq!(c.rowptr(), a.rowptr());
        for (x, y) in c.values().iter().zip(a.values()) {
            assert!((x - 2.0 * y).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = CsrMatrix::<f64>::empty(3, 3);
        let b = CsrMatrix::<f64>::empty(3, 4);
        let ctx = ExecCtx::serial();
        assert!(ewise_mult_mat::<_, _, f64, _>(&a, &b, &Times, &ctx).is_err());
        assert!(ewise_add_mat(&a, &b, &Plus, &ctx).is_err());
    }

    #[test]
    fn empty_matrices() {
        let a = CsrMatrix::<f64>::empty(5, 5);
        let ctx = ExecCtx::serial();
        let c: CsrMatrix<f64> = ewise_mult_mat(&a, &a, &Times, &ctx).unwrap();
        assert_eq!(c.nnz(), 0);
    }
}
