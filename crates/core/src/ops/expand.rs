//! Batched (multi-source) frontier expansion: masked SpGEMM over an
//! `n×k` sparse frontier.
//!
//! CombBLAS 2.0 replaces k per-source SpMSpVs with one masked SpGEMM per
//! traversal level by packing k frontiers into a sparse `n×k` matrix
//! ([`SparseFrontier`]). Row `s` of the product `Fᵀ·A` is exactly
//! `f_s · A` — the single-source kernel applied to source `s`'s frontier
//! — so the shared-memory SpGEMM is computed row by row with the very
//! same SPA kernels of [`crate::ops::spmspv`]. That makes the batched
//! result **bit-identical per source** to k single-source runs by
//! construction: same merge strategy, same accumulation order, same
//! mask semantics, same counters per row.
//!
//! In shared memory the batch buys loop fusion (one pass over the
//! algorithm per level instead of k). The latency amortization that
//! makes batching a throughput win lives in the distributed backend,
//! where the k per-source gathers and scatters of a level fuse into one
//! bulk message per locale pair (`gblas_dist::ops::expand`).

use crate::algebra::{BinaryOp, Monoid, Semiring};
use crate::container::{CsrMatrix, DenseVec, SparseFrontier};
use crate::error::{check_dims, Result};
use crate::mask::VecMask;
use crate::ops::spmspv::{spmspv_first_visitor, spmspv_semiring_masked, SpMSpVOpts};
use crate::ops::spmv::spmv_col;
use crate::par::ExecCtx;

/// Batched first-visitor expansion: row `s` of the output is
/// `f_s · A` under the complement of `visited[s]` (source `s`'s "not yet
/// visited" mask), with first-writer-wins parent values — Listing 7 run
/// over every column of the frontier matrix.
pub fn expand_first_visitor<T: Send + Sync>(
    a: &CsrMatrix<T>,
    f: &SparseFrontier<usize>,
    visited: &[DenseVec<bool>],
    opts: SpMSpVOpts,
    ctx: &ExecCtx,
) -> Result<SparseFrontier<usize>> {
    check_dims("visited masks vs batch width", f.k(), visited.len())?;
    let mut rows = Vec::with_capacity(f.k());
    for (s, x) in f.rows().iter().enumerate() {
        check_dims("mask length vs matrix columns", a.ncols(), visited[s].len())?;
        let vm = VecMask::dense(&visited[s]).complement();
        rows.push(spmspv_first_visitor(a, x, Some(&vm), opts, ctx)?);
    }
    SparseFrontier::new(a.ncols(), rows)
}

/// Batched semiring expansion: row `s` of the output is
/// `y_s[j] = ⊕_i f_s[i] ⊗ A[i,j]`, unmasked (SSSP relaxation keeps its
/// own distance array per source and filters improvements driver-side).
pub fn expand_semiring<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<B>,
    f: &SparseFrontier<A>,
    ring: &Semiring<AddM, MulOp>,
    opts: SpMSpVOpts,
    ctx: &ExecCtx,
) -> Result<SparseFrontier<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    let mut rows = Vec::with_capacity(f.k());
    for x in f.rows() {
        rows.push(spmspv_semiring_masked(a, x, ring, None, opts, ctx)?.vector);
    }
    SparseFrontier::new(a.ncols(), rows)
}

/// Batched dense SpMM in the column orientation the algorithms use:
/// `ys[s] = xs[s] · A` — one [`spmv_col`] per batch column, so each
/// column's result is bit-identical to its standalone SpMV.
pub fn spmm_dense<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<B>,
    xs: &[DenseVec<A>],
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<Vec<DenseVec<C>>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    xs.iter().map(|x| spmv_col(a, x, ring, ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semirings;
    use crate::container::SparseVec;
    use crate::gen;

    #[test]
    fn batched_first_visitor_rows_match_single_source_runs() {
        let a = gen::erdos_renyi(200, 6, 7);
        let sources = [0usize, 5, 5, 190]; // duplicate on purpose
        let ctx = ExecCtx::new(4, 1);
        let f = SparseFrontier::from_entries(200, sources.iter().map(|&s| vec![(s, s)]).collect())
            .unwrap();
        let visited: Vec<DenseVec<bool>> =
            sources.iter().map(|&s| DenseVec::from_fn(200, |i| i == s)).collect();
        let batched = expand_first_visitor(&a, &f, &visited, SpMSpVOpts::default(), &ctx).unwrap();
        for (s, &src) in sources.iter().enumerate() {
            let x = SparseVec::from_sorted(200, vec![src], vec![src]).unwrap();
            let vm = VecMask::dense(&visited[s]).complement();
            let single =
                spmspv_first_visitor(&a, &x, Some(&vm), SpMSpVOpts::default(), &ctx).unwrap();
            assert_eq!(batched.row(s), &single, "source slot {s}");
        }
    }

    #[test]
    fn batched_semiring_rows_match_single_source_runs() {
        let a = gen::erdos_renyi(150, 5, 13);
        let ctx = ExecCtx::serial();
        let ring = semirings::min_plus();
        let f = SparseFrontier::from_entries(150, vec![vec![(0, 0.0)], vec![(42, 0.0)]]).unwrap();
        let batched: SparseFrontier<f64> =
            expand_semiring(&a, &f, &ring, SpMSpVOpts::default(), &ctx).unwrap();
        for (s, x) in f.rows().iter().enumerate() {
            let single: SparseVec<f64> =
                spmspv_semiring_masked(&a, x, &ring, None, SpMSpVOpts::default(), &ctx)
                    .unwrap()
                    .vector;
            assert_eq!(batched.row(s), &single, "source slot {s}");
        }
    }

    #[test]
    fn spmm_columns_match_single_spmv() {
        let a = gen::erdos_renyi(120, 4, 19);
        let ctx = ExecCtx::serial();
        let ring = semirings::plus_times_f64();
        let xs: Vec<DenseVec<f64>> =
            (0..3).map(|s| DenseVec::from_fn(120, |i| ((i + s) % 7) as f64)).collect();
        let ys: Vec<DenseVec<f64>> = spmm_dense(&a, &xs, &ring, &ctx).unwrap();
        for (s, x) in xs.iter().enumerate() {
            let y: DenseVec<f64> = spmv_col(&a, x, &ring, &ctx).unwrap();
            assert_eq!(ys[s].as_slice(), y.as_slice(), "column {s}");
        }
    }

    #[test]
    fn empty_batch_expands_to_empty_batch() {
        let a = gen::erdos_renyi(50, 3, 23);
        let ctx = ExecCtx::serial();
        let f = SparseFrontier::<usize>::empty(50, 0);
        let out = expand_first_visitor(&a, &f, &[], SpMSpVOpts::default(), &ctx).unwrap();
        assert_eq!(out.k(), 0);
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn mask_count_mismatch_is_error() {
        let a = gen::erdos_renyi(50, 3, 29);
        let ctx = ExecCtx::serial();
        let f = SparseFrontier::from_entries(50, vec![vec![(0, 0usize)]]).unwrap();
        assert!(expand_first_visitor(&a, &f, &[], SpMSpVOpts::default(), &ctx).is_err());
    }
}
