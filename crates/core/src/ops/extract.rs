//! `extract`: sub-vector / sub-matrix selection (GraphBLAS `GrB_extract`).
//!
//! The general `Assign`/`Extract` pair is "a very powerful primitive"
//! (§III-B); the paper restricts Assign to matching domains, but Extract is
//! implemented here in full generality for vectors and for matrix row
//! selection.

use crate::container::{CsrMatrix, SparseVec};
use crate::error::{GblasError, Result};
use crate::par::ExecCtx;

/// Phase name for extraction.
pub const PHASE: &str = "extract";

/// `z = x(I)`: `z[k] = x[I[k]]` wherever `x` stores `I[k]`. `I` must be
/// strictly increasing (a valid index *set*). The result has capacity
/// `I.len()`.
pub fn extract_vec<T: Copy + Send + Sync>(
    x: &SparseVec<T>,
    index_set: &[usize],
    ctx: &ExecCtx,
) -> Result<SparseVec<T>> {
    for w in index_set.windows(2) {
        if w[0] >= w[1] {
            return Err(GblasError::InvalidArgument(
                "extract index set must be strictly increasing".into(),
            ));
        }
    }
    if let Some(&last) = index_set.last() {
        if last >= x.capacity() {
            return Err(GblasError::IndexOutOfBounds { index: last, capacity: x.capacity() });
        }
    }
    // Merge-walk x's stored indices against the (sorted) index set.
    let (xi, xv) = (x.indices(), x.values());
    let mut out_i = Vec::new();
    let mut out_v = Vec::new();
    let (mut p, mut q) = (0usize, 0usize);
    let mut c = crate::par::Counters::default();
    while p < xi.len() && q < index_set.len() {
        c.elems += 1;
        match xi[p].cmp(&index_set[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                out_i.push(q); // position within the extracted domain
                out_v.push(xv[p]);
                p += 1;
                q += 1;
            }
        }
    }
    ctx.record(PHASE, |pc| pc.merge(&c));
    SparseVec::from_sorted(index_set.len(), out_i, out_v)
}

/// `B = A(I, :)`: select rows `I` (strictly increasing). The result is
/// `I.len() × ncols`.
pub fn extract_rows<T: Copy + Send + Sync>(
    a: &CsrMatrix<T>,
    rows: &[usize],
    ctx: &ExecCtx,
) -> Result<CsrMatrix<T>> {
    for w in rows.windows(2) {
        if w[0] >= w[1] {
            return Err(GblasError::InvalidArgument(
                "extract row set must be strictly increasing".into(),
            ));
        }
    }
    if let Some(&last) = rows.last() {
        if last >= a.nrows() {
            return Err(GblasError::IndexOutOfBounds { index: last, capacity: a.nrows() });
        }
    }
    let row_data = ctx.parallel_for(PHASE, rows.len(), |r, c| {
        let mut out: Vec<(Vec<usize>, Vec<T>)> = Vec::with_capacity(r.len());
        for &i in &rows[r.clone()] {
            let (cols, vals) = a.row(i);
            c.elems += cols.len() as u64;
            out.push((cols.to_vec(), vals.to_vec()));
        }
        out
    });
    let mut rowptr = Vec::with_capacity(rows.len() + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for block in row_data {
        for (cols, vals) in block {
            colidx.extend(cols);
            values.extend(vals);
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_raw_parts(rows.len(), a.ncols(), rowptr, colidx, values)
}

/// `B = A(I, J)`: general submatrix extraction (GraphBLAS `GrB_extract`
/// on matrices). Both index sets must be strictly increasing; the result
/// is `I.len() × J.len()` with positions renumbered into the extracted
/// domain.
pub fn extract_submatrix<T: Copy + Send + Sync>(
    a: &CsrMatrix<T>,
    rows: &[usize],
    cols: &[usize],
    ctx: &ExecCtx,
) -> Result<CsrMatrix<T>> {
    for (set, bound, what) in [(rows, a.nrows(), "row"), (cols, a.ncols(), "column")] {
        for w in set.windows(2) {
            if w[0] >= w[1] {
                return Err(GblasError::InvalidArgument(format!(
                    "extract {what} set must be strictly increasing"
                )));
            }
        }
        if let Some(&last) = set.last() {
            if last >= bound {
                return Err(GblasError::IndexOutOfBounds { index: last, capacity: bound });
            }
        }
    }
    let row_data = ctx.parallel_for(PHASE, rows.len(), |r, c| {
        let mut out: Vec<(Vec<usize>, Vec<T>)> = Vec::with_capacity(r.len());
        for &i in &rows[r.clone()] {
            let (acols, avals) = a.row(i);
            // merge-walk the row's columns against the sorted J set
            let mut ki = Vec::new();
            let mut kv = Vec::new();
            let (mut p, mut q) = (0usize, 0usize);
            while p < acols.len() && q < cols.len() {
                c.elems += 1;
                match acols[p].cmp(&cols[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        ki.push(q); // renumbered column
                        kv.push(avals[p]);
                        p += 1;
                        q += 1;
                    }
                }
            }
            out.push((ki, kv));
        }
        out
    });
    let mut rowptr = Vec::with_capacity(rows.len() + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for block in row_data {
        for (ki, kv) in block {
            colidx.extend(ki);
            values.extend(kv);
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_raw_parts(rows.len(), cols.len(), rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_extract_repositions() {
        let x = SparseVec::from_sorted(10, vec![2, 5, 8], vec![20, 50, 80]).unwrap();
        let ctx = ExecCtx::serial();
        // extract positions {1, 5, 8, 9}: x[5] -> z[1], x[8] -> z[2]
        let z = extract_vec(&x, &[1, 5, 8, 9], &ctx).unwrap();
        assert_eq!(z.capacity(), 4);
        assert_eq!(z.indices(), &[1, 2]);
        assert_eq!(z.values(), &[50, 80]);
    }

    #[test]
    fn vector_extract_validates() {
        let x = SparseVec::from_sorted(4, vec![0], vec![1]).unwrap();
        let ctx = ExecCtx::serial();
        assert!(extract_vec(&x, &[2, 1], &ctx).is_err());
        assert!(extract_vec(&x, &[4], &ctx).is_err());
        assert!(extract_vec(&x, &[], &ctx).unwrap().is_empty());
    }

    #[test]
    fn row_extract() {
        let a =
            CsrMatrix::from_triplets(4, 3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 0, 4.0)])
                .unwrap();
        let ctx = ExecCtx::with_threads(2);
        let b = extract_rows(&a, &[1, 3], &ctx).unwrap();
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.get(0, 1), Some(&2.0));
        assert_eq!(b.get(1, 0), Some(&4.0));
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn row_extract_out_of_bounds() {
        let a = CsrMatrix::<f64>::empty(2, 2);
        let ctx = ExecCtx::serial();
        assert!(extract_rows(&a, &[2], &ctx).is_err());
    }

    #[test]
    fn submatrix_extract_renumbers_and_filters() {
        let a = crate::gen::erdos_renyi(40, 6, 51);
        let rows: Vec<usize> = (0..40).step_by(2).collect();
        let cols: Vec<usize> = (1..40).step_by(3).collect();
        let ctx = ExecCtx::with_threads(2);
        let b = extract_submatrix(&a, &rows, &cols, &ctx).unwrap();
        assert_eq!(b.nrows(), rows.len());
        assert_eq!(b.ncols(), cols.len());
        // every extracted entry maps back correctly, and nothing is missed
        let mut expect = 0usize;
        for (bi, &gi) in rows.iter().enumerate() {
            for (bj, &gj) in cols.iter().enumerate() {
                match a.get(gi, gj) {
                    Some(&v) => {
                        expect += 1;
                        assert_eq!(b.get(bi, bj), Some(&v), "({gi},{gj})");
                    }
                    None => assert_eq!(b.get(bi, bj), None),
                }
            }
        }
        assert_eq!(b.nnz(), expect);
    }

    #[test]
    fn submatrix_full_sets_are_identity() {
        let a = crate::gen::erdos_renyi(25, 4, 52);
        let all_r: Vec<usize> = (0..25).collect();
        let ctx = ExecCtx::serial();
        let b = extract_submatrix(&a, &all_r, &all_r, &ctx).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn submatrix_validates_sets() {
        let a = CsrMatrix::<f64>::empty(4, 4);
        let ctx = ExecCtx::serial();
        assert!(extract_submatrix(&a, &[1, 0], &[0], &ctx).is_err());
        assert!(extract_submatrix(&a, &[0], &[4], &ctx).is_err());
        let empty = extract_submatrix(&a, &[], &[], &ctx).unwrap();
        assert_eq!(empty.nrows(), 0);
    }
}
