//! Kronecker product (GraphBLAS `GrB_kronecker`).
//!
//! `C = A ⊗_K B` with `C[(i·bm + k), (j·bn + l)] = A[i,j] ⊗ B[k,l]`:
//! the structured way to build large graphs from small seeds (Kronecker /
//! stochastic-Kronecker generators, of which R-MAT is the randomized
//! cousin), and a stress test for index arithmetic at scale.

use crate::algebra::BinaryOp;
use crate::container::CsrMatrix;
use crate::error::{GblasError, Result};
use crate::par::ExecCtx;

/// Phase name for the Kronecker product.
pub const PHASE: &str = "kron";

/// `C = kron(A, B)` with values combined by `op`.
pub fn kron<A, B, C, Op>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    op: &Op,
    ctx: &ExecCtx,
) -> Result<CsrMatrix<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
    Op: BinaryOp<A, B, C>,
{
    let (am, an) = (a.nrows(), a.ncols());
    let (bm, bn) = (b.nrows(), b.ncols());
    let nrows = am
        .checked_mul(bm)
        .ok_or_else(|| GblasError::InvalidArgument("kron: row dimension overflows usize".into()))?;
    let ncols = an.checked_mul(bn).ok_or_else(|| {
        GblasError::InvalidArgument("kron: column dimension overflows usize".into())
    })?;
    // Row (i, k) of C is the outer combination of A's row i and B's row k,
    // ordered by (j, l) — ascending because both row fragments are sorted
    // and the blocks (by j) are disjoint. Parallel over C's rows.
    let row_blocks = ctx.parallel_for(PHASE, nrows, |r, c| {
        let mut out: Vec<(Vec<usize>, Vec<C>)> = Vec::with_capacity(r.len());
        for ci in r.clone() {
            let i = ci / bm;
            let k = ci % bm;
            let (acols, avals) = a.row(i);
            let (bcols, bvals) = b.row(k);
            let mut cols = Vec::with_capacity(acols.len() * bcols.len());
            let mut vals = Vec::with_capacity(acols.len() * bcols.len());
            for (&j, &av) in acols.iter().zip(avals) {
                for (&l, &bv) in bcols.iter().zip(bvals) {
                    cols.push(j * bn + l);
                    vals.push(op.eval(av, bv));
                }
            }
            c.flops += (acols.len() * bcols.len()) as u64;
            out.push((cols, vals));
        }
        c.elems += r.len() as u64;
        out
    });
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for block in row_blocks {
        for (cols, vals) in block {
            colidx.extend(cols);
            values.extend(vals);
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_raw_parts(nrows, ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Times;
    use crate::gen;

    #[test]
    fn matches_definition_on_small_matrices() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 5.0), (1, 0, 7.0)]).unwrap();
        let ctx = ExecCtx::serial();
        let c: CsrMatrix<f64> = kron(&a, &b, &Times, &ctx).unwrap();
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.get(0, 1), Some(&10.0)); // A[0,0]*B[0,1]
        assert_eq!(c.get(1, 0), Some(&14.0)); // A[0,0]*B[1,0]
        assert_eq!(c.get(2, 3), Some(&15.0)); // A[1,1]*B[0,1]
        assert_eq!(c.get(3, 2), Some(&21.0)); // A[1,1]*B[1,0]
    }

    #[test]
    fn definition_holds_on_random_inputs() {
        let a = gen::erdos_renyi(12, 3, 31);
        let b = gen::erdos_renyi(9, 2, 32);
        for threads in [1, 4] {
            let ctx = ExecCtx::new(threads, 2);
            let c = kron(&a, &b, &Times, &ctx).unwrap();
            assert_eq!(c.nrows(), 12 * 9);
            assert_eq!(c.nnz(), a.nnz() * b.nnz());
            for (i, j, &av) in a.iter() {
                for (k, l, &bv) in b.iter() {
                    let got = c.get(i * 9 + k, j * 9 + l).copied().unwrap();
                    assert!((got - av * bv).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn kron_with_identity_replicates() {
        let a = gen::erdos_renyi(8, 2, 33);
        let eye = CsrMatrix::from_triplets(3, 3, &(0..3).map(|i| (i, i, 1.0)).collect::<Vec<_>>())
            .unwrap();
        let ctx = ExecCtx::serial();
        let c = kron(&a, &eye, &Times, &ctx).unwrap();
        // kron(A, I3) places A's value at ((i*3+k),(j*3+k))
        for (i, j, &v) in a.iter() {
            for k in 0..3 {
                assert_eq!(c.get(i * 3 + k, j * 3 + k), Some(&v));
            }
        }
        assert_eq!(c.nnz(), a.nnz() * 3);
    }

    #[test]
    fn kronecker_graph_iteration_grows_like_rmat() {
        // seed graph -> 2 Kronecker powers: n = 3^3 = 27
        let seed =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
                .unwrap();
        let ctx = ExecCtx::serial();
        let k2: CsrMatrix<f64> = kron(&seed, &seed, &Times, &ctx).unwrap();
        let k3: CsrMatrix<f64> = kron(&k2, &seed, &Times, &ctx).unwrap();
        assert_eq!(k3.nrows(), 27);
        assert_eq!(k3.nnz(), seed.nnz().pow(3));
    }

    #[test]
    fn empty_factor_gives_empty_product() {
        let a = CsrMatrix::<f64>::empty(4, 4);
        let b = gen::erdos_renyi(5, 2, 34);
        let ctx = ExecCtx::serial();
        let c = kron(&a, &b, &Times, &ctx).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 20);
    }
}
