//! GraphBLAS operations.
//!
//! The paper's subset (§III) with both implementations wherever the paper
//! contrasts two, plus the remaining standard operations a GraphBLAS user
//! needs:
//!
//! | paper op | module | versions |
//! |---|---|---|
//! | `Apply` | [`apply`] | v1 flat `forall` / v2 per-chunk (Listings 2–3) |
//! | `Assign` | [`assign`] | v1 index-at-a-time / v2 bulk (Listings 4–5) |
//! | `eWiseMult` | [`ewise`] | atomic compaction / thread-private + prefix sum (Listing 6 and its suggested improvement) |
//! | `SpMSpV` | [`spmspv`] | first-visitor (Listing 7) / general semiring; merge or radix sort |
//! | — | [`spmv`], [`mxm`], [`reduce`], [`transpose`], [`extract`], [`select`] | the rest of the GraphBLAS surface |
//!
//! Every operation takes an [`crate::par::ExecCtx`] and records phase-tagged
//! [`crate::par::Counters`] describing the work it really performed; the
//! simulator prices those counters to regenerate the paper's figures.

pub mod apply;
pub mod assign;
pub mod ewise;
pub mod ewise_mat;
pub mod expand;
pub mod extract;
pub mod kron;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod select;
pub mod selection;
pub mod spmspv;
pub mod spmv;
pub mod transpose;
