//! `MxM`: sparse matrix × sparse matrix (SpGEMM) over a semiring.
//!
//! Row-wise Gustavson's algorithm with a per-task [`DenseSpa`]: row `i` of
//! `C = A ⊗ B` merges the rows `B[k, :]` for every stored `A[i, k]`. An
//! optional *structural mask* matrix restricts which output positions may
//! be produced (GraphBLAS masked `mxm` — the triangle-counting pattern
//! `C⟨L⟩ = L · L`).

use crate::algebra::{BinaryOp, Monoid, Semiring};
use crate::container::CsrMatrix;
use crate::error::{check_dims, GblasError, Result};
use crate::par::ExecCtx;
use crate::spa::DenseSpa;

/// Phase name for SpGEMM.
pub const PHASE: &str = "mxm";

/// `C = A ⊗ B` over `ring`; with `mask = Some(M)`, only positions stored
/// in `M` are kept (`C⟨M⟩ = A ⊗ B`).
pub fn mxm<A, B, C, AddM, MulOp, M>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&CsrMatrix<M>>,
    ctx: &ExecCtx,
) -> Result<CsrMatrix<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
    M: Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("inner dimension", a.ncols(), b.nrows())?;
    if let Some(m) = mask {
        if m.nrows() != a.nrows() || m.ncols() != b.ncols() {
            return Err(GblasError::DimensionMismatch {
                expected: format!("mask {}x{}", a.nrows(), b.ncols()),
                actual: format!("mask {}x{}", m.nrows(), m.ncols()),
            });
        }
    }
    let ncols = b.ncols();
    // Each task computes a contiguous block of C's rows with a private,
    // reused SPA.
    let row_blocks = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut spa = DenseSpa::new(ncols, ring.zero::<C>());
        let mut rows: Vec<(Vec<usize>, Vec<C>)> = Vec::with_capacity(r.len());
        for i in r.clone() {
            let (acols, avals) = a.row(i);
            for (&k, &av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(k);
                c.flops += bcols.len() as u64;
                for (&j, &bv) in bcols.iter().zip(bvals) {
                    spa.accumulate(j, ring.multiply(av, bv), &ring.add, c);
                }
            }
            let mut inds = spa.nzinds().to_vec();
            inds.sort_unstable();
            // Modeled (not measured) sort work: pdqsort's moves are not
            // instrumentable, so charge the canonical n*ceil(log2 n) —
            // row-local index lists are small and randomly ordered, where
            // the adaptive discount of `crate::sort` would not apply anyway.
            c.sort_elems += (inds.len().max(1).ilog2() as u64 + 1) * inds.len() as u64;
            // Apply the structural mask by intersecting with M's row i.
            let (kept_inds, vals): (Vec<usize>, Vec<C>) = match mask {
                Some(m) => {
                    let (mcols, _) = m.row(i);
                    let mut ki = Vec::new();
                    let mut kv = Vec::new();
                    let mut p = 0usize;
                    for &j in &inds {
                        while p < mcols.len() && mcols[p] < j {
                            p += 1;
                        }
                        c.elems += 1;
                        if p < mcols.len() && mcols[p] == j {
                            ki.push(j);
                            kv.push(spa.get(j).expect("collected index occupied"));
                        }
                    }
                    (ki, kv)
                }
                None => {
                    let vals =
                        inds.iter().map(|&j| spa.get(j).expect("occupied")).collect::<Vec<_>>();
                    (inds, vals)
                }
            };
            // Reset the SPA for the next row (O(row nnz)).
            let _ = spa.drain(c);
            rows.push((kept_inds, vals));
        }
        rows
    });
    // Assemble CSR.
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for block in row_blocks {
        for (inds, vals) in block {
            colidx.extend(inds);
            values.extend(vals);
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_raw_parts(a.nrows(), ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semirings;
    use crate::gen;

    fn dense_mm(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>) -> Vec<Vec<f64>> {
        let mut c = vec![vec![0.0; b.ncols()]; a.nrows()];
        for (i, k, &av) in a.iter() {
            let (bcols, bvals) = b.row(k);
            for (&j, &bv) in bcols.iter().zip(bvals) {
                c[i][j] += av * bv;
            }
        }
        c
    }

    #[test]
    fn matches_dense_reference() {
        let a = gen::erdos_renyi(60, 4, 5);
        let b = gen::erdos_renyi(60, 4, 6);
        for threads in [1, 4] {
            let ctx = ExecCtx::new(threads, 2);
            let c = mxm::<_, _, f64, _, _, bool>(&a, &b, &semirings::plus_times_f64(), None, &ctx)
                .unwrap();
            let reference = dense_mm(&a, &b);
            for (i, j, &v) in c.iter() {
                assert!((v - reference[i][j]).abs() < 1e-9, "({i},{j})");
            }
            // every nonzero of the reference is present
            let nnz_ref: usize = reference.iter().flatten().filter(|v| v.abs() > 1e-12).count();
            assert_eq!(c.nnz(), nnz_ref);
        }
    }

    #[test]
    fn masked_mxm_restricts_structure() {
        let a = gen::erdos_renyi(40, 5, 7);
        let b = gen::erdos_renyi(40, 5, 8);
        let mask = gen::erdos_renyi_bool(40, 10, 9);
        let ctx = ExecCtx::serial();
        let c =
            mxm::<_, _, f64, _, _, bool>(&a, &b, &semirings::plus_times_f64(), Some(&mask), &ctx)
                .unwrap();
        for (i, j, _) in c.iter() {
            assert!(mask.get(i, j).is_some(), "({i},{j}) escaped the mask");
        }
        // and the values agree with the unmasked product
        let full =
            mxm::<_, _, f64, _, _, bool>(&a, &b, &semirings::plus_times_f64(), None, &ctx).unwrap();
        for (i, j, &v) in c.iter() {
            assert_eq!(full.get(i, j), Some(&v));
        }
    }

    #[test]
    fn dimension_mismatch() {
        let a = gen::erdos_renyi(10, 2, 1);
        let b = gen::erdos_renyi(11, 2, 2);
        let ctx = ExecCtx::serial();
        assert!(
            mxm::<_, _, f64, _, _, bool>(&a, &b, &semirings::plus_times_f64(), None, &ctx).is_err()
        );
    }

    #[test]
    fn identity_times_a_is_a() {
        let n = 30;
        let a = gen::erdos_renyi(n, 3, 13);
        let eye = CsrMatrix::from_triplets(n, n, &(0..n).map(|i| (i, i, 1.0)).collect::<Vec<_>>())
            .unwrap();
        let ctx = ExecCtx::serial();
        let c = mxm::<_, _, f64, _, _, bool>(&eye, &a, &semirings::plus_times_f64(), None, &ctx)
            .unwrap();
        assert_eq!(c.rowptr(), a.rowptr());
        assert_eq!(c.colidx(), a.colidx());
        for (x, y) in c.values().iter().zip(a.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
