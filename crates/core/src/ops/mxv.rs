//! `MxV` with a sparse vector on the right: `y = A ⊗ x`, row-oriented.
//!
//! The transpose-free complement of [`super::spmspv`] (which computes
//! `y ← x A`). With CSR storage the natural algorithm is row-wise
//! merge/probe: for each row `i`, combine `A[i, j] ⊗ x[j]` over the
//! intersection of the row's columns with `x`'s stored indices. Two
//! intersection strategies are chosen per row by density, mirroring how a
//! production GraphBLAS specializes "based on the sparsity of its
//! operands" (§III):
//!
//! * **merge** — linear walk of both sorted lists when they are comparable
//!   in size;
//! * **probe** — binary-search the shorter list into the longer one when
//!   the sizes are lopsided (counted as `search_probes`, the §III-B cost).

use crate::algebra::{BinaryOp, Monoid, Semiring};
use crate::container::{CsrMatrix, SparseVec};
use crate::error::{check_dims, Result};
use crate::par::ExecCtx;

/// Phase name for row-oriented sparse MxV.
pub const PHASE: &str = "mxv";

/// `y[i] = ⊕_j A[i,j] ⊗ x[j]` with sparse `x` and sparse output.
pub fn mxv_sparse<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<A>,
    x: &SparseVec<B>,
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<SparseVec<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + PartialEq + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("x length vs matrix cols", a.ncols(), x.capacity())?;
    let xi = x.indices();
    let xv = x.values();
    let row_blocks = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out = ctx.ws_vec::<(usize, C)>();
        for i in r.clone() {
            let (cols, vals) = a.row(i);
            if cols.is_empty() || xi.is_empty() {
                continue;
            }
            let mut acc = ring.zero::<C>();
            let mut hit = false;
            // Choose the per-row intersection strategy.
            if cols.len() * 8 < xi.len() {
                // probe each row entry into x
                for (&j, &av) in cols.iter().zip(vals) {
                    let mut probes = 0u64;
                    if let Some(&bx) = x.get_probed(j, &mut probes) {
                        acc = ring.accumulate(acc, ring.multiply(av, bx));
                        hit = true;
                        c.flops += 1;
                    }
                    c.search_probes += probes;
                }
            } else if xi.len() * 8 < cols.len() {
                // probe each x entry into the row
                for (pos, &j) in xi.iter().enumerate() {
                    let mut lo = 0usize;
                    let mut hi = cols.len();
                    while lo < hi {
                        c.search_probes += 1;
                        let mid = lo + (hi - lo) / 2;
                        match cols[mid].cmp(&j) {
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                            std::cmp::Ordering::Equal => {
                                acc = ring.accumulate(acc, ring.multiply(vals[mid], xv[pos]));
                                hit = true;
                                c.flops += 1;
                                break;
                            }
                        }
                    }
                }
            } else {
                // merge walk
                let (mut p, mut q) = (0usize, 0usize);
                while p < cols.len() && q < xi.len() {
                    c.elems += 1;
                    match cols[p].cmp(&xi[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            acc = ring.accumulate(acc, ring.multiply(vals[p], xv[q]));
                            hit = true;
                            c.flops += 1;
                            p += 1;
                            q += 1;
                        }
                    }
                }
            }
            if hit {
                out.push((i, acc));
            }
        }
        out
    });
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for block in row_blocks {
        for &(i, v) in block.iter() {
            indices.push(i);
            values.push(v);
        }
    }
    SparseVec::from_sorted(a.nrows(), indices, values)
}

/// Column-wise SPA `MxV`: `y = A ⊗ x` on a CSC matrix — exactly the
/// algorithm Fig 6 draws ("gather" the columns selected by `x`'s nonzeros,
/// "scatter/accumulate" into the SPA over rows). The paper states that
/// "neither the algorithm nor its complexity is affected by the use of
/// row-wise vs column-wise representation"; the tests verify it against
/// [`mxv_sparse`] and the ablation bench measures it.
pub fn mxv_sparse_csc<A, B, C, AddM, MulOp>(
    a: &crate::container::CscMatrix<A>,
    x: &SparseVec<B>,
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<SparseVec<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("x length vs matrix cols", a.ncols(), x.capacity())?;
    let mut spa = ctx.ws_dense_spa(a.nrows(), ring.zero::<C>());
    let mut c = crate::par::Counters::default();
    // Step 1: SPA-merge the selected columns (phase "spa", as in the
    // row-wise kernel).
    for (j, &xv) in x.iter() {
        let (rows, vals) = a.col(j);
        c.flops += rows.len() as u64;
        for (&i, &av) in rows.iter().zip(vals) {
            spa.accumulate(i, ring.multiply(av, xv), &ring.add, &mut c);
        }
    }
    c.elems += x.nnz() as u64;
    ctx.record(crate::ops::spmspv::PHASE_SPA, |pc| pc.merge(&c));
    // Step 2: sort collected row indices.
    let mut nzinds = spa.nzinds().to_vec();
    crate::sort::parallel_merge_sort(&mut nzinds, ctx, crate::ops::spmspv::PHASE_SORT);
    // Step 3: emit.
    let mut oc = crate::par::Counters::default();
    let values: Vec<C> = nzinds
        .iter()
        .map(|&i| {
            oc.spa_touches += 1;
            spa.get(i).expect("collected index occupied")
        })
        .collect();
    oc.elems += nzinds.len() as u64;
    ctx.record(crate::ops::spmspv::PHASE_OUTPUT, |pc| pc.merge(&oc));
    SparseVec::from_sorted(a.nrows(), nzinds, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semirings;
    use crate::gen;

    fn dense_reference(a: &CsrMatrix<f64>, x: &SparseVec<f64>) -> Vec<f64> {
        let xd = x.to_dense(0.0);
        let mut y = vec![0.0; a.nrows()];
        for (i, j, &v) in a.iter() {
            y[i] += v * xd[j];
        }
        y
    }

    #[test]
    fn matches_dense_reference_across_densities() {
        let a = gen::erdos_renyi(400, 8, 61);
        for nnz in [3usize, 40, 350] {
            // sweeps all three intersection strategies
            let x = gen::random_sparse_vec(400, nnz, 62);
            for threads in [1, 4] {
                let ctx = ExecCtx::new(threads, 2);
                let y = mxv_sparse(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
                let expect = dense_reference(&a, &x);
                let dense = y.to_dense(0.0);
                for i in 0..400 {
                    assert!(
                        (dense[i] - expect[i]).abs() < 1e-9,
                        "nnz={nnz} row {i}: {} vs {}",
                        dense[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn output_structure_is_reached_rows_only() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let x = SparseVec::from_sorted(4, vec![1], vec![5.0]).unwrap();
        let ctx = ExecCtx::serial();
        let y: SparseVec<f64> = mxv_sparse(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        assert_eq!(y.indices(), &[0]);
        assert_eq!(y.values(), &[5.0]);
    }

    #[test]
    fn agrees_with_spmspv_on_transpose() {
        // y = A x  ==  y = x (A^T)
        let a = gen::erdos_renyi(200, 5, 63);
        let x = gen::random_sparse_vec(200, 25, 64);
        let ctx = ExecCtx::serial();
        let y1 = mxv_sparse(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        let at = crate::ops::transpose::transpose(&a, &ctx).unwrap();
        let y2 = crate::ops::spmspv::spmspv_semiring(&at, &x, &semirings::plus_times_f64(), &ctx)
            .unwrap()
            .vector;
        assert_eq!(y1.indices(), y2.indices());
        for (p, q) in y1.values().iter().zip(y2.values()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn dimension_check() {
        let a = gen::erdos_renyi(10, 2, 65);
        let x = gen::random_sparse_vec(11, 2, 66);
        let ctx = ExecCtx::serial();
        assert!(mxv_sparse::<_, _, f64, _, _>(&a, &x, &semirings::plus_times_f64(), &ctx).is_err());
    }

    #[test]
    fn column_wise_agrees_with_row_wise() {
        // The paper's Fig 6 claim: representation does not change the
        // algorithm's result or complexity class.
        let a = gen::erdos_renyi(300, 6, 67);
        let a_csc = crate::container::CscMatrix::from_csr(&a);
        let x = gen::random_sparse_vec(300, 40, 68);
        let ctx = ExecCtx::serial();
        let row = mxv_sparse(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        let col = mxv_sparse_csc(&a_csc, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        assert_eq!(row.indices(), col.indices());
        for (p, q) in row.values().iter().zip(col.values()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn column_wise_flop_count_matches_selected_column_volume() {
        let a = gen::erdos_renyi(200, 5, 69);
        let a_csc = crate::container::CscMatrix::from_csr(&a);
        let x = gen::random_sparse_vec(200, 20, 70);
        let ctx = ExecCtx::serial();
        let _ = mxv_sparse_csc(&a_csc, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        let flops = ctx.take_profile().phase(crate::ops::spmspv::PHASE_SPA).flops;
        let expect: u64 = x.indices().iter().map(|&j| a_csc.col_nnz(j) as u64).sum();
        assert_eq!(flops, expect);
    }
}
