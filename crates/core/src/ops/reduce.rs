//! `reduce`: fold stored values with a monoid.
//!
//! GraphBLAS `GrB_reduce` in its three shapes: vector → scalar,
//! matrix-rows → vector, matrix → scalar. Parallel partial reductions are
//! combined in task order, so commutativity is required ([`ComMonoid`]) for
//! the parallel entry points.

use crate::algebra::{ComMonoid, Monoid};
use crate::container::{CsrMatrix, DenseVec, SparseVec};
use crate::par::ExecCtx;

/// Phase name for reductions.
pub const PHASE: &str = "reduce";

/// Fold all stored values of a sparse vector.
pub fn reduce_vec<T, M>(x: &SparseVec<T>, monoid: &M, ctx: &ExecCtx) -> T
where
    T: Copy + Send + Sync,
    M: ComMonoid<T>,
{
    let vals = x.values();
    let partials = ctx.parallel_for(PHASE, vals.len(), |r, c| {
        let mut acc = monoid.identity();
        for &v in &vals[r.clone()] {
            acc = monoid.combine(acc, v);
        }
        c.elems += r.len() as u64;
        acc
    });
    partials.into_iter().fold(monoid.identity(), |a, b| monoid.combine(a, b))
}

/// Row-wise matrix reduction: `y[i] = ⊕_j A[i,j]`, dense output.
pub fn reduce_rows<T, M>(a: &CsrMatrix<T>, monoid: &M, ctx: &ExecCtx) -> DenseVec<T>
where
    T: Copy + Send + Sync,
    M: Monoid<T>,
{
    let chunks = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out = Vec::with_capacity(r.len());
        for i in r.clone() {
            let (_, vals) = a.row(i);
            let mut acc = monoid.identity();
            for &v in vals {
                acc = monoid.combine(acc, v);
            }
            c.elems += vals.len() as u64;
            out.push(acc);
        }
        out
    });
    let mut y = Vec::with_capacity(a.nrows());
    for chunk in chunks {
        y.extend(chunk);
    }
    DenseVec::from_vec(y)
}

/// Column-wise matrix reduction: `y[j] = ⊕_i A[i,j]`, dense output.
/// Requires commutativity (rows are folded in per-task order, then tasks
/// combined).
pub fn reduce_cols<T, M>(a: &CsrMatrix<T>, monoid: &M, ctx: &ExecCtx) -> DenseVec<T>
where
    T: Copy + Send + Sync,
    M: ComMonoid<T>,
{
    let ncols = a.ncols();
    let partials = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut acc = vec![monoid.identity(); ncols];
        for i in r.clone() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                acc[j] = monoid.combine(acc[j], v);
            }
            c.elems += cols.len() as u64;
            c.rand_access += cols.len() as u64;
        }
        acc
    });
    let mut y = vec![monoid.identity(); ncols];
    for p in partials {
        for (slot, v) in y.iter_mut().zip(p) {
            *slot = monoid.combine(*slot, v);
        }
    }
    DenseVec::from_vec(y)
}

/// Whole-matrix reduction to a scalar.
pub fn reduce_mat<T, M>(a: &CsrMatrix<T>, monoid: &M, ctx: &ExecCtx) -> T
where
    T: Copy + Send + Sync,
    M: ComMonoid<T>,
{
    let vals = a.values();
    let partials = ctx.parallel_for(PHASE, vals.len(), |r, c| {
        let mut acc = monoid.identity();
        for &v in &vals[r.clone()] {
            acc = monoid.combine(acc, v);
        }
        c.elems += r.len() as u64;
        acc
    });
    partials.into_iter().fold(monoid.identity(), |a, b| monoid.combine(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{Max, Min, Plus};
    use crate::gen;

    #[test]
    fn vector_sum_and_extremes() {
        let x = SparseVec::from_sorted(10, vec![1, 4, 7], vec![3.0, -1.0, 5.0]).unwrap();
        let ctx = ExecCtx::with_threads(2);
        assert_eq!(reduce_vec(&x, &Plus, &ctx), 7.0);
        assert_eq!(reduce_vec(&x, &Min, &ctx), -1.0);
        assert_eq!(reduce_vec(&x, &Max, &ctx), 5.0);
    }

    #[test]
    fn empty_vector_reduces_to_identity() {
        let x = SparseVec::<i64>::new(4);
        let ctx = ExecCtx::serial();
        assert_eq!(reduce_vec(&x, &Plus, &ctx), 0);
        assert_eq!(reduce_vec(&x, &Min, &ctx), i64::MAX);
    }

    #[test]
    fn row_reduce_counts_degrees() {
        let a = gen::erdos_renyi_bool(100, 6, 17);
        let ones = {
            let (nr, nc, rp, ci, vals) = a.clone().into_raw_parts();
            CsrMatrix::from_raw_parts(nr, nc, rp, ci, vec![1u64; vals.len()]).unwrap()
        };
        let ctx = ExecCtx::with_threads(4);
        let deg = reduce_rows(&ones, &Plus, &ctx);
        for i in 0..100 {
            assert_eq!(deg[i], a.row_nnz(i) as u64, "row {i}");
        }
    }

    #[test]
    fn col_reduce_counts_in_degrees() {
        let a = gen::erdos_renyi(120, 5, 19);
        let ones = {
            let (nr, nc, rp, ci, vals) = a.clone().into_raw_parts();
            CsrMatrix::from_raw_parts(nr, nc, rp, ci, vec![1u64; vals.len()]).unwrap()
        };
        for threads in [1, 4] {
            let ctx = ExecCtx::new(threads, 2);
            let indeg = reduce_cols(&ones, &Plus, &ctx);
            let mut expect = vec![0u64; 120];
            for (_, j, _) in a.iter() {
                expect[j] += 1;
            }
            assert_eq!(indeg.as_slice(), &expect[..]);
        }
    }

    #[test]
    fn col_reduce_equals_row_reduce_of_transpose() {
        let a = gen::erdos_renyi(90, 4, 21);
        let ctx = ExecCtx::serial();
        let cols = reduce_cols(&a, &Plus, &ctx);
        let t = crate::ops::transpose::transpose(&a, &ctx).unwrap();
        let rows = reduce_rows(&t, &Plus, &ctx);
        for j in 0..90 {
            assert!((cols[j] - rows[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_scalar_reduce_matches_serial() {
        let a = gen::erdos_renyi(80, 5, 23);
        let serial: f64 = a.values().iter().sum();
        for threads in [1, 3, 8] {
            let ctx = ExecCtx::new(threads, 2);
            let r = reduce_mat(&a, &Plus, &ctx);
            assert!((r - serial).abs() < 1e-9);
        }
    }
}
