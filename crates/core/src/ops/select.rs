//! `select`: keep entries satisfying a predicate (GraphBLAS `GrB_select`).
//!
//! A structural cousin of `Apply`: instead of transforming values it drops
//! entries. Implemented with the thread-private + concatenate compaction
//! (per-task survivor lists over contiguous chunks are already sorted).

use crate::container::{CsrMatrix, SparseVec};
use crate::par::ExecCtx;

/// Phase name for select.
pub const PHASE: &str = "select";

/// Keep the entries of `x` where `pred(index, value)` holds.
pub fn select_vec<T: Copy + Send + Sync>(
    x: &SparseVec<T>,
    pred: &(impl Fn(usize, T) -> bool + Sync),
    ctx: &ExecCtx,
) -> SparseVec<T> {
    let xi = x.indices();
    let xv = x.values();
    let parts = ctx.parallel_for(PHASE, x.nnz(), |r, c| {
        let mut inds = Vec::new();
        let mut vals = Vec::new();
        for p in r.clone() {
            if pred(xi[p], xv[p]) {
                inds.push(xi[p]);
                vals.push(xv[p]);
            }
        }
        c.elems += r.len() as u64;
        (inds, vals)
    });
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, v) in parts {
        indices.extend(i);
        values.extend(v);
    }
    SparseVec::from_sorted(x.capacity(), indices, values).expect("order preserved")
}

/// Keep the entries of `a` where `pred(row, col, value)` holds.
pub fn select_mat<T: Copy + Send + Sync>(
    a: &CsrMatrix<T>,
    pred: &(impl Fn(usize, usize, T) -> bool + Sync),
    ctx: &ExecCtx,
) -> CsrMatrix<T> {
    let rows = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out: Vec<(Vec<usize>, Vec<T>)> = Vec::with_capacity(r.len());
        for i in r.clone() {
            let (cols, vals) = a.row(i);
            let mut ki = Vec::new();
            let mut kv = Vec::new();
            for (&j, &v) in cols.iter().zip(vals) {
                if pred(i, j, v) {
                    ki.push(j);
                    kv.push(v);
                }
            }
            c.elems += cols.len() as u64;
            out.push((ki, kv));
        }
        out
    });
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for block in rows {
        for (ki, kv) in block {
            colidx.extend(ki);
            values.extend(kv);
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_raw_parts(a.nrows(), a.ncols(), rowptr, colidx, values)
        .expect("structure preserved per row")
}

/// The strictly-lower-triangle selector `tril(A, -1)` — the preprocessing
/// step of the triangle-counting example.
pub fn tril<T: Copy + Send + Sync>(a: &CsrMatrix<T>, ctx: &ExecCtx) -> CsrMatrix<T> {
    select_mat(a, &|i, j, _| j < i, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn select_vec_by_value() {
        let x = SparseVec::from_sorted(8, vec![0, 2, 5, 7], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let ctx = ExecCtx::with_threads(2);
        let pos = select_vec(&x, &|_, v: f64| v > 0.0, &ctx);
        assert_eq!(pos.indices(), &[0, 5]);
        assert_eq!(pos.values(), &[1.0, 3.0]);
    }

    #[test]
    fn select_vec_by_index() {
        let x = SparseVec::from_sorted(8, vec![0, 2, 5, 7], vec![1, 1, 1, 1]).unwrap();
        let ctx = ExecCtx::serial();
        let high = select_vec(&x, &|i, _| i >= 4, &ctx);
        assert_eq!(high.indices(), &[5, 7]);
    }

    #[test]
    fn tril_is_strictly_lower() {
        let a = gen::erdos_renyi_symmetric(60, 5, 37);
        let ctx = ExecCtx::with_threads(2);
        let l = tril(&a, &ctx);
        for (i, j, _) in l.iter() {
            assert!(j < i, "({i},{j}) not strictly lower");
        }
        // every strictly-lower entry of a survives
        let expected = a.iter().filter(|&(i, j, _)| j < i).count();
        assert_eq!(l.nnz(), expected);
    }

    #[test]
    fn select_all_and_none() {
        let x = gen::random_sparse_vec(100, 20, 41);
        let ctx = ExecCtx::serial();
        assert_eq!(select_vec(&x, &|_, _| true, &ctx), x);
        assert_eq!(select_vec(&x, &|_, _| false, &ctx).nnz(), 0);
    }
}
