//! Adaptive kernel selection: direction-optimizing traversal heuristics.
//!
//! The paper's kernels exist in push (SpMSpV, §III-D) and pull (SpMV)
//! forms, and the library carries two frontier representations (sparse
//! index list, dense bitmap) plus two SpMSpV merge strategies. This
//! module holds the *decision layer* that picks between them per
//! iteration, the way SuiteSparse:GraphBLAS switches sparse/bitmap/full
//! formats and CombBLAS 2.0 / Beamer's direction-optimizing BFS switch
//! push/pull:
//!
//! 1. **direction** ([`decide_direction`]) — push expands the frontier's
//!    edges; pull scans unvisited destinations with early exit. Push work
//!    is ~`nnz(frontier) × avg_degree`; pull work is ~`n` visited-bit
//!    probes plus the unexplored vertices' in-edge scans. A heavy
//!    frontier flips to pull, a small one back to push.
//! 2. **format** ([`decide_format`]) — a frontier past `n / bitmap_den`
//!    nonzeros is promoted from the sorted index list to a dense bitmap
//!    (and demoted back below it).
//! 3. **merge** ([`crate::ops::spmspv::MergeStrategy::resolve`]) — the
//!    bucketed merge wins over the comparison sort once the frontier
//!    passes [`crate::ops::spmspv::AUTO_BUCKET_MIN_NNZ`] nonzeros.
//!
//! Every decision is pure integer arithmetic on globally-agreed counts
//! (`nnz(frontier)`, unexplored vertices, `n`, average degree), so the
//! shared and distributed backends — and every locale within the
//! distributed one — reach the same choice from the same inputs. The
//! hysteresis rule is *switch only when the target direction's own stay
//! condition holds*: at any stationary density the sequence of decisions
//! changes at most once and can never oscillate.
//!
//! [`pull_first_visitor`] is the shared-memory pull kernel: a scan over
//! the rows of `Aᵀ` (destination-major) that claims, for each unvisited
//! destination, its **minimum** in-frontier in-neighbor and exits the row
//! early — the same parent the push kernel's deterministic schedule
//! produces, which is what makes auto/push/pull bit-identical.

use crate::container::{CsrMatrix, DenseVec, SparseVec};
use crate::error::{check_dims, Result};
use crate::ops::spmspv::MergeStrategy;
use crate::par::ExecCtx;

/// Phase: pull-direction destination scan.
pub const PHASE_PULL: &str = "pull";

/// How a traversal picks its per-iteration kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Decide per iteration from measured frontier density.
    #[default]
    Auto,
    /// Always push (SpMSpV over the sparse frontier).
    Push,
    /// Always pull (transpose scan / dense SpMV).
    Pull,
}

impl SelectionPolicy {
    /// Stable lowercase name (CLI flags, trace attributes).
    pub fn name(self) -> &'static str {
        match self {
            SelectionPolicy::Auto => "auto",
            SelectionPolicy::Push => "push",
            SelectionPolicy::Pull => "pull",
        }
    }

    /// Parse a CLI spelling (`auto` | `push` | `pull`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(SelectionPolicy::Auto),
            "push" => Some(SelectionPolicy::Push),
            "pull" => Some(SelectionPolicy::Pull),
            _ => None,
        }
    }
}

/// The traversal direction chosen for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Frontier-driven SpMSpV: expand the frontier's out-edges.
    Push,
    /// Destination-driven scan: probe unvisited vertices' in-edges.
    Pull,
}

impl Direction {
    /// Stable lowercase name (`dir=` trace attribute).
    pub fn name(self) -> &'static str {
        match self {
            Direction::Push => "push",
            Direction::Pull => "pull",
        }
    }
}

/// The frontier's storage representation for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierFmt {
    /// Sorted index list ([`SparseVec`]).
    Sparse,
    /// Dense boolean bitmap ([`DenseVec<bool>`]).
    Bitmap,
}

impl FrontierFmt {
    /// Stable lowercase name (`fmt=` trace attribute).
    pub fn name(self) -> &'static str {
        match self {
            FrontierFmt::Sparse => "sparse",
            FrontierFmt::Bitmap => "bitmap",
        }
    }
}

/// Tuning knobs for the three heuristics. The defaults follow Beamer's
/// direction-optimizing BFS constants (α = 14, β = 24) with the edge
/// estimate normalized to a reference degree, and SuiteSparse-style
/// switch points for the bitmap promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionThresholds {
    /// Push→pull (Beamer's α): pull when
    /// `nnz_f · avg_deg · pull_alpha ≥ unexplored · ref_degree`.
    pub pull_alpha: usize,
    /// Pull→push (Beamer's β): push when `nnz_f · push_beta < n`.
    pub push_beta: usize,
    /// Bitmap promotion: bitmap when `nnz_f · bitmap_den ≥ n`.
    pub bitmap_den: usize,
    /// Degree normalization for `pull_alpha`'s edge estimate: denser
    /// graphs (higher `avg_deg`) flip to pull at proportionally smaller
    /// frontiers, because early exit saves more per destination.
    pub ref_degree: usize,
}

impl Default for SelectionThresholds {
    fn default() -> Self {
        SelectionThresholds { pull_alpha: 14, push_beta: 24, bitmap_den: 8, ref_degree: 8 }
    }
}

impl SelectionThresholds {
    /// Thresholds for a machine with `p` locales. On distributed memory
    /// the pull level is the better-aggregated kernel: two bitmap
    /// gathers and one claim scatter, versus the push level's mask
    /// gather *plus* frontier gather *plus* per-owner expansion scatter.
    /// A level's fixed communication cost therefore grows with `p` while
    /// its local work shrinks like `1/p`, so the band where push wins
    /// narrows **quadratically**: both `pull_alpha` and `push_beta`
    /// scale by `p²` (pull triggers at proportionally smaller frontiers,
    /// and the tail must be proportionally smaller before flipping
    /// back). `p = 1` — and every shared-memory backend — is exactly
    /// [`Default`].
    pub fn for_locales(p: usize) -> Self {
        let d = SelectionThresholds::default();
        let p2 = p.max(1).saturating_mul(p.max(1));
        SelectionThresholds {
            pull_alpha: d.pull_alpha.saturating_mul(p2),
            push_beta: d.push_beta.saturating_mul(p2),
            ..d
        }
    }
}

/// One iteration's complete kernel choice, recorded verbatim as the
/// `dir=`/`fmt=`/`merge=` attributes of the backend's `select` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Push or pull.
    pub dir: Direction,
    /// Sparse or bitmap frontier storage.
    pub fmt: FrontierFmt,
    /// The resolved (concrete) SpMSpV merge strategy.
    pub merge: MergeStrategy,
}

/// Direction heuristic with oscillation-proof hysteresis.
///
/// `to_pull` holds when the frontier's estimated out-edges
/// (`nnz_f · avg_deg`, normalized by `ref_degree`) reach `1/pull_alpha`
/// of the unexplored vertices; `to_push` holds when the frontier is
/// smaller than `n / push_beta`. The β rule has priority: a sub-`n/β`
/// frontier always runs push (that covers the traversal tail, where the
/// unexplored count is tiny and `to_pull` is vacuously easy), and while
/// it holds the push→pull edge is blocked. At any stationary
/// `(nnz_f, unexplored)` pair the direction therefore changes at most
/// once and then stays fixed — densities landing exactly on a threshold
/// included: β-true forces Push and keeps it; β-false makes Pull
/// absorbing (entered only if `to_pull`).
pub fn decide_direction(
    prev: Direction,
    nnz_f: usize,
    unexplored: usize,
    n: usize,
    avg_deg: usize,
    t: &SelectionThresholds,
) -> Direction {
    let edges = nnz_f.saturating_mul(avg_deg.max(1));
    let to_pull = nnz_f > 0
        && edges.saturating_mul(t.pull_alpha) >= unexplored.saturating_mul(t.ref_degree.max(1));
    let to_push = nnz_f.saturating_mul(t.push_beta) < n.max(1);
    match prev {
        Direction::Push if to_pull && !to_push => Direction::Pull,
        Direction::Pull if to_push => Direction::Push,
        stay => stay,
    }
}

/// Format heuristic: promote to a bitmap at `nnz_f · bitmap_den ≥ n`,
/// demote below it. Memoryless (no hysteresis needed — the comparison is
/// a single monotone threshold, so it cannot oscillate at a stationary
/// density).
pub fn decide_format(nnz_f: usize, n: usize, t: &SelectionThresholds) -> FrontierFmt {
    if n > 0 && nnz_f.saturating_mul(t.bitmap_den) >= n {
        FrontierFmt::Bitmap
    } else {
        FrontierFmt::Sparse
    }
}

/// The local SpGEMM accumulator chosen for one block pair of a
/// multi-stage sparse SUMMA (the CombBLAS-style density ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MxmKernel {
    /// Heap-based t-way column merge: `O(flops · log t)` with no
    /// `O(out_cols)` structure — wins when the product is hypersparse.
    Heap,
    /// Open-addressing hash accumulator: `O(flops)` expected with an
    /// `O(distinct outputs)` table — the moderate-density middle.
    Hash,
    /// Dense SPA (pooled, generation-stamped): `O(flops)` with an
    /// `O(out_cols)` array — wins once output rows are dense enough to
    /// amortize it.
    Spa,
}

impl MxmKernel {
    /// Stable lowercase name (`kernel=` trace attribute).
    pub fn name(self) -> &'static str {
        match self {
            MxmKernel::Heap => "heap",
            MxmKernel::Hash => "hash",
            MxmKernel::Spa => "spa",
        }
    }
}

/// SPA promotion: dense accumulation when the block pair's estimated
/// flops reach `out_cols / MXM_SPA_DEN`.
pub const MXM_SPA_DEN: usize = 4;

/// Heap demotion: the pointerless merge when estimated flops stay under
/// `out_cols / MXM_HEAP_DEN` (the hypersparse × hypersparse corner).
pub const MXM_HEAP_DEN: usize = 64;

/// Density-adaptive SpGEMM kernel choice for one block pair.
///
/// `est_flops` is the estimated semiring multiply count for the stage's
/// local product and `out_cols` the width of the stationary output block.
/// Both are structural integers agreed by every locale observing the same
/// blocks, so — like [`decide_direction`] — the choice is deterministic
/// across executors and grid shapes. All three kernels produce
/// bit-identical output (same ascending-k accumulation order, same final
/// column sort), so the ladder only moves *cost*, never results.
pub fn decide_mxm_kernel(est_flops: usize, out_cols: usize) -> MxmKernel {
    if est_flops.saturating_mul(MXM_SPA_DEN) >= out_cols.max(1) {
        MxmKernel::Spa
    } else if est_flops.saturating_mul(MXM_HEAP_DEN) < out_cols.max(1) {
        MxmKernel::Heap
    } else {
        MxmKernel::Hash
    }
}

/// Combine the three heuristics under a policy into one [`Decision`].
///
/// `Push`/`Pull` policies pin the direction but still resolve the format
/// and merge from density, so static runs exercise the same storage code
/// paths the auto run chose.
#[allow(clippy::too_many_arguments)]
pub fn decide(
    policy: SelectionPolicy,
    prev: Direction,
    nnz_f: usize,
    unexplored: usize,
    n: usize,
    avg_deg: usize,
    merge: MergeStrategy,
    t: &SelectionThresholds,
) -> Decision {
    let dir = match policy {
        SelectionPolicy::Push => Direction::Push,
        SelectionPolicy::Pull => Direction::Pull,
        SelectionPolicy::Auto => decide_direction(prev, nnz_f, unexplored, n, avg_deg, t),
    };
    Decision { dir, fmt: decide_format(nnz_f, n, t), merge: merge.resolve(nnz_f) }
}

/// Pull-direction BFS kernel (shared memory): for every **unvisited**
/// destination `j`, scan row `j` of `at = Aᵀ` (its in-neighbors, in
/// ascending order) and claim the first — i.e. minimum — in-frontier
/// neighbor as `j`'s parent, exiting the row early on the hit.
///
/// The output stores `parent` per reached destination, exactly like
/// [`crate::ops::spmspv::spmspv_first_visitor`] under a deterministic
/// schedule: both produce the minimum in-frontier in-neighbor, which is
/// the bit-identity contract the differential tests pin. Work is charged
/// to [`PHASE_PULL`]: one random access per visited-bit probe and per
/// in-neighbor frontier probe, so the simulator prices the early exit
/// that makes pull win on heavy frontiers.
pub fn pull_first_visitor<T: Send + Sync>(
    at: &CsrMatrix<T>,
    frontier: &DenseVec<bool>,
    visited: &DenseVec<bool>,
    ctx: &ExecCtx,
) -> Result<SparseVec<usize>> {
    check_dims("frontier length vs matrix cols", at.ncols(), frontier.len())?;
    check_dims("visited length vs matrix rows", at.nrows(), visited.len())?;
    let n = at.nrows();
    let fbits = frontier.as_slice();
    let vbits = visited.as_slice();
    let nnz_f = fbits.iter().filter(|&&b| b).count();
    let _op =
        ctx.trace_op("pull_first_visitor", nnz_f as u64, &[("nrows", n), ("ncols", at.ncols())]);
    // Destination-major scan: each task owns a contiguous row range, so
    // concatenating per-task outputs in task order yields globally sorted
    // indices — and the claims are per-row local, so the result is
    // deterministic under any real thread count (unlike push's atomics).
    let parts = ctx.parallel_for(PHASE_PULL, n, |r, c| {
        let mut inds = Vec::new();
        let mut vals = Vec::new();
        for j in r {
            c.rand_access += 1; // visited-bit probe
            if vbits[j] {
                continue;
            }
            let (cols, _) = at.row(j);
            for &u in cols {
                c.rand_access += 1; // frontier-bit probe
                if fbits[u] {
                    inds.push(j);
                    vals.push(u);
                    c.elems += 1;
                    break; // early exit: first hit is the min in-neighbor
                }
            }
        }
        (inds, vals)
    });
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, v) in parts {
        indices.extend(i);
        values.extend(v);
    }
    SparseVec::from_sorted(n, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::mask::VecMask;
    use crate::ops::spmspv::{spmspv_first_visitor, SpMSpVOpts};
    use crate::ops::transpose::transpose;

    const T: SelectionThresholds =
        SelectionThresholds { pull_alpha: 14, push_beta: 24, bitmap_den: 8, ref_degree: 8 };

    #[test]
    fn direction_switches_on_heavy_frontier_and_back_on_small() {
        let n = 1000;
        // tiny frontier: stays push
        assert_eq!(decide_direction(Direction::Push, 1, n - 1, n, 8, &T), Direction::Push);
        // heavy frontier (past n/24 and past unexplored/14): flips to pull
        assert_eq!(decide_direction(Direction::Push, 200, 500, n, 8, &T), Direction::Pull);
        // small tail frontier: pull returns to push
        assert_eq!(decide_direction(Direction::Pull, 10, 30, n, 8, &T), Direction::Push);
    }

    #[test]
    fn direction_never_oscillates_at_stationary_density() {
        // sweep a grid of densities; from any start, two applications of
        // the rule at a fixed density must reach a fixed point
        let n = 960;
        for nnz in [0, 1, n / 24, n / 24 + 1, n / 8, n / 2, n] {
            for unexplored in [0, 1, n / 14, n / 2, n] {
                for avg_deg in [0, 1, 8, 50] {
                    for start in [Direction::Push, Direction::Pull] {
                        let d1 = decide_direction(start, nnz, unexplored, n, avg_deg, &T);
                        let d2 = decide_direction(d1, nnz, unexplored, n, avg_deg, &T);
                        let d3 = decide_direction(d2, nnz, unexplored, n, avg_deg, &T);
                        assert_eq!(d2, d3, "oscillation at nnz={nnz} u={unexplored} d={avg_deg}");
                    }
                }
            }
        }
    }

    #[test]
    fn format_threshold_is_exact() {
        let n = 800; // n / bitmap_den = 100
        assert_eq!(decide_format(99, n, &T), FrontierFmt::Sparse);
        assert_eq!(decide_format(100, n, &T), FrontierFmt::Bitmap);
        assert_eq!(decide_format(0, 0, &T), FrontierFmt::Sparse);
    }

    #[test]
    fn policy_pins_direction_but_not_format_or_merge() {
        let d =
            decide(SelectionPolicy::Pull, Direction::Push, 1, 10, 1000, 8, MergeStrategy::Auto, &T);
        assert_eq!(d.dir, Direction::Pull);
        assert_eq!(d.fmt, FrontierFmt::Sparse);
        assert_eq!(d.merge, MergeStrategy::SortBased); // 1 < AUTO_BUCKET_MIN_NNZ
    }

    #[test]
    fn pull_matches_push_parents_on_random_graphs() {
        for seed in [3, 17, 99] {
            let a = gen::erdos_renyi(300, 6, seed);
            let ctx = ExecCtx::new(4, 1);
            let at = transpose(&a, &ctx).unwrap();
            // frontier = every third vertex, visited = every fifth
            let visited = DenseVec::from_fn(300, |i| i % 5 == 0);
            let f_inds: Vec<usize> = (0..300).filter(|i| i % 3 == 0).collect();
            let fx = SparseVec::from_sorted(300, f_inds.clone(), f_inds.clone()).unwrap();
            let fbits = DenseVec::from_fn(300, |i| i % 3 == 0);
            let not_visited = VecMask::dense(&visited).complement();
            let push =
                spmspv_first_visitor(&a, &fx, Some(&not_visited), SpMSpVOpts::default(), &ctx)
                    .unwrap();
            let pull = pull_first_visitor(&at, &fbits, &visited, &ctx).unwrap();
            assert_eq!(push, pull, "seed {seed}");
        }
    }

    #[test]
    fn pull_respects_visited_and_exits_early() {
        // star: 0 -> {1..=4}; transpose rows 1..=4 each hold in-neighbor 0
        let a =
            CsrMatrix::from_triplets(5, 5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)])
                .unwrap();
        let ctx = ExecCtx::serial();
        let at = transpose(&a, &ctx).unwrap();
        let fbits = DenseVec::from_fn(5, |i| i == 0);
        let visited = DenseVec::from_fn(5, |i| i <= 1); // 1 already claimed
        let y = pull_first_visitor(&at, &fbits, &visited, &ctx).unwrap();
        assert_eq!(y.indices(), &[2, 3, 4]);
        assert!(y.values().iter().all(|&p| p == 0));
    }

    #[test]
    fn pull_dimension_mismatch_is_error() {
        let a = gen::erdos_renyi(10, 2, 7);
        let ctx = ExecCtx::serial();
        let bad = DenseVec::filled(11, false);
        let ok = DenseVec::filled(10, false);
        assert!(pull_first_visitor(&a, &bad, &ok, &ctx).is_err());
        assert!(pull_first_visitor(&a, &ok, &bad, &ctx).is_err());
    }

    #[test]
    fn mxm_kernel_ladder_is_monotone_in_density() {
        let q = 1024;
        // hypersparse corner: a handful of flops against a wide block
        assert_eq!(decide_mxm_kernel(3, q), MxmKernel::Heap);
        assert_eq!(decide_mxm_kernel(q / MXM_HEAP_DEN - 1, q), MxmKernel::Heap);
        // the middle band
        assert_eq!(decide_mxm_kernel(q / MXM_HEAP_DEN, q), MxmKernel::Hash);
        assert_eq!(decide_mxm_kernel(q / MXM_SPA_DEN - 1, q), MxmKernel::Hash);
        // dense output: SPA amortizes
        assert_eq!(decide_mxm_kernel(q / MXM_SPA_DEN, q), MxmKernel::Spa);
        assert_eq!(decide_mxm_kernel(10 * q, q), MxmKernel::Spa);
        // degenerate block widths never panic and stay deterministic
        assert_eq!(decide_mxm_kernel(0, 0), MxmKernel::Heap);
        assert_eq!(decide_mxm_kernel(0, 1), MxmKernel::Heap);
        assert_eq!(MxmKernel::Hash.name(), "hash");
    }

    #[test]
    fn policy_parses_cli_spellings() {
        assert_eq!(SelectionPolicy::parse("auto"), Some(SelectionPolicy::Auto));
        assert_eq!(SelectionPolicy::parse("push"), Some(SelectionPolicy::Push));
        assert_eq!(SelectionPolicy::parse("pull"), Some(SelectionPolicy::Pull));
        assert_eq!(SelectionPolicy::parse("sideways"), None);
        assert_eq!(SelectionPolicy::Auto.name(), "auto");
        assert_eq!(Direction::Push.name(), "push");
        assert_eq!(FrontierFmt::Bitmap.name(), "bitmap");
    }
}
