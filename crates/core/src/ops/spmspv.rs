//! `SpMSpV`: sparse matrix × sparse vector, `y ← x A` (§III-D, Listing 7).
//!
//! "The algorithm iterates over the nonzeros of the input vector x and
//! fetches rows A\[i, :\] for which x\[i\] ≠ 0. The nonzeros in those rows
//! are merged using the SPA." Three instrumented steps, matching the
//! components Fig 7 plots:
//!
//! 1. **`spa`** — merge the selected rows through the sparse accumulator;
//! 2. **`sort`** — sort the collected column indices ("sorting is the most
//!    expensive step"; merge sort by default, radix sort as the paper's
//!    suggested improvement). With [`MergeStrategy::Bucketed`] this phase
//!    disappears entirely: a cheap **`bucket`** scatter plus in-order
//!    bucket drains produce the same sorted output with zero comparison
//!    sorts (the CombBLAS 2.0-style remedy);
//! 3. **`output`** — populate the output sparse vector from the SPA.
//!
//! Variants:
//! * [`spmspv_first_visitor`] — exactly Listing 7: atomics-based parallel
//!   SPA where the *first* visitor of a column wins and the stored value is
//!   the visiting row id (the BFS parent).
//! * [`spmspv_semiring`] — the general GraphBLAS semantics
//!   `y[j] = ⊕_i x[i] ⊗ A[i,j]` over an arbitrary semiring.
//! * [`spmspv_sort_based`] — an alternative merge strategy (collect all
//!   products, sort by column, segmented-reduce) in the spirit of the
//!   work-efficient algorithms the paper cites \[9\]; used by the ablation
//!   bench.

use crate::algebra::{BinaryOp, Monoid, Semiring};
use crate::container::{CsrMatrix, SparseVec};
use crate::error::{check_dims, Result};
use crate::mask::VecMask;
use crate::par::ExecCtx;
use crate::sort::{parallel_merge_sort, sort_indices, SortAlgo};

/// Phase: SPA merge.
pub const PHASE_SPA: &str = "spa";
/// Phase: index sort.
pub const PHASE_SORT: &str = "sort";
/// Phase: bucket scatter (the sort-free merge's replacement for `sort`).
pub const PHASE_BUCKET: &str = "bucket";
/// Phase: output construction.
pub const PHASE_OUTPUT: &str = "output";

/// [`MergeStrategy::Auto`] picks the bucketed merge once the frontier has
/// at least this many nonzeros: below it the bucket scatter's fixed
/// occupancy scans cost more than a small comparison sort; above it the
/// sort's `n log n` loses. (SuiteSparse:GraphBLAS applies the same kind
/// of nnz switch to its saxpy-vs-dot choice.)
pub const AUTO_BUCKET_MIN_NNZ: usize = 4096;

/// How the SPA's collected (unsorted) indices become the sorted output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Global comparison sort of `nzinds` — Listing 7 as written, the
    /// step Fig 7 shows dominating. The differential oracle.
    #[default]
    SortBased,
    /// Sort-free bucket merge ([`BucketSpa`](crate::spa::BucketSpa)): scatter indices into
    /// per-task column-range buckets, emit each bucket by an in-order
    /// occupancy scan. `PHASE_SORT` disappears; a cheap `PHASE_BUCKET`
    /// takes its place.
    Bucketed,
    /// Decide per call from the measured frontier nnz: bucketed at or
    /// above [`AUTO_BUCKET_MIN_NNZ`], sort-based below. Resolved to a
    /// concrete strategy by [`MergeStrategy::resolve`] before any kernel
    /// work runs, so traces always record what actually executed.
    Auto,
}

impl MergeStrategy {
    /// Stable lowercase name (trace attributes, CLI flags, CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            MergeStrategy::SortBased => "sort",
            MergeStrategy::Bucketed => "bucket",
            MergeStrategy::Auto => "auto",
        }
    }

    /// Parse a CLI spelling (`sort` | `bucket` | `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sort" | "sorted" | "sort-based" => Some(MergeStrategy::SortBased),
            "bucket" | "bucketed" => Some(MergeStrategy::Bucketed),
            "auto" => Some(MergeStrategy::Auto),
            _ => None,
        }
    }

    /// Resolve to a concrete strategy for a frontier with `nnz` stored
    /// entries.
    ///
    /// This is the single resolution point for *both* the shared and the
    /// distributed `spmspv` paths: a concrete `GBLAS_MERGE=sort|bucket`
    /// environment override beats whatever the caller picked, and `Auto`
    /// (from either source) then falls to the nnz threshold. The dist
    /// kernels resolve once from the **global** frontier nnz before
    /// fanning out, so every locale runs the same merge and the op trace
    /// records the strategy that actually executed.
    pub fn resolve(self, nnz: usize) -> MergeStrategy {
        let base = match std::env::var("GBLAS_MERGE") {
            Ok(v) => match MergeStrategy::parse(v.trim()) {
                // "auto" in the env is a request to re-decide, not a
                // concrete override; anything unparseable is ignored.
                Some(e) if e != MergeStrategy::Auto => e,
                Some(_) => MergeStrategy::Auto,
                None => self,
            },
            Err(_) => self,
        };
        match base {
            MergeStrategy::Auto => {
                if nnz >= AUTO_BUCKET_MIN_NNZ {
                    MergeStrategy::Bucketed
                } else {
                    MergeStrategy::SortBased
                }
            }
            concrete => concrete,
        }
    }
}

/// Options for the SpMSpV kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpMSpVOpts {
    /// Sorting algorithm for the collected indices (sort-based merge only).
    pub sort: SortAlgo,
    /// How the collected indices are merged into sorted order.
    pub merge: MergeStrategy,
}

impl SpMSpVOpts {
    /// Default options with the given merge strategy.
    pub fn with_merge(merge: MergeStrategy) -> Self {
        SpMSpVOpts { merge, ..Default::default() }
    }

    /// Options with the merge strategy resolved to a concrete choice for
    /// a frontier of `nnz` entries (see [`MergeStrategy::resolve`]).
    pub fn resolved(self, nnz: usize) -> Self {
        SpMSpVOpts { merge: self.merge.resolve(nnz), ..self }
    }
}

/// Turn the SPA's collected (unsorted, duplicate-free) indices into
/// ascending order with the selected merge strategy. The sort-based path
/// charges `PHASE_SORT`; the bucketed path never compares — it charges a
/// `PHASE_BUCKET` scatter plus per-bucket occupancy scans against `is_set`
/// (the SPA's `isthere`), one `coforall` task per bucket.
fn merged_indices<F>(
    nzinds: Vec<usize>,
    capacity: usize,
    is_set: F,
    opts: SpMSpVOpts,
    ctx: &ExecCtx,
) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    // Entry points resolve `Auto` from the input frontier's nnz before
    // the SPA runs; an unresolved strategy arriving here (a direct
    // internal caller) falls back to the collected count.
    match opts.merge.resolve(nzinds.len()) {
        MergeStrategy::Auto => unreachable!("resolve() always returns a concrete strategy"),
        MergeStrategy::SortBased => {
            let mut inds = nzinds;
            sort_indices(&mut inds, opts.sort, ctx, PHASE_SORT);
            inds
        }
        MergeStrategy::Bucketed => {
            let nnz = nzinds.len();
            let mut bspa = ctx.ws_bucket_spa(capacity, ctx.threads());
            ctx.record(PHASE_BUCKET, |c| bspa.scatter(&nzinds, c));
            let parts = ctx.for_each_task(PHASE_BUCKET, bspa.nbuckets(), |b, c| {
                bspa.collect_bucket(b, &is_set, c)
            });
            let mut out = Vec::with_capacity(nnz);
            for p in parts {
                out.extend(p);
            }
            out
        }
    }
}

/// Listing 7: parallel first-visitor SpMSpV. The output stores, for every
/// reached column, the id of the row that reached it first ("keep row
/// index as value") — nondeterministic under real parallelism exactly as
/// in Chapel, deterministic when `ctx.real_threads() == 1`.
///
/// `x`'s values are ignored; its *structure* selects the rows of `a`.
/// An optional `mask` restricts which output columns may be claimed
/// (BFS passes "not yet visited").
pub fn spmspv_first_visitor<T: Send + Sync, X: Send + Sync>(
    a: &CsrMatrix<T>,
    x: &SparseVec<X>,
    mask: Option<&VecMask<'_>>,
    opts: SpMSpVOpts,
    ctx: &ExecCtx,
) -> Result<SparseVec<usize>> {
    check_dims("x capacity vs matrix rows", a.nrows(), x.capacity())?;
    let opts = opts.resolved(x.nnz());
    let _op = ctx.trace_op_attrs(
        "spmspv_first_visitor",
        x.nnz() as u64,
        &[("nrows", a.nrows()), ("ncols", a.ncols())],
        &[("merge", opts.merge.name())],
    );
    let ncols = a.ncols();
    // Step 1: SPA (Listing 7 lines 12–29) — checked out of the context's
    // workspace pool: on every BFS level after the first this is an O(1)
    // generation bump instead of an O(ncols) allocation + zero-fill.
    let spa = ctx.ws_atomic_spa(ncols);
    let xi = x.indices();
    ctx.parallel_for(PHASE_SPA, x.nnz(), |r, c| {
        for &rid in &xi[r.clone()] {
            let (cols, _) = a.row(rid);
            c.flops += cols.len() as u64;
            for &colid in cols {
                if let Some(m) = mask {
                    if !m.allows(colid, c) {
                        continue;
                    }
                }
                spa.claim_first(colid, rid, c);
            }
        }
        c.elems += r.len() as u64;
    });
    // Step 2: remove unused entries and order them (lines 30–32) — a
    // global sort, or the sort-free bucket merge.
    let nzinds = merged_indices(spa.collected(), ncols, |i| spa.contains(i), opts, ctx);
    // Step 3: populate the output vector (lines 33–39).
    let value_chunks = ctx.parallel_for(PHASE_OUTPUT, nzinds.len(), |r, c| {
        let mut vals = ctx.ws_vec::<usize>();
        vals.extend(nzinds[r.clone()].iter().map(|&si| spa.value(si)));
        c.spa_touches += r.len() as u64;
        c.elems += r.len() as u64;
        vals
    });
    let mut values = Vec::with_capacity(nzinds.len());
    for v in value_chunks {
        values.extend_from_slice(&v);
    }
    SparseVec::from_sorted(ncols, nzinds, values)
}

/// General semiring SpMSpV: `y[j] = ⊕_{i : x[i] stored} x[i] ⊗ A[i,j]`.
///
/// Uses a serial [`DenseSpa`] (the accumulation order of a commutative
/// monoid makes the result deterministic); the sort and output phases are
/// shared with the first-visitor kernel.
pub fn spmspv_semiring<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<B>,
    x: &SparseVec<A>,
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<SpMSpVOutput<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    spmspv_semiring_masked(a, x, ring, None, SpMSpVOpts::default(), ctx)
}

/// Result wrapper so call sites can destructure by name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpMSpVOutput<C> {
    /// The product vector `y`.
    pub vector: SparseVec<C>,
}

/// [`spmspv_semiring`] with a mask over output columns and explicit
/// options.
pub fn spmspv_semiring_masked<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<B>,
    x: &SparseVec<A>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&VecMask<'_>>,
    opts: SpMSpVOpts,
    ctx: &ExecCtx,
) -> Result<SpMSpVOutput<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("x capacity vs matrix rows", a.nrows(), x.capacity())?;
    let opts = opts.resolved(x.nnz());
    let _op = ctx.trace_op_attrs(
        "spmspv_semiring",
        x.nnz() as u64,
        &[("nrows", a.nrows()), ("ncols", a.ncols())],
        &[("merge", opts.merge.name())],
    );
    let ncols = a.ncols();
    let mut spa = ctx.ws_dense_spa(ncols, ring.zero::<C>());
    let mut c = crate::par::Counters::default();
    for (rid, &xv) in x.iter() {
        let (cols, vals) = a.row(rid);
        c.flops += cols.len() as u64;
        for (&colid, &av) in cols.iter().zip(vals.iter()) {
            if let Some(m) = mask {
                if !m.allows(colid, &mut c) {
                    continue;
                }
            }
            spa.accumulate(colid, ring.multiply(xv, av), &ring.add, &mut c);
        }
    }
    c.elems += x.nnz() as u64;
    ctx.record(PHASE_SPA, |pc| pc.merge(&c));

    let nzinds = merged_indices(spa.nzinds().to_vec(), ncols, |i| spa.get(i).is_some(), opts, ctx);

    let mut out_c = crate::par::Counters::default();
    let values: Vec<C> = nzinds
        .iter()
        .map(|&i| {
            out_c.spa_touches += 1;
            spa.get(i).expect("collected index is occupied")
        })
        .collect();
    out_c.elems += nzinds.len() as u64;
    ctx.record(PHASE_OUTPUT, |pc| pc.merge(&out_c));
    Ok(SpMSpVOutput { vector: SparseVec::from_sorted(ncols, nzinds, values)? })
}

/// Sort-based SpMSpV: emit every product `(col, x[i] ⊗ A[i,j])`, sort the
/// pairs by column, then reduce equal columns with the add monoid. Trades
/// SPA random access for a bigger sort — the ablation bench compares it
/// against the SPA algorithm.
pub fn spmspv_sort_based<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<B>,
    x: &SparseVec<A>,
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<SpMSpVOutput<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("x capacity vs matrix rows", a.nrows(), x.capacity())?;
    let _op = ctx.trace_op(
        "spmspv_sort_based",
        x.nnz() as u64,
        &[("nrows", a.nrows()), ("ncols", a.ncols())],
    );
    let ncols = a.ncols();
    // Emit products.
    let mut keyed: Vec<(usize, usize)> = Vec::new(); // (col, position)
    let mut products: Vec<C> = Vec::new();
    let mut c = crate::par::Counters::default();
    for (rid, &xv) in x.iter() {
        let (cols, vals) = a.row(rid);
        c.flops += cols.len() as u64;
        for (&colid, &av) in cols.iter().zip(vals.iter()) {
            keyed.push((colid, products.len()));
            products.push(ring.multiply(xv, av));
        }
    }
    c.elems += x.nnz() as u64;
    ctx.record(PHASE_SPA, |pc| pc.merge(&c));
    // Sort pairs by column (stable by construction of the secondary key).
    parallel_merge_sort(&mut keyed, ctx, PHASE_SORT);
    // Segmented reduce.
    let mut out_i: Vec<usize> = Vec::new();
    let mut out_v: Vec<C> = Vec::new();
    let mut oc = crate::par::Counters::default();
    for &(col, pos) in &keyed {
        oc.elems += 1;
        if out_i.last() == Some(&col) {
            let last = out_v.last_mut().unwrap();
            *last = ring.accumulate(*last, products[pos]);
            oc.flops += 1;
        } else {
            out_i.push(col);
            out_v.push(products[pos]);
        }
    }
    ctx.record(PHASE_OUTPUT, |pc| pc.merge(&oc));
    Ok(SpMSpVOutput { vector: SparseVec::from_sorted(ncols, out_i, out_v)? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semirings;
    use crate::container::DenseVec;
    use crate::gen;

    /// Dense reference for y = x A over plus-times.
    fn dense_reference(a: &CsrMatrix<f64>, x: &SparseVec<f64>) -> Vec<f64> {
        let mut y = vec![0.0; a.ncols()];
        for (i, &xv) in x.iter() {
            let (cols, vals) = a.row(i);
            for (&j, &av) in cols.iter().zip(vals) {
                y[j] += xv * av;
            }
        }
        y
    }

    #[test]
    fn semiring_matches_dense_reference() {
        let a = gen::erdos_renyi(500, 6, 11);
        let x = gen::random_sparse_vec(500, 40, 12);
        let ctx = ExecCtx::serial();
        let out = spmspv_semiring(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        let reference = dense_reference(&a, &x);
        let dense = out.vector.to_dense(0.0);
        for j in 0..500 {
            assert!((dense[j] - reference[j]).abs() < 1e-9, "col {j}");
        }
    }

    #[test]
    fn sort_based_agrees_with_spa() {
        let a = gen::erdos_renyi(300, 5, 21);
        let x = gen::random_sparse_vec(300, 30, 22);
        let ctx = ExecCtx::serial();
        let spa = spmspv_semiring(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        let srt = spmspv_sort_based(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        assert_eq!(spa.vector.indices(), srt.vector.indices());
        for (s, t) in spa.vector.values().iter().zip(srt.vector.values()) {
            assert!((s - t).abs() < 1e-9);
        }
    }

    #[test]
    fn first_visitor_structure_matches_semiring_structure() {
        let a = gen::erdos_renyi(400, 8, 31);
        let x = gen::random_sparse_vec(400, 25, 32);
        for threads in [1, 4] {
            let ctx = ExecCtx::new(threads, 2);
            let fv = spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx).unwrap();
            let sr = spmspv_semiring(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
            assert_eq!(fv.indices(), sr.vector.indices(), "reached set must agree");
            // every stored value is a legitimate visiting row
            for (col, &rid) in fv.iter() {
                assert!(x.get(rid).is_some(), "value {rid} must be a frontier row");
                assert!(a.get(rid, col).is_some(), "A[{rid},{col}] must exist");
            }
        }
    }

    #[test]
    fn first_visitor_deterministic_when_serial() {
        let a = gen::erdos_renyi(200, 6, 41);
        let x = gen::random_sparse_vec(200, 20, 42);
        let ctx = ExecCtx::serial();
        let y1 = spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx).unwrap();
        let y2 = spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn radix_and_merge_sorts_agree() {
        let a = gen::erdos_renyi(400, 8, 51);
        let x = gen::random_sparse_vec(400, 30, 52);
        let ctx = ExecCtx::serial();
        let m = spmspv_first_visitor(
            &a,
            &x,
            None,
            SpMSpVOpts { sort: SortAlgo::Merge, ..Default::default() },
            &ctx,
        )
        .unwrap();
        let r = spmspv_first_visitor(
            &a,
            &x,
            None,
            SpMSpVOpts { sort: SortAlgo::Radix, ..Default::default() },
            &ctx,
        )
        .unwrap();
        assert_eq!(m, r);
    }

    #[test]
    fn bucketed_first_visitor_matches_sorted_and_skips_the_sort() {
        let a = gen::erdos_renyi(400, 8, 53);
        let x = gen::random_sparse_vec(400, 30, 54);
        for threads in [1usize, 4, 16] {
            let ctx_s = ExecCtx::simulated(threads);
            let ctx_b = ExecCtx::simulated(threads);
            let sorted = spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx_s).unwrap();
            let bucketed = spmspv_first_visitor(
                &a,
                &x,
                None,
                SpMSpVOpts::with_merge(MergeStrategy::Bucketed),
                &ctx_b,
            )
            .unwrap();
            assert_eq!(sorted, bucketed, "threads={threads}");
            let ps = ctx_s.take_profile();
            let pb = ctx_b.take_profile();
            // the SPA work is strategy-independent
            assert_eq!(ps.phase(PHASE_SPA), pb.phase(PHASE_SPA), "threads={threads}");
            // bucketed: zero sort comparisons anywhere, bucket phase recorded
            assert!(pb.phase(PHASE_SORT).is_empty(), "threads={threads}");
            assert_eq!(pb.total().sort_elems, 0, "threads={threads}");
            assert!(pb.phase(PHASE_BUCKET).rand_access > 0, "threads={threads}");
            assert!(ps.phase(PHASE_SORT).sort_elems > 0, "threads={threads}");
        }
    }

    #[test]
    fn bucketed_semiring_matches_sorted_semiring() {
        let a = gen::erdos_renyi(500, 6, 57);
        let x = gen::random_sparse_vec(500, 45, 58);
        let ring = semirings::plus_times_f64();
        let ctx_s = ExecCtx::simulated(8);
        let ctx_b = ExecCtx::simulated(8);
        let sorted =
            spmspv_semiring_masked(&a, &x, &ring, None, SpMSpVOpts::default(), &ctx_s).unwrap();
        let bucketed = spmspv_semiring_masked(
            &a,
            &x,
            &ring,
            None,
            SpMSpVOpts::with_merge(MergeStrategy::Bucketed),
            &ctx_b,
        )
        .unwrap();
        assert_eq!(sorted.vector.indices(), bucketed.vector.indices());
        for (s, b) in sorted.vector.values().iter().zip(bucketed.vector.values()) {
            assert!((s - b).abs() < 1e-12);
        }
        assert_eq!(ctx_b.take_profile().total().sort_elems, 0);
    }

    #[test]
    fn bucketed_masked_agrees_with_sorted_masked() {
        let a = gen::erdos_renyi_bool(300, 7, 59);
        let x = gen::random_sparse_vec(300, 25, 60);
        let visited = DenseVec::from_fn(300, |i| i % 3 == 0);
        let not_visited = VecMask::dense(&visited).complement();
        let ctx = ExecCtx::serial();
        let s =
            spmspv_first_visitor(&a, &x, Some(&not_visited), SpMSpVOpts::default(), &ctx).unwrap();
        let b = spmspv_first_visitor(
            &a,
            &x,
            Some(&not_visited),
            SpMSpVOpts::with_merge(MergeStrategy::Bucketed),
            &ctx,
        )
        .unwrap();
        assert_eq!(s, b);
    }

    #[test]
    fn merge_strategy_parses_cli_spellings() {
        assert_eq!(MergeStrategy::parse("sort"), Some(MergeStrategy::SortBased));
        assert_eq!(MergeStrategy::parse("bucket"), Some(MergeStrategy::Bucketed));
        assert_eq!(MergeStrategy::parse("bucketed"), Some(MergeStrategy::Bucketed));
        assert_eq!(MergeStrategy::parse("quantum"), None);
        assert_eq!(MergeStrategy::SortBased.name(), "sort");
        assert_eq!(MergeStrategy::Bucketed.name(), "bucket");
    }

    #[test]
    fn mask_excludes_columns() {
        let a = gen::erdos_renyi_bool(200, 6, 61);
        let x = gen::random_sparse_vec(200, 15, 62);
        let visited = DenseVec::from_fn(200, |i| i % 2 == 0); // even columns visited
        let not_visited = VecMask::dense(&visited).complement();
        let ctx = ExecCtx::serial();
        let y =
            spmspv_first_visitor(&a, &x, Some(&not_visited), SpMSpVOpts::default(), &ctx).unwrap();
        assert!(y.indices().iter().all(|&j| j % 2 == 1), "only odd columns allowed");
    }

    #[test]
    fn phases_are_recorded() {
        let a = gen::erdos_renyi(300, 8, 71);
        let x = gen::random_sparse_vec(300, 50, 72);
        let ctx = ExecCtx::simulated(16);
        let _ = spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx).unwrap();
        let prof = ctx.take_profile();
        assert!(prof.phase(PHASE_SPA).flops > 0);
        assert!(prof.phase(PHASE_SPA).atomics > 0);
        assert!(prof.phase(PHASE_SORT).sort_elems > 0);
        assert!(prof.phase(PHASE_OUTPUT).spa_touches > 0);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = gen::erdos_renyi(10, 2, 81);
        let x = gen::random_sparse_vec(11, 2, 82);
        let ctx = ExecCtx::serial();
        assert!(spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx).is_err());
        assert!(spmspv_semiring(&a, &x, &semirings::plus_times_f64(), &ctx).is_err());
    }

    #[test]
    fn empty_frontier_gives_empty_output() {
        let a = gen::erdos_renyi(50, 3, 91);
        let x = SparseVec::<f64>::new(50);
        let ctx = ExecCtx::serial();
        let y = spmspv_first_visitor(&a, &x, None, SpMSpVOpts::default(), &ctx).unwrap();
        assert_eq!(y.nnz(), 0);
        assert_eq!(y.capacity(), 50);
    }

    #[test]
    fn tropical_semiring_relaxes_distances() {
        // Path graph 0 -> 1 -> 2 with weights 2.0 and 3.0.
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let x = SparseVec::from_sorted(3, vec![0], vec![0.0]).unwrap(); // dist 0 at source
        let ctx = ExecCtx::serial();
        let ring = semirings::min_plus();
        let y1 = spmspv_semiring(&a, &x, &ring, &ctx).unwrap().vector;
        assert_eq!(y1.indices(), &[1]);
        assert_eq!(y1.values(), &[2.0]);
        let y2 = spmspv_semiring(&a, &y1, &ring, &ctx).unwrap().vector;
        assert_eq!(y2.indices(), &[2]);
        assert_eq!(y2.values(), &[5.0]);
    }
}
