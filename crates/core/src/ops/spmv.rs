//! `SpMV`: sparse matrix × dense vector over a semiring.
//!
//! The GraphBLAS `MXV` with a dense operand: once a BFS/PageRank frontier
//! saturates, SpMSpV degenerates to SpMV, so a library needs both. Row
//! parallel: each task owns a contiguous block of output rows, no atomics.
//!
//! Orientation note: [`spmv_row`] computes `y = A x` (combining along each
//! row of `A`), the transpose of the paper's `y ← x A` orientation;
//! [`spmv_col`] computes `y = x A` against a dense `x`.

use crate::algebra::{BinaryOp, Monoid, Semiring};
use crate::container::{CsrMatrix, DenseVec};
use crate::error::{check_dims, Result};
use crate::par::ExecCtx;

/// Phase name for SpMV.
pub const PHASE: &str = "spmv";

/// `y = A x`: `y[i] = ⊕_j A[i,j] ⊗ x[j]`.
pub fn spmv_row<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<A>,
    x: &DenseVec<B>,
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<DenseVec<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("x length vs matrix cols", a.ncols(), x.len())?;
    let row_chunks = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut out = ctx.ws_vec::<C>();
        for i in r.clone() {
            let (cols, vals) = a.row(i);
            let mut acc = ring.zero::<C>();
            for (&j, &av) in cols.iter().zip(vals) {
                acc = ring.accumulate(acc, ring.multiply(av, x[j]));
            }
            c.flops += cols.len() as u64;
            c.rand_access += cols.len() as u64; // x[j] gathers
            out.push(acc);
        }
        c.elems += r.len() as u64;
        out
    });
    let mut y = Vec::with_capacity(a.nrows());
    for chunk in row_chunks {
        y.extend_from_slice(&chunk);
    }
    Ok(DenseVec::from_vec(y))
}

/// `y = x A`: `y[j] = ⊕_i x[i] ⊗ A[i,j]` with dense `x` — the paper's
/// orientation. Computed with one private accumulator per task and a
/// monoid-combine of the partials (no atomics).
pub fn spmv_col<A, B, C, AddM, MulOp>(
    a: &CsrMatrix<B>,
    x: &DenseVec<A>,
    ring: &Semiring<AddM, MulOp>,
    ctx: &ExecCtx,
) -> Result<DenseVec<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_dims("x length vs matrix rows", a.nrows(), x.len())?;
    let ncols = a.ncols();
    let partials = ctx.parallel_for(PHASE, a.nrows(), |r, c| {
        let mut acc = ctx.ws_filled_vec::<C>(ncols, ring.zero::<C>());
        for i in r.clone() {
            let (cols, vals) = a.row(i);
            for (&j, &av) in cols.iter().zip(vals) {
                acc[j] = ring.accumulate(acc[j], ring.multiply(x[i], av));
            }
            c.flops += cols.len() as u64;
            c.rand_access += cols.len() as u64;
        }
        c.elems += r.len() as u64;
        acc
    });
    let mut y = vec![ring.zero::<C>(); ncols];
    let mut c = crate::par::Counters::default();
    for p in partials {
        for (slot, &v) in y.iter_mut().zip(p.iter()) {
            *slot = ring.accumulate(*slot, v);
        }
        c.elems += ncols as u64;
    }
    ctx.record(PHASE, |pc| pc.merge(&c));
    Ok(DenseVec::from_vec(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semirings;
    use crate::gen;

    #[test]
    fn row_spmv_matches_reference() {
        let a = gen::erdos_renyi(200, 5, 1);
        let x = DenseVec::from_fn(200, |i| (i % 7) as f64);
        let ctx = ExecCtx::with_threads(2);
        let y = spmv_row(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
        for i in 0..200 {
            let (cols, vals) = a.row(i);
            let expect: f64 = cols.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn col_spmv_matches_reference() {
        let a = gen::erdos_renyi(150, 4, 2);
        let x = DenseVec::from_fn(150, |i| 1.0 + (i % 3) as f64);
        for threads in [1, 4] {
            let ctx = ExecCtx::new(threads, 2);
            let y = spmv_col(&a, &x, &semirings::plus_times_f64(), &ctx).unwrap();
            let mut expect = vec![0.0; 150];
            for (i, j, &v) in a.iter() {
                expect[j] += x[i] * v;
            }
            for j in 0..150 {
                assert!((y[j] - expect[j]).abs() < 1e-9, "col {j}");
            }
        }
    }

    #[test]
    fn dimension_checks() {
        let a = gen::erdos_renyi(10, 2, 3);
        let short = DenseVec::filled(9, 1.0);
        let ctx = ExecCtx::serial();
        assert!(
            spmv_row::<_, _, f64, _, _>(&a, &short, &semirings::plus_times_f64(), &ctx).is_err()
        );
        assert!(
            spmv_col::<_, _, f64, _, _>(&a, &short, &semirings::plus_times_f64(), &ctx).is_err()
        );
    }

    #[test]
    fn boolean_reachability_spmv() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, true), (1, 2, true)]).unwrap();
        let x = DenseVec::from_vec(vec![true, false, false]);
        let ctx = ExecCtx::serial();
        let y = spmv_col(&a, &x, &semirings::or_and(), &ctx).unwrap();
        assert_eq!(y.as_slice(), &[false, true, false]);
    }
}
