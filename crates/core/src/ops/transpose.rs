//! `transpose`: CSR → CSR transposition by counting sort.
//!
//! `Aᵀ` is assembled in `O(nnz + ncols)`: count entries per column, prefix
//! sum into the new row pointers, then scatter. Scattering in row-major
//! input order keeps each output row's column ids sorted, preserving the
//! CSR invariant without a sort.

use crate::container::CsrMatrix;
use crate::error::Result;
use crate::par::ExecCtx;

/// Phase name for transpose.
pub const PHASE: &str = "transpose";

/// Compute `Aᵀ`.
pub fn transpose<T: Copy + Send + Sync>(a: &CsrMatrix<T>, ctx: &ExecCtx) -> Result<CsrMatrix<T>> {
    let nnz = a.nnz();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    // Column histogram (parallel partial histograms, then combined).
    let colidx = a.colidx();
    let partial = ctx.parallel_for(PHASE, nnz, |r, c| {
        let mut h = vec![0usize; ncols];
        for &j in &colidx[r.clone()] {
            h[j] += 1;
        }
        c.elems += r.len() as u64;
        c.rand_access += r.len() as u64;
        h
    });
    let mut rowptr_t = vec![0usize; ncols + 1];
    for h in &partial {
        for (j, &cnt) in h.iter().enumerate() {
            rowptr_t[j + 1] += cnt;
        }
    }
    for j in 0..ncols {
        rowptr_t[j + 1] += rowptr_t[j];
    }
    // Scatter (serial to preserve per-row sortedness deterministically).
    let mut cursor = rowptr_t.clone();
    let mut colidx_t = vec![0usize; nnz];
    // Compute each entry's target slot, then permute the value array.
    let mut targets = vec![0usize; nnz];
    let mut c = crate::par::Counters::default();
    let mut pos = 0usize;
    for i in 0..nrows {
        let (cols, _) = a.row(i);
        for &j in cols {
            let t = cursor[j];
            cursor[j] += 1;
            colidx_t[t] = i;
            targets[pos] = t;
            pos += 1;
            c.rand_access += 1;
        }
    }
    c.elems += nnz as u64;
    let mut values_t: Vec<T> = if nnz == 0 { Vec::new() } else { vec![a.values()[0]; nnz] };
    for (p, v) in a.values().iter().enumerate() {
        values_t[targets[p]] = *v;
    }
    ctx.record(PHASE, |pc| pc.merge(&c));
    CsrMatrix::from_raw_parts(ncols, nrows, rowptr_t, colidx_t, values_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn transpose_round_trip() {
        let a = gen::erdos_renyi(120, 6, 29);
        let ctx = ExecCtx::with_threads(2);
        let t = transpose(&a, &ctx).unwrap();
        assert_eq!(t.nrows(), a.ncols());
        assert_eq!(t.ncols(), a.nrows());
        assert_eq!(t.nnz(), a.nnz());
        for (i, j, &v) in a.iter() {
            assert_eq!(t.get(j, i), Some(&v), "({i},{j})");
        }
        let tt = transpose(&t, &ctx).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn transpose_rectangular() {
        let a = CsrMatrix::from_triplets(2, 4, &[(0, 3, 1.0), (1, 0, 2.0), (1, 2, 3.0)]).unwrap();
        let ctx = ExecCtx::serial();
        let t = transpose(&a, &ctx).unwrap();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(3, 0), Some(&1.0));
        assert_eq!(t.get(0, 1), Some(&2.0));
    }

    #[test]
    fn transpose_empty() {
        let a = CsrMatrix::<f64>::empty(3, 5);
        let ctx = ExecCtx::serial();
        let t = transpose(&a, &ctx).unwrap();
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.nnz(), 0);
    }
}
