//! Work counters — the measurement half of the execution/simulation split.

/// Counts of the primitive work performed while executing an operation.
///
/// Every counter corresponds to a mechanism the paper identifies as a
/// performance driver, and `gblas_sim::CostModel` prices each with a
/// calibrated per-unit cost:
///
/// * `elems` — elements streamed sequentially (the `O(nnz)` body of
///   Apply/Assign/eWiseMult);
/// * `flops` — semiring multiply+add pairs (SpMSpV/SpMV/MxM inner loops);
/// * `search_probes` — binary-search probe steps. "Accessing the *i*th
///   entry A\[i\] of the sparse array A requires logarithmic time" (§III-B)
///   — this is the counter that makes Assign1 ~10× slower than Assign2;
/// * `atomics` — atomic read-modify-write operations (the `fetchAdd`
///   compaction in Listing 6, the `isthere` claims in Listing 7);
/// * `sort_elems` — elements moved per sorting pass, summed over passes
///   (`n·log n` for merge sort, `n·passes` for radix), the dominant cost of
///   shared-memory SpMSpV (Fig 7);
/// * `spa_touches` — sparse-accumulator reads/writes (dense-array random
///   access, cache-unfriendly);
/// * `rand_access` — other random (non-streaming) memory accesses;
/// * `bytes_moved` — bytes streamed, used for the memory-bandwidth ceiling;
/// * `tasks`/`regions` — fork-join bookkeeping: the per-task spawn
///   overhead is exactly the "burdened parallelism" of §I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Elements streamed sequentially.
    pub elems: u64,
    /// Semiring multiply/add operation pairs.
    pub flops: u64,
    /// Binary-search probe steps (each probe is one compare + dependent load).
    pub search_probes: u64,
    /// Atomic read-modify-write operations.
    pub atomics: u64,
    /// Elements moved during sorting, summed across passes.
    pub sort_elems: u64,
    /// Sparse-accumulator touches (random access into a dense array).
    pub spa_touches: u64,
    /// Other random-access loads/stores.
    pub rand_access: u64,
    /// Bytes streamed (for the bandwidth ceiling).
    pub bytes_moved: u64,
    /// Tasks spawned by fork-join regions.
    pub tasks: u64,
    /// Fork-join regions entered.
    pub regions: u64,
}

impl Counters {
    /// Element-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.elems += other.elems;
        self.flops += other.flops;
        self.search_probes += other.search_probes;
        self.atomics += other.atomics;
        self.sort_elems += other.sort_elems;
        self.spa_touches += other.spa_touches;
        self.rand_access += other.rand_access;
        self.bytes_moved += other.bytes_moved;
        self.tasks += other.tasks;
        self.regions += other.regions;
    }

    /// True when no work at all has been recorded.
    pub fn is_empty(&self) -> bool {
        *self == Counters::default()
    }

    /// Field-wise `self - earlier`, saturating at zero — used to attribute
    /// the work performed between two profile snapshots to a trace span.
    pub fn saturating_sub(&self, earlier: &Counters) -> Counters {
        Counters {
            elems: self.elems.saturating_sub(earlier.elems),
            flops: self.flops.saturating_sub(earlier.flops),
            search_probes: self.search_probes.saturating_sub(earlier.search_probes),
            atomics: self.atomics.saturating_sub(earlier.atomics),
            sort_elems: self.sort_elems.saturating_sub(earlier.sort_elems),
            spa_touches: self.spa_touches.saturating_sub(earlier.spa_touches),
            rand_access: self.rand_access.saturating_sub(earlier.rand_access),
            bytes_moved: self.bytes_moved.saturating_sub(earlier.bytes_moved),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            regions: self.regions.saturating_sub(earlier.regions),
        }
    }

    /// Total "CPU-side" unit count — a quick sanity aggregate used in tests
    /// and logs, *not* by the cost model (which prices each field
    /// separately).
    pub fn total_units(&self) -> u64 {
        self.elems
            + self.flops
            + self.search_probes
            + self.atomics
            + self.sort_elems
            + self.spa_touches
            + self.rand_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters { elems: 1, atomics: 2, ..Default::default() };
        let b = Counters { elems: 10, sort_elems: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.elems, 11);
        assert_eq!(a.atomics, 2);
        assert_eq!(a.sort_elems, 5);
    }

    #[test]
    fn default_is_empty() {
        assert!(Counters::default().is_empty());
        let c = Counters { flops: 1, ..Default::default() };
        assert!(!c.is_empty());
    }

    #[test]
    fn saturating_sub_attributes_deltas() {
        let before = Counters { elems: 10, flops: 5, ..Default::default() };
        let after = Counters { elems: 25, flops: 5, atomics: 3, ..Default::default() };
        let d = after.saturating_sub(&before);
        assert_eq!(d.elems, 15);
        assert_eq!(d.flops, 0);
        assert_eq!(d.atomics, 3);
        // underflow clamps instead of wrapping
        assert_eq!(before.saturating_sub(&after).elems, 0);
    }

    #[test]
    fn total_units_excludes_bookkeeping() {
        let c = Counters {
            elems: 3,
            tasks: 100,
            regions: 10,
            bytes_moved: 1 << 30,
            ..Default::default()
        };
        assert_eq!(c.total_units(), 3);
    }
}
