//! Instrumented fork-join runtime.
//!
//! Chapel expresses parallelism with `forall` (data-parallel over a domain)
//! and `coforall` (one explicit task per iteration, the SPMD style the paper
//! repeatedly falls back to for performance). This module provides the same
//! two shapes for Rust:
//!
//! * [`ExecCtx::parallel_for`] — a `forall`: an index range split into one
//!   contiguous chunk per *logical* thread.
//! * [`ExecCtx::for_each_task`] — a `coforall`: exactly `ntasks` explicit
//!   tasks, each receiving its task id.
//!
//! The runtime separates **logical threads** (the thread count being
//! *simulated*, swept 1..32 in the paper's figures) from **real OS threads**
//! (bounded by the host, 2 in CI). Execution is real — every task body
//! actually runs and produces real results — while [`Counters`] record the
//! work performed (elements streamed, binary-search probes, atomic RMWs,
//! sort passes, SPA touches, messages are counted in `gblas-dist`).
//! `gblas-sim` prices the counters with a calibrated model of the paper's
//! 24-core Edison node, which is what lets a 2-core container regenerate
//! 32-thread scaling curves whose *shape* is driven by the measured work,
//! not by a guess.

mod counters;
mod profile;

pub use counters::Counters;
pub use profile::Profile;

use crate::spa::{AtomicSpa, BucketSpa, DenseSpa};
use crate::trace::{MetricsRegistry, SpanKind, TraceRecorder};
use crate::workspace::{WorkspacePool, WsGuard};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::Arc;

/// Execution context carried by every operation.
///
/// Holds the logical thread count, the real-thread budget, and the
/// accumulated [`Profile`] of everything executed under this context — plus
/// the observability handles: a [`TraceRecorder`] (disabled by default) and
/// a shared [`MetricsRegistry`].
pub struct ExecCtx {
    /// Logical (simulated) thread count: the number of tasks a `forall`
    /// region creates. Mirrors `CHPL_RT_NUM_THREADS_PER_LOCALE`.
    threads: usize,
    /// Real OS threads used to execute tasks. `1` gives fully
    /// deterministic execution (tasks run in task-id order).
    real_threads: usize,
    profile: Mutex<Profile>,
    recorder: TraceRecorder,
    metrics: Arc<MetricsRegistry>,
    /// Reusable kernel scratch (SPAs, staging vectors, outboxes) shared
    /// by every op run under this context — see [`crate::workspace`].
    workspace: Arc<WorkspacePool>,
}

impl ExecCtx {
    /// Fully serial, deterministic context (1 logical, 1 real thread).
    pub fn serial() -> Self {
        Self::new(1, 1)
    }

    /// `threads` logical threads, executed on up to `threads` real cores
    /// (capped by the host's available parallelism). This is the "library
    /// user" constructor: logical == real wherever possible.
    pub fn with_threads(threads: usize) -> Self {
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(threads, threads.min(avail))
    }

    /// `threads` logical threads, executed **serially** on the calling
    /// thread. Deterministic; used by tests and by the figure harness when
    /// sweeping thread counts far beyond the host's core count (the
    /// counters, and therefore the simulated times, are identical to a
    /// parallel execution up to atomic-race winners).
    pub fn simulated(threads: usize) -> Self {
        Self::new(threads, 1)
    }

    /// Explicit constructor. `threads >= 1`, `real_threads >= 1`.
    pub fn new(threads: usize, real_threads: usize) -> Self {
        ExecCtx {
            threads: threads.max(1),
            real_threads: real_threads.max(1),
            profile: Mutex::new(Profile::default()),
            recorder: TraceRecorder::disabled(),
            metrics: Arc::new(MetricsRegistry::default()),
            workspace: Arc::new(WorkspacePool::from_env()),
        }
    }

    /// Attach a trace recorder and metrics registry. Operations run under
    /// this context afterwards emit wall-clock op spans and count into the
    /// shared registry.
    pub fn instrument(&mut self, recorder: TraceRecorder, metrics: Arc<MetricsRegistry>) {
        self.recorder = recorder;
        self.metrics = metrics;
    }

    /// The trace recorder (disabled unless [`ExecCtx::instrument`]ed).
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// The cumulative metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The workspace pool ops under this context check scratch out of.
    pub fn workspace(&self) -> &Arc<WorkspacePool> {
        &self.workspace
    }

    /// Replace the workspace pool — the distributed layer uses this to
    /// hand every superstep's per-locale context the *same* long-lived
    /// pool so scratch survives across supersteps and iterations.
    pub fn set_workspace_pool(&mut self, pool: Arc<WorkspacePool>) {
        self.workspace = pool;
    }

    /// Check out a [`DenseSpa`] over `0..capacity` from the pool.
    pub fn ws_dense_spa<T: Copy + Send + 'static>(
        &self,
        capacity: usize,
        fill: T,
    ) -> WsGuard<DenseSpa<T>> {
        self.workspace.dense_spa(capacity, fill, &self.metrics)
    }

    /// Check out an [`AtomicSpa`] over `0..capacity` from the pool.
    pub fn ws_atomic_spa(&self, capacity: usize) -> WsGuard<AtomicSpa> {
        self.workspace.atomic_spa(capacity, &self.metrics)
    }

    /// Check out a [`BucketSpa`] shaped `(capacity, nbuckets)` from the pool.
    pub fn ws_bucket_spa(&self, capacity: usize, nbuckets: usize) -> WsGuard<BucketSpa> {
        self.workspace.bucket_spa(capacity, nbuckets, &self.metrics)
    }

    /// Check out an empty staging vector from the pool.
    pub fn ws_vec<T: Send + 'static>(&self) -> WsGuard<Vec<T>> {
        self.workspace.vec(&self.metrics)
    }

    /// Check out a `vec![fill; len]`-shaped scratch vector from the pool.
    pub fn ws_filled_vec<T: Clone + Send + 'static>(&self, len: usize, fill: T) -> WsGuard<Vec<T>> {
        self.workspace.filled_vec(len, fill, &self.metrics)
    }

    /// Check out a `n`-slot outbox (vector of empty vectors) from the pool.
    pub fn ws_nested_vec<T: Send + 'static>(&self, n: usize) -> WsGuard<Vec<Vec<T>>> {
        self.workspace.nested_vec(n, &self.metrics)
    }

    /// Open an op-level span: bumps `ops_executed`/`nnz_processed`, and —
    /// when the recorder is enabled — emits a span on drop carrying the
    /// wall-clock nanoseconds and the [`Counters`] delta this op added to
    /// the context's profile. Shared-memory spans are wall-timed instants
    /// on the simulated clock (core cannot price counters; `gblas-sim`
    /// does), so their `sim_dur` is zero.
    pub fn trace_op<'a>(&'a self, name: &str, nnz: u64, attrs: &[(&str, usize)]) -> OpSpan<'a> {
        self.trace_op_attrs(name, nnz, attrs, &[])
    }

    /// [`ExecCtx::trace_op`] with additional string-valued attributes
    /// (strategy names, adaptive-selection decisions) alongside the
    /// numeric ones.
    pub fn trace_op_attrs<'a>(
        &'a self,
        name: &str,
        nnz: u64,
        attrs: &[(&str, usize)],
        str_attrs: &[(&str, &str)],
    ) -> OpSpan<'a> {
        self.metrics.ops_executed(1);
        self.metrics.nnz_processed(nnz);
        let mut span_attrs = Vec::with_capacity(attrs.len() + str_attrs.len() + 1);
        span_attrs.push(("nnz".to_string(), nnz.to_string()));
        for (k, v) in attrs {
            span_attrs.push((k.to_string(), v.to_string()));
        }
        for (k, v) in str_attrs {
            span_attrs.push((k.to_string(), v.to_string()));
        }
        OpSpan {
            ctx: self,
            name: name.to_string(),
            attrs: span_attrs,
            before: if self.recorder.is_enabled() {
                Some(self.profile.lock().total())
            } else {
                None
            },
            wall_start: std::time::Instant::now(),
        }
    }

    /// Logical thread count (the task count of `forall` regions).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Real OS threads in use.
    pub fn real_threads(&self) -> usize {
        self.real_threads
    }

    /// Record counters into `phase` without spawning a region (serial work).
    pub fn record(&self, phase: &str, f: impl FnOnce(&mut Counters)) {
        let mut p = self.profile.lock();
        f(p.counters_mut(phase));
    }

    /// Take and reset the accumulated profile.
    pub fn take_profile(&self) -> Profile {
        std::mem::take(&mut self.profile.lock())
    }

    /// Peek at the accumulated profile.
    pub fn profile(&self) -> Profile {
        self.profile.lock().clone()
    }

    /// `coforall`: run exactly `ntasks` tasks, each with its id and a local
    /// [`Counters`]. Results come back in task order. Counters are merged
    /// into `phase`, and the region/task bookkeeping is recorded.
    pub fn for_each_task<R, F>(&self, phase: &str, ntasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Counters) -> R + Sync,
    {
        assert!(ntasks > 0, "for_each_task requires at least one task");
        let nworkers = self.real_threads.min(ntasks);
        let mut merged = Counters::default();
        let mut results: Vec<Option<R>> = Vec::with_capacity(ntasks);

        if nworkers <= 1 {
            for t in 0..ntasks {
                let mut c = Counters::default();
                results.push(Some(f(t, &mut c)));
                merged.merge(&c);
            }
        } else {
            let slots: Vec<Mutex<Option<(R, Counters)>>> =
                (0..ntasks).map(|_| Mutex::new(None)).collect();
            crossbeam::thread::scope(|scope| {
                for w in 0..nworkers {
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut t = w;
                        while t < ntasks {
                            let mut c = Counters::default();
                            let r = f(t, &mut c);
                            *slots[t].lock() = Some((r, c));
                            t += nworkers;
                        }
                    });
                }
            })
            .expect("worker thread panicked");
            for slot in slots {
                let (r, c) = slot.into_inner().expect("task did not run");
                results.push(Some(r));
                merged.merge(&c);
            }
        }

        merged.regions += 1;
        merged.tasks += ntasks as u64;
        self.record(phase, |c| c.merge(&merged));
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    /// `forall` over `0..len`: the range is split into `self.threads`
    /// near-equal contiguous chunks (Chapel's default block iteration), and
    /// each chunk runs as one task.
    pub fn parallel_for<R, F>(&self, phase: &str, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>, &mut Counters) -> R + Sync,
    {
        let chunks = split_ranges(len, self.threads);
        self.for_each_task(phase, chunks.len(), |t, c| f(chunks[t].clone(), c))
    }
}

/// Guard returned by [`ExecCtx::trace_op`]; records the span when dropped.
pub struct OpSpan<'a> {
    ctx: &'a ExecCtx,
    name: String,
    attrs: Vec<(String, String)>,
    /// Profile totals when the op started (`Some` only when tracing).
    before: Option<Counters>,
    wall_start: std::time::Instant,
}

impl Drop for OpSpan<'_> {
    fn drop(&mut self) {
        let Some(before) = self.before.take() else { return };
        let delta = self.ctx.profile.lock().total().saturating_sub(&before);
        let cursor = self.ctx.recorder.cursor();
        self.ctx.recorder.span(
            None,
            &self.name,
            SpanKind::Op,
            None,
            cursor,
            0.0,
            self.wall_start.elapsed().as_nanos() as u64,
            delta,
            std::mem::take(&mut self.attrs),
            None,
        );
        self.ctx.metrics.spans_recorded(1);
    }
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("threads", &self.threads)
            .field("real_threads", &self.real_threads)
            .finish_non_exhaustive()
    }
}

/// Split `0..len` into `ntasks` near-equal contiguous ranges. Empty ranges
/// are omitted, except that a zero-length input yields a single empty range
/// so every `forall` still runs one (trivial) task.
pub fn split_ranges(len: usize, ntasks: usize) -> Vec<Range<usize>> {
    let ntasks = ntasks.max(1);
    if len == 0 {
        #[allow(clippy::single_range_in_vec_init)] // one empty task, not a range expansion
        return vec![0..0];
    }
    let n = ntasks.min(len);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for t in 0..n {
        let sz = base + usize::from(t < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn split_ranges_covers_exactly() {
        for len in [0usize, 1, 2, 7, 24, 1000] {
            for t in [1usize, 2, 3, 24, 1000] {
                let rs = split_ranges(len, t);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} t={t}");
                // contiguous and ordered
                let mut next = rs[0].start;
                for r in &rs {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                // balanced within 1
                if len > 0 {
                    let min = rs.iter().map(|r| r.len()).min().unwrap();
                    let max = rs.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn for_each_task_returns_in_task_order() {
        for real in [1, 2, 4] {
            let ctx = ExecCtx::new(8, real);
            let out = ctx.for_each_task("t", 8, |t, _| t * 10);
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        }
    }

    #[test]
    fn parallel_for_sums_correctly() {
        let data: Vec<u64> = (0..10_000).collect();
        for threads in [1, 3, 8, 32] {
            let ctx = ExecCtx::new(threads, 2);
            let partials = ctx.parallel_for("sum", data.len(), |r, c| {
                c.elems += r.len() as u64;
                data[r].iter().sum::<u64>()
            });
            let total: u64 = partials.into_iter().sum();
            assert_eq!(total, 10_000 * 9_999 / 2);
            let prof = ctx.take_profile();
            assert_eq!(prof.phase("sum").elems, 10_000);
            assert_eq!(prof.phase("sum").regions, 1);
        }
    }

    #[test]
    fn tasks_counter_matches_logical_threads() {
        let ctx = ExecCtx::simulated(24);
        ctx.parallel_for("p", 1000, |_, _| ());
        assert_eq!(ctx.take_profile().phase("p").tasks, 24);
    }

    #[test]
    fn real_parallel_execution_actually_runs_all_tasks() {
        let hits = AtomicU64::new(0);
        let ctx = ExecCtx::new(16, 2);
        ctx.for_each_task("t", 16, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn record_accumulates_across_calls() {
        let ctx = ExecCtx::serial();
        ctx.record("x", |c| c.elems += 5);
        ctx.record("x", |c| c.elems += 7);
        assert_eq!(ctx.profile().phase("x").elems, 12);
    }

    #[test]
    fn take_profile_resets() {
        let ctx = ExecCtx::serial();
        ctx.record("x", |c| c.elems += 1);
        let _ = ctx.take_profile();
        assert_eq!(ctx.take_profile().phase("x").elems, 0);
    }

    #[test]
    fn zero_length_parallel_for_runs_one_empty_task() {
        let ctx = ExecCtx::with_threads(4);
        let out = ctx.parallel_for("z", 0, |r, _| r.len());
        assert_eq!(out, vec![0]);
    }
}
