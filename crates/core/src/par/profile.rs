//! Phase-structured profiles.

use super::Counters;

/// A profile: named phases, each with accumulated [`Counters`].
///
/// The paper's figures break operations into components — SpMSpV into
/// `SPA / Sorting / Output` (Fig 7) and `Gather / Local Multiply / Scatter`
/// (Figs 8–9) — so the instrumentation is phase-structured from the start.
/// Phases appear in first-recorded order, which the figure harness relies on
/// for stable column ordering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    phases: Vec<(String, Counters)>,
}

impl Profile {
    /// Counters for `phase`, creating the phase if needed.
    pub fn counters_mut(&mut self, phase: &str) -> &mut Counters {
        if let Some(pos) = self.phases.iter().position(|(n, _)| n == phase) {
            &mut self.phases[pos].1
        } else {
            self.phases.push((phase.to_string(), Counters::default()));
            &mut self.phases.last_mut().unwrap().1
        }
    }

    /// Counters recorded for `phase` (zero if the phase never ran).
    pub fn phase(&self, phase: &str) -> Counters {
        self.phases.iter().find(|(n, _)| n == phase).map(|(_, c)| *c).unwrap_or_default()
    }

    /// Phase names in first-recorded order.
    pub fn phase_names(&self) -> Vec<&str> {
        self.phases.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Iterate `(name, counters)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Counters)> {
        self.phases.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Sum of all phases.
    pub fn total(&self) -> Counters {
        let mut t = Counters::default();
        for (_, c) in &self.phases {
            t.merge(c);
        }
        t
    }

    /// Merge another profile phase-by-phase.
    pub fn merge(&mut self, other: &Profile) {
        for (name, c) in other.iter() {
            self.counters_mut(name).merge(c);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|(_, c)| c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let mut p = Profile::default();
        p.counters_mut("spa").elems += 10;
        p.counters_mut("sort").sort_elems += 100;
        p.counters_mut("spa").elems += 5;
        assert_eq!(p.phase("spa").elems, 15);
        assert_eq!(p.phase("sort").sort_elems, 100);
        assert_eq!(p.phase("missing"), Counters::default());
    }

    #[test]
    fn phase_order_is_first_recorded() {
        let mut p = Profile::default();
        p.counters_mut("gather");
        p.counters_mut("local");
        p.counters_mut("scatter");
        p.counters_mut("gather");
        assert_eq!(p.phase_names(), vec!["gather", "local", "scatter"]);
    }

    #[test]
    fn total_sums_phases() {
        let mut p = Profile::default();
        p.counters_mut("a").elems = 3;
        p.counters_mut("b").elems = 4;
        assert_eq!(p.total().elems, 7);
    }

    #[test]
    fn merge_profiles() {
        let mut a = Profile::default();
        a.counters_mut("x").flops = 1;
        let mut b = Profile::default();
        b.counters_mut("x").flops = 2;
        b.counters_mut("y").atomics = 9;
        a.merge(&b);
        assert_eq!(a.phase("x").flops, 3);
        assert_eq!(a.phase("y").atomics, 9);
    }
}
