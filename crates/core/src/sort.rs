//! Instrumented sorting.
//!
//! Shared-memory SpMSpV spends most of its time sorting the SPA's collected
//! indices — "sorting is the most expensive step" (Fig 7) — and the paper
//! notes that "a less expensive integer sorting algorithm (e.g., radix
//! sort) is expected to reduce the sorting cost", citing the authors' prior
//! work \[9\]. This module provides both:
//!
//! * [`parallel_merge_sort`] — the paper's algorithm: chunk-local
//!   natural-runs merge sorts, then parallel pairwise run merging. Work:
//!   up to `n·⌈log₂ n⌉` element moves on random input, `O(n)` on
//!   nearly-sorted input (the adaptivity Chapel's sparse-domain bulk add
//!   shows), all counted into `Counters::sort_elems`.
//! * [`radix_sort`] — LSD radix sort on integer keys, `n·⌈bits/11⌉` moves.
//!
//! The `ablations` bench compares the two, reproducing the paper's
//! prediction.

use crate::par::{split_ranges, Counters, ExecCtx};

/// Which sorting algorithm an operation should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortAlgo {
    /// Parallel merge sort (Chapel's library sort, the paper's default).
    #[default]
    Merge,
    /// LSD radix sort on integer keys (the paper's suggested improvement).
    Radix,
}

/// Sort `data` ascending with a parallel merge sort, charging every element
/// move to `counters.sort_elems`.
pub fn parallel_merge_sort<T: Copy + Ord + Send + Sync + 'static>(
    data: &mut [T],
    ctx: &ExecCtx,
    phase: &str,
) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Phase 1: sort `t` contiguous chunks independently.
    let chunks = split_ranges(n, ctx.threads());
    let bounds: Vec<usize> = {
        let mut b: Vec<usize> = chunks.iter().map(|r| r.start).collect();
        b.push(n);
        b
    };
    {
        // Split the buffer into disjoint chunk slices so tasks can sort
        // them concurrently without aliasing.
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(chunks.len());
        let mut rest: &mut [T] = data;
        for r in &chunks {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
            slices.push(head);
            rest = tail;
        }
        let slices: Vec<parking_lot::Mutex<&mut [T]>> =
            slices.into_iter().map(parking_lot::Mutex::new).collect();
        ctx.for_each_task(phase, slices.len(), |t, c| {
            let mut guard = slices[t].lock();
            let mut buf = ctx.ws_vec::<T>();
            natural_run_merge_sort(&mut guard, &mut buf, c);
        });
    }
    // Phase 2: merge runs pairwise until one remains. Each round's merges
    // touch disjoint `[s1..e2)` windows, so they run concurrently.
    let mut runs: Vec<(usize, usize)> =
        bounds.windows(2).map(|w| (w[0], w[1])).filter(|(a, b)| a < b).collect();
    while runs.len() > 1 {
        let mut pairs: Vec<(usize, usize, usize)> = Vec::with_capacity(runs.len() / 2);
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < runs.len() {
            let (s1, e1) = runs[i];
            let (s2, e2) = runs[i + 1];
            debug_assert_eq!(e1, s2);
            pairs.push((s1, e1, e2));
            next.push((s1, e2));
            i += 2;
        }
        if i < runs.len() {
            next.push(runs[i]);
        }
        merge_pairs_parallel(data, &pairs, ctx, phase);
        runs = next;
    }
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
}

/// Merge each `(s, m, e)` pair of adjacent runs in `data`, concurrently.
///
/// The windows are disjoint, so the buffer splits into one `&mut` slice
/// per pair. Counters accumulate per pair and are recorded in pair order,
/// so `sort_elems` accounting is identical to the serial left-to-right
/// sweep this replaces. Deliberately *not* [`ExecCtx::for_each_task`]:
/// that would add priced region/task bookkeeping the serial loop never
/// paid.
fn merge_pairs_parallel<T: Copy + Ord + Send + Sync + 'static>(
    data: &mut [T],
    pairs: &[(usize, usize, usize)],
    ctx: &ExecCtx,
    phase: &str,
) {
    if pairs.is_empty() {
        return;
    }
    let nworkers = ctx.real_threads().min(pairs.len());
    let mut counters: Vec<Counters> = vec![Counters::default(); pairs.len()];
    if nworkers <= 1 {
        let mut buf = ctx.ws_vec::<T>();
        for (k, &(s, m, e)) in pairs.iter().enumerate() {
            merge_adjacent(&mut data[s..e], 0, m - s, e - s, &mut buf, &mut counters[k]);
        }
    } else {
        // A hand-off cell: each worker takes its pair's window + counter
        // exactly once, so no two workers ever hold the same slice.
        type MergeCell<'a, T> = parking_lot::Mutex<Option<(&'a mut [T], &'a mut Counters)>>;
        // Carve one disjoint window per pair out of the buffer.
        let mut windows: Vec<&mut [T]> = Vec::with_capacity(pairs.len());
        let mut rest: &mut [T] = data;
        let mut offset = 0usize;
        for &(s, _, e) in pairs {
            let (_, tail) = std::mem::take(&mut rest).split_at_mut(s - offset);
            let (window, tail) = tail.split_at_mut(e - s);
            windows.push(window);
            rest = tail;
            offset = e;
        }
        let cells: Vec<MergeCell<'_, T>> = windows
            .into_iter()
            .zip(counters.iter_mut())
            .map(|pair| parking_lot::Mutex::new(Some(pair)))
            .collect();
        crossbeam::thread::scope(|scope| {
            for w in 0..nworkers {
                let cells = &cells;
                scope.spawn(move |_| {
                    let mut buf = ctx.ws_vec::<T>();
                    let mut k = w;
                    while k < cells.len() {
                        let (window, c) = cells[k].lock().take().expect("pair merged exactly once");
                        let (s, m, e) = pairs[k];
                        merge_adjacent(window, 0, m - s, e - s, &mut buf, c);
                        k += nworkers;
                    }
                });
            }
        })
        .expect("merge worker panicked");
    }
    for c in &counters {
        ctx.record(phase, |pc| pc.merge(c));
    }
}

/// Serial natural-runs merge sort counting element moves.
///
/// Pre-existing ascending runs are detected first (one scan, charged as
/// `n` sort units) and then merged pairwise, so nearly-sorted input costs
/// `O(n)` instead of `n·log n` — matching the adaptive behaviour of
/// Chapel's sparse-domain bulk add (`mySparseBlock += keepInd`), whose
/// input is already ordered when the compaction ran in task order. Random
/// input still pays the full `n·log(runs)` the paper's Fig 7 shows
/// dominating SpMSpV.
fn natural_run_merge_sort<T: Copy + Ord>(data: &mut [T], buf: &mut Vec<T>, c: &mut Counters) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Detect maximal ascending runs.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..n {
        if data[i - 1] > data[i] {
            runs.push((start, i));
            start = i;
        }
    }
    runs.push((start, n));
    c.sort_elems += n as u64; // the detection scan
                              // Merge runs pairwise until one remains.
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < runs.len() {
            let (s1, e1) = runs[i];
            let (_, e2) = runs[i + 1];
            merge_adjacent(data, s1, e1, e2, buf, c);
            next.push((s1, e2));
            i += 2;
        }
        if i < runs.len() {
            next.push(runs[i]);
        }
        runs = next;
    }
}

/// Merge the adjacent sorted runs `data[s..m]` and `data[m..e]`, with a
/// zero-move fast path when they are already ordered.
fn merge_adjacent<T: Copy + Ord>(
    data: &mut [T],
    s: usize,
    m: usize,
    e: usize,
    buf: &mut Vec<T>,
    c: &mut Counters,
) {
    if m == e || m == s || data[m - 1] <= data[m] {
        return; // already in order
    }
    merge_in_place(data, s, m, e, buf, c);
}

/// Merge the two adjacent sorted runs `data[s..m]` and `data[m..e]`.
fn merge_in_place<T: Copy + Ord>(
    data: &mut [T],
    s: usize,
    m: usize,
    e: usize,
    buf: &mut Vec<T>,
    c: &mut Counters,
) {
    buf.clear();
    buf.extend_from_slice(&data[s..m]);
    c.sort_elems += (m - s) as u64;
    let (mut i, mut j, mut k) = (0usize, m, s);
    while i < buf.len() && j < e {
        if buf[i] <= data[j] {
            data[k] = buf[i];
            i += 1;
        } else {
            data[k] = data[j];
            j += 1;
        }
        k += 1;
        c.sort_elems += 1;
    }
    while i < buf.len() {
        data[k] = buf[i];
        i += 1;
        k += 1;
        c.sort_elems += 1;
    }
    // Tail of the right run is already in place.
}

/// LSD radix sort (11-bit digits) for `usize` keys, charging
/// `n` moves per pass to `counters.sort_elems`. Histogram construction is
/// parallelized across the context's logical threads.
pub fn radix_sort(data: &mut [usize], ctx: &ExecCtx, phase: &str) {
    const BITS: usize = 11;
    let n = data.len();
    if n <= 1 {
        return;
    }
    let max = *data.iter().max().unwrap();
    let passes = if max == 0 {
        1
    } else {
        (usize::BITS as usize - max.leading_zeros() as usize).div_ceil(BITS)
    };
    let mut buf = ctx.ws_filled_vec::<usize>(n, 0);
    let mut src_is_data = true;
    for pass in 0..passes {
        let shift = pass * BITS;
        if src_is_data {
            radix_pass(data, &mut buf, shift, ctx, phase);
        } else {
            radix_pass(&buf, data, shift, ctx, phase);
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
        ctx.record(phase, |c| c.sort_elems += n as u64);
    }
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
}

/// One stable LSD pass: scatter `src` into `dst` by the digit at `shift`.
fn radix_pass(src: &[usize], dst: &mut [usize], shift: usize, ctx: &ExecCtx, phase: &str) {
    const BITS: usize = 11;
    const BUCKETS: usize = 1 << BITS;
    let n = src.len();
    // Parallel histogram.
    let histograms = ctx.parallel_for(phase, n, |r, c| {
        let mut h = ctx.ws_filled_vec::<usize>(BUCKETS, 0);
        for &x in &src[r.clone()] {
            h[(x >> shift) & (BUCKETS - 1)] += 1;
        }
        c.elems += r.len() as u64;
        h
    });
    let mut offsets = ctx.ws_filled_vec::<usize>(BUCKETS, 0);
    let mut total = 0;
    for (b, offset) in offsets.iter_mut().enumerate() {
        let count: usize = histograms.iter().map(|h| h[b]).sum();
        *offset = total;
        total += count;
    }
    // Stable scatter (serial: the scatter order defines stability).
    let mut c = Counters::default();
    for &x in src {
        let b = (x >> shift) & (BUCKETS - 1);
        dst[offsets[b]] = x;
        offsets[b] += 1;
    }
    c.sort_elems += n as u64;
    ctx.record(phase, |pc| pc.merge(&c));
}

/// Dispatch on [`SortAlgo`].
pub fn sort_indices(data: &mut [usize], algo: SortAlgo, ctx: &ExecCtx, phase: &str) {
    match algo {
        SortAlgo::Merge => parallel_merge_sort(data, ctx, phase),
        SortAlgo::Radix => radix_sort(data, ctx, phase),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: usize, seed: u64) -> Vec<usize> {
        // Simple LCG shuffle to avoid pulling rand into unit tests.
        let mut v: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn merge_sort_sorts() {
        for threads in [1, 2, 4, 7] {
            let ctx = ExecCtx::new(threads, 2);
            let mut v = shuffled(10_000, 42);
            parallel_merge_sort(&mut v, &ctx, "sort");
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            let prof = ctx.take_profile();
            // n log n-ish work was counted
            assert!(prof.phase("sort").sort_elems >= 10_000);
        }
    }

    #[test]
    fn phase2_parallel_merges_match_serial_output_and_accounting() {
        // Same simulated chunking (6 tasks), different *real* worker
        // counts: the pairwise merges must produce the same array and
        // charge exactly the same counters whether they ran serially or
        // on disjoint windows in parallel.
        let reference = {
            let ctx = ExecCtx::new(6, 1);
            let mut v = shuffled(20_000, 9);
            parallel_merge_sort(&mut v, &ctx, "s");
            (v, ctx.take_profile().phase("s"))
        };
        for real_threads in [2, 4, 8] {
            let ctx = ExecCtx::new(6, real_threads);
            let mut v = shuffled(20_000, 9);
            parallel_merge_sort(&mut v, &ctx, "s");
            assert_eq!(v, reference.0, "real_threads={real_threads}");
            assert_eq!(ctx.take_profile().phase("s"), reference.1, "real_threads={real_threads}");
        }
    }

    #[test]
    fn merge_sort_with_duplicates_and_small_inputs() {
        let ctx = ExecCtx::with_threads(4);
        for mut v in [vec![], vec![3usize], vec![2, 1], vec![5, 5, 5, 1, 1]] {
            let mut expect = v.clone();
            expect.sort_unstable();
            parallel_merge_sort(&mut v, &ctx, "s");
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn radix_sort_sorts() {
        for threads in [1, 3] {
            let ctx = ExecCtx::new(threads, 2);
            let mut v = shuffled(50_000, 7);
            radix_sort(&mut v, &ctx, "sort");
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn radix_handles_zero_and_large_keys() {
        let ctx = ExecCtx::serial();
        let mut v = vec![0usize, usize::MAX, 1, usize::MAX - 1, 0];
        radix_sort(&mut v, &ctx, "s");
        assert_eq!(v, vec![0, 0, 1, usize::MAX - 1, usize::MAX]);
    }

    #[test]
    fn radix_counts_fewer_moves_than_merge_for_small_keys() {
        let n = 1 << 15;
        let ctx1 = ExecCtx::serial();
        let mut a = shuffled(n, 3);
        parallel_merge_sort(&mut a, &ctx1, "s");
        let merge_work = ctx1.take_profile().phase("s").sort_elems;

        let ctx2 = ExecCtx::serial();
        let mut b = shuffled(n, 3);
        radix_sort(&mut b, &ctx2, "s");
        let radix_work = ctx2.take_profile().phase("s").sort_elems;
        assert!(
            radix_work < merge_work,
            "radix {radix_work} should beat merge {merge_work} on 15-bit keys"
        );
    }

    #[test]
    fn sort_indices_dispatch() {
        let ctx = ExecCtx::serial();
        let mut a = vec![3usize, 1, 2];
        sort_indices(&mut a, SortAlgo::Merge, &ctx, "s");
        assert_eq!(a, vec![1, 2, 3]);
        let mut b = vec![3usize, 1, 2];
        sort_indices(&mut b, SortAlgo::Radix, &ctx, "s");
        assert_eq!(b, vec![1, 2, 3]);
    }
}
