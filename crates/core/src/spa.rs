//! Sparse accumulators (SPA).
//!
//! "The nonzeros in those rows are merged using the SPA, which is a data
//! structure that consists of a dense vector of values of the same type as
//! the output y, a dense vector of Booleans (`isthere`) for marking whether
//! that entry in y has been initialized, and a list (or vector) of indices
//! (`nzinds`) for which `isthere` has been set to true." (§III-D, Fig 6)
//!
//! Three variants:
//! * [`DenseSpa`] — the textbook serial SPA, accumulating with an arbitrary
//!   monoid. Used by the semiring SpMSpV and by SpGEMM.
//! * [`AtomicSpa`] — the paper's parallel SPA (Listing 7): `isthere` is an
//!   array of atomics claimed with compare-and-swap, `nzinds` is compacted
//!   through an atomic fetch-add cursor, and only the claiming task writes
//!   the value slot ("only keeping the first index"). Values are `usize`
//!   because the paper stores "the row index as value" (line 25) — the
//!   BFS parent.
//! * [`BucketSpa`] — the sort-*free* merge the paper suggests as the fix
//!   for the dominant sort step of Fig 7 (and that CombBLAS 2.0 ships):
//!   the collected indices are scattered into per-task contiguous
//!   column-range buckets, and each bucket is emitted in index order by a
//!   scan of its (small) range. Sorted output, zero comparison sorts.
//!
//! All three reset in O(1) (or O(live data)) rather than O(capacity): the
//! occupancy arrays are *generation-stamped* — a slot is occupied iff its
//! stamp equals the SPA's current generation, so [`DenseSpa::reset`] /
//! [`AtomicSpa::reset`] just bump the generation and never touch the
//! dense arrays. That is what makes the [`crate::workspace`] pool's
//! checkout cheap: a pooled SPA is handed back warm, with its backing
//! arrays intact and every slot logically empty.

use crate::algebra::Monoid;
use crate::par::Counters;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Serial sparse accumulator over domain `0..capacity` with monoid
/// accumulation.
#[derive(Debug)]
pub struct DenseSpa<T> {
    values: Vec<T>,
    /// Generation stamp per slot: occupied ⇔ `stamp[i] == generation`.
    stamp: Vec<u64>,
    generation: u64,
    nzinds: Vec<usize>,
}

impl<T: Copy> DenseSpa<T> {
    /// A SPA for outputs of dimension `capacity`; `fill` initializes the
    /// dense value array (any value works — unoccupied slots are never
    /// read).
    pub fn new(capacity: usize, fill: T) -> Self {
        DenseSpa {
            values: vec![fill; capacity],
            stamp: vec![0; capacity],
            generation: 1,
            nzinds: Vec::new(),
        }
    }

    /// The backing domain size (≥ the capacity most recently requested
    /// through [`DenseSpa::ensure`] — the pool never shrinks backing).
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of occupied slots.
    pub fn nnz(&self) -> usize {
        self.nzinds.len()
    }

    /// Logically empty every slot in O(1) by bumping the generation; the
    /// dense arrays are untouched (their stale contents are unobservable
    /// because every read is gated on the stamp).
    pub fn reset(&mut self) {
        self.generation += 1;
        self.nzinds.clear();
    }

    /// Make the SPA usable for domain `0..capacity`, growing the backing
    /// arrays when the request exceeds them (a pool capacity miss), and
    /// reset it. Returns `true` when the backing had to grow.
    pub fn ensure(&mut self, capacity: usize, fill: T) -> bool {
        let grew = capacity > self.values.len();
        if grew {
            self.values.resize(capacity, fill);
            self.stamp.resize(capacity, 0);
        }
        self.reset();
        grew
    }

    #[inline]
    fn occupied(&self, index: usize) -> bool {
        self.stamp[index] == self.generation
    }

    /// Accumulate `value` into slot `index` with `monoid`, charging the SPA
    /// touches to `counters`.
    pub fn accumulate(
        &mut self,
        index: usize,
        value: T,
        monoid: &impl Monoid<T>,
        counters: &mut Counters,
    ) {
        counters.spa_touches += 1;
        if self.occupied(index) {
            self.values[index] = monoid.combine(self.values[index], value);
        } else {
            self.stamp[index] = self.generation;
            self.values[index] = value;
            self.nzinds.push(index);
        }
    }

    /// Insert only if the slot is empty (first-visitor-wins, the paper's
    /// semantics). Returns whether the insert happened.
    pub fn insert_first(&mut self, index: usize, value: T, counters: &mut Counters) -> bool {
        counters.spa_touches += 1;
        if self.occupied(index) {
            false
        } else {
            self.stamp[index] = self.generation;
            self.values[index] = value;
            self.nzinds.push(index);
            true
        }
    }

    /// Read an occupied slot.
    pub fn get(&self, index: usize) -> Option<T> {
        if self.occupied(index) {
            Some(self.values[index])
        } else {
            None
        }
    }

    /// The collected indices, in *insertion* order (unsorted — the caller
    /// sorts, which is exactly the step Fig 7 shows dominating).
    pub fn nzinds(&self) -> &[usize] {
        &self.nzinds
    }

    /// Drain into `(indices_in_insertion_order, values_in_that_order)` and
    /// reset the SPA for reuse. The per-entry value reads are charged as
    /// before; the reset itself is the O(1) generation bump.
    pub fn drain(&mut self, counters: &mut Counters) -> (Vec<usize>, Vec<T>) {
        let inds = std::mem::take(&mut self.nzinds);
        let mut vals = Vec::with_capacity(inds.len());
        for &i in &inds {
            vals.push(self.values[i]);
        }
        counters.spa_touches += inds.len() as u64;
        self.generation += 1;
        (inds, vals)
    }
}

/// The paper's parallel SPA: atomic `isthere` flags, an atomic compaction
/// cursor, and value slots written only by the winning claimer. The
/// `isthere` flags are generation stamps so a reused SPA resets in O(1).
pub struct AtomicSpa {
    /// `isthere` in Listing 7: claimed ⇔ `stamp == generation`.
    isthere: Vec<AtomicU64>,
    /// `localy` in Listing 7: value slot, written only by the claim winner.
    values: Vec<AtomicUsize>,
    nzinds: Vec<AtomicUsize>,
    cursor: AtomicUsize,
    generation: u64,
}

impl AtomicSpa {
    /// A SPA for outputs of dimension `capacity`, with room for up to
    /// `capacity` collected indices (the listing allocates `nzinds` of
    /// length `ncol`).
    pub fn new(capacity: usize) -> Self {
        AtomicSpa {
            isthere: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            values: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            nzinds: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            cursor: AtomicUsize::new(0),
            generation: 1,
        }
    }

    /// The backing domain size.
    pub fn capacity(&self) -> usize {
        self.isthere.len()
    }

    /// Logically release every claim in O(1) by bumping the generation and
    /// rewinding the compaction cursor.
    pub fn reset(&mut self) {
        self.generation += 1;
        self.cursor.store(0, Ordering::Relaxed);
    }

    /// Make the SPA usable for domain `0..capacity` (growing the atomic
    /// arrays on a pool capacity miss) and reset it. Returns `true` when
    /// the backing had to grow.
    pub fn ensure(&mut self, capacity: usize) -> bool {
        let grew = capacity > self.isthere.len();
        if grew {
            let extra = capacity - self.isthere.len();
            self.isthere.extend((0..extra).map(|_| AtomicU64::new(0)));
            self.values.extend((0..extra).map(|_| AtomicUsize::new(0)));
            self.nzinds.extend((0..extra).map(|_| AtomicUsize::new(0)));
        }
        self.reset();
        grew
    }

    /// Try to claim slot `index` with `value`; the first claimer wins
    /// (Listing 7 lines 21–26: test, set, record). Returns `true` when this
    /// call was the winner. Charges one atomic read, and on a win the CAS,
    /// the fetch-add and the stores, to `counters`.
    pub fn claim_first(&self, index: usize, value: usize, counters: &mut Counters) -> bool {
        counters.atomics += 1;
        let seen = self.isthere[index].load(Ordering::Relaxed);
        if seen == self.generation {
            return false;
        }
        counters.atomics += 1;
        if self.isthere[index]
            .compare_exchange(seen, self.generation, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.values[index].store(value, Ordering::Relaxed);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
        counters.atomics += 1;
        self.nzinds[slot].store(index, Ordering::Relaxed);
        counters.spa_touches += 2;
        true
    }

    /// Number of claimed slots so far.
    pub fn nnz(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Read the value stored for a claimed index.
    pub fn value(&self, index: usize) -> usize {
        self.values[index].load(Ordering::Acquire)
    }

    /// Whether `index` has been claimed.
    pub fn contains(&self, index: usize) -> bool {
        self.isthere[index].load(Ordering::Acquire) == self.generation
    }

    /// Snapshot the collected indices (unsorted) — Listing 7's
    /// `nzinds.remove(k.read(), ncol-k.read())` truncation.
    pub fn collected(&self) -> Vec<usize> {
        let n = self.nnz();
        self.nzinds[..n].iter().map(|a| a.load(Ordering::Acquire)).collect()
    }
}

/// Bucketed index merger: the sort-free alternative to the global
/// comparison sort of the collected `nzinds`.
///
/// The output domain `0..capacity` is split into `nbuckets` contiguous
/// column ranges (one per task, the same block split `parallel_for` uses).
/// [`BucketSpa::scatter`] drops each collected index into its bucket — an
/// `O(nnz)` random-access pass — and [`BucketSpa::collect_bucket`] emits a
/// bucket's indices in ascending order by scanning the bucket's column
/// range against the SPA's occupancy predicate. Concatenating the buckets
/// in order yields a globally sorted index list without a single
/// comparison sort (`sort_elems` stays zero); the price is the `O(range)`
/// scan of every *non-empty* bucket, which is the classic bucket/counting
/// trade the paper's suggested remedy makes.
#[derive(Debug)]
pub struct BucketSpa {
    ranges: Vec<Range<usize>>,
    buckets: Vec<Vec<usize>>,
    /// The `(capacity, nbuckets)` the ranges were computed for, so a
    /// same-shape [`BucketSpa::reset`] skips recomputing them.
    shape: (usize, usize),
}

impl BucketSpa {
    /// Buckets covering `0..capacity` in `nbuckets` near-equal contiguous
    /// ranges (fewer when `capacity < nbuckets`; one empty range when the
    /// domain is empty).
    pub fn new(capacity: usize, nbuckets: usize) -> Self {
        let ranges = crate::par::split_ranges(capacity, nbuckets);
        let buckets = vec![Vec::new(); ranges.len()];
        BucketSpa { ranges, buckets, shape: (capacity, nbuckets) }
    }

    /// Re-shape for `(capacity, nbuckets)` and clear every bucket, keeping
    /// the buckets' allocations. A same-shape reset (the steady state of
    /// an iterative algorithm on one context) allocates nothing.
    pub fn reset(&mut self, capacity: usize, nbuckets: usize) {
        if self.shape != (capacity, nbuckets) {
            self.ranges = crate::par::split_ranges(capacity, nbuckets);
            // Keep existing bucket allocations; only adjust the count.
            self.buckets.resize_with(self.ranges.len(), Vec::new);
            self.buckets.truncate(self.ranges.len());
            self.shape = (capacity, nbuckets);
        }
        for b in &mut self.buckets {
            b.clear();
        }
    }

    /// Number of buckets actually allocated.
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// The column range bucket `b` covers.
    pub fn range(&self, b: usize) -> Range<usize> {
        self.ranges[b].clone()
    }

    /// Which bucket owns `index` — inverts the block-split floor
    /// arithmetic instead of binary searching.
    pub fn bucket_of(&self, index: usize) -> usize {
        let len = self.ranges.last().map_or(0, |r| r.end);
        let n = self.ranges.len();
        let base = len / n;
        if base == 0 {
            return 0; // empty domain: the single 0..0 bucket
        }
        let extra = len % n;
        let wide = extra * (base + 1);
        if index < wide {
            index / (base + 1)
        } else {
            extra + (index - wide) / base
        }
    }

    /// Scatter the collected (unsorted, duplicate-free) indices into their
    /// buckets: one streamed read plus one random bucket append per index.
    pub fn scatter(&mut self, indices: &[usize], counters: &mut Counters) {
        for &i in indices {
            let b = self.bucket_of(i);
            self.buckets[b].push(i);
        }
        counters.elems += indices.len() as u64;
        counters.rand_access += indices.len() as u64;
    }

    /// Emit bucket `b`'s indices in ascending order by scanning its column
    /// range against the SPA occupancy predicate `is_set`. Empty buckets
    /// are free; a non-empty bucket pays its full range scan (`elems`).
    pub fn collect_bucket(
        &self,
        b: usize,
        is_set: impl Fn(usize) -> bool,
        counters: &mut Counters,
    ) -> Vec<usize> {
        let pending = &self.buckets[b];
        if pending.is_empty() {
            return Vec::new();
        }
        let range = self.ranges[b].clone();
        counters.elems += range.len() as u64;
        counters.spa_touches += pending.len() as u64;
        let mut out = Vec::with_capacity(pending.len());
        for i in range {
            if is_set(i) {
                out.push(i);
            }
        }
        debug_assert_eq!(out.len(), pending.len(), "occupancy must match the scattered indices");
        out
    }

    /// Total scattered indices currently held.
    pub fn nnz(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Plus;

    #[test]
    fn dense_spa_accumulates_with_monoid() {
        let mut spa = DenseSpa::new(8, 0.0f64);
        let mut c = Counters::default();
        spa.accumulate(3, 1.0, &Plus, &mut c);
        spa.accumulate(5, 2.0, &Plus, &mut c);
        spa.accumulate(3, 4.0, &Plus, &mut c);
        assert_eq!(spa.nnz(), 2);
        assert_eq!(spa.get(3), Some(5.0));
        assert_eq!(spa.get(0), None);
        assert_eq!(c.spa_touches, 3);
        let (inds, vals) = spa.drain(&mut c);
        assert_eq!(inds, vec![3, 5]);
        assert_eq!(vals, vec![5.0, 2.0]);
        // reusable after drain
        assert_eq!(spa.nnz(), 0);
        assert_eq!(spa.get(3), None);
    }

    #[test]
    fn dense_spa_first_visitor() {
        let mut spa = DenseSpa::new(4, 0usize);
        let mut c = Counters::default();
        assert!(spa.insert_first(2, 10, &mut c));
        assert!(!spa.insert_first(2, 20, &mut c));
        assert_eq!(spa.get(2), Some(10));
    }

    /// The generation-based reset must charge exactly the same SPA-touch
    /// counters as a freshly allocated SPA for the same operation
    /// sequence, and must never leak values across generations.
    #[test]
    fn reused_dense_spa_counters_match_fresh() {
        let run = |spa: &mut DenseSpa<f64>| -> (Counters, Vec<usize>, Vec<f64>) {
            let mut c = Counters::default();
            spa.accumulate(1, 2.0, &Plus, &mut c);
            spa.accumulate(6, 3.0, &Plus, &mut c);
            spa.accumulate(1, 5.0, &Plus, &mut c);
            let (i, v) = spa.drain(&mut c);
            (c, i, v)
        };
        let mut fresh = DenseSpa::new(8, 0.0f64);
        let expect = run(&mut fresh);

        let mut reused = DenseSpa::new(8, 0.0f64);
        let mut c = Counters::default();
        reused.accumulate(1, 99.0, &Plus, &mut c); // stale garbage from a prior op
        reused.accumulate(7, 42.0, &Plus, &mut c);
        reused.reset();
        assert_eq!(reused.get(1), None, "reset must hide stale slots");
        assert_eq!(reused.nnz(), 0);
        let got = run(&mut reused);
        assert_eq!(got, expect, "reuse must be observationally identical");
    }

    #[test]
    fn dense_spa_ensure_grows_and_clears() {
        let mut spa = DenseSpa::new(4, 0i64);
        let mut c = Counters::default();
        spa.accumulate(3, 7, &Plus, &mut c);
        assert!(!spa.ensure(4, 0), "same capacity is not a miss");
        assert_eq!(spa.get(3), None);
        assert!(spa.ensure(10, 0), "growth is a miss");
        assert_eq!(spa.capacity(), 10);
        spa.accumulate(9, 1, &Plus, &mut c);
        assert_eq!(spa.get(9), Some(1));
        assert_eq!(spa.get(3), None);
    }

    #[test]
    fn atomic_spa_single_winner_per_slot() {
        let spa = AtomicSpa::new(16);
        let mut c = Counters::default();
        assert!(spa.claim_first(7, 100, &mut c));
        assert!(!spa.claim_first(7, 200, &mut c));
        assert_eq!(spa.value(7), 100);
        assert!(spa.contains(7));
        assert!(!spa.contains(8));
        assert_eq!(spa.collected(), vec![7]);
    }

    #[test]
    fn atomic_spa_reset_releases_claims_in_o1() {
        let mut spa = AtomicSpa::new(8);
        let mut c = Counters::default();
        assert!(spa.claim_first(2, 11, &mut c));
        assert!(spa.claim_first(5, 12, &mut c));
        spa.reset();
        assert_eq!(spa.nnz(), 0);
        assert!(!spa.contains(2), "stale claims must be invisible");
        // identical counter charges post-reset as on a fresh SPA
        let mut c2 = Counters::default();
        assert!(spa.claim_first(2, 21, &mut c2));
        assert!(!spa.claim_first(2, 22, &mut c2));
        assert_eq!(c2.atomics, 4);
        assert_eq!(spa.value(2), 21);
        assert_eq!(spa.collected(), vec![2]);
        // growth path
        assert!(spa.ensure(20));
        assert_eq!(spa.capacity(), 20);
        assert!(!spa.contains(2));
        assert!(spa.claim_first(19, 1, &mut c2));
    }

    #[test]
    fn atomic_spa_concurrent_claims_are_exclusive() {
        use std::sync::atomic::AtomicUsize;
        let spa = AtomicSpa::new(64);
        let wins = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let spa = &spa;
                let wins = &wins;
                s.spawn(move |_| {
                    let mut c = Counters::default();
                    for i in 0..64 {
                        if spa.claim_first(i, t, &mut c) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        // Every slot claimed exactly once across all threads.
        assert_eq!(wins.load(Ordering::Relaxed), 64);
        assert_eq!(spa.nnz(), 64);
        let mut collected = spa.collected();
        collected.sort_unstable();
        assert_eq!(collected, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_of_matches_ranges() {
        for (cap, nb) in [(10usize, 3usize), (100, 8), (7, 16), (1, 1), (1000, 24)] {
            let spa = BucketSpa::new(cap, nb);
            for i in 0..cap {
                let b = spa.bucket_of(i);
                assert!(spa.range(b).contains(&i), "cap={cap} nb={nb} i={i} b={b}");
            }
        }
    }

    #[test]
    fn bucket_scatter_collect_sorts_without_comparisons() {
        let occupied = [3usize, 17, 4, 96, 55, 0, 42, 99, 18];
        let spa = {
            let mut s = BucketSpa::new(100, 4);
            let mut c = Counters::default();
            s.scatter(&occupied, &mut c);
            assert_eq!(c.rand_access, occupied.len() as u64);
            assert_eq!(c.sort_elems, 0);
            assert_eq!(s.nnz(), occupied.len());
            s
        };
        let set: std::collections::BTreeSet<usize> = occupied.iter().copied().collect();
        let mut out = Vec::new();
        let mut c = Counters::default();
        for b in 0..spa.nbuckets() {
            out.extend(spa.collect_bucket(b, |i| set.contains(&i), &mut c));
        }
        assert_eq!(out, set.into_iter().collect::<Vec<_>>());
        assert_eq!(c.sort_elems, 0);
    }

    #[test]
    fn bucket_spa_reset_reshapes_and_clears() {
        let mut spa = BucketSpa::new(100, 4);
        let mut c = Counters::default();
        spa.scatter(&[5, 80], &mut c);
        assert_eq!(spa.nnz(), 2);
        // same shape: buckets cleared, ranges identical
        spa.reset(100, 4);
        assert_eq!(spa.nnz(), 0);
        assert_eq!(spa.nbuckets(), 4);
        // new shape: ranges recomputed, bucket_of stays consistent
        spa.reset(37, 6);
        assert_eq!(spa.nbuckets(), BucketSpa::new(37, 6).nbuckets());
        for i in 0..37 {
            let b = spa.bucket_of(i);
            assert!(spa.range(b).contains(&i), "i={i} b={b}");
        }
        spa.scatter(&[36, 0], &mut c);
        assert_eq!(spa.nnz(), 2);
    }

    #[test]
    fn empty_buckets_are_free() {
        let mut spa = BucketSpa::new(1000, 10);
        let mut c = Counters::default();
        spa.scatter(&[5], &mut c); // only bucket 0 is touched
        let mut c = Counters::default();
        for b in 0..spa.nbuckets() {
            let _ = spa.collect_bucket(b, |i| i == 5, &mut c);
        }
        // only bucket 0's 100-wide range was scanned
        assert_eq!(c.elems, 100);
    }

    #[test]
    fn atomic_counters_charged() {
        let spa = AtomicSpa::new(4);
        let mut c = Counters::default();
        spa.claim_first(0, 1, &mut c); // win: load + cas + fetch_add = 3
        spa.claim_first(0, 2, &mut c); // lose at the load: 1
        assert_eq!(c.atomics, 4);
    }
}
