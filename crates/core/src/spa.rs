//! Sparse accumulators (SPA).
//!
//! "The nonzeros in those rows are merged using the SPA, which is a data
//! structure that consists of a dense vector of values of the same type as
//! the output y, a dense vector of Booleans (`isthere`) for marking whether
//! that entry in y has been initialized, and a list (or vector) of indices
//! (`nzinds`) for which `isthere` has been set to true." (§III-D, Fig 6)
//!
//! Two variants:
//! * [`DenseSpa`] — the textbook serial SPA, accumulating with an arbitrary
//!   monoid. Used by the semiring SpMSpV and by SpGEMM.
//! * [`AtomicSpa`] — the paper's parallel SPA (Listing 7): `isthere` is an
//!   array of atomics claimed with compare-and-swap, `nzinds` is compacted
//!   through an atomic fetch-add cursor, and only the claiming task writes
//!   the value slot ("only keeping the first index"). Values are `usize`
//!   because the paper stores "the row index as value" (line 25) — the
//!   BFS parent.

use crate::algebra::Monoid;
use crate::par::Counters;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Serial sparse accumulator over domain `0..capacity` with monoid
/// accumulation.
#[derive(Debug)]
pub struct DenseSpa<T> {
    values: Vec<T>,
    occupied: Vec<bool>,
    nzinds: Vec<usize>,
}

impl<T: Copy> DenseSpa<T> {
    /// A SPA for outputs of dimension `capacity`; `fill` initializes the
    /// dense value array (any value works — unoccupied slots are never
    /// read).
    pub fn new(capacity: usize, fill: T) -> Self {
        DenseSpa {
            values: vec![fill; capacity],
            occupied: vec![false; capacity],
            nzinds: Vec::new(),
        }
    }

    /// The domain size.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of occupied slots.
    pub fn nnz(&self) -> usize {
        self.nzinds.len()
    }

    /// Accumulate `value` into slot `index` with `monoid`, charging the SPA
    /// touches to `counters`.
    pub fn accumulate(
        &mut self,
        index: usize,
        value: T,
        monoid: &impl Monoid<T>,
        counters: &mut Counters,
    ) {
        counters.spa_touches += 1;
        if self.occupied[index] {
            self.values[index] = monoid.combine(self.values[index], value);
        } else {
            self.occupied[index] = true;
            self.values[index] = value;
            self.nzinds.push(index);
        }
    }

    /// Insert only if the slot is empty (first-visitor-wins, the paper's
    /// semantics). Returns whether the insert happened.
    pub fn insert_first(&mut self, index: usize, value: T, counters: &mut Counters) -> bool {
        counters.spa_touches += 1;
        if self.occupied[index] {
            false
        } else {
            self.occupied[index] = true;
            self.values[index] = value;
            self.nzinds.push(index);
            true
        }
    }

    /// Read an occupied slot.
    pub fn get(&self, index: usize) -> Option<T> {
        if self.occupied[index] {
            Some(self.values[index])
        } else {
            None
        }
    }

    /// The collected indices, in *insertion* order (unsorted — the caller
    /// sorts, which is exactly the step Fig 7 shows dominating).
    pub fn nzinds(&self) -> &[usize] {
        &self.nzinds
    }

    /// Drain into `(indices_in_insertion_order, values_in_that_order)` and
    /// reset the SPA for reuse (clearing only the occupied slots, so reuse
    /// is `O(nnz)` not `O(capacity)`).
    pub fn drain(&mut self, counters: &mut Counters) -> (Vec<usize>, Vec<T>) {
        let inds = std::mem::take(&mut self.nzinds);
        let mut vals = Vec::with_capacity(inds.len());
        for &i in &inds {
            vals.push(self.values[i]);
            self.occupied[i] = false;
        }
        counters.spa_touches += inds.len() as u64;
        (inds, vals)
    }
}

/// The paper's parallel SPA: atomic `isthere` flags, an atomic compaction
/// cursor, and value slots written only by the winning claimer.
pub struct AtomicSpa {
    isthere: Vec<AtomicBool>,
    /// `localy` in Listing 7: value slot, written only by the claim winner.
    values: Vec<AtomicUsize>,
    nzinds: Vec<AtomicUsize>,
    cursor: AtomicUsize,
}

impl AtomicSpa {
    /// A SPA for outputs of dimension `capacity`, with room for up to
    /// `capacity` collected indices (the listing allocates `nzinds` of
    /// length `ncol`).
    pub fn new(capacity: usize) -> Self {
        AtomicSpa {
            isthere: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            values: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            nzinds: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The domain size.
    pub fn capacity(&self) -> usize {
        self.isthere.len()
    }

    /// Try to claim slot `index` with `value`; the first claimer wins
    /// (Listing 7 lines 21–26: test, set, record). Returns `true` when this
    /// call was the winner. Charges one atomic read, and on a win the CAS,
    /// the fetch-add and the stores, to `counters`.
    pub fn claim_first(&self, index: usize, value: usize, counters: &mut Counters) -> bool {
        counters.atomics += 1;
        if self.isthere[index].load(Ordering::Relaxed) {
            return false;
        }
        counters.atomics += 1;
        if self.isthere[index]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.values[index].store(value, Ordering::Relaxed);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
        counters.atomics += 1;
        self.nzinds[slot].store(index, Ordering::Relaxed);
        counters.spa_touches += 2;
        true
    }

    /// Number of claimed slots so far.
    pub fn nnz(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Read the value stored for a claimed index.
    pub fn value(&self, index: usize) -> usize {
        self.values[index].load(Ordering::Acquire)
    }

    /// Whether `index` has been claimed.
    pub fn contains(&self, index: usize) -> bool {
        self.isthere[index].load(Ordering::Acquire)
    }

    /// Snapshot the collected indices (unsorted) — Listing 7's
    /// `nzinds.remove(k.read(), ncol-k.read())` truncation.
    pub fn collected(&self) -> Vec<usize> {
        let n = self.nnz();
        self.nzinds[..n].iter().map(|a| a.load(Ordering::Acquire)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Plus;

    #[test]
    fn dense_spa_accumulates_with_monoid() {
        let mut spa = DenseSpa::new(8, 0.0f64);
        let mut c = Counters::default();
        spa.accumulate(3, 1.0, &Plus, &mut c);
        spa.accumulate(5, 2.0, &Plus, &mut c);
        spa.accumulate(3, 4.0, &Plus, &mut c);
        assert_eq!(spa.nnz(), 2);
        assert_eq!(spa.get(3), Some(5.0));
        assert_eq!(spa.get(0), None);
        assert_eq!(c.spa_touches, 3);
        let (inds, vals) = spa.drain(&mut c);
        assert_eq!(inds, vec![3, 5]);
        assert_eq!(vals, vec![5.0, 2.0]);
        // reusable after drain
        assert_eq!(spa.nnz(), 0);
        assert_eq!(spa.get(3), None);
    }

    #[test]
    fn dense_spa_first_visitor() {
        let mut spa = DenseSpa::new(4, 0usize);
        let mut c = Counters::default();
        assert!(spa.insert_first(2, 10, &mut c));
        assert!(!spa.insert_first(2, 20, &mut c));
        assert_eq!(spa.get(2), Some(10));
    }

    #[test]
    fn atomic_spa_single_winner_per_slot() {
        let spa = AtomicSpa::new(16);
        let mut c = Counters::default();
        assert!(spa.claim_first(7, 100, &mut c));
        assert!(!spa.claim_first(7, 200, &mut c));
        assert_eq!(spa.value(7), 100);
        assert!(spa.contains(7));
        assert!(!spa.contains(8));
        assert_eq!(spa.collected(), vec![7]);
    }

    #[test]
    fn atomic_spa_concurrent_claims_are_exclusive() {
        use std::sync::atomic::AtomicUsize;
        let spa = AtomicSpa::new(64);
        let wins = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let spa = &spa;
                let wins = &wins;
                s.spawn(move |_| {
                    let mut c = Counters::default();
                    for i in 0..64 {
                        if spa.claim_first(i, t, &mut c) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        // Every slot claimed exactly once across all threads.
        assert_eq!(wins.load(Ordering::Relaxed), 64);
        assert_eq!(spa.nnz(), 64);
        let mut collected = spa.collected();
        collected.sort_unstable();
        assert_eq!(collected, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn atomic_counters_charged() {
        let spa = AtomicSpa::new(4);
        let mut c = Counters::default();
        spa.claim_first(0, 1, &mut c); // win: load + cas + fetch_add = 3
        spa.claim_first(0, 2, &mut c); // lose at the load: 1
        assert_eq!(c.atomics, 4);
    }
}
