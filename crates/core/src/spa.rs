//! Sparse accumulators (SPA).
//!
//! "The nonzeros in those rows are merged using the SPA, which is a data
//! structure that consists of a dense vector of values of the same type as
//! the output y, a dense vector of Booleans (`isthere`) for marking whether
//! that entry in y has been initialized, and a list (or vector) of indices
//! (`nzinds`) for which `isthere` has been set to true." (§III-D, Fig 6)
//!
//! Three variants:
//! * [`DenseSpa`] — the textbook serial SPA, accumulating with an arbitrary
//!   monoid. Used by the semiring SpMSpV and by SpGEMM.
//! * [`AtomicSpa`] — the paper's parallel SPA (Listing 7): `isthere` is an
//!   array of atomics claimed with compare-and-swap, `nzinds` is compacted
//!   through an atomic fetch-add cursor, and only the claiming task writes
//!   the value slot ("only keeping the first index"). Values are `usize`
//!   because the paper stores "the row index as value" (line 25) — the
//!   BFS parent.
//! * [`BucketSpa`] — the sort-*free* merge the paper suggests as the fix
//!   for the dominant sort step of Fig 7 (and that CombBLAS 2.0 ships):
//!   the collected indices are scattered into per-task contiguous
//!   column-range buckets, and each bucket is emitted in index order by a
//!   scan of its (small) range. Sorted output, zero comparison sorts.

use crate::algebra::Monoid;
use crate::par::Counters;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Serial sparse accumulator over domain `0..capacity` with monoid
/// accumulation.
#[derive(Debug)]
pub struct DenseSpa<T> {
    values: Vec<T>,
    occupied: Vec<bool>,
    nzinds: Vec<usize>,
}

impl<T: Copy> DenseSpa<T> {
    /// A SPA for outputs of dimension `capacity`; `fill` initializes the
    /// dense value array (any value works — unoccupied slots are never
    /// read).
    pub fn new(capacity: usize, fill: T) -> Self {
        DenseSpa {
            values: vec![fill; capacity],
            occupied: vec![false; capacity],
            nzinds: Vec::new(),
        }
    }

    /// The domain size.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of occupied slots.
    pub fn nnz(&self) -> usize {
        self.nzinds.len()
    }

    /// Accumulate `value` into slot `index` with `monoid`, charging the SPA
    /// touches to `counters`.
    pub fn accumulate(
        &mut self,
        index: usize,
        value: T,
        monoid: &impl Monoid<T>,
        counters: &mut Counters,
    ) {
        counters.spa_touches += 1;
        if self.occupied[index] {
            self.values[index] = monoid.combine(self.values[index], value);
        } else {
            self.occupied[index] = true;
            self.values[index] = value;
            self.nzinds.push(index);
        }
    }

    /// Insert only if the slot is empty (first-visitor-wins, the paper's
    /// semantics). Returns whether the insert happened.
    pub fn insert_first(&mut self, index: usize, value: T, counters: &mut Counters) -> bool {
        counters.spa_touches += 1;
        if self.occupied[index] {
            false
        } else {
            self.occupied[index] = true;
            self.values[index] = value;
            self.nzinds.push(index);
            true
        }
    }

    /// Read an occupied slot.
    pub fn get(&self, index: usize) -> Option<T> {
        if self.occupied[index] {
            Some(self.values[index])
        } else {
            None
        }
    }

    /// The collected indices, in *insertion* order (unsorted — the caller
    /// sorts, which is exactly the step Fig 7 shows dominating).
    pub fn nzinds(&self) -> &[usize] {
        &self.nzinds
    }

    /// Drain into `(indices_in_insertion_order, values_in_that_order)` and
    /// reset the SPA for reuse (clearing only the occupied slots, so reuse
    /// is `O(nnz)` not `O(capacity)`).
    pub fn drain(&mut self, counters: &mut Counters) -> (Vec<usize>, Vec<T>) {
        let inds = std::mem::take(&mut self.nzinds);
        let mut vals = Vec::with_capacity(inds.len());
        for &i in &inds {
            vals.push(self.values[i]);
            self.occupied[i] = false;
        }
        counters.spa_touches += inds.len() as u64;
        (inds, vals)
    }
}

/// The paper's parallel SPA: atomic `isthere` flags, an atomic compaction
/// cursor, and value slots written only by the winning claimer.
pub struct AtomicSpa {
    isthere: Vec<AtomicBool>,
    /// `localy` in Listing 7: value slot, written only by the claim winner.
    values: Vec<AtomicUsize>,
    nzinds: Vec<AtomicUsize>,
    cursor: AtomicUsize,
}

impl AtomicSpa {
    /// A SPA for outputs of dimension `capacity`, with room for up to
    /// `capacity` collected indices (the listing allocates `nzinds` of
    /// length `ncol`).
    pub fn new(capacity: usize) -> Self {
        AtomicSpa {
            isthere: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            values: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            nzinds: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The domain size.
    pub fn capacity(&self) -> usize {
        self.isthere.len()
    }

    /// Try to claim slot `index` with `value`; the first claimer wins
    /// (Listing 7 lines 21–26: test, set, record). Returns `true` when this
    /// call was the winner. Charges one atomic read, and on a win the CAS,
    /// the fetch-add and the stores, to `counters`.
    pub fn claim_first(&self, index: usize, value: usize, counters: &mut Counters) -> bool {
        counters.atomics += 1;
        if self.isthere[index].load(Ordering::Relaxed) {
            return false;
        }
        counters.atomics += 1;
        if self.isthere[index]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.values[index].store(value, Ordering::Relaxed);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
        counters.atomics += 1;
        self.nzinds[slot].store(index, Ordering::Relaxed);
        counters.spa_touches += 2;
        true
    }

    /// Number of claimed slots so far.
    pub fn nnz(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Read the value stored for a claimed index.
    pub fn value(&self, index: usize) -> usize {
        self.values[index].load(Ordering::Acquire)
    }

    /// Whether `index` has been claimed.
    pub fn contains(&self, index: usize) -> bool {
        self.isthere[index].load(Ordering::Acquire)
    }

    /// Snapshot the collected indices (unsorted) — Listing 7's
    /// `nzinds.remove(k.read(), ncol-k.read())` truncation.
    pub fn collected(&self) -> Vec<usize> {
        let n = self.nnz();
        self.nzinds[..n].iter().map(|a| a.load(Ordering::Acquire)).collect()
    }
}

/// Bucketed index merger: the sort-free alternative to the global
/// comparison sort of the collected `nzinds`.
///
/// The output domain `0..capacity` is split into `nbuckets` contiguous
/// column ranges (one per task, the same block split `parallel_for` uses).
/// [`BucketSpa::scatter`] drops each collected index into its bucket — an
/// `O(nnz)` random-access pass — and [`BucketSpa::collect_bucket`] emits a
/// bucket's indices in ascending order by scanning the bucket's column
/// range against the SPA's occupancy predicate. Concatenating the buckets
/// in order yields a globally sorted index list without a single
/// comparison sort (`sort_elems` stays zero); the price is the `O(range)`
/// scan of every *non-empty* bucket, which is the classic bucket/counting
/// trade the paper's suggested remedy makes.
#[derive(Debug)]
pub struct BucketSpa {
    ranges: Vec<Range<usize>>,
    buckets: Vec<Vec<usize>>,
}

impl BucketSpa {
    /// Buckets covering `0..capacity` in `nbuckets` near-equal contiguous
    /// ranges (fewer when `capacity < nbuckets`; one empty range when the
    /// domain is empty).
    pub fn new(capacity: usize, nbuckets: usize) -> Self {
        let ranges = crate::par::split_ranges(capacity, nbuckets);
        let buckets = vec![Vec::new(); ranges.len()];
        BucketSpa { ranges, buckets }
    }

    /// Number of buckets actually allocated.
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// The column range bucket `b` covers.
    pub fn range(&self, b: usize) -> Range<usize> {
        self.ranges[b].clone()
    }

    /// Which bucket owns `index` — inverts the block-split floor
    /// arithmetic instead of binary searching.
    pub fn bucket_of(&self, index: usize) -> usize {
        let len = self.ranges.last().map_or(0, |r| r.end);
        let n = self.ranges.len();
        let base = len / n;
        if base == 0 {
            return 0; // empty domain: the single 0..0 bucket
        }
        let extra = len % n;
        let wide = extra * (base + 1);
        if index < wide {
            index / (base + 1)
        } else {
            extra + (index - wide) / base
        }
    }

    /// Scatter the collected (unsorted, duplicate-free) indices into their
    /// buckets: one streamed read plus one random bucket append per index.
    pub fn scatter(&mut self, indices: &[usize], counters: &mut Counters) {
        for &i in indices {
            let b = self.bucket_of(i);
            self.buckets[b].push(i);
        }
        counters.elems += indices.len() as u64;
        counters.rand_access += indices.len() as u64;
    }

    /// Emit bucket `b`'s indices in ascending order by scanning its column
    /// range against the SPA occupancy predicate `is_set`. Empty buckets
    /// are free; a non-empty bucket pays its full range scan (`elems`).
    pub fn collect_bucket(
        &self,
        b: usize,
        is_set: impl Fn(usize) -> bool,
        counters: &mut Counters,
    ) -> Vec<usize> {
        let pending = &self.buckets[b];
        if pending.is_empty() {
            return Vec::new();
        }
        let range = self.ranges[b].clone();
        counters.elems += range.len() as u64;
        counters.spa_touches += pending.len() as u64;
        let mut out = Vec::with_capacity(pending.len());
        for i in range {
            if is_set(i) {
                out.push(i);
            }
        }
        debug_assert_eq!(out.len(), pending.len(), "occupancy must match the scattered indices");
        out
    }

    /// Total scattered indices currently held.
    pub fn nnz(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Plus;

    #[test]
    fn dense_spa_accumulates_with_monoid() {
        let mut spa = DenseSpa::new(8, 0.0f64);
        let mut c = Counters::default();
        spa.accumulate(3, 1.0, &Plus, &mut c);
        spa.accumulate(5, 2.0, &Plus, &mut c);
        spa.accumulate(3, 4.0, &Plus, &mut c);
        assert_eq!(spa.nnz(), 2);
        assert_eq!(spa.get(3), Some(5.0));
        assert_eq!(spa.get(0), None);
        assert_eq!(c.spa_touches, 3);
        let (inds, vals) = spa.drain(&mut c);
        assert_eq!(inds, vec![3, 5]);
        assert_eq!(vals, vec![5.0, 2.0]);
        // reusable after drain
        assert_eq!(spa.nnz(), 0);
        assert_eq!(spa.get(3), None);
    }

    #[test]
    fn dense_spa_first_visitor() {
        let mut spa = DenseSpa::new(4, 0usize);
        let mut c = Counters::default();
        assert!(spa.insert_first(2, 10, &mut c));
        assert!(!spa.insert_first(2, 20, &mut c));
        assert_eq!(spa.get(2), Some(10));
    }

    #[test]
    fn atomic_spa_single_winner_per_slot() {
        let spa = AtomicSpa::new(16);
        let mut c = Counters::default();
        assert!(spa.claim_first(7, 100, &mut c));
        assert!(!spa.claim_first(7, 200, &mut c));
        assert_eq!(spa.value(7), 100);
        assert!(spa.contains(7));
        assert!(!spa.contains(8));
        assert_eq!(spa.collected(), vec![7]);
    }

    #[test]
    fn atomic_spa_concurrent_claims_are_exclusive() {
        use std::sync::atomic::AtomicUsize;
        let spa = AtomicSpa::new(64);
        let wins = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let spa = &spa;
                let wins = &wins;
                s.spawn(move |_| {
                    let mut c = Counters::default();
                    for i in 0..64 {
                        if spa.claim_first(i, t, &mut c) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        // Every slot claimed exactly once across all threads.
        assert_eq!(wins.load(Ordering::Relaxed), 64);
        assert_eq!(spa.nnz(), 64);
        let mut collected = spa.collected();
        collected.sort_unstable();
        assert_eq!(collected, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_of_matches_ranges() {
        for (cap, nb) in [(10usize, 3usize), (100, 8), (7, 16), (1, 1), (1000, 24)] {
            let spa = BucketSpa::new(cap, nb);
            for i in 0..cap {
                let b = spa.bucket_of(i);
                assert!(spa.range(b).contains(&i), "cap={cap} nb={nb} i={i} b={b}");
            }
        }
    }

    #[test]
    fn bucket_scatter_collect_sorts_without_comparisons() {
        let occupied = [3usize, 17, 4, 96, 55, 0, 42, 99, 18];
        let spa = {
            let mut s = BucketSpa::new(100, 4);
            let mut c = Counters::default();
            s.scatter(&occupied, &mut c);
            assert_eq!(c.rand_access, occupied.len() as u64);
            assert_eq!(c.sort_elems, 0);
            assert_eq!(s.nnz(), occupied.len());
            s
        };
        let set: std::collections::BTreeSet<usize> = occupied.iter().copied().collect();
        let mut out = Vec::new();
        let mut c = Counters::default();
        for b in 0..spa.nbuckets() {
            out.extend(spa.collect_bucket(b, |i| set.contains(&i), &mut c));
        }
        assert_eq!(out, set.into_iter().collect::<Vec<_>>());
        assert_eq!(c.sort_elems, 0);
    }

    #[test]
    fn empty_buckets_are_free() {
        let mut spa = BucketSpa::new(1000, 10);
        let mut c = Counters::default();
        spa.scatter(&[5], &mut c); // only bucket 0 is touched
        let mut c = Counters::default();
        for b in 0..spa.nbuckets() {
            let _ = spa.collect_bucket(b, |i| i == 5, &mut c);
        }
        // only bucket 0's 100-wide range was scanned
        assert_eq!(c.elems, 100);
    }

    #[test]
    fn atomic_counters_charged() {
        let spa = AtomicSpa::new(4);
        let mut c = Counters::default();
        spa.claim_first(0, 1, &mut c); // win: load + cas + fetch_add = 3
        spa.claim_first(0, 2, &mut c); // lose at the load: 1
        assert_eq!(c.atomics, 4);
    }
}
