//! End-to-end tracing & metrics — the observability layer.
//!
//! The paper's whole argument is observational: every figure decomposes an
//! operation into *phases* (SpMSpV into SPA/Sort/Output in Fig 7,
//! Gather/Local-Multiply/Scatter in Figs 8–9) and attributes cost to a
//! mechanism. The rest of the library *measures* (phase [`Counters`],
//! the comm event log, cost-model pricing); this module lets a run be
//! *observed*: a [`TraceRecorder`] captures nested spans — operation →
//! phase → per-locale segment — on the **simulated clock**, and
//! [`sink`] renders them as a Chrome-trace timeline (one process per
//! locale), a JSONL event stream, or a human-readable summary table.
//!
//! Design points:
//!
//! * **Disabled is free.** A disabled recorder is a `None` handle; every
//!   record call is a single branch, no allocation, no locking. Tracing
//!   is strictly opt-in ([`TraceRecorder::new`]).
//! * **Two clocks, segregated.** Span positions and durations are
//!   *simulated seconds* (deterministic, priced by `gblas-sim`); real
//!   wall-clock nanoseconds ride along in a separate field that the
//!   deterministic exporters omit, so two identical runs produce
//!   byte-identical simulated-time output.
//! * **Cross-run metrics.** A [`MetricsRegistry`] of atomic counters
//!   (ops executed, nnz processed, fine/bulk messages, bytes, faults
//!   injected, retries, spans recorded) accumulates across operations and
//!   contexts and is queryable at runtime.

pub mod profile;
pub mod sink;

use crate::par::Counters;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a span represents; fixed vocabulary so sinks can lay out tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole operation (`spmspv_dist`, `apply_v2`, …).
    Op,
    /// One phase of an operation, rolled up across locales
    /// (bulk-synchronous: its duration is the max over locales, plus any
    /// spawn overhead and communication).
    Phase,
    /// One locale's compute segment within a phase.
    LocaleCompute,
    /// One locale's communication segment within a phase.
    LocaleComm,
}

impl SpanKind {
    /// Stable lowercase name used by every sink.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Op => "op",
            SpanKind::Phase => "phase",
            SpanKind::LocaleCompute => "compute",
            SpanKind::LocaleComm => "comm",
        }
    }
}

/// Communication attributed to a [`SpanKind::LocaleComm`] segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommSummary {
    /// Fine-grained (per-element) messages, pipelined.
    pub fine_msgs: u64,
    /// Fine-grained messages from dependent chains (no pipelining).
    pub fine_dependent_msgs: u64,
    /// Aggregated block messages.
    pub bulk_msgs: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Distinct peer locales touched.
    pub peers: u64,
}

impl CommSummary {
    /// True when nothing was transferred.
    pub fn is_empty(&self) -> bool {
        *self == CommSummary::default()
    }
}

/// One recorded span on the simulated timeline.
#[derive(Debug, Clone)]
pub struct Span {
    /// Recorder-unique id (stable within one recorder's lifetime).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name: the op or phase name (`gather`, `local`, …).
    pub name: String,
    /// Structural role.
    pub kind: SpanKind,
    /// Owning locale for per-locale segments; `None` for op/phase spans.
    pub locale: Option<usize>,
    /// Start on the simulated clock, seconds.
    pub sim_start: f64,
    /// Duration on the simulated clock, seconds.
    pub sim_dur: f64,
    /// Real elapsed nanoseconds — **segregated**: deterministic sinks
    /// must not emit this field.
    pub wall_ns: u64,
    /// Work counters attributed to this span (empty when not applicable).
    pub counters: Counters,
    /// Free-form attributes (dims, nnz, strategy, …), insertion-ordered.
    pub attrs: Vec<(String, String)>,
    /// Communication attributed to this span, if any.
    pub comm: Option<CommSummary>,
}

/// A point-in-time event (retry, injected fault) on the simulated clock.
#[derive(Debug, Clone)]
pub struct Instant {
    /// Event name (`comm_fault`, `comm_retry`, …).
    pub name: String,
    /// Simulated timestamp, seconds.
    pub sim_ts: f64,
    /// Locale it happened on, when known.
    pub locale: Option<usize>,
    /// Free-form attributes.
    pub attrs: Vec<(String, String)>,
}

/// An immutable snapshot of everything a recorder captured.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Spans in recording order (parents before children).
    pub spans: Vec<Span>,
    /// Instant events in recording order.
    pub instants: Vec<Instant>,
}

impl Trace {
    /// Locales that appear in any per-locale span, ascending.
    pub fn locales(&self) -> Vec<usize> {
        let mut ls: Vec<usize> = self.spans.iter().filter_map(|s| s.locale).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// End of the simulated timeline (max span end / instant ts).
    ///
    /// Total on empty traces and traces holding only instants: `0.0` when
    /// nothing carries a finite timestamp (never a panic, never NaN —
    /// non-finite endpoints from corrupt input are ignored).
    pub fn sim_end(&self) -> f64 {
        let span_end = self
            .spans
            .iter()
            .map(|s| s.sim_start + s.sim_dur)
            .filter(|t| t.is_finite())
            .fold(0.0f64, f64::max);
        self.instants.iter().map(|i| i.sim_ts).filter(|t| t.is_finite()).fold(span_end, f64::max)
    }
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<Span>,
    instants: Vec<Instant>,
    /// The simulated-clock write head: ops append phases end-to-end.
    cursor: f64,
    next_id: u64,
}

/// Handle to a trace being recorded.
///
/// Cloning shares the underlying trace; a disabled recorder (the default)
/// is a null handle whose every method is a cheap no-op — operations can
/// call it unconditionally on their hot path.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder(Option<Arc<Mutex<Inner>>>);

impl TraceRecorder {
    /// An enabled recorder with an empty trace.
    pub fn new() -> Self {
        TraceRecorder(Some(Arc::new(Mutex::new(Inner::default()))))
    }

    /// The no-op handle (what contexts carry by default).
    pub fn disabled() -> Self {
        TraceRecorder(None)
    }

    /// Whether spans are actually being captured.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Current simulated-clock position (0 when disabled).
    pub fn cursor(&self) -> f64 {
        self.0.as_ref().map(|i| i.lock().cursor).unwrap_or(0.0)
    }

    /// Move the simulated clock forward by `seconds`; returns the span
    /// interval `(start, end)` it covered.
    pub fn advance(&self, seconds: f64) -> (f64, f64) {
        match &self.0 {
            Some(i) => {
                let mut g = i.lock();
                let start = g.cursor;
                g.cursor += seconds;
                (start, g.cursor)
            }
            None => (0.0, 0.0),
        }
    }

    /// Record a fully-formed span; returns its id (0 when disabled).
    #[allow(clippy::too_many_arguments)] // span construction is the one fat call
    pub fn span(
        &self,
        parent: Option<u64>,
        name: &str,
        kind: SpanKind,
        locale: Option<usize>,
        sim_start: f64,
        sim_dur: f64,
        wall_ns: u64,
        counters: Counters,
        attrs: Vec<(String, String)>,
        comm: Option<CommSummary>,
    ) -> u64 {
        match &self.0 {
            Some(i) => {
                let mut g = i.lock();
                g.next_id += 1;
                let id = g.next_id;
                g.spans.push(Span {
                    id,
                    parent,
                    name: name.to_string(),
                    kind,
                    locale,
                    sim_start,
                    sim_dur,
                    wall_ns,
                    counters,
                    attrs,
                    comm,
                });
                id
            }
            None => 0,
        }
    }

    /// Record an instant event at the current cursor.
    pub fn instant(&self, name: &str, locale: Option<usize>, attrs: Vec<(String, String)>) {
        if let Some(i) = &self.0 {
            let mut g = i.lock();
            let sim_ts = g.cursor;
            g.instants.push(Instant { name: name.to_string(), sim_ts, locale, attrs });
        }
    }

    /// Snapshot the trace recorded so far.
    pub fn snapshot(&self) -> Trace {
        match &self.0 {
            Some(i) => {
                let g = i.lock();
                Trace { spans: g.spans.clone(), instants: g.instants.clone() }
            }
            None => Trace::default(),
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.0.as_ref().map(|i| i.lock().spans.len()).unwrap_or(0)
    }
}

macro_rules! metrics_registry {
    ($( $(#[$doc:meta])* $field:ident ),* $(,)?) => {
        /// Cross-run cumulative metrics, cheap enough to leave always on.
        ///
        /// Shared by `ExecCtx`/`DistCtx`/`Comm` via `Arc`; every field is a
        /// relaxed atomic counter. Snapshot with [`MetricsRegistry::snapshot`].
        #[derive(Debug, Default)]
        pub struct MetricsRegistry {
            $( $(#[$doc])* $field: AtomicU64, )*
        }

        /// Plain-struct view of a [`MetricsRegistry`] at one moment.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $( $(#[$doc])* pub $field: u64, )*
        }

        impl MetricsRegistry {
            $(
                /// Add to the counter of the same name.
                pub fn $field(&self, n: u64) {
                    self.$field.fetch_add(n, Ordering::Relaxed);
                }
            )*

            /// Read every counter.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $field: self.$field.load(Ordering::Relaxed), )*
                }
            }
        }

        impl std::fmt::Display for MetricsSnapshot {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                $( writeln!(f, "{:<18} {}", stringify!($field), self.$field)?; )*
                Ok(())
            }
        }
    };
}

metrics_registry! {
    /// Operations executed (op-level spans or traced kernels).
    ops_executed,
    /// Nonzeros processed by those operations.
    nnz_processed,
    /// Fine-grained messages logged (incl. dependent chains).
    fine_msgs,
    /// Bulk messages logged.
    bulk_msgs,
    /// Payload bytes across all messages.
    bytes_sent,
    /// Communication faults injected by the fault hook.
    faults_injected,
    /// Retry attempts consumed recovering from comm failures.
    retries,
    /// Spans recorded across all recorders sharing this registry.
    spans_recorded,
    /// Fresh heap allocations made for kernel workspaces (pool misses
    /// plus in-place growth of pooled buffers).
    allocs,
    /// Estimated bytes of those workspace allocations.
    alloc_bytes,
    /// Workspace checkouts served from the pool without allocating.
    pool_hits,
    /// Workspace checkouts that had to allocate (cold pool, capacity
    /// miss, or pooling disabled via `GBLAS_WORKSPACE=off`).
    pool_misses,
    /// Communication schedules compiled by an inspector pass (cache
    /// misses and rebuilds after invalidation).
    sched_builds,
    /// Communication schedules replayed from the cache, skipping the
    /// inspector.
    sched_replays,
    /// Cached schedules discarded because the matrix generation or the
    /// access-pattern fingerprint changed.
    sched_invalidations,
}

/// Span-attribute key for the per-destination message count of a comm
/// span (`dst{d}_msgs`). The single source of truth for the naming
/// scheme, shared by the emission side ([`gblas-dist`]'s OpTrace) and the
/// profile reconstructor, so the schema cannot drift.
pub fn dst_msgs_key(dst: usize) -> String {
    format!("dst{dst}_msgs")
}

/// Span-attribute key for the per-destination payload bytes of a comm
/// span (`dst{d}_bytes`). See [`dst_msgs_key`].
pub fn dst_bytes_key(dst: usize) -> String {
    format!("dst{dst}_bytes")
}

/// Which per-destination quantity a comm-span attribute carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DstQuantity {
    /// A `dst{d}_msgs` attribute.
    Msgs,
    /// A `dst{d}_bytes` attribute.
    Bytes,
}

/// Parse a per-destination comm-span attribute key produced by
/// [`dst_msgs_key`]/[`dst_bytes_key`] back into `(destination, quantity)`.
/// Returns `None` for every other attribute.
pub fn parse_dst_key(key: &str) -> Option<(usize, DstQuantity)> {
    let rest = key.strip_prefix("dst")?;
    if let Some(d) = rest.strip_suffix("_msgs") {
        return Some((d.parse().ok()?, DstQuantity::Msgs));
    }
    if let Some(d) = rest.strip_suffix("_bytes") {
        return Some((d.parse().ok()?, DstQuantity::Bytes));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_keys_round_trip() {
        for d in [0usize, 3, 17, 4096] {
            assert_eq!(parse_dst_key(&dst_msgs_key(d)), Some((d, DstQuantity::Msgs)));
            assert_eq!(parse_dst_key(&dst_bytes_key(d)), Some((d, DstQuantity::Bytes)));
        }
        for k in ["dst_msgs", "dstX_bytes", "dst3_elems", "src3_msgs", "dst3"] {
            assert_eq!(parse_dst_key(k), None, "{k} must not parse");
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = TraceRecorder::disabled();
        assert!(!r.is_enabled());
        assert_eq!(r.advance(5.0), (0.0, 0.0));
        let id =
            r.span(None, "x", SpanKind::Op, None, 0.0, 1.0, 0, Counters::default(), vec![], None);
        assert_eq!(id, 0);
        r.instant("e", None, vec![]);
        assert!(r.snapshot().spans.is_empty());
        assert!(r.snapshot().instants.is_empty());
    }

    #[test]
    fn cursor_advances_monotonically() {
        let r = TraceRecorder::new();
        assert_eq!(r.advance(1.5), (0.0, 1.5));
        assert_eq!(r.advance(0.5), (1.5, 2.0));
        assert_eq!(r.cursor(), 2.0);
    }

    #[test]
    fn spans_get_unique_increasing_ids() {
        let r = TraceRecorder::new();
        let a =
            r.span(None, "a", SpanKind::Op, None, 0.0, 1.0, 0, Counters::default(), vec![], None);
        let b = r.span(
            Some(a),
            "b",
            SpanKind::Phase,
            None,
            0.0,
            0.5,
            0,
            Counters::default(),
            vec![],
            None,
        );
        assert!(b > a);
        let t = r.snapshot();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].parent, Some(a));
    }

    #[test]
    fn instants_stamp_the_cursor() {
        let r = TraceRecorder::new();
        r.advance(2.0);
        r.instant("fault", Some(3), vec![("phase".into(), "gather".into())]);
        let t = r.snapshot();
        assert_eq!(t.instants.len(), 1);
        assert_eq!(t.instants[0].sim_ts, 2.0);
        assert_eq!(t.instants[0].locale, Some(3));
    }

    #[test]
    fn trace_reports_locales_and_end() {
        let r = TraceRecorder::new();
        r.span(None, "p", SpanKind::Phase, None, 0.0, 4.0, 0, Counters::default(), vec![], None);
        r.span(
            None,
            "p",
            SpanKind::LocaleCompute,
            Some(2),
            0.0,
            1.0,
            0,
            Counters::default(),
            vec![],
            None,
        );
        r.span(
            None,
            "p",
            SpanKind::LocaleCompute,
            Some(0),
            0.0,
            3.0,
            0,
            Counters::default(),
            vec![],
            None,
        );
        let t = r.snapshot();
        assert_eq!(t.locales(), vec![0, 2]);
        assert_eq!(t.sim_end(), 4.0);
    }

    #[test]
    fn sim_end_is_zero_on_empty_and_instant_only_traces() {
        let empty = Trace::default();
        assert_eq!(empty.sim_end(), 0.0);
        assert!(empty.locales().is_empty());

        // Instants only (no spans): the latest finite timestamp wins; a
        // fresh recorder's instants sit at cursor 0.
        let r = TraceRecorder::new();
        r.instant("boot", None, vec![]);
        assert_eq!(r.snapshot().sim_end(), 0.0);
        r.advance(1.5);
        r.instant("later", Some(1), vec![]);
        assert_eq!(r.snapshot().sim_end(), 1.5);
    }

    #[test]
    fn sim_end_ignores_non_finite_endpoints() {
        let mut t = Trace::default();
        t.spans.push(Span {
            id: 1,
            parent: None,
            name: "bad".into(),
            kind: SpanKind::Op,
            locale: None,
            sim_start: f64::NAN,
            sim_dur: 1.0,
            wall_ns: 0,
            counters: Counters::default(),
            attrs: vec![],
            comm: None,
        });
        t.instants.push(Instant {
            name: "inf".into(),
            sim_ts: f64::INFINITY,
            locale: None,
            attrs: vec![],
        });
        assert_eq!(t.sim_end(), 0.0, "corrupt endpoints must not poison the makespan");
        t.instants.push(Instant { name: "ok".into(), sim_ts: 2.0, locale: None, attrs: vec![] });
        assert_eq!(t.sim_end(), 2.0);
    }

    #[test]
    fn metrics_accumulate_and_snapshot() {
        let m = MetricsRegistry::default();
        m.ops_executed(1);
        m.ops_executed(2);
        m.fine_msgs(100);
        m.retries(3);
        let s = m.snapshot();
        assert_eq!(s.ops_executed, 3);
        assert_eq!(s.fine_msgs, 100);
        assert_eq!(s.retries, 3);
        assert_eq!(s.bulk_msgs, 0);
        let text = s.to_string();
        assert!(text.contains("ops_executed"));
        assert!(text.contains("retries"));
    }
}
