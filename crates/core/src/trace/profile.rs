//! Trace-analysis profiler: turn a recorded [`Trace`] into answers.
//!
//! The recorder (PR 1) captures *what happened* — op → phase → per-locale
//! spans on the simulated clock. This module computes *what it means*,
//! deterministically, from the spans alone (so it works equally on a live
//! snapshot and on a reloaded JSONL file):
//!
//! 1. **Per-locale busy/comm/idle** — for the whole timeline and per op,
//!    with a load-imbalance factor (max over locales of busy+comm divided
//!    by the mean). The paper's central distributed claim is that locale
//!    imbalance and fine-grained communication dominate; this is the
//!    number that says so.
//! 2. **Critical path** — the chain of phase spans laid end-to-end on the
//!    simulated clock. Their durations sum to [`Trace::sim_end`] (the
//!    bulk-synchronous timeline has no overlap between phases); each
//!    phase's *slack* is the part of its duration not explained by its
//!    slowest locale (spawn overhead), and its *critical locale* is the
//!    one that defined the superstep.
//! 3. **Communication matrix** — locale×locale messages and bytes,
//!    reconstructed from the per-destination attributes the distributed
//!    op tracer stamps on `LocaleComm` spans (`dst3_bytes`, …). Traffic
//!    from traces recorded before those attributes existed is kept in an
//!    explicit `unattributed` bucket rather than dropped.
//! 4. **Log-bucketed histograms** (p50/p90/p99) for message sizes and
//!    per-(op, phase) latencies.
//!
//! Everything renders three ways — [`render_text`], [`render_markdown`],
//! [`render_json`] — all byte-deterministic (fixed field order, fixed
//! precision, simulated clock only), so profile output is golden-file
//! testable and identical across wall-clock executors.

use super::{SpanKind, Trace};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One locale's time split over some interval (the whole timeline or one
/// op): compute seconds, communication seconds, and the idle remainder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocaleUse {
    /// Seconds spent in `LocaleCompute` segments.
    pub busy: f64,
    /// Seconds spent in `LocaleComm` segments.
    pub comm: f64,
    /// Interval seconds not covered by either (waiting at barriers).
    pub idle: f64,
}

impl LocaleUse {
    /// Non-idle seconds (busy + comm) — the "work" of the imbalance factor.
    pub fn work(&self) -> f64 {
        self.busy + self.comm
    }
}

/// Load-imbalance factor over per-locale work: `max / mean`, 1.0 when
/// perfectly balanced or when there is no work at all.
fn imbalance_of(work: &[f64]) -> f64 {
    if work.is_empty() {
        return 1.0;
    }
    let max = work.iter().cloned().fold(0.0f64, f64::max);
    let mean = work.iter().sum::<f64>() / work.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

/// Aggregate over every instance of one op name.
#[derive(Debug, Clone)]
pub struct OpStat {
    /// Op span name (`spmspv_dist`, …).
    pub name: String,
    /// Number of op spans with this name.
    pub count: usize,
    /// Summed duration of those spans.
    pub seconds: f64,
    /// Per-locale busy/comm/idle within these ops (idle relative to the
    /// ops' summed duration).
    pub per_locale: Vec<LocaleUse>,
    /// max/mean over locales of busy+comm.
    pub imbalance: f64,
}

impl OpStat {
    /// The locale with the most work in this op (lowest index on ties),
    /// `None` when no locale recorded any.
    pub fn slowest_locale(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (l, u) in self.per_locale.iter().enumerate() {
            let w = u.work();
            if w > 0.0 && best.map(|(_, bw)| w > bw).unwrap_or(true) {
                best = Some((l, w));
            }
        }
        best.map(|(l, _)| l)
    }
}

/// Aggregate over every instance of one (op, phase) pair — one entry of
/// the critical path.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Parent op name.
    pub op: String,
    /// Phase name (`gather`, `local`, …).
    pub phase: String,
    /// Number of phase spans aggregated.
    pub count: usize,
    /// Summed phase duration — this phase's length on the critical path.
    pub seconds: f64,
    /// Summed duration not explained by the slowest locale of each
    /// instance (fork/join spawn overhead and pure-comm remainders).
    pub slack: f64,
    /// The locale with the most summed work across instances.
    pub critical_locale: Option<usize>,
    /// max/mean over locales of summed busy+comm within this phase.
    pub imbalance: f64,
    /// Per-instance latency histogram (log2 buckets of seconds).
    pub latency: LogHistogram,
    /// Summed busy+comm seconds per locale.
    pub per_locale_work: Vec<f64>,
}

/// Locale×locale traffic totals reconstructed from `LocaleComm` spans.
#[derive(Debug, Clone, Default)]
pub struct CommMatrix {
    /// Matrix dimension (machine locale count).
    pub locales: usize,
    /// Messages, row-major `[src * locales + dst]`.
    pub msgs: Vec<u64>,
    /// Payload bytes, row-major `[src * locales + dst]`.
    pub bytes: Vec<u64>,
    /// Messages whose destination the trace did not record (pre-profiler
    /// traces without `dst*` attributes).
    pub unattributed_msgs: u64,
    /// Bytes whose destination the trace did not record.
    pub unattributed_bytes: u64,
}

impl CommMatrix {
    /// `(msgs, bytes)` sent from `src` to `dst`.
    pub fn at(&self, src: usize, dst: usize) -> (u64, u64) {
        let i = src * self.locales + dst;
        (self.msgs[i], self.bytes[i])
    }

    /// Total bytes including unattributed traffic — equals the run's
    /// cumulative comm-bytes counter.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum::<u64>() + self.unattributed_bytes
    }

    /// Total messages including unattributed traffic.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum::<u64>() + self.unattributed_msgs
    }
}

/// A log₂-bucketed histogram with weighted inserts and deterministic
/// percentile read-out (bucket upper bounds, never interpolation — the
/// same trace always reports the same p50/p90/p99).
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    /// `(floor(log2(value)), weight)` sorted by exponent.
    buckets: Vec<(i32, u64)>,
    count: u64,
}

/// Exact `floor(log2(v))` for positive finite `v` via the IEEE-754
/// exponent field (no libm, bit-deterministic everywhere).
fn log2_floor(v: f64) -> i32 {
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if exp == 0 {
        -1074 // subnormal: lump into the smallest bucket
    } else {
        exp - 1023
    }
}

impl LogHistogram {
    /// Add `weight` observations of `value`. Non-positive and non-finite
    /// values land in the smallest bucket rather than being dropped.
    pub fn add(&mut self, value: f64, weight: u64) {
        if weight == 0 {
            return;
        }
        let e = if value.is_finite() && value > 0.0 { log2_floor(value) } else { i32::MIN };
        match self.buckets.binary_search_by_key(&e, |&(b, _)| b) {
            Ok(i) => self.buckets[i].1 += weight,
            Err(i) => self.buckets.insert(i, (e, weight)),
        }
        self.count += weight;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sorted `(exponent, weight)` buckets; a bucket holds values in
    /// `[2^e, 2^(e+1))`.
    pub fn buckets(&self) -> &[(i32, u64)] {
        &self.buckets
    }

    /// The upper bound `2^(e+1)` of the bucket containing the `q`-quantile
    /// (`0 < q <= 1`); `0.0` when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(e, w) in &self.buckets {
            cum += w;
            if cum >= target {
                return if e == i32::MIN { 0.0 } else { 2.0f64.powi(e.saturating_add(1)) };
            }
        }
        0.0
    }
}

/// Everything the profiler computed from one trace.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// End of the simulated timeline.
    pub sim_end: f64,
    /// Machine locale count (from op `locales` attrs, else max seen + 1).
    pub locales: usize,
    /// Spans consumed.
    pub span_count: usize,
    /// Whole-timeline busy/comm/idle per locale.
    pub locale_totals: Vec<LocaleUse>,
    /// Per-op aggregates, in first-seen order.
    pub ops: Vec<OpStat>,
    /// The critical path: per-(op, phase) aggregates in first-seen
    /// (timeline) order. Their `seconds` sum to `path_seconds`.
    pub phases: Vec<PhaseStat>,
    /// Sum of all phase durations — equals `sim_end` up to `uncovered`.
    pub path_seconds: f64,
    /// Timeline seconds covered by no phase span (0 for op-tracer output).
    pub uncovered: f64,
    /// Locale×locale traffic.
    pub comm: CommMatrix,
    /// Message-size histogram (bytes per message, log2 buckets).
    pub msg_sizes: LogHistogram,
}

impl TraceProfile {
    /// Whole-run load-imbalance factor: max/mean over locales of total
    /// busy+comm seconds.
    pub fn imbalance(&self) -> f64 {
        let work: Vec<f64> = self.locale_totals.iter().map(LocaleUse::work).collect();
        imbalance_of(&work)
    }
}

/// Parse the `dst{d}_msgs` / `dst{d}_bytes` attributes a `LocaleComm`
/// span carries; returns `(dst, msgs, bytes)` tuples in attribute order.
/// The key scheme is owned by [`crate::trace::parse_dst_key`] — the same
/// helper the emission side names keys with, so the schema cannot drift.
fn dst_traffic(attrs: &[(String, String)]) -> Vec<(usize, u64, u64)> {
    let mut out: Vec<(usize, u64, u64)> = Vec::new();
    for (k, v) in attrs {
        let Some((dst, quantity)) = super::parse_dst_key(k) else { continue };
        let Ok(val) = v.parse::<u64>() else { continue };
        let entry = match out.iter_mut().find(|(d, _, _)| *d == dst) {
            Some(e) => e,
            None => {
                out.push((dst, 0, 0));
                out.last_mut().unwrap()
            }
        };
        match quantity {
            super::DstQuantity::Msgs => entry.1 += val,
            super::DstQuantity::Bytes => entry.2 += val,
        }
    }
    out
}

/// Compute the full profile of a trace. Deterministic: the same trace
/// (from a live recorder or reloaded JSONL) always yields the same
/// profile, and its renderings are byte-identical.
pub fn profile(trace: &Trace) -> TraceProfile {
    let sim_end = trace.sim_end();
    let index: HashMap<u64, usize> =
        trace.spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(i);
        }
    }
    // Resolve each span's op ancestor (index into `spans`).
    let op_of: Vec<Option<usize>> = trace
        .spans
        .iter()
        .map(|s| {
            let mut cur = Some(s);
            for _ in 0..8 {
                let c = cur?;
                if c.kind == SpanKind::Op {
                    return index.get(&c.id).copied();
                }
                cur = c.parent.and_then(|p| index.get(&p)).map(|&i| &trace.spans[i]);
            }
            None
        })
        .collect();

    // Locale count: declared on op spans when available, else observed.
    let mut locales = trace.spans.iter().filter_map(|s| s.locale).map(|l| l + 1).max().unwrap_or(0);
    for s in trace.spans.iter().filter(|s| s.kind == SpanKind::Op) {
        if let Some(p) =
            s.attrs.iter().find(|(k, _)| k == "locales").and_then(|(_, v)| v.parse::<usize>().ok())
        {
            locales = locales.max(p);
        }
    }

    // Whole-timeline per-locale totals.
    let mut locale_totals = vec![LocaleUse::default(); locales];
    for s in &trace.spans {
        if let Some(l) = s.locale {
            match s.kind {
                SpanKind::LocaleCompute => locale_totals[l].busy += s.sim_dur,
                SpanKind::LocaleComm => locale_totals[l].comm += s.sim_dur,
                _ => {}
            }
        }
    }
    for u in &mut locale_totals {
        u.idle = (sim_end - u.busy - u.comm).max(0.0);
    }

    // Per-op aggregates.
    let mut ops: Vec<OpStat> = Vec::new();
    for (i, s) in trace.spans.iter().enumerate() {
        if s.kind != SpanKind::Op {
            continue;
        }
        let stat = match ops.iter_mut().find(|o| o.name == s.name) {
            Some(o) => o,
            None => {
                ops.push(OpStat {
                    name: s.name.clone(),
                    count: 0,
                    seconds: 0.0,
                    per_locale: vec![LocaleUse::default(); locales],
                    imbalance: 1.0,
                });
                ops.last_mut().unwrap()
            }
        };
        stat.count += 1;
        stat.seconds += s.sim_dur;
        let _ = i;
    }
    for (i, s) in trace.spans.iter().enumerate() {
        let (Some(l), Some(op_idx)) = (s.locale, op_of[i]) else { continue };
        let op_name = &trace.spans[op_idx].name;
        if let Some(stat) = ops.iter_mut().find(|o| &o.name == op_name) {
            match s.kind {
                SpanKind::LocaleCompute => stat.per_locale[l].busy += s.sim_dur,
                SpanKind::LocaleComm => stat.per_locale[l].comm += s.sim_dur,
                _ => {}
            }
        }
    }
    for stat in &mut ops {
        for u in &mut stat.per_locale {
            u.idle = (stat.seconds - u.busy - u.comm).max(0.0);
        }
        let work: Vec<f64> = stat.per_locale.iter().map(LocaleUse::work).collect();
        stat.imbalance = imbalance_of(&work);
    }

    // Critical path: phase spans in timeline order (fall back to op spans
    // for phase-less traces, e.g. shared-memory op streams).
    let mut path_idx: Vec<usize> =
        (0..trace.spans.len()).filter(|&i| trace.spans[i].kind == SpanKind::Phase).collect();
    let phaseless = path_idx.is_empty();
    if phaseless {
        path_idx =
            (0..trace.spans.len()).filter(|&i| trace.spans[i].kind == SpanKind::Op).collect();
    }
    path_idx.sort_by(|&a, &b| {
        trace.spans[a]
            .sim_start
            .partial_cmp(&trace.spans[b].sim_start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut phases: Vec<PhaseStat> = Vec::new();
    let mut path_seconds = 0.0f64;
    let mut uncovered = 0.0f64;
    let mut cursor = 0.0f64;
    for &i in &path_idx {
        let s = &trace.spans[i];
        if s.sim_start > cursor {
            uncovered += s.sim_start - cursor;
        }
        cursor = cursor.max(s.sim_start + s.sim_dur);
        path_seconds += s.sim_dur;

        let op_name = if phaseless {
            s.name.clone()
        } else {
            op_of[i].map(|o| trace.spans[o].name.clone()).unwrap_or_default()
        };
        let stat = match phases.iter_mut().find(|p| p.op == op_name && p.phase == s.name) {
            Some(p) => p,
            None => {
                phases.push(PhaseStat {
                    op: op_name,
                    phase: s.name.clone(),
                    count: 0,
                    seconds: 0.0,
                    slack: 0.0,
                    critical_locale: None,
                    imbalance: 1.0,
                    latency: LogHistogram::default(),
                    per_locale_work: vec![0.0; locales],
                });
                phases.last_mut().unwrap()
            }
        };
        stat.count += 1;
        stat.seconds += s.sim_dur;
        stat.latency.add(s.sim_dur, 1);
        // Per-instance critical work: the slowest locale inside this span.
        let mut inst_work = vec![0.0f64; locales];
        if let Some(kids) = children.get(&s.id) {
            for &k in kids {
                let c = &trace.spans[k];
                if let Some(l) = c.locale {
                    if matches!(c.kind, SpanKind::LocaleCompute | SpanKind::LocaleComm) {
                        inst_work[l] += c.sim_dur;
                        stat.per_locale_work[l] += c.sim_dur;
                    }
                }
            }
        }
        let crit = inst_work.iter().cloned().fold(0.0f64, f64::max);
        stat.slack += (s.sim_dur - crit).max(0.0);
    }
    if sim_end > cursor {
        uncovered += sim_end - cursor;
    }
    for stat in &mut phases {
        stat.imbalance = imbalance_of(&stat.per_locale_work);
        let mut best: Option<(usize, f64)> = None;
        for (l, &w) in stat.per_locale_work.iter().enumerate() {
            if w > 0.0 && best.map(|(_, bw)| w > bw).unwrap_or(true) {
                best = Some((l, w));
            }
        }
        stat.critical_locale = best.map(|(l, _)| l);
    }

    // Communication matrix + message-size histogram.
    let mut comm = CommMatrix {
        locales,
        msgs: vec![0; locales * locales],
        bytes: vec![0; locales * locales],
        unattributed_msgs: 0,
        unattributed_bytes: 0,
    };
    let mut msg_sizes = LogHistogram::default();
    for s in &trace.spans {
        if s.kind != SpanKind::LocaleComm {
            continue;
        }
        let Some(cs) = &s.comm else { continue };
        let total_msgs = cs.fine_msgs + cs.fine_dependent_msgs + cs.bulk_msgs;
        let dsts = dst_traffic(&s.attrs);
        if let (Some(src), false) = (s.locale, dsts.is_empty()) {
            for (dst, m, b) in &dsts {
                if *dst < locales && src < locales {
                    let i = src * locales + dst;
                    comm.msgs[i] += m;
                    comm.bytes[i] += b;
                } else {
                    comm.unattributed_msgs += m;
                    comm.unattributed_bytes += b;
                }
                if *m > 0 {
                    msg_sizes.add(*b as f64 / *m as f64, *m);
                }
            }
        } else {
            comm.unattributed_msgs += total_msgs;
            comm.unattributed_bytes += cs.bytes;
            if total_msgs > 0 {
                msg_sizes.add(cs.bytes as f64 / total_msgs as f64, total_msgs);
            }
        }
    }

    TraceProfile {
        sim_end,
        locales,
        span_count: trace.spans.len(),
        locale_totals,
        ops,
        phases,
        path_seconds,
        uncovered,
        comm,
        msg_sizes,
    }
}

fn fmt_s(v: f64) -> String {
    format!("{v:.9}")
}

/// Upper-bound formatter for byte-valued percentile bounds.
fn fmt_bytes_bound(v: f64) -> String {
    format!("{v:.0}")
}

/// Render the profile as a fixed-width text report.
pub fn render_text(p: &TraceProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace profile: {} spans, {} locales, makespan {}s",
        p.span_count,
        p.locales,
        fmt_s(p.sim_end)
    );
    let _ = writeln!(out, "load imbalance (max/mean locale work): {:.3}", p.imbalance());

    let _ = writeln!(out, "\nper-locale breakdown over the whole timeline:");
    let _ = writeln!(
        out,
        "  {:>6} {:>15} {:>15} {:>15} {:>7}",
        "locale", "busy(s)", "comm(s)", "idle(s)", "util%"
    );
    for (l, u) in p.locale_totals.iter().enumerate() {
        let util = if p.sim_end > 0.0 { 100.0 * u.work() / p.sim_end } else { 0.0 };
        let _ = writeln!(
            out,
            "  {:>6} {:>15} {:>15} {:>15} {:>7.1}",
            format!("L{l}"),
            fmt_s(u.busy),
            fmt_s(u.comm),
            fmt_s(u.idle),
            util
        );
    }

    let _ = writeln!(out, "\nper-op aggregate:");
    let _ = writeln!(
        out,
        "  {:<28} {:>6} {:>15} {:>10} {:>8}",
        "op", "count", "seconds", "imbalance", "slowest"
    );
    for o in &p.ops {
        let slow = o.slowest_locale().map(|l| format!("L{l}")).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>15} {:>10.3} {:>8}",
            o.name,
            o.count,
            fmt_s(o.seconds),
            o.imbalance,
            slow
        );
    }

    let _ = writeln!(out, "\ncritical path (phases in timeline order; sum = makespan):");
    let _ = writeln!(
        out,
        "  {:<34} {:>6} {:>15} {:>7} {:>13} {:>5} {:>10} {:>10}",
        "op/phase", "count", "seconds", "share%", "slack(s)", "crit", "p50(s)", "p99(s)"
    );
    for ph in &p.phases {
        let share = if p.sim_end > 0.0 { 100.0 * ph.seconds / p.sim_end } else { 0.0 };
        let crit = ph.critical_locale.map(|l| format!("L{l}")).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {:<34} {:>6} {:>15} {:>7.1} {:>13} {:>5} {:>10.3e} {:>10.3e}",
            format!("{}/{}", ph.op, ph.phase),
            ph.count,
            fmt_s(ph.seconds),
            share,
            fmt_s(ph.slack),
            crit,
            ph.latency.percentile(0.50),
            ph.latency.percentile(0.99),
        );
    }
    if p.uncovered > 0.0 {
        let _ = writeln!(out, "  {:<34} {:>6} {:>15}", "(uncovered)", "", fmt_s(p.uncovered));
    }
    let _ = writeln!(
        out,
        "  {:<34} {:>6} {:>15}   (makespan {}s)",
        "sum",
        "",
        fmt_s(p.path_seconds + p.uncovered),
        fmt_s(p.sim_end)
    );

    if p.locales > 0 {
        let _ = writeln!(out, "\ncommunication matrix (bytes; rows = source locale):");
        let mut head = String::from("       ");
        for d in 0..p.locales {
            let _ = write!(head, " {:>12}", format!("->L{d}"));
        }
        let _ = writeln!(out, "{head}");
        for s in 0..p.locales {
            let mut row = format!("  {:>5}", format!("L{s}"));
            for d in 0..p.locales {
                let (_, b) = p.comm.at(s, d);
                let cell = if s == d && b == 0 { "-".to_string() } else { b.to_string() };
                let _ = write!(row, " {cell:>12}");
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = write!(
            out,
            "  total: {} bytes in {} messages",
            p.comm.total_bytes(),
            p.comm.total_msgs()
        );
        if p.comm.unattributed_bytes > 0 {
            let _ = write!(out, " ({} bytes unattributed)", p.comm.unattributed_bytes);
        }
        let _ = writeln!(out);
    }

    if p.msg_sizes.count() > 0 {
        let _ = writeln!(
            out,
            "\nmessage sizes (log2 buckets): p50 <= {} B, p90 <= {} B, p99 <= {} B over {} messages",
            fmt_bytes_bound(p.msg_sizes.percentile(0.50)),
            fmt_bytes_bound(p.msg_sizes.percentile(0.90)),
            fmt_bytes_bound(p.msg_sizes.percentile(0.99)),
            p.msg_sizes.count()
        );
    }
    out
}

/// Render the profile as GitHub-flavoured markdown tables.
pub fn render_markdown(p: &TraceProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Trace profile\n");
    let _ = writeln!(
        out,
        "{} spans, {} locales, makespan **{}s**, load imbalance **{:.3}**\n",
        p.span_count,
        p.locales,
        fmt_s(p.sim_end),
        p.imbalance()
    );
    let _ = writeln!(out, "## Per-locale breakdown\n");
    let _ = writeln!(out, "| locale | busy (s) | comm (s) | idle (s) | util % |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (l, u) in p.locale_totals.iter().enumerate() {
        let util = if p.sim_end > 0.0 { 100.0 * u.work() / p.sim_end } else { 0.0 };
        let _ = writeln!(
            out,
            "| L{l} | {} | {} | {} | {util:.1} |",
            fmt_s(u.busy),
            fmt_s(u.comm),
            fmt_s(u.idle)
        );
    }
    let _ = writeln!(out, "\n## Ops\n");
    let _ = writeln!(out, "| op | count | seconds | imbalance | slowest |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for o in &p.ops {
        let slow = o.slowest_locale().map(|l| format!("L{l}")).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.3} | {slow} |",
            o.name,
            o.count,
            fmt_s(o.seconds),
            o.imbalance
        );
    }
    let _ = writeln!(out, "\n## Critical path\n");
    let _ = writeln!(
        out,
        "| op/phase | count | seconds | share % | slack (s) | crit | p50 (s) | p99 (s) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for ph in &p.phases {
        let share = if p.sim_end > 0.0 { 100.0 * ph.seconds / p.sim_end } else { 0.0 };
        let crit = ph.critical_locale.map(|l| format!("L{l}")).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "| {}/{} | {} | {} | {share:.1} | {} | {crit} | {:.3e} | {:.3e} |",
            ph.op,
            ph.phase,
            ph.count,
            fmt_s(ph.seconds),
            fmt_s(ph.slack),
            ph.latency.percentile(0.50),
            ph.latency.percentile(0.99),
        );
    }
    let _ = writeln!(
        out,
        "\npath sum {}s + uncovered {}s = makespan {}s",
        fmt_s(p.path_seconds),
        fmt_s(p.uncovered),
        fmt_s(p.sim_end)
    );
    if p.locales > 0 {
        let _ = writeln!(out, "\n## Communication matrix (bytes)\n");
        let mut head = String::from("| src\\dst |");
        let mut rule = String::from("|---|");
        for d in 0..p.locales {
            let _ = write!(head, " L{d} |");
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{head}");
        let _ = writeln!(out, "{rule}");
        for s in 0..p.locales {
            let mut row = format!("| L{s} |");
            for d in 0..p.locales {
                let _ = write!(row, " {} |", p.comm.at(s, d).1);
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(
            out,
            "\ntotal {} bytes in {} messages ({} bytes unattributed)",
            p.comm.total_bytes(),
            p.comm.total_msgs(),
            p.comm.unattributed_bytes
        );
    }
    if p.msg_sizes.count() > 0 {
        let _ = writeln!(
            out,
            "\nmessage sizes: p50 <= {} B, p90 <= {} B, p99 <= {} B",
            fmt_bytes_bound(p.msg_sizes.percentile(0.50)),
            fmt_bytes_bound(p.msg_sizes.percentile(0.90)),
            fmt_bytes_bound(p.msg_sizes.percentile(0.99)),
        );
    }
    out
}

fn hist_json(h: &LogHistogram, bound_fmt: impl Fn(f64) -> String) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        h.count(),
        bound_fmt(h.percentile(0.50)),
        bound_fmt(h.percentile(0.90)),
        bound_fmt(h.percentile(0.99))
    );
    for (i, (e, w)) in h.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{e},{w}]");
    }
    out.push_str("]}");
    out
}

fn u64_matrix_json(m: &[u64], n: usize) -> String {
    let mut out = String::from("[");
    for r in 0..n {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for c in 0..n {
            if c > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", m[r * n + c]);
        }
        out.push(']');
    }
    out.push(']');
    out
}

/// Render the machine-readable JSON profile (schema `gblas-profile-v1`).
/// Byte-deterministic: fixed field order and precision.
pub fn render_json(p: &TraceProfile) -> String {
    let sec = |v: f64| format!("{v:.9}");
    let secs_e = |v: f64| format!("{v:.9e}");
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"schema\":\"gblas-profile-v1\",\"sim_end\":{},\"locales\":{},\"spans\":{},\"imbalance\":{:.6},",
        sec(p.sim_end),
        p.locales,
        p.span_count,
        p.imbalance()
    );
    out.push_str("\"locale_totals\":[");
    for (l, u) in p.locale_totals.iter().enumerate() {
        if l > 0 {
            out.push(',');
        }
        let util = if p.sim_end > 0.0 { u.work() / p.sim_end } else { 0.0 };
        let _ = write!(
            out,
            "{{\"locale\":{l},\"busy\":{},\"comm\":{},\"idle\":{},\"util\":{util:.6}}}",
            sec(u.busy),
            sec(u.comm),
            sec(u.idle)
        );
    }
    out.push_str("],\"ops\":[");
    for (i, o) in p.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let slow = o.slowest_locale().map(|l| l.to_string()).unwrap_or_else(|| "null".into());
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"seconds\":{},\"imbalance\":{:.6},\"slowest_locale\":{slow},\"per_locale\":[",
            o.name,
            o.count,
            sec(o.seconds),
            o.imbalance
        );
        for (l, u) in o.per_locale.iter().enumerate() {
            if l > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"locale\":{l},\"busy\":{},\"comm\":{},\"idle\":{}}}",
                sec(u.busy),
                sec(u.comm),
                sec(u.idle)
            );
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "],\"critical_path\":{{\"sum\":{},\"uncovered\":{},\"phases\":[",
        sec(p.path_seconds),
        sec(p.uncovered)
    );
    for (i, ph) in p.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let share = if p.sim_end > 0.0 { ph.seconds / p.sim_end } else { 0.0 };
        let crit = ph.critical_locale.map(|l| l.to_string()).unwrap_or_else(|| "null".into());
        let _ = write!(
            out,
            "{{\"op\":\"{}\",\"phase\":\"{}\",\"count\":{},\"seconds\":{},\"share\":{share:.6},\"slack\":{},\"critical_locale\":{crit},\"imbalance\":{:.6},\"latency\":{}}}",
            ph.op,
            ph.phase,
            ph.count,
            sec(ph.seconds),
            sec(ph.slack),
            ph.imbalance,
            hist_json(&ph.latency, secs_e)
        );
    }
    let _ = write!(
        out,
        "]}},\"comm_matrix\":{{\"locales\":{},\"total_msgs\":{},\"total_bytes\":{},\"unattributed_msgs\":{},\"unattributed_bytes\":{},\"msgs\":{},\"bytes\":{}}},",
        p.comm.locales,
        p.comm.total_msgs(),
        p.comm.total_bytes(),
        p.comm.unattributed_msgs,
        p.comm.unattributed_bytes,
        u64_matrix_json(&p.comm.msgs, p.comm.locales),
        u64_matrix_json(&p.comm.bytes, p.comm.locales)
    );
    let _ = write!(out, "\"msg_sizes\":{}", hist_json(&p.msg_sizes, fmt_bytes_bound));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::Counters;
    use crate::trace::{CommSummary, TraceRecorder};

    /// Two ops on a 2-locale machine: op `a` with phases `g` (imbalanced
    /// compute) and `s` (comm from L0 to L1), then op `b` with one
    /// balanced phase.
    fn sample_trace() -> Trace {
        let r = TraceRecorder::new();
        let attrs = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
            pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
        };
        let c = Counters::default();

        let op_a = r.span(
            None,
            "a",
            SpanKind::Op,
            None,
            0.0,
            10.0,
            0,
            c,
            attrs(&[("locales", "2")]),
            None,
        );
        let g = r.span(Some(op_a), "g", SpanKind::Phase, None, 0.0, 6.0, 0, c, vec![], None);
        r.span(Some(g), "g", SpanKind::LocaleCompute, Some(0), 0.0, 2.0, 0, c, vec![], None);
        r.span(Some(g), "g", SpanKind::LocaleCompute, Some(1), 0.0, 6.0, 0, c, vec![], None);
        let s = r.span(Some(op_a), "s", SpanKind::Phase, None, 6.0, 4.0, 0, c, vec![], None);
        r.span(
            Some(s),
            "s",
            SpanKind::LocaleComm,
            Some(0),
            6.0,
            4.0,
            0,
            c,
            attrs(&[("dst1_msgs", "4"), ("dst1_bytes", "4096")]),
            Some(CommSummary { bulk_msgs: 4, bytes: 4096, peers: 1, ..Default::default() }),
        );

        let op_b = r.span(
            None,
            "b",
            SpanKind::Op,
            None,
            10.0,
            2.0,
            0,
            c,
            attrs(&[("locales", "2")]),
            None,
        );
        let w = r.span(Some(op_b), "w", SpanKind::Phase, None, 10.0, 2.0, 0, c, vec![], None);
        r.span(Some(w), "w", SpanKind::LocaleCompute, Some(0), 10.0, 2.0, 0, c, vec![], None);
        r.span(Some(w), "w", SpanKind::LocaleCompute, Some(1), 10.0, 2.0, 0, c, vec![], None);
        r.advance(12.0);
        r.snapshot()
    }

    #[test]
    fn busy_comm_idle_and_imbalance() {
        let p = profile(&sample_trace());
        assert_eq!(p.locales, 2);
        assert_eq!(p.sim_end, 12.0);
        // L0: 2 busy (g) + 2 busy (w) + 4 comm (s) = 8 work, 4 idle.
        assert_eq!(p.locale_totals[0].busy, 4.0);
        assert_eq!(p.locale_totals[0].comm, 4.0);
        assert_eq!(p.locale_totals[0].idle, 4.0);
        // L1: 6 + 2 busy, no comm, 4 idle.
        assert_eq!(p.locale_totals[1].busy, 8.0);
        assert_eq!(p.locale_totals[1].comm, 0.0);
        assert_eq!(p.locale_totals[1].idle, 4.0);
        assert!((p.imbalance() - 1.0).abs() < 1e-12, "equal work: balanced");

        let op_a = &p.ops[0];
        assert_eq!(op_a.name, "a");
        assert_eq!(op_a.count, 1);
        // op a work: L0 = 2+4 = 6, L1 = 6; balanced overall...
        assert!((op_a.imbalance - 1.0).abs() < 1e-12);
        // ...but phase g alone is imbalanced 6 / mean(4) = 1.5.
        let g = p.phases.iter().find(|ph| ph.phase == "g").unwrap();
        assert!((g.imbalance - 1.5).abs() < 1e-12);
        assert_eq!(g.critical_locale, Some(1));
    }

    #[test]
    fn critical_path_sums_to_makespan() {
        let p = profile(&sample_trace());
        assert!(p.uncovered.abs() < 1e-12);
        assert!((p.path_seconds - p.sim_end).abs() < 1e-9);
        // Phase g's slack: 6.0 - max-locale 6.0 = 0.
        let g = p.phases.iter().find(|ph| ph.phase == "g").unwrap();
        assert!(g.slack.abs() < 1e-12);
    }

    #[test]
    fn comm_matrix_reconstructs_pairs_and_totals() {
        let p = profile(&sample_trace());
        assert_eq!(p.comm.at(0, 1), (4, 4096));
        assert_eq!(p.comm.at(1, 0), (0, 0));
        assert_eq!(p.comm.total_bytes(), 4096);
        assert_eq!(p.comm.total_msgs(), 4);
        assert_eq!(p.comm.unattributed_bytes, 0);
        // avg message size 1024 B -> bucket [1024, 2048), p50 bound 2048.
        assert_eq!(p.msg_sizes.percentile(0.5), 2048.0);
    }

    #[test]
    fn comm_without_dst_attrs_is_kept_unattributed() {
        let r = TraceRecorder::new();
        let c = Counters::default();
        let op = r.span(None, "o", SpanKind::Op, None, 0.0, 1.0, 0, c, vec![], None);
        let ph = r.span(Some(op), "p", SpanKind::Phase, None, 0.0, 1.0, 0, c, vec![], None);
        r.span(
            Some(ph),
            "p",
            SpanKind::LocaleComm,
            Some(0),
            0.0,
            1.0,
            0,
            c,
            vec![],
            Some(CommSummary { fine_msgs: 10, bytes: 80, peers: 1, ..Default::default() }),
        );
        let p = profile(&r.snapshot());
        assert_eq!(p.comm.unattributed_msgs, 10);
        assert_eq!(p.comm.unattributed_bytes, 80);
        assert_eq!(p.comm.total_bytes(), 80, "legacy traffic still counts toward the total");
    }

    #[test]
    fn empty_trace_profiles_to_zeroes() {
        let p = profile(&Trace::default());
        assert_eq!(p.sim_end, 0.0);
        assert_eq!(p.locales, 0);
        assert!(p.ops.is_empty());
        assert!(p.phases.is_empty());
        assert_eq!(p.path_seconds, 0.0);
        assert_eq!(p.comm.total_bytes(), 0);
        assert_eq!(p.imbalance(), 1.0);
        // All three renderers must not panic on the degenerate input.
        assert!(render_text(&p).contains("0 spans"));
        assert!(render_markdown(&p).contains("Trace profile"));
        assert!(render_json(&p).contains("\"gblas-profile-v1\""));
    }

    #[test]
    fn instants_only_trace_shows_uncovered_time() {
        let r = TraceRecorder::new();
        r.advance(3.0);
        r.instant("tick", None, vec![]);
        let p = profile(&r.snapshot());
        assert_eq!(p.sim_end, 3.0);
        assert_eq!(p.path_seconds, 0.0);
        assert_eq!(p.uncovered, 3.0);
    }

    #[test]
    fn log_histogram_percentiles_are_bucket_bounds() {
        let mut h = LogHistogram::default();
        for _ in 0..90 {
            h.add(100.0, 1); // bucket [64,128)
        }
        h.add(1000.0, 10); // bucket [512,1024)
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 128.0);
        assert_eq!(h.percentile(0.9), 128.0);
        assert_eq!(h.percentile(0.99), 1024.0);
        assert_eq!(h.percentile(1.0), 1024.0);
        // exact powers of two land in their own bucket
        let mut e = LogHistogram::default();
        e.add(1024.0, 1);
        assert_eq!(e.percentile(1.0), 2048.0);
        // weight 0 and non-positive values are safe
        e.add(5.0, 0);
        e.add(0.0, 3);
        assert_eq!(e.percentile(0.25), 0.0);
    }

    #[test]
    fn renderers_are_deterministic_and_parse() {
        let p = profile(&sample_trace());
        assert_eq!(render_text(&p), render_text(&p));
        assert_eq!(render_json(&p), render_json(&p));
        let parsed = crate::trace::sink::parse_json(&render_json(&p)).expect("profile JSON parses");
        assert_eq!(parsed.get("schema").and_then(|v| v.as_str()), Some("gblas-profile-v1"));
        let sim_end = parsed.get("sim_end").and_then(|v| v.as_num()).unwrap();
        assert!((sim_end - 12.0).abs() < 1e-9);
        let text = render_text(&p);
        assert!(text.contains("communication matrix"));
        assert!(text.contains("critical path"));
        assert!(text.contains("a/g"));
    }
}
