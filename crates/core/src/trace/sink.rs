//! Trace exporters: Chrome trace-event JSON, JSONL, and a summary table.
//!
//! Determinism contract: [`chrome_trace`] and [`jsonl`] emit fields in a
//! fixed order and format simulated times with fixed precision, so two
//! runs that price identically produce identical output — **except** the
//! `wall_ns` field, which only [`jsonl`] carries and which is the single
//! designated non-deterministic field (consumers diffing traces strip
//! it; the determinism test does exactly that). [`chrome_trace`] uses the
//! simulated clock exclusively and is fully byte-deterministic.
//!
//! No serde: the writers are hand-rolled (the workspace builds offline),
//! and [`parse_json`] is a minimal recursive-descent JSON reader used by
//! the round-trip tests and the CLI `trace` subcommand.

use super::{CommSummary, SpanKind, Trace};
use crate::par::Counters;
use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Simulated seconds → microsecond timestamp with fixed (deterministic)
/// precision, as Chrome's `ts`/`dur` expect.
fn sim_us(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

/// Seconds with fixed precision for the JSONL stream.
fn sim_s(seconds: f64) -> String {
    format!("{seconds:.9}")
}

fn push_counters(args: &mut Vec<(String, String)>, c: &Counters) {
    // Only non-zero fields, in declaration order — keeps args readable
    // and the output stable.
    let fields: [(&str, u64); 10] = [
        ("elems", c.elems),
        ("flops", c.flops),
        ("search_probes", c.search_probes),
        ("atomics", c.atomics),
        ("sort_elems", c.sort_elems),
        ("spa_touches", c.spa_touches),
        ("rand_access", c.rand_access),
        ("bytes_moved", c.bytes_moved),
        ("tasks", c.tasks),
        ("regions", c.regions),
    ];
    for (name, v) in fields {
        if v != 0 {
            args.push((name.to_string(), v.to_string()));
        }
    }
}

fn push_comm(args: &mut Vec<(String, String)>, cs: &CommSummary) {
    let fields: [(&str, u64); 5] = [
        ("fine_msgs", cs.fine_msgs),
        ("fine_dependent_msgs", cs.fine_dependent_msgs),
        ("bulk_msgs", cs.bulk_msgs),
        ("bytes", cs.bytes),
        ("peers", cs.peers),
    ];
    for (name, v) in fields {
        if v != 0 {
            args.push((name.to_string(), v.to_string()));
        }
    }
}

/// `args` object body: values are numbers when they look numeric, else
/// strings. Attribute values here are all produced by our own writers, so
/// "looks like an integer" is a safe test.
fn args_json(args: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = if v.parse::<i64>().is_ok() {
            write!(out, "\"{}\":{}", escape(k), v)
        } else {
            write!(out, "\"{}\":\"{}\"", escape(k), escape(v))
        };
    }
    out.push('}');
    out
}

/// Chrome process id for a span: per-locale segments get one "process"
/// per locale (pid = locale + 1); op/phase rollups live on pid 0.
fn chrome_pid(locale: Option<usize>) -> usize {
    locale.map(|l| l + 1).unwrap_or(0)
}

/// Render the trace in Chrome trace-event JSON (the `[{...},...]` array
/// form), loadable in `chrome://tracing` / Perfetto.
///
/// Layout: pid 0 is the bulk-synchronous rollup track (op spans on tid 0,
/// phase spans on tid 1); each locale is its own process with compute on
/// tid 0 and communication on tid 1. The clock is **simulated time**
/// (µs), so the timeline shows exactly what the cost model priced;
/// output is byte-deterministic.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !std::mem::replace(&mut first, false) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
    };

    // Process metadata: name every track up front, rollup first then
    // locales ascending.
    emit(
        r#"{"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":"simulation (bulk-sync rollup)"}}"#.to_string(),
        &mut out,
    );
    for l in trace.locales() {
        emit(
            format!(
                r#"{{"ph":"M","name":"process_name","pid":{},"tid":0,"args":{{"name":"locale {}"}}}}"#,
                l + 1,
                l
            ),
            &mut out,
        );
    }

    for s in &trace.spans {
        let mut args = s.attrs.clone();
        push_counters(&mut args, &s.counters);
        if let Some(cs) = &s.comm {
            push_comm(&mut args, cs);
        }
        let tid = match s.kind {
            SpanKind::Op => 0,
            SpanKind::Phase => 1,
            SpanKind::LocaleCompute => 0,
            SpanKind::LocaleComm => 1,
        };
        emit(
            format!(
                r#"{{"ph":"X","name":"{}","cat":"{}","pid":{},"tid":{},"ts":{},"dur":{},"args":{}}}"#,
                escape(&s.name),
                s.kind.as_str(),
                chrome_pid(s.locale),
                tid,
                sim_us(s.sim_start),
                sim_us(s.sim_dur),
                args_json(&args)
            ),
            &mut out,
        );
    }

    for i in &trace.instants {
        emit(
            format!(
                r#"{{"ph":"i","name":"{}","cat":"event","pid":{},"tid":0,"ts":{},"s":"g","args":{}}}"#,
                escape(&i.name),
                chrome_pid(i.locale),
                sim_us(i.sim_ts),
                args_json(&i.attrs)
            ),
            &mut out,
        );
    }

    out.push_str("\n]\n");
    out
}

/// Render the trace as a JSONL event stream: one JSON object per line,
/// spans first (recording order) then instants.
///
/// Every line carries `"type"` (`"span"` | `"instant"`). Span lines are
/// deterministic except the `wall_ns` field — the one field carrying real
/// wall-clock time, kept separate so consumers can strip it when diffing.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for s in &trace.spans {
        let _ = write!(
            out,
            r#"{{"type":"span","id":{},"parent":{},"name":"{}","kind":"{}","locale":{},"sim_start":{},"sim_dur":{},"wall_ns":{}"#,
            s.id,
            s.parent.map(|p| p.to_string()).unwrap_or_else(|| "null".to_string()),
            escape(&s.name),
            s.kind.as_str(),
            s.locale.map(|l| l.to_string()).unwrap_or_else(|| "null".to_string()),
            sim_s(s.sim_start),
            sim_s(s.sim_dur),
            s.wall_ns,
        );
        let mut counters = Vec::new();
        push_counters(&mut counters, &s.counters);
        if !counters.is_empty() {
            let _ = write!(out, r#","counters":{}"#, args_json(&counters));
        }
        if let Some(cs) = &s.comm {
            let mut comm = Vec::new();
            push_comm(&mut comm, cs);
            let _ = write!(out, r#","comm":{}"#, args_json(&comm));
        }
        if !s.attrs.is_empty() {
            let attrs: Vec<(String, String)> = s.attrs.clone();
            let _ = write!(out, r#","attrs":{}"#, args_json(&attrs));
        }
        out.push_str("}\n");
    }
    for i in &trace.instants {
        let _ = write!(
            out,
            r#"{{"type":"instant","name":"{}","locale":{},"sim_ts":{}"#,
            escape(&i.name),
            i.locale.map(|l| l.to_string()).unwrap_or_else(|| "null".to_string()),
            sim_s(i.sim_ts),
        );
        if !i.attrs.is_empty() {
            let _ = write!(out, r#","attrs":{}"#, args_json(&i.attrs));
        }
        out.push_str("}\n");
    }
    out
}

/// Render a human-readable summary: per-op table (simulated seconds,
/// phase breakdown), communication totals, and fault/retry events.
pub fn summary(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>6} {:>14}", "span", "kind", "sim seconds");
    let _ = writeln!(out, "{:-<28} {:-<6} {:-<14}", "", "", "");
    for s in trace.spans.iter().filter(|s| s.kind == SpanKind::Op) {
        let _ = writeln!(out, "{:<28} {:>6} {:>14.6}", s.name, "op", s.sim_dur);
        for p in trace.spans.iter().filter(|p| p.parent == Some(s.id) && p.kind == SpanKind::Phase)
        {
            let _ = writeln!(out, "  {:<26} {:>6} {:>14.6}", p.name, "phase", p.sim_dur);
        }
    }

    let mut comm = CommSummary::default();
    for s in &trace.spans {
        if let Some(cs) = &s.comm {
            comm.fine_msgs += cs.fine_msgs;
            comm.fine_dependent_msgs += cs.fine_dependent_msgs;
            comm.bulk_msgs += cs.bulk_msgs;
            comm.bytes += cs.bytes;
        }
    }
    if !comm.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "comm: {} fine + {} fine-dependent + {} bulk messages, {} bytes",
            comm.fine_msgs, comm.fine_dependent_msgs, comm.bulk_msgs, comm.bytes
        );
    }

    // Workspace-pool reuse, aggregated from the `ws_*` attrs distributed
    // ops stamp on their spans — pooled runs show their hit rate without
    // a separate metrics dump.
    let mut ws = [0u64; 4]; // pool hits, pool misses, allocs, alloc bytes
    for s in trace.spans.iter().filter(|s| s.kind == SpanKind::Op) {
        for (k, v) in &s.attrs {
            let slot = match k.as_str() {
                "ws_pool_hits" => 0,
                "ws_pool_misses" => 1,
                "ws_allocs" => 2,
                "ws_alloc_bytes" => 3,
                _ => continue,
            };
            ws[slot] += v.parse::<u64>().unwrap_or(0);
        }
    }
    if ws.iter().any(|&v| v > 0) {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "workspace: {} pool hits, {} pool misses, {} allocs, {} bytes allocated",
            ws[0], ws[1], ws[2], ws[3]
        );
    }
    if !trace.instants.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "events:");
        for i in &trace.instants {
            let loc = i.locale.map(|l| format!(" @locale {l}")).unwrap_or_default();
            let attrs =
                i.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ");
            let _ = writeln!(out, "  t={:.6}s {}{} {}", i.sim_ts, i.name, loc, attrs);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} spans, {} events, simulated makespan {:.6}s",
        trace.spans.len(),
        trace.instants.len(),
        trace.sim_end()
    );
    out
}

/// A parsed JSON value — just enough structure for trace tooling.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' , got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Parse a complete JSON document (used for JSONL lines and whole Chrome
/// trace files). Rejects trailing garbage.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

fn kind_from_str(s: &str) -> Result<SpanKind, String> {
    match s {
        "op" => Ok(SpanKind::Op),
        "phase" => Ok(SpanKind::Phase),
        "compute" => Ok(SpanKind::LocaleCompute),
        "comm" => Ok(SpanKind::LocaleComm),
        other => Err(format!("unknown span kind '{other}'")),
    }
}

fn num_field(obj: &JsonValue, key: &str) -> Result<f64, String> {
    obj.get(key).and_then(JsonValue::as_num).ok_or_else(|| format!("missing number '{key}'"))
}

fn opt_usize(obj: &JsonValue, key: &str) -> Option<usize> {
    obj.get(key).and_then(JsonValue::as_num).map(|n| n as usize)
}

fn attrs_field(obj: &JsonValue, key: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(JsonValue::Obj(fields)) = obj.get(key) {
        for (k, v) in fields {
            let s = match v {
                JsonValue::Str(s) => s.clone(),
                JsonValue::Num(n) => {
                    if n.fract() == 0.0 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
                JsonValue::Bool(b) => b.to_string(),
                other => format!("{other:?}"),
            };
            out.push((k.clone(), s));
        }
    }
    out
}

fn u64_of(fields: &[(String, String)], key: &str) -> u64 {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok()).unwrap_or(0)
}

/// Reconstruct a [`Trace`] from the [`jsonl`] stream (blank lines are
/// skipped). This is the read half of the round-trip contract: feeding
/// `jsonl(&t)` back through here yields a trace whose re-export is
/// byte-identical to the original stream.
pub fn from_jsonl(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Every failure — malformed JSON, missing field, bad kind — names
        // the 1-based line it came from, so a truncated or corrupted
        // stream points straight at the damage.
        parse_jsonl_line(line, &mut trace).map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok(trace)
}

/// Parse one (non-blank, trimmed) JSONL record into `trace`. Errors are
/// unprefixed; [`from_jsonl`] adds the line number.
fn parse_jsonl_line(line: &str, trace: &mut Trace) -> Result<(), String> {
    let obj = parse_json(line)?;
    let ty =
        obj.get("type").and_then(JsonValue::as_str).ok_or_else(|| "missing 'type'".to_string())?;
    match ty {
        "span" => {
            let counters_kv = attrs_field(&obj, "counters");
            let counters = Counters {
                elems: u64_of(&counters_kv, "elems"),
                flops: u64_of(&counters_kv, "flops"),
                search_probes: u64_of(&counters_kv, "search_probes"),
                atomics: u64_of(&counters_kv, "atomics"),
                sort_elems: u64_of(&counters_kv, "sort_elems"),
                spa_touches: u64_of(&counters_kv, "spa_touches"),
                rand_access: u64_of(&counters_kv, "rand_access"),
                bytes_moved: u64_of(&counters_kv, "bytes_moved"),
                tasks: u64_of(&counters_kv, "tasks"),
                regions: u64_of(&counters_kv, "regions"),
            };
            let comm = match obj.get("comm") {
                Some(JsonValue::Obj(_)) => {
                    let kv = attrs_field(&obj, "comm");
                    Some(CommSummary {
                        fine_msgs: u64_of(&kv, "fine_msgs"),
                        fine_dependent_msgs: u64_of(&kv, "fine_dependent_msgs"),
                        bulk_msgs: u64_of(&kv, "bulk_msgs"),
                        bytes: u64_of(&kv, "bytes"),
                        peers: u64_of(&kv, "peers"),
                    })
                }
                _ => None,
            };
            trace.spans.push(super::Span {
                id: num_field(&obj, "id")? as u64,
                parent: obj.get("parent").and_then(JsonValue::as_num).map(|n| n as u64),
                name: obj
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "missing 'name'".to_string())?
                    .to_string(),
                kind: kind_from_str(obj.get("kind").and_then(JsonValue::as_str).unwrap_or(""))?,
                locale: opt_usize(&obj, "locale"),
                sim_start: num_field(&obj, "sim_start")?,
                sim_dur: num_field(&obj, "sim_dur")?,
                wall_ns: num_field(&obj, "wall_ns")? as u64,
                counters,
                attrs: attrs_field(&obj, "attrs"),
                comm,
            });
        }
        "instant" => {
            trace.instants.push(super::Instant {
                name: obj
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "missing 'name'".to_string())?
                    .to_string(),
                sim_ts: num_field(&obj, "sim_ts")?,
                locale: opt_usize(&obj, "locale"),
                attrs: attrs_field(&obj, "attrs"),
            });
        }
        other => return Err(format!("unknown type '{other}'")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    fn sample_trace() -> Trace {
        let r = TraceRecorder::new();
        let op = r.span(
            None,
            "spmspv_dist",
            SpanKind::Op,
            None,
            0.0,
            3.0,
            123_456,
            Counters::default(),
            vec![("nnz".into(), "42".into()), ("strategy".into(), "bulk".into())],
            None,
        );
        let ph = r.span(
            Some(op),
            "gather",
            SpanKind::Phase,
            None,
            0.0,
            1.5,
            0,
            Counters::default(),
            vec![],
            None,
        );
        r.span(
            Some(ph),
            "gather",
            SpanKind::LocaleCompute,
            Some(0),
            0.0,
            1.2,
            0,
            Counters { flops: 7, ..Default::default() },
            vec![],
            None,
        );
        r.span(
            Some(ph),
            "gather",
            SpanKind::LocaleComm,
            Some(1),
            0.0,
            0.3,
            0,
            Counters::default(),
            vec![],
            Some(CommSummary { bulk_msgs: 2, bytes: 64, peers: 1, ..Default::default() }),
        );
        r.advance(3.0);
        r.instant("comm_fault", Some(1), vec![("phase".into(), "gather".into())]);
        r.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_locale_processes() {
        let text = chrome_trace(&sample_trace());
        let v = parse_json(&text).expect("chrome trace must parse");
        let JsonValue::Arr(events) = v else { panic!("expected array") };
        // 2 metadata (rollup + locales 0,1 = 3 actually) + 4 spans + 1 instant
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3); // rollup, locale 0, locale 1
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 4);
        // Op span sits on pid 0 with simulated µs duration.
        assert_eq!(xs[0].get("pid").and_then(JsonValue::as_num), Some(0.0));
        assert_eq!(xs[0].get("dur").and_then(JsonValue::as_num), Some(3_000_000.0));
        // Locale compute segment on pid locale+1.
        assert_eq!(xs[2].get("pid").and_then(JsonValue::as_num), Some(1.0));
    }

    #[test]
    fn chrome_trace_has_no_wall_clock_fields() {
        let text = chrome_trace(&sample_trace());
        assert!(!text.contains("wall_ns"), "chrome sink must stay on the simulated clock");
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip_key_fields() {
        let trace = sample_trace();
        let text = jsonl(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), trace.spans.len() + trace.instants.len());
        let first = parse_json(lines[0]).expect("jsonl line must parse");
        assert_eq!(first.get("type").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(first.get("name").and_then(JsonValue::as_str), Some("spmspv_dist"));
        assert_eq!(first.get("wall_ns").and_then(JsonValue::as_num), Some(123_456.0));
        assert_eq!(
            first.get("attrs").and_then(|a| a.get("nnz")).and_then(JsonValue::as_num),
            Some(42.0)
        );
        let comm_line = parse_json(lines[3]).expect("comm span parses");
        assert_eq!(
            comm_line.get("comm").and_then(|c| c.get("bytes")).and_then(JsonValue::as_num),
            Some(64.0)
        );
        let last = parse_json(lines[4]).expect("instant parses");
        assert_eq!(last.get("type").and_then(JsonValue::as_str), Some("instant"));
        assert_eq!(last.get("sim_ts").and_then(JsonValue::as_num), Some(3.0));
    }

    #[test]
    fn from_jsonl_round_trips_byte_identically() {
        let trace = sample_trace();
        let text = jsonl(&trace);
        let parsed = from_jsonl(&text).expect("jsonl must reload");
        assert_eq!(parsed.spans.len(), trace.spans.len());
        assert_eq!(parsed.instants.len(), trace.instants.len());
        assert_eq!(parsed.spans[3].comm, trace.spans[3].comm);
        assert_eq!(parsed.spans[2].counters.flops, 7);
        // Re-exporting the reloaded trace reproduces the stream exactly.
        assert_eq!(jsonl(&parsed), text);
    }

    #[test]
    fn summary_names_ops_phases_and_events() {
        let text = summary(&sample_trace());
        assert!(text.contains("spmspv_dist"));
        assert!(text.contains("gather"));
        assert!(text.contains("comm_fault"));
        assert!(text.contains("2 bulk messages"));
    }

    #[test]
    fn parser_handles_escapes_nesting_and_numbers() {
        let v = parse_json(r#"{"a":[1,-2.5,1e3],"s":"x\"\\\nA","b":true,"n":null}"#).unwrap();
        let JsonValue::Arr(items) = v.get("a").unwrap() else { panic!() };
        assert_eq!(items[1], JsonValue::Num(-2.5));
        assert_eq!(items[2], JsonValue::Num(1000.0));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\"\\\nA"));
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert!(parse_json("{\"a\":1} trailing").is_err());
    }

    #[test]
    fn parser_resolves_unicode_and_control_escapes() {
        let v = parse_json(r#"{"s":"tab\tquote\"uAé end"}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("tab\tquote\"uAé end"));
        // a dangling escape is an error, not a panic
        assert!(parse_json(r#"{"s":"oops\"#).is_err());
        assert!(parse_json(r#"{"s":"bad\q"}"#).is_err());
    }

    #[test]
    fn parser_accepts_exponent_floats_and_whitespace() {
        let v = parse_json("  {\"a\": 1.5e-3 , \"b\": -2E+4, \"c\": 0.0}  \t\n").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_num), Some(0.0015));
        assert_eq!(v.get("b").and_then(JsonValue::as_num), Some(-20000.0));
        assert_eq!(v.get("c").and_then(JsonValue::as_num), Some(0.0));
    }

    #[test]
    fn from_jsonl_tolerates_blank_and_padded_lines() {
        let jsonl = jsonl(&sample_trace());
        // pad every line with trailing whitespace and sprinkle blanks
        let padded: String =
            jsonl.lines().map(|l| format!("{l}   \n\n")).collect::<Vec<_>>().join("");
        let t = from_jsonl(&padded).expect("padded JSONL still parses");
        assert_eq!(t.spans.len(), sample_trace().spans.len());
        assert_eq!(t.instants.len(), sample_trace().instants.len());
    }

    #[test]
    fn from_jsonl_names_the_bad_line_in_errors() {
        let jsonl = jsonl(&sample_trace());
        let n_lines = jsonl.lines().count();
        // truncate the final line mid-object, as a killed process would
        let truncated = &jsonl[..jsonl.len() - 20];
        let err = from_jsonl(truncated).expect_err("truncated trailer must fail");
        assert!(
            err.starts_with(&format!("line {n_lines}:")),
            "error should name the truncated line: {err}"
        );
        // a structurally-valid line missing required fields also names itself
        let err = from_jsonl("{\"type\":\"span\"}").expect_err("span without fields");
        assert!(err.starts_with("line 1:"), "got: {err}");
        let err = from_jsonl("{\"no_type\":1}").expect_err("missing type");
        assert!(err.contains("line 1") && err.contains("type"), "got: {err}");
    }

    #[test]
    fn summary_reports_workspace_reuse_from_ws_attrs() {
        let r = TraceRecorder::new();
        r.span(
            None,
            "op_a",
            SpanKind::Op,
            None,
            0.0,
            1.0,
            0,
            Counters::default(),
            vec![
                ("ws_pool_hits".to_string(), "7".to_string()),
                ("ws_pool_misses".to_string(), "2".to_string()),
                ("ws_allocs".to_string(), "2".to_string()),
                ("ws_alloc_bytes".to_string(), "4096".to_string()),
            ],
            None,
        );
        r.span(
            None,
            "op_b",
            SpanKind::Op,
            None,
            1.0,
            1.0,
            0,
            Counters::default(),
            vec![("ws_pool_hits".to_string(), "3".to_string())],
            None,
        );
        let text = summary(&r.snapshot());
        assert!(
            text.contains("workspace: 10 pool hits, 2 pool misses, 2 allocs, 4096 bytes allocated"),
            "got: {text}"
        );
        // traces without ws attrs keep the old output exactly
        assert!(!summary(&sample_trace()).contains("workspace:"));
    }
}
