//! Reusable kernel workspaces: the allocation-reuse subsystem.
//!
//! Every hot kernel (SpMSpV, MxV, eWise, Assign, the radix/merge sorts)
//! needs per-call scratch — a SPA over the output domain, per-task
//! staging vectors, bucket scratch, per-destination outboxes. Before this
//! subsystem each call re-materialized that scratch (`O(n)` allocation
//! *and* zero-fill per BFS level before any real work), which is exactly
//! the churn CombBLAS 2.0 attributes much of its distributed speedup to
//! eliminating. A [`WorkspacePool`] keeps retired scratch shelved by
//! concrete type; kernels check it out through RAII [`WsGuard`]s that
//! hand the buffer back on drop, so an iterative algorithm allocates on
//! its first iteration and then runs allocation-free.
//!
//! Three design points:
//!
//! * **Lazy reset.** Pooled SPAs are generation-stamped (see
//!   [`crate::spa`]), so a checkout costs an O(1) generation bump, never
//!   an O(capacity) clear. Plain vectors are `clear()`ed (O(1) for `Copy`
//!   payloads), keeping their backing capacity.
//! * **Capacity misses fall back to fresh allocation.** A checkout whose
//!   request exceeds every shelved buffer grows or allocates — counted in
//!   the `pool_misses`/`allocs`/`alloc_bytes` metrics so "steady-state
//!   misses = 0" is a pinned, observable invariant rather than a claim.
//! * **Escape hatch.** `GBLAS_WORKSPACE=off` (or `0`/`false`/`disabled`)
//!   disables pooling at pool construction: every checkout allocates
//!   fresh and nothing is shelved, giving a bit-identical unpooled oracle
//!   for equivalence tests.
//!
//! Accounting lives in the [`MetricsRegistry`] (`allocs`, `alloc_bytes`,
//! `pool_hits`, `pool_misses`) and mirrored pool-local [`WorkspaceStats`]
//! — deliberately *not* in [`crate::par::Counters`]: pooling must not
//! perturb the simulated cost model or any golden trace, so the work
//! counters of a pooled and an unpooled run are identical by
//! construction.

use crate::spa::{AtomicSpa, BucketSpa, DenseSpa};
use crate::trace::MetricsRegistry;
use parking_lot::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable that disables workspace pooling when set to
/// `off`, `0`, `false` or `disabled` (read at pool construction).
pub const WORKSPACE_ENV: &str = "GBLAS_WORKSPACE";

/// Cap on shelved buffers per concrete type, bounding pool memory even
/// under pathological checkout patterns.
const SHELF_CAP: usize = 64;

/// Snapshot of one pool's reuse accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Checkouts served from the shelf without allocating.
    pub pool_hits: u64,
    /// Checkouts that allocated fresh (cold pool, capacity miss, or
    /// pooling disabled).
    pub pool_misses: u64,
    /// Fresh allocations made (misses plus in-place growth of pooled
    /// buffers on capacity misses).
    pub allocs: u64,
    /// Estimated bytes of those allocations.
    pub alloc_bytes: u64,
}

impl WorkspaceStats {
    /// Accumulate another pool's stats (for per-locale aggregation).
    pub fn merge(&mut self, other: &WorkspaceStats) {
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
    }

    /// Field-wise saturating difference — `later - earlier` for deltas
    /// across iterations.
    pub fn saturating_sub(&self, earlier: &WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
        }
    }
}

/// A shelf of retired workspace buffers keyed by concrete type, plus the
/// reuse accounting. Shared via `Arc` by an [`crate::par::ExecCtx`] (and,
/// in the distributed layer, one per locale) so scratch survives across
/// ops and algorithm iterations.
pub struct WorkspacePool {
    enabled: AtomicBool,
    shelves: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("enabled", &self.enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for WorkspacePool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl WorkspacePool {
    /// A pool with pooling explicitly on or off.
    pub fn new(enabled: bool) -> Self {
        WorkspacePool {
            enabled: AtomicBool::new(enabled),
            shelves: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
        }
    }

    /// A pool honoring the [`WORKSPACE_ENV`] escape hatch.
    pub fn from_env() -> Self {
        let off = std::env::var(WORKSPACE_ENV)
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "off" || v == "0" || v == "false" || v == "disabled"
            })
            .unwrap_or(false);
        Self::new(!off)
    }

    /// Whether checkouts recycle shelved buffers.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip pooling; turning it off drains the shelves.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        if !on {
            self.shelves.lock().clear();
        }
    }

    /// The pool's cumulative reuse accounting.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            pool_hits: self.hits.load(Ordering::Relaxed),
            pool_misses: self.misses.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
        }
    }

    fn take_raw<T: Send + 'static>(&self) -> Option<T> {
        if !self.enabled() {
            return None;
        }
        let boxed = self.shelves.lock().get_mut(&TypeId::of::<T>())?.pop()?;
        // The shelf is keyed by `TypeId::of::<T>`, so this downcast
        // cannot fail.
        Some(*boxed.downcast::<T>().expect("workspace shelf type mismatch"))
    }

    fn put_raw<T: Send + 'static>(&self, item: T) {
        if !self.enabled() {
            return;
        }
        let mut shelves = self.shelves.lock();
        let shelf = shelves.entry(TypeId::of::<T>()).or_default();
        if shelf.len() < SHELF_CAP {
            shelf.push(Box::new(item));
        }
    }

    fn charge_hit(&self, metrics: &MetricsRegistry) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        metrics.pool_hits(1);
    }

    fn charge_miss(&self, bytes: u64, metrics: &MetricsRegistry) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        metrics.pool_misses(1);
        self.charge_alloc(bytes, metrics);
    }

    fn charge_alloc(&self, bytes: u64, metrics: &MetricsRegistry) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
        metrics.allocs(1);
        metrics.alloc_bytes(bytes);
    }

    fn guard<T: Send + 'static>(self: &Arc<Self>, item: T) -> WsGuard<T> {
        let pool = self.enabled().then(|| Arc::clone(self));
        WsGuard { pool, item: Some(item) }
    }

    /// Check out a [`DenseSpa`] covering `0..capacity`, logically empty.
    pub fn dense_spa<T: Copy + Send + 'static>(
        self: &Arc<Self>,
        capacity: usize,
        fill: T,
        metrics: &MetricsRegistry,
    ) -> WsGuard<DenseSpa<T>> {
        let elem = (std::mem::size_of::<T>() + std::mem::size_of::<u64>()) as u64;
        match self.take_raw::<DenseSpa<T>>() {
            Some(mut spa) => {
                let shortfall = capacity.saturating_sub(spa.capacity()) as u64;
                if spa.ensure(capacity, fill) {
                    self.charge_alloc(shortfall * elem, metrics);
                }
                self.charge_hit(metrics);
                self.guard(spa)
            }
            None => {
                self.charge_miss(capacity as u64 * elem, metrics);
                self.guard(DenseSpa::new(capacity, fill))
            }
        }
    }

    /// Check out an [`AtomicSpa`] covering `0..capacity`, logically empty.
    pub fn atomic_spa(
        self: &Arc<Self>,
        capacity: usize,
        metrics: &MetricsRegistry,
    ) -> WsGuard<AtomicSpa> {
        let elem = (std::mem::size_of::<u64>() + 2 * std::mem::size_of::<usize>()) as u64;
        match self.take_raw::<AtomicSpa>() {
            Some(mut spa) => {
                let shortfall = capacity.saturating_sub(spa.capacity()) as u64;
                if spa.ensure(capacity) {
                    self.charge_alloc(shortfall * elem, metrics);
                }
                self.charge_hit(metrics);
                self.guard(spa)
            }
            None => {
                self.charge_miss(capacity as u64 * elem, metrics);
                self.guard(AtomicSpa::new(capacity))
            }
        }
    }

    /// Check out a [`BucketSpa`] shaped for `(capacity, nbuckets)`, empty.
    pub fn bucket_spa(
        self: &Arc<Self>,
        capacity: usize,
        nbuckets: usize,
        metrics: &MetricsRegistry,
    ) -> WsGuard<BucketSpa> {
        let shelf_bytes = (nbuckets * std::mem::size_of::<Vec<usize>>()) as u64;
        match self.take_raw::<BucketSpa>() {
            Some(mut spa) => {
                spa.reset(capacity, nbuckets);
                self.charge_hit(metrics);
                self.guard(spa)
            }
            None => {
                self.charge_miss(shelf_bytes, metrics);
                self.guard(BucketSpa::new(capacity, nbuckets))
            }
        }
    }

    /// Check out an empty staging vector (backing capacity retained from
    /// its previous life; grows lazily as the kernel pushes).
    pub fn vec<T: Send + 'static>(self: &Arc<Self>, metrics: &MetricsRegistry) -> WsGuard<Vec<T>> {
        match self.take_raw::<Vec<T>>() {
            Some(mut v) => {
                v.clear();
                self.charge_hit(metrics);
                self.guard(v)
            }
            None => {
                // An empty `Vec` performs no heap allocation yet; the
                // first growth is what the allocator will see.
                self.charge_miss(0, metrics);
                self.guard(Vec::new())
            }
        }
    }

    /// Check out a vector of exactly `len` copies of `fill` (the dense
    /// owner-side scratch shape: `vec![fill; len]` without the per-call
    /// allocation).
    pub fn filled_vec<T: Clone + Send + 'static>(
        self: &Arc<Self>,
        len: usize,
        fill: T,
        metrics: &MetricsRegistry,
    ) -> WsGuard<Vec<T>> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        match self.take_raw::<Vec<T>>() {
            Some(mut v) => {
                if v.capacity() < len {
                    self.charge_alloc(bytes, metrics);
                }
                v.clear();
                v.resize(len, fill);
                self.charge_hit(metrics);
                self.guard(v)
            }
            None => {
                self.charge_miss(bytes, metrics);
                self.guard(vec![fill; len])
            }
        }
    }

    /// Check out a vector of `n` empty inner vectors (the per-destination
    /// outbox shape), inner allocations retained across checkouts.
    pub fn nested_vec<T: Send + 'static>(
        self: &Arc<Self>,
        n: usize,
        metrics: &MetricsRegistry,
    ) -> WsGuard<Vec<Vec<T>>> {
        let bytes = (n * std::mem::size_of::<Vec<T>>()) as u64;
        match self.take_raw::<Vec<Vec<T>>>() {
            Some(mut v) => {
                if v.len() != n {
                    v.resize_with(n, Vec::new);
                    v.truncate(n);
                }
                for inner in v.iter_mut() {
                    inner.clear();
                }
                self.charge_hit(metrics);
                self.guard(v)
            }
            None => {
                self.charge_miss(bytes, metrics);
                self.guard((0..n).map(|_| Vec::new()).collect())
            }
        }
    }
}

/// RAII checkout of one workspace buffer: dereferences to the buffer and
/// returns it to its pool on drop. Detached from the pool (plain
/// ownership, dropped normally) when pooling is disabled.
pub struct WsGuard<T: Send + 'static> {
    pool: Option<Arc<WorkspacePool>>,
    item: Option<T>,
}

impl<T: Send + 'static> WsGuard<T> {
    /// Take the buffer out of the guard permanently — it will *not*
    /// return to the pool (for the rare case where scratch graduates
    /// into an owned output).
    pub fn into_inner(mut self) -> T {
        self.item.take().expect("workspace guard already emptied")
    }
}

impl<T: Send + 'static> Deref for WsGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.item.as_ref().expect("workspace guard already emptied")
    }
}

impl<T: Send + 'static> DerefMut for WsGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("workspace guard already emptied")
    }
}

impl<T: Send + 'static> Drop for WsGuard<T> {
    fn drop(&mut self) {
        if let (Some(pool), Some(item)) = (self.pool.take(), self.item.take()) {
            pool.put_raw(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<WorkspacePool> {
        Arc::new(WorkspacePool::new(true))
    }

    #[test]
    fn checkout_miss_then_hit() {
        let p = pool();
        let m = MetricsRegistry::default();
        {
            let mut v = p.vec::<usize>(&m);
            v.extend(0..100);
        } // drop returns it
        let v = p.vec::<usize>(&m);
        assert!(v.is_empty(), "recycled vector must be cleared");
        assert!(v.capacity() >= 100, "recycled vector keeps its backing");
        let s = p.stats();
        assert_eq!((s.pool_misses, s.pool_hits), (1, 1));
        let snap = m.snapshot();
        assert_eq!((snap.pool_misses, snap.pool_hits), (1, 1));
    }

    #[test]
    fn shelves_are_keyed_by_concrete_type() {
        let p = pool();
        let m = MetricsRegistry::default();
        {
            let mut a = p.vec::<u64>(&m);
            a.push(7);
        }
        // a different element type cannot see the shelved u64 vector
        let b = p.vec::<f64>(&m);
        assert_eq!(b.capacity(), 0);
        let a2 = p.vec::<u64>(&m);
        assert!(a2.capacity() > 0);
    }

    #[test]
    fn dense_spa_checkout_never_returns_stale_values() {
        let p = pool();
        let m = MetricsRegistry::default();
        let mut c = crate::par::Counters::default();
        {
            let mut spa = p.dense_spa::<f64>(16, 0.0, &m);
            spa.accumulate(3, 9.0, &crate::algebra::Plus, &mut c);
        }
        let spa = p.dense_spa::<f64>(16, 0.0, &m);
        assert_eq!(spa.get(3), None, "prior generation must be invisible");
        assert_eq!(p.stats().pool_hits, 1);
    }

    #[test]
    fn capacity_miss_grows_and_counts_an_alloc() {
        let p = pool();
        let m = MetricsRegistry::default();
        drop(p.dense_spa::<u32>(8, 0, &m));
        let before = p.stats();
        let spa = p.dense_spa::<u32>(1000, 0, &m); // grow in place
        assert!(spa.capacity() >= 1000);
        let d = p.stats().saturating_sub(&before);
        assert_eq!(d.pool_hits, 1, "growth is still a shelf hit");
        assert_eq!(d.allocs, 1, "but the growth is an allocation");
        assert!(d.alloc_bytes > 0);
        drop(spa);
        // shrink request: backing retained, no new allocation
        let before = p.stats();
        let spa = p.dense_spa::<u32>(4, 0, &m);
        assert!(spa.capacity() >= 1000);
        let d = p.stats().saturating_sub(&before);
        assert_eq!((d.pool_hits, d.allocs), (1, 0));
    }

    #[test]
    fn disabled_pool_always_allocates_and_shelves_nothing() {
        let p = Arc::new(WorkspacePool::new(false));
        let m = MetricsRegistry::default();
        {
            let mut v = p.vec::<usize>(&m);
            v.extend(0..50);
        }
        let v = p.vec::<usize>(&m);
        assert_eq!(v.capacity(), 0, "nothing may be recycled when disabled");
        let s = p.stats();
        assert_eq!((s.pool_hits, s.pool_misses), (0, 2));
    }

    #[test]
    fn set_enabled_off_drains_the_shelves() {
        let p = pool();
        let m = MetricsRegistry::default();
        {
            let mut v = p.vec::<usize>(&m);
            v.extend(0..10);
        }
        p.set_enabled(false);
        p.set_enabled(true);
        let v = p.vec::<usize>(&m);
        assert_eq!(v.capacity(), 0, "drained shelf cannot serve hits");
    }

    #[test]
    fn filled_vec_matches_vec_macro_semantics() {
        let p = pool();
        let m = MetricsRegistry::default();
        {
            let mut v = p.filled_vec(6, 7u8, &m);
            assert_eq!(&*v, &[7u8; 6]);
            v[2] = 0;
        }
        let v = p.filled_vec(4, 9u8, &m);
        assert_eq!(&*v, &[9u8; 4], "stale contents must be overwritten");
    }

    #[test]
    fn nested_vec_keeps_inner_capacity_and_adjusts_len() {
        let p = pool();
        let m = MetricsRegistry::default();
        {
            let mut ob = p.nested_vec::<u32>(4, &m);
            ob[1].extend(0..64);
        }
        let ob = p.nested_vec::<u32>(4, &m);
        assert_eq!(ob.len(), 4);
        assert!(ob[1].is_empty());
        assert!(ob[1].capacity() >= 64, "inner outbox buffers are reused");
        let grown = p.nested_vec::<u32>(6, &m);
        assert_eq!(grown.len(), 6);
    }

    #[test]
    fn into_inner_detaches_from_the_pool() {
        let p = pool();
        let m = MetricsRegistry::default();
        let mut v = p.vec::<usize>(&m);
        v.push(1);
        let owned = v.into_inner();
        assert_eq!(owned, vec![1]);
        // it was not shelved
        assert_eq!(p.vec::<usize>(&m).capacity(), 0);
    }

    #[test]
    fn from_env_reads_the_escape_hatch() {
        std::env::set_var(WORKSPACE_ENV, "off");
        assert!(!WorkspacePool::from_env().enabled());
        std::env::set_var(WORKSPACE_ENV, "on");
        assert!(WorkspacePool::from_env().enabled());
        std::env::remove_var(WORKSPACE_ENV);
        assert!(WorkspacePool::from_env().enabled());
    }
}
