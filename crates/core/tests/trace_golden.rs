//! Golden-file test for the Chrome trace exporter.
//!
//! The Chrome sink promises byte-determinism (fixed field order, fixed
//! `{:.3}` µs precision, simulated clock only). This pins the exact bytes
//! for a small hand-built trace; if the format changes intentionally,
//! regenerate the golden file with
//! `GBLAS_REGEN_GOLDEN=1 cargo test -p gblas-core --test trace_golden`.

use gblas_core::par::Counters;
use gblas_core::trace::sink::chrome_trace;
use gblas_core::trace::{CommSummary, SpanKind, TraceRecorder};

fn fixed_trace() -> gblas_core::trace::Trace {
    let r = TraceRecorder::new();
    let op = r.span(
        None,
        "spmspv_dist",
        SpanKind::Op,
        None,
        0.0,
        0.002,
        7_777, // wall_ns: must never reach the Chrome output
        Counters { elems: 5, flops: 12, ..Default::default() },
        vec![("nnz".into(), "5".into()), ("strategy".into(), "fine".into())],
        None,
    );
    let gather = r.span(
        Some(op),
        "gather",
        SpanKind::Phase,
        None,
        0.0,
        0.0015,
        0,
        Counters::default(),
        vec![],
        None,
    );
    r.span(
        Some(gather),
        "gather",
        SpanKind::LocaleCompute,
        Some(0),
        0.0,
        0.001,
        0,
        Counters { elems: 3, ..Default::default() },
        vec![],
        None,
    );
    r.span(
        Some(gather),
        "gather",
        SpanKind::LocaleComm,
        Some(1),
        0.001,
        0.0005,
        0,
        Counters::default(),
        vec![],
        Some(CommSummary { fine_msgs: 4, bytes: 32, peers: 1, ..Default::default() }),
    );
    r.span(
        Some(op),
        "local",
        SpanKind::Phase,
        None,
        0.0015,
        0.0005,
        0,
        Counters::default(),
        vec![],
        None,
    );
    r.advance(0.002);
    r.instant("comm_fault", Some(1), vec![("phase".into(), "gather".into())]);

    // A bucketed-merge op: the sort phase is replaced by a `bucket`
    // scatter/drain (random scatter writes + occupancy scans, zero
    // sort_elems), and the aggregated gather coalesces each locale pair's
    // traffic into one request and one bulk reply.
    let op2 = r.span(
        None,
        "spmspv_dist_semiring",
        SpanKind::Op,
        None,
        0.002,
        0.002,
        8_888, // wall_ns: must never reach the Chrome output
        Counters { elems: 9, flops: 20, ..Default::default() },
        vec![
            ("nnz".into(), "9".into()),
            ("strategy".into(), "bulk".into()),
            ("merge".into(), "bucket".into()),
        ],
        None,
    );
    let bucket = r.span(
        Some(op2),
        "bucket",
        SpanKind::Phase,
        None,
        0.002,
        0.0004,
        0,
        Counters::default(),
        vec![],
        None,
    );
    r.span(
        Some(bucket),
        "bucket",
        SpanKind::LocaleCompute,
        Some(0),
        0.002,
        0.0003,
        0,
        Counters { elems: 9, rand_access: 9, spa_touches: 9, ..Default::default() },
        vec![],
        None,
    );
    let agg = r.span(
        Some(op2),
        "gather",
        SpanKind::Phase,
        None,
        0.0024,
        0.0012,
        0,
        Counters::default(),
        vec![],
        None,
    );
    // one 16-byte range request, answered by one coalesced bulk reply
    r.span(
        Some(agg),
        "gather",
        SpanKind::LocaleComm,
        Some(0),
        0.0024,
        0.0002,
        0,
        Counters::default(),
        vec![],
        Some(CommSummary { bulk_msgs: 1, bytes: 16, peers: 1, ..Default::default() }),
    );
    r.span(
        Some(agg),
        "gather",
        SpanKind::LocaleComm,
        Some(1),
        0.0026,
        0.001,
        0,
        Counters::default(),
        vec![],
        Some(CommSummary { bulk_msgs: 1, bytes: 144, peers: 1, ..Default::default() }),
    );
    r.advance(0.004);
    r.snapshot()
}

#[test]
fn chrome_trace_matches_golden_file() {
    let got = chrome_trace(&fixed_trace());
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_small.json");
    if std::env::var_os("GBLAS_REGEN_GOLDEN").is_some() {
        std::fs::write(&golden, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden).expect("golden file present");
    assert_eq!(got, want, "Chrome exporter output drifted from the golden file");
}

#[test]
fn golden_run_is_reproducible() {
    // Two recorders fed the same spans must serialize identically —
    // the recorder itself introduces no nondeterminism.
    assert_eq!(chrome_trace(&fixed_trace()), chrome_trace(&fixed_trace()));
}
