//! The distributed implementation of [`GblasBackend`]: every primitive op
//! maps to its bulk-synchronous distributed kernel, and every call's
//! [`SimReport`] accumulates into a backend-held ledger the algorithm
//! wrapper drains with [`DistBackend::take_report`].
//!
//! This is the "version 2" half of the paper's split made reusable: the
//! algorithm text is identical to the shared-memory run, but each
//! primitive executes one task per locale over block-distributed
//! containers, pays its gather/scatter/broadcast traffic into the comm
//! ledger, and emits trace spans under the ambient [`DistCtx`].

use crate::exec::DistCtx;
use crate::mat::DistCsrMatrix;
use crate::ops::expand::DistFrontier;
use crate::ops::spmspv::{CommStrategy, DistMask};
use crate::vec::{DistDenseVec, DistSparseVec};
use gblas_core::algebra::{BinaryOp, ComMonoid, Monoid, Scalar, Semiring};
use gblas_core::backend::{GblasBackend, MaskSpec};
use gblas_core::container::{DenseVec, SparseVec};
use gblas_core::error::Result;
use gblas_core::ops::selection;
use gblas_core::ops::spmspv::SpMSpVOpts;
use gblas_sim::SimReport;
use parking_lot::Mutex;

/// Phase used when pricing driver-side global scalar decisions.
pub const PHASE_ALLREDUCE: &str = "allreduce";

/// The simulated distributed-memory backend.
///
/// Wraps a [`DistCtx`] plus the communication strategy every SpMSpV-style
/// kernel should use, and accumulates the per-op [`SimReport`]s so a
/// whole algorithm run prices as one ledger.
pub struct DistBackend<'a> {
    /// The distributed execution context (machine, comm log, tracing).
    pub dctx: &'a DistCtx,
    /// Gather/scatter aggregation for the sparse-vector kernels.
    pub strategy: CommStrategy,
    /// SUMMA variant every `mxm_masked` call routes through
    /// (`--mxm-grid 2d|3d` at the CLI).
    pub mxm_algo: crate::ops::mxm::MxmAlgo,
    report: Mutex<SimReport>,
}

impl<'a> DistBackend<'a> {
    /// A backend using fine-grained communication (Listing 8 as written).
    pub fn new(dctx: &'a DistCtx) -> Self {
        Self::with_strategy(dctx, CommStrategy::Fine)
    }

    /// A backend with an explicit communication strategy.
    pub fn with_strategy(dctx: &'a DistCtx, strategy: CommStrategy) -> Self {
        DistBackend {
            dctx,
            strategy,
            mxm_algo: crate::ops::mxm::MxmAlgo::Summa2d,
            report: Mutex::new(SimReport::default()),
        }
    }

    /// Pick the SUMMA variant for subsequent `mxm` calls.
    pub fn with_mxm(mut self, algo: crate::ops::mxm::MxmAlgo) -> Self {
        self.mxm_algo = algo;
        self
    }

    /// Drain the accumulated simulation ledger (resets it to empty).
    pub fn take_report(&self) -> SimReport {
        std::mem::take(&mut self.report.lock())
    }

    fn absorb(&self, r: SimReport) {
        self.report.lock().merge(&r);
    }
}

/// Translate a backend mask into the scatter-side [`DistMask`].
fn dist_mask<'m>(m: &MaskSpec<'m, DistDenseVec<bool>>) -> DistMask<'m> {
    DistMask { bits: m.bits, complement: m.complement }
}

impl GblasBackend for DistBackend<'_> {
    type Matrix<T: Scalar> = DistCsrMatrix<T>;
    type SparseVec<T: Scalar> = DistSparseVec<T>;
    type DenseVec<T: Scalar> = DistDenseVec<T>;
    type Frontier<T: Scalar> = DistFrontier<T>;

    fn name(&self) -> &'static str {
        "dist"
    }

    fn mat_nrows<T: Scalar>(&self, a: &DistCsrMatrix<T>) -> usize {
        a.nrows()
    }

    fn mat_ncols<T: Scalar>(&self, a: &DistCsrMatrix<T>) -> usize {
        a.ncols()
    }

    fn mat_nnz<T: Scalar>(&self, a: &DistCsrMatrix<T>) -> usize {
        a.nnz()
    }

    fn mat_map<T: Scalar, U: Scalar>(
        &self,
        a: &DistCsrMatrix<T>,
        f: &(impl Fn(usize, usize, T) -> U + Sync),
    ) -> Result<DistCsrMatrix<U>> {
        let (out, r) = crate::ops::select::map_mat_dist(a, f, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn mat_select<T: Scalar>(
        &self,
        a: &DistCsrMatrix<T>,
        pred: &(impl Fn(usize, usize, T) -> bool + Sync),
    ) -> Result<DistCsrMatrix<T>> {
        let (out, r) = crate::ops::select::select_mat_dist(a, pred, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    /// The raw transpose: on a rectangular grid the result lands on the
    /// flipped `pc×pr` grid. Keeping the natural placement preserves the
    /// accumulation order the vector kernels have always seen (the
    /// betweenness back sweep is bit-pinned on `p×1` grids); consumers
    /// that need grid-aligned operands (SUMMA) regrid lazily in
    /// [`Self::mxm_masked`].
    fn mat_transpose<T: Scalar>(&self, a: &DistCsrMatrix<T>) -> Result<DistCsrMatrix<T>> {
        let (out, r) = crate::ops::transpose::transpose_dist(a, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn mxm_masked<A, B, C, AddM, MulOp, M>(
        &self,
        a: &DistCsrMatrix<A>,
        b: &DistCsrMatrix<B>,
        ring: &Semiring<AddM, MulOp>,
        mask: Option<&DistCsrMatrix<M>>,
    ) -> Result<DistCsrMatrix<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        M: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        // SUMMA wants every operand on A's grid; a matrix arriving on a
        // different shape (e.g. a transpose on the flipped rectangular
        // grid) is regridded here, priced as a `regrid` phase.
        let regrid = |m: &DistCsrMatrix<B>| -> Result<DistCsrMatrix<B>> {
            let (out, r) = crate::ops::transpose::redistribute_dist(m, a.grid(), self.dctx)?;
            self.absorb(r);
            Ok(out)
        };
        let b_aligned = if b.grid() == a.grid() { None } else { Some(regrid(b)?) };
        let mask_aligned = match mask {
            Some(m) if m.grid() != a.grid() => {
                let (out, r) = crate::ops::transpose::redistribute_dist(m, a.grid(), self.dctx)?;
                self.absorb(r);
                Some(out)
            }
            _ => None,
        };
        let (out, r) = crate::ops::mxm::mxm_dist_masked_with(
            a,
            b_aligned.as_ref().unwrap_or(b),
            ring,
            mask_aligned.as_ref().or(mask),
            self.mxm_algo,
            self.dctx,
        )?;
        self.absorb(r);
        Ok(out)
    }

    fn reduce_rows<T: Scalar, M>(&self, a: &DistCsrMatrix<T>, monoid: &M) -> Result<Vec<T>>
    where
        M: Monoid<T>,
    {
        let (out, r) = crate::ops::reduce::reduce_rows_dist(a, monoid, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn reduce_mat<T: Scalar, M>(&self, a: &DistCsrMatrix<T>, monoid: &M) -> Result<T>
    where
        M: ComMonoid<T>,
    {
        let (out, r) = crate::ops::reduce::reduce_mat_dist(a, monoid, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn spmspv_first_visitor<T: Scalar>(
        &self,
        a: &DistCsrMatrix<T>,
        x: &DistSparseVec<usize>,
        mask: Option<MaskSpec<'_, DistDenseVec<bool>>>,
        opts: SpMSpVOpts,
    ) -> Result<DistSparseVec<usize>> {
        let dm = mask.as_ref().map(dist_mask);
        let (out, r) =
            crate::ops::spmspv::spmspv_dist_with(a, x, dm, self.strategy, opts, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn spmspv_semiring<A, B, C, AddM, MulOp>(
        &self,
        a: &DistCsrMatrix<B>,
        x: &DistSparseVec<A>,
        ring: &Semiring<AddM, MulOp>,
        mask: Option<MaskSpec<'_, DistDenseVec<bool>>>,
        opts: SpMSpVOpts,
    ) -> Result<DistSparseVec<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        let dm = mask.as_ref().map(dist_mask);
        let (out, r) = crate::ops::spmspv::spmspv_dist_semiring_with(
            a,
            x,
            ring,
            dm,
            self.strategy,
            opts,
            self.dctx,
        )?;
        self.absorb(r);
        Ok(out)
    }

    fn spmv<A, B, C, AddM, MulOp>(
        &self,
        a: &DistCsrMatrix<B>,
        x: &DistDenseVec<A>,
        ring: &Semiring<AddM, MulOp>,
    ) -> Result<DistDenseVec<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        let (out, r) = crate::ops::spmv::spmv_dist(a, x, ring, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn frontier_from_entries<T: Scalar>(
        &self,
        capacity: usize,
        entries: Vec<Vec<(usize, T)>>,
    ) -> Result<DistFrontier<T>> {
        DistFrontier::from_entries(capacity, entries, self.dctx.locales())
    }

    fn frontier_entries<T: Scalar>(&self, f: &DistFrontier<T>) -> Vec<Vec<(usize, T)>> {
        f.to_entries()
    }

    fn frontier_nnz<T: Scalar>(&self, f: &DistFrontier<T>) -> usize {
        f.nnz()
    }

    fn expand_first_visitor<T: Scalar>(
        &self,
        a: &DistCsrMatrix<T>,
        f: &DistFrontier<usize>,
        visited: &[DistDenseVec<bool>],
        opts: SpMSpVOpts,
    ) -> Result<DistFrontier<usize>> {
        let (out, r) =
            crate::ops::expand::expand_dist_first_visitor(a, f, visited, opts, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn expand_semiring<A, B, C, AddM, MulOp>(
        &self,
        a: &DistCsrMatrix<B>,
        f: &DistFrontier<A>,
        ring: &Semiring<AddM, MulOp>,
        opts: SpMSpVOpts,
    ) -> Result<DistFrontier<C>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        let (out, r) = crate::ops::expand::expand_dist_semiring(a, f, ring, opts, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn spmm_dense<A, B, C, AddM, MulOp>(
        &self,
        a: &DistCsrMatrix<B>,
        xs: &[DistDenseVec<A>],
        ring: &Semiring<AddM, MulOp>,
    ) -> Result<Vec<DistDenseVec<C>>>
    where
        A: Scalar,
        B: Scalar,
        C: Scalar,
        AddM: Monoid<C>,
        MulOp: BinaryOp<A, B, C>,
    {
        let (out, r) = crate::ops::expand::spmm_dense_dist(a, xs, ring, self.dctx)?;
        self.absorb(r);
        Ok(out)
    }

    fn pull_first_visitor<T: Scalar>(
        &self,
        at: &DistCsrMatrix<T>,
        frontier: &DistDenseVec<bool>,
        visited: &DistDenseVec<bool>,
    ) -> Result<DistSparseVec<usize>> {
        let (y, report) =
            crate::ops::pull::pull_first_visitor_dist(at, frontier, visited, self.dctx)?;
        self.absorb(report);
        Ok(y)
    }

    fn sparse_to_bitmap<T: Scalar>(&self, x: &DistSparseVec<T>) -> Result<DistDenseVec<bool>> {
        let global = x.to_global();
        let mut bits = vec![false; global.capacity()];
        for (i, _) in global.iter() {
            bits[i] = true;
        }
        Ok(DistDenseVec::from_global(&DenseVec::from_vec(bits), self.dctx.locales()))
    }

    fn bitmap_to_sparse(&self, bits: &DistDenseVec<bool>) -> Result<DistSparseVec<usize>> {
        let global = bits.to_global();
        let indices: Vec<usize> =
            global.as_slice().iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
        let sparse = SparseVec::from_sorted(global.len(), indices.clone(), indices)?;
        Ok(DistSparseVec::from_global(&sparse, self.dctx.locales()))
    }

    fn selection_thresholds(&self) -> selection::SelectionThresholds {
        selection::SelectionThresholds::for_locales(self.dctx.locales())
    }

    /// The decision span plus the allreduce that makes it globally
    /// agreed: every locale contributes its shard's `nnz(frontier)` and
    /// unexplored count, so the winner is combined exactly like
    /// [`GblasBackend::allreduce_scalar`] before any locale commits to a
    /// direction.
    fn record_decision(
        &self,
        algo: &'static str,
        iter: usize,
        d: selection::Decision,
        nnz_f: usize,
        unexplored: usize,
    ) -> Result<()> {
        const PHASE_SELECT: &str = "select";
        let mut op = self.dctx.op(PHASE_SELECT);
        op.attr("algo", algo)
            .attr("iter", iter)
            .attr("dir", d.dir.name())
            .attr("fmt", d.fmt.name())
            .attr("merge", d.merge.name())
            .attr("unexplored", unexplored)
            .nnz(nnz_f as u64);
        let p = self.dctx.locales();
        let mut stride = 1usize;
        while stride < p {
            for l in (0..p).step_by(stride * 2) {
                let peer = l + stride;
                if peer < p {
                    self.dctx.comm.bulk(
                        PHASE_SELECT,
                        peer,
                        l,
                        1,
                        std::mem::size_of::<f64>() as u64,
                    )?;
                }
            }
            stride *= 2;
        }
        self.absorb(op.finish());
        Ok(())
    }

    fn dense_filled<T: Scalar>(&self, len: usize, fill: T) -> DistDenseVec<T> {
        DistDenseVec::filled(len, fill, self.dctx.locales())
    }

    fn dense_from_vec<T: Scalar>(&self, v: Vec<T>) -> DistDenseVec<T> {
        DistDenseVec::from_global(&DenseVec::from_vec(v), self.dctx.locales())
    }

    fn dense_to_vec<T: Scalar>(&self, v: &DistDenseVec<T>) -> Vec<T> {
        v.to_global().into_vec()
    }

    fn dense_set<T: Scalar>(&self, v: &mut DistDenseVec<T>, i: usize, value: T) {
        let dist = v.dist();
        let owner = dist.owner(i);
        let off = i - dist.range(owner).start;
        v.segment_mut(owner)[off] = value;
    }

    fn sparse_from_sorted<T: Scalar>(
        &self,
        capacity: usize,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<DistSparseVec<T>> {
        let global = SparseVec::from_sorted(capacity, indices, values)?;
        Ok(DistSparseVec::from_global(&global, self.dctx.locales()))
    }

    fn sparse_entries<T: Scalar>(&self, x: &DistSparseVec<T>) -> Vec<(usize, T)> {
        x.to_global().iter().map(|(i, &v)| (i, v)).collect()
    }

    fn sparse_nnz<T: Scalar>(&self, x: &DistSparseVec<T>) -> usize {
        x.nnz()
    }

    /// Price one global scalar decision as a `⌈log₂ p⌉`-round binomial
    /// tree of one-word bulk messages (the [`crate::ops::reduce`] combine
    /// shape). Runs through the [`DistCtx::op`] builder so the events are
    /// drained immediately (never leaking into the next op's report) and
    /// the simulated-clock trace advances by exactly the charged time.
    fn allreduce_scalar(&self, phase: &'static str) -> Result<()> {
        let op = self.dctx.op(phase);
        let p = self.dctx.locales();
        let mut stride = 1usize;
        while stride < p {
            for l in (0..p).step_by(stride * 2) {
                let peer = l + stride;
                if peer < p {
                    self.dctx.comm.bulk(phase, peer, l, 1, std::mem::size_of::<f64>() as u64)?;
                }
            }
            stride *= 2;
        }
        self.absorb(op.finish());
        Ok(())
    }

    fn workspace_stats(&self) -> gblas_core::workspace::WorkspaceStats {
        self.dctx.workspace_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use gblas_core::algebra::Plus;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn dist_backend_accumulates_reports_across_ops() {
        let a = gen::erdos_renyi(200, 5, 411);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let b = DistBackend::with_strategy(&dctx, CommStrategy::Bulk);
        let ones: DistCsrMatrix<u64> = b.mat_map(&da, &|_, _, _| 1u64).unwrap();
        let deg = b.reduce_rows(&ones, &Plus).unwrap();
        assert_eq!(deg.len(), 200);
        b.allreduce_scalar(PHASE_ALLREDUCE).unwrap();
        let report = b.take_report();
        assert!(report.total() > 0.0);
        assert!(report.phase(PHASE_ALLREDUCE) > 0.0, "allreduce must be priced");
        // drained: a second take is empty
        assert_eq!(b.take_report().total(), 0.0);
    }

    #[test]
    fn dense_set_pokes_the_owning_segment() {
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let b = DistBackend::new(&dctx);
        let mut v = b.dense_filled(10, 0i64);
        b.dense_set(&mut v, 9, 7);
        b.dense_set(&mut v, 0, -1);
        let g = b.dense_to_vec(&v);
        assert_eq!(g[9], 7);
        assert_eq!(g[0], -1);
        assert_eq!(g[1..9].iter().sum::<i64>(), 0);
    }
}
