//! The instrumented communication layer.
//!
//! All locales live in one address space, so "communication" is a real
//! memory copy plus a logged [`CommEvent`]. The distinction the paper
//! cares about — and that decides every distributed figure — is *how* the
//! copy happens:
//!
//! * [`Comm::fine`] — one message per element: Chapel's implicit remote
//!   access inside `forall` over distributed sparse arrays (Apply1,
//!   Assign1), the element-at-a-time vector gather of Listing 8, and the
//!   per-element atomic scatter into the global SPA.
//! * [`Comm::bulk`] — one message per block: what a bulk-synchronous,
//!   aggregated implementation would do (§IV "Bulk-synchronous
//!   communication of sparse arrays might improve the performance").
//!
//! Pricing happens later in [`crate::exec`]; this module only measures.
//! A deterministic fault hook ([`Comm::fail_after`]) lets tests inject a
//! communication failure at the N-th event and verify that operations
//! propagate it instead of silently corrupting results. When the owning
//! `DistCtx` is instrumented, every message feeds the shared
//! [`MetricsRegistry`], and injected faults / retry attempts appear as
//! instant events on the trace.

use gblas_core::error::{GblasError, Result};
use gblas_core::trace::{MetricsRegistry, TraceRecorder};
use parking_lot::Mutex;
use std::sync::Arc;

/// Message-granularity class of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// One message per element, issued from a parallel loop — requests
    /// overlap (pipeline) up to the network model's concurrency.
    Fine,
    /// One message per element from a *dependent* chain (e.g. walking a
    /// remote domain's iterator, where each access needs the previous
    /// one's result): no pipelining, and sensitive to congestion when many
    /// locales walk remote structures at once. This is what makes
    /// Listing 8's gather blow up (Figs 8–9).
    FineDependent,
    /// Aggregated block transfer.
    Bulk,
}

impl CommKind {
    /// Stable lowercase name (used in trace attributes).
    pub fn as_str(self) -> &'static str {
        match self {
            CommKind::Fine => "fine",
            CommKind::FineDependent => "fine_dependent",
            CommKind::Bulk => "bulk",
        }
    }
}

/// One logged transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEvent {
    /// Phase name (matches the op's compute phases).
    pub phase: String,
    /// Initiating locale (charged with the transfer time).
    pub src: usize,
    /// Peer locale.
    pub dst: usize,
    /// Granularity class.
    pub kind: CommKind,
    /// Number of messages (elements for `Fine`, blocks for `Bulk`).
    pub msgs: u64,
    /// Payload bytes.
    pub bytes: u64,
}

/// Lifetime totals, kept under one lock so every log call pays a single
/// acquisition for all of its bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    fine_msgs: u64,
    bulk_msgs: u64,
    bytes: u64,
    calls: u64,
}

/// The communication layer: event log + fault injection.
///
/// Operations *drain* the event log when they price themselves
/// ([`Comm::take_events`]), so one `DistCtx` can run many operations
/// without double pricing; the cumulative totals survive draining for
/// inspection and tests.
#[derive(Debug, Default)]
pub struct Comm {
    events: Mutex<Vec<CommEvent>>,
    /// Cumulative totals across the context's lifetime — not reset by
    /// `take_events`.
    totals: Mutex<Totals>,
    /// Fault plan: fail the N-th subsequent transfer (0-based countdown).
    fail_in: Mutex<Option<u64>>,
    /// Opt-in cumulative copy of every logged event — unlike the main
    /// log, *not* drained by [`Comm::take_events`], so tests can audit a
    /// ledger that operations have already priced. `None` (off) unless
    /// [`Comm::record_history`] was called.
    history: Mutex<Option<Vec<CommEvent>>>,
    /// Shared cumulative metrics (always cheap; a fresh registry when the
    /// owning context is not instrumented).
    metrics: Arc<MetricsRegistry>,
    /// Trace handle for fault/retry instant events (disabled by default).
    tracer: TraceRecorder,
}

impl Comm {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a trace recorder and metrics registry (normally done by
    /// `DistCtx`, so comm totals land in the same registry as op metrics).
    pub fn instrument(&mut self, tracer: TraceRecorder, metrics: Arc<MetricsRegistry>) {
        self.tracer = tracer;
        self.metrics = metrics;
    }

    /// The metrics registry this layer feeds.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Arm the fault hook: the `n`-th transfer from now returns
    /// [`GblasError::CommFailure`] (n = 0 fails the next transfer).
    pub fn fail_after(&self, n: u64) {
        *self.fail_in.lock() = Some(n);
    }

    /// Disarm the fault hook.
    pub fn clear_faults(&self) {
        *self.fail_in.lock() = None;
    }

    fn check_fault(&self, phase: &str, src: usize, kind: CommKind) -> Result<()> {
        let mut guard = self.fail_in.lock();
        if let Some(n) = guard.as_mut() {
            if *n == 0 {
                *guard = None;
                drop(guard);
                self.metrics.faults_injected(1);
                self.tracer.instant(
                    "comm_fault",
                    Some(src),
                    vec![
                        ("phase".to_string(), phase.to_string()),
                        ("kind".to_string(), kind.as_str().to_string()),
                    ],
                );
                return Err(GblasError::CommFailure(format!(
                    "injected fault during phase '{phase}'"
                )));
            }
            *n -= 1;
        }
        Ok(())
    }

    /// The one logging path all three public kinds share: fault check,
    /// totals + metrics bookkeeping, event append.
    fn log(
        &self,
        kind: CommKind,
        phase: &str,
        src: usize,
        dst: usize,
        msgs: u64,
        bytes: u64,
    ) -> Result<()> {
        if msgs == 0 {
            return Ok(());
        }
        self.check_fault(phase, src, kind)?;
        {
            let mut t = self.totals.lock();
            match kind {
                CommKind::Bulk => t.bulk_msgs += msgs,
                CommKind::Fine | CommKind::FineDependent => t.fine_msgs += msgs,
            }
            t.bytes += bytes;
            t.calls += 1;
        }
        match kind {
            CommKind::Bulk => self.metrics.bulk_msgs(msgs),
            CommKind::Fine | CommKind::FineDependent => self.metrics.fine_msgs(msgs),
        }
        self.metrics.bytes_sent(bytes);
        let event = CommEvent { phase: phase.to_string(), src, dst, kind, msgs, bytes };
        if let Some(h) = self.history.lock().as_mut() {
            h.push(event.clone());
        }
        self.events.lock().push(event);
        Ok(())
    }

    /// Log `msgs` fine-grained single-element transfers of `bytes` total
    /// from `src` touching `dst`.
    pub fn fine(&self, phase: &str, src: usize, dst: usize, msgs: u64, bytes: u64) -> Result<()> {
        self.log(CommKind::Fine, phase, src, dst, msgs, bytes)
    }

    /// Log `msgs` *dependent* fine-grained transfers (each access waits
    /// for the previous — a remote iterator walk).
    pub fn fine_dependent(
        &self,
        phase: &str,
        src: usize,
        dst: usize,
        msgs: u64,
        bytes: u64,
    ) -> Result<()> {
        self.log(CommKind::FineDependent, phase, src, dst, msgs, bytes)
    }

    /// Log one (or `msgs`) bulk transfers of `bytes` total from `src` to
    /// `dst`.
    pub fn bulk(&self, phase: &str, src: usize, dst: usize, msgs: u64, bytes: u64) -> Result<()> {
        self.log(CommKind::Bulk, phase, src, dst, msgs, bytes)
    }

    /// Like [`with_retry`], but instrumented: each retry attempt becomes a
    /// `comm_retry` instant on the trace and bumps the `retries` metric.
    pub fn with_retry<R>(&self, attempts: usize, mut f: impl FnMut() -> Result<R>) -> Result<R> {
        let attempts = attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.metrics.retries(1);
                self.tracer.instant(
                    "comm_retry",
                    None,
                    vec![
                        ("attempt".to_string(), attempt.to_string()),
                        ("max_attempts".to_string(), attempts.to_string()),
                    ],
                );
            }
            match f() {
                Ok(r) => return Ok(r),
                Err(GblasError::CommFailure(msg)) => last = Some(GblasError::CommFailure(msg)),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Start keeping a cumulative event history that survives
    /// [`Comm::take_events`] (i.e. survives operations pricing
    /// themselves). Test/audit hook; off by default because it doubles the
    /// logging cost.
    pub fn record_history(&self) {
        let mut h = self.history.lock();
        if h.is_none() {
            *h = Some(Vec::new());
        }
    }

    /// Snapshot the cumulative history (empty unless
    /// [`Comm::record_history`] was called before the traffic).
    pub fn history(&self) -> Vec<CommEvent> {
        self.history.lock().clone().unwrap_or_default()
    }

    /// Snapshot the event log.
    pub fn events(&self) -> Vec<CommEvent> {
        self.events.lock().clone()
    }

    /// Drain the event log.
    pub fn take_events(&self) -> Vec<CommEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Cumulative `(fine messages, bulk messages, bytes)` over the
    /// context's lifetime. Survives [`Comm::take_events`].
    pub fn totals(&self) -> (u64, u64, u64) {
        let t = self.totals.lock();
        (t.fine_msgs, t.bulk_msgs, t.bytes)
    }

    /// Cumulative number of transfer calls (each a potential fault point).
    /// Survives [`Comm::take_events`].
    pub fn call_count(&self) -> u64 {
        self.totals.lock().calls
    }
}

/// Retry a communication-bearing closure up to `attempts` times on
/// [`GblasError::CommFailure`], propagating other errors immediately.
/// Deterministic: no backoff randomness. Discards the attempt count —
/// use [`with_retry_counted`] to observe it, or [`Comm::with_retry`] to
/// additionally record retries on the trace.
pub fn with_retry<R>(attempts: usize, f: impl FnMut() -> Result<R>) -> Result<R> {
    with_retry_counted(attempts, f).map(|(r, _)| r)
}

/// Like [`with_retry`], but on success also reports how many attempts the
/// closure consumed (1 = first try succeeded).
///
/// ```
/// use gblas_dist::comm::{with_retry_counted, Comm};
///
/// let comm = Comm::new();
/// comm.fail_after(0); // next transfer fails
/// let ((), attempts) =
///     with_retry_counted(3, || comm.bulk("p", 0, 1, 1, 64)).unwrap();
/// assert_eq!(attempts, 2); // first try hit the injected fault
/// ```
pub fn with_retry_counted<R>(
    attempts: usize,
    mut f: impl FnMut() -> Result<R>,
) -> Result<(R, usize)> {
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 1..=attempts {
        match f() {
            Ok(r) => return Ok((r, attempt)),
            Err(GblasError::CommFailure(msg)) => last = Some(GblasError::CommFailure(msg)),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_and_totals() {
        let c = Comm::new();
        c.fine("gather", 0, 1, 100, 800).unwrap();
        c.bulk("gather", 1, 0, 1, 4096).unwrap();
        c.fine("scatter", 2, 0, 50, 400).unwrap();
        let (fine, bulk, bytes) = c.totals();
        assert_eq!((fine, bulk, bytes), (150, 1, 5296));
        assert_eq!(c.events().len(), 3);
        assert_eq!(c.call_count(), 3);
    }

    #[test]
    fn history_survives_take_events() {
        let c = Comm::new();
        c.fine("a", 0, 1, 2, 16).unwrap();
        assert!(c.history().is_empty(), "history is opt-in");
        c.record_history();
        c.bulk("b", 1, 0, 1, 64).unwrap();
        let _ = c.take_events();
        c.fine("c", 0, 1, 1, 8).unwrap();
        let h = c.history();
        assert_eq!(h.len(), 2, "history keeps draining-surviving copies");
        assert_eq!(h[0].phase, "b");
        assert_eq!(h[1].phase, "c");
        assert!(c.events().len() == 1, "main log was drained then refilled");
    }

    #[test]
    fn zero_message_events_are_elided() {
        let c = Comm::new();
        c.fine("x", 0, 1, 0, 0).unwrap();
        assert!(c.events().is_empty());
    }

    #[test]
    fn fault_fires_once_at_the_right_event() {
        let c = Comm::new();
        c.fail_after(2);
        assert!(c.fine("p", 0, 1, 1, 8).is_ok());
        assert!(c.fine("p", 0, 1, 1, 8).is_ok());
        let err = c.fine("p", 0, 1, 1, 8).unwrap_err();
        assert!(matches!(err, GblasError::CommFailure(_)));
        // disarmed after firing
        assert!(c.fine("p", 0, 1, 1, 8).is_ok());
        // only successful events logged
        assert_eq!(c.events().len(), 3);
    }

    #[test]
    fn all_kinds_share_the_fault_countdown_and_totals() {
        let c = Comm::new();
        c.fail_after(1);
        assert!(c.fine_dependent("p", 0, 1, 10, 80).is_ok());
        assert!(c.bulk("p", 0, 1, 1, 64).is_err());
        let (fine, bulk, bytes) = c.totals();
        assert_eq!((fine, bulk, bytes), (10, 0, 80));
    }

    #[test]
    fn metrics_registry_sees_messages_and_faults() {
        let mut c = Comm::new();
        let metrics = Arc::new(MetricsRegistry::default());
        c.instrument(TraceRecorder::disabled(), Arc::clone(&metrics));
        c.fine("p", 0, 1, 5, 40).unwrap();
        c.bulk("p", 0, 1, 2, 128).unwrap();
        c.fail_after(0);
        let _ = c.fine("p", 0, 1, 1, 8);
        let s = metrics.snapshot();
        assert_eq!(s.fine_msgs, 5);
        assert_eq!(s.bulk_msgs, 2);
        assert_eq!(s.bytes_sent, 168);
        assert_eq!(s.faults_injected, 1);
    }

    #[test]
    fn instrumented_retry_traces_fault_and_retry_instants() {
        let mut c = Comm::new();
        let tracer = TraceRecorder::new();
        let metrics = Arc::new(MetricsRegistry::default());
        c.instrument(tracer.clone(), Arc::clone(&metrics));
        c.fail_after(0);
        c.with_retry(3, || c.bulk("p", 0, 1, 1, 64)).unwrap();
        let trace = tracer.snapshot();
        let names: Vec<&str> = trace.instants.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["comm_fault", "comm_retry"]);
        assert_eq!(
            trace.instants[1].attrs,
            vec![
                ("attempt".to_string(), "2".to_string()),
                ("max_attempts".to_string(), "3".to_string())
            ]
        );
        assert_eq!(metrics.snapshot().retries, 1);
        assert_eq!(metrics.snapshot().faults_injected, 1);
    }

    #[test]
    fn retry_recovers_from_injected_fault() {
        let c = Comm::new();
        c.fail_after(0);
        let r = with_retry(3, || c.bulk("p", 0, 1, 1, 64));
        assert!(r.is_ok());
        assert_eq!(c.events().len(), 1);
    }

    #[test]
    fn retry_counted_reports_attempts_used() {
        let c = Comm::new();
        let ((), n) = with_retry_counted(3, || c.bulk("p", 0, 1, 1, 8)).unwrap();
        assert_eq!(n, 1);
        c.fail_after(1);
        let ((), n) = with_retry_counted(3, || c.bulk("p", 0, 1, 1, 8)).unwrap();
        assert_eq!(n, 1, "countdown not yet reached: first try succeeds");
        let ((), n) = with_retry_counted(3, || c.bulk("p", 0, 1, 1, 8)).unwrap();
        assert_eq!(n, 2, "armed fault consumes one attempt");
    }

    #[test]
    fn retry_gives_up_eventually() {
        let mut count = 0;
        let r: Result<()> = with_retry(3, || {
            count += 1;
            Err(GblasError::CommFailure("always".into()))
        });
        assert!(r.is_err());
        assert_eq!(count, 3);
    }

    #[test]
    fn retry_propagates_non_comm_errors_immediately() {
        let mut count = 0;
        let r: Result<()> = with_retry(5, || {
            count += 1;
            Err(GblasError::InvalidArgument("fatal".into()))
        });
        assert!(matches!(r, Err(GblasError::InvalidArgument(_))));
        assert_eq!(count, 1);
    }
}
