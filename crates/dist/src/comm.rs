//! The instrumented communication layer.
//!
//! All locales live in one address space, so "communication" is a real
//! memory copy plus a logged [`CommEvent`]. The distinction the paper
//! cares about — and that decides every distributed figure — is *how* the
//! copy happens:
//!
//! * [`Comm::fine`] — one message per element: Chapel's implicit remote
//!   access inside `forall` over distributed sparse arrays (Apply1,
//!   Assign1), the element-at-a-time vector gather of Listing 8, and the
//!   per-element atomic scatter into the global SPA.
//! * [`Comm::bulk`] — one message per block: what a bulk-synchronous,
//!   aggregated implementation would do (§IV "Bulk-synchronous
//!   communication of sparse arrays might improve the performance").
//!
//! Pricing happens later in [`crate::exec`]; this module only measures.
//! A deterministic fault hook ([`Comm::fail_after`]) lets tests inject a
//! communication failure at the N-th event and verify that operations
//! propagate it instead of silently corrupting results.

use gblas_core::error::{GblasError, Result};
use parking_lot::Mutex;

/// Message-granularity class of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// One message per element, issued from a parallel loop — requests
    /// overlap (pipeline) up to the network model's concurrency.
    Fine,
    /// One message per element from a *dependent* chain (e.g. walking a
    /// remote domain's iterator, where each access needs the previous
    /// one's result): no pipelining, and sensitive to congestion when many
    /// locales walk remote structures at once. This is what makes
    /// Listing 8's gather blow up (Figs 8–9).
    FineDependent,
    /// Aggregated block transfer.
    Bulk,
}

/// One logged transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEvent {
    /// Phase name (matches the op's compute phases).
    pub phase: String,
    /// Initiating locale (charged with the transfer time).
    pub src: usize,
    /// Peer locale.
    pub dst: usize,
    /// Granularity class.
    pub kind: CommKind,
    /// Number of messages (elements for `Fine`, blocks for `Bulk`).
    pub msgs: u64,
    /// Payload bytes.
    pub bytes: u64,
}

/// The communication layer: event log + fault injection.
///
/// Operations *drain* the event log when they price themselves
/// ([`Comm::take_events`]), so one `DistCtx` can run many operations
/// without double pricing; the cumulative totals survive draining for
/// inspection and tests.
#[derive(Debug, Default)]
pub struct Comm {
    events: Mutex<Vec<CommEvent>>,
    /// Cumulative (fine msgs, bulk msgs, bytes) across the context's
    /// lifetime — not reset by `take_events`.
    cumulative: Mutex<(u64, u64, u64)>,
    /// Cumulative number of successful log calls (the unit the fault plan
    /// counts in) — not reset by `take_events`.
    calls: Mutex<u64>,
    /// Fault plan: fail the N-th subsequent transfer (0-based countdown).
    fail_in: Mutex<Option<u64>>,
}

impl Comm {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the fault hook: the `n`-th transfer from now returns
    /// [`GblasError::CommFailure`] (n = 0 fails the next transfer).
    pub fn fail_after(&self, n: u64) {
        *self.fail_in.lock() = Some(n);
    }

    /// Disarm the fault hook.
    pub fn clear_faults(&self) {
        *self.fail_in.lock() = None;
    }

    fn check_fault(&self, phase: &str) -> Result<()> {
        let mut guard = self.fail_in.lock();
        if let Some(n) = guard.as_mut() {
            if *n == 0 {
                *guard = None;
                return Err(GblasError::CommFailure(format!(
                    "injected fault during phase '{phase}'"
                )));
            }
            *n -= 1;
        }
        Ok(())
    }

    /// Log `msgs` fine-grained single-element transfers of `bytes` total
    /// from `src` touching `dst`.
    pub fn fine(&self, phase: &str, src: usize, dst: usize, msgs: u64, bytes: u64) -> Result<()> {
        if msgs == 0 {
            return Ok(());
        }
        self.check_fault(phase)?;
        {
            let mut cum = self.cumulative.lock();
            cum.0 += msgs;
            cum.2 += bytes;
            *self.calls.lock() += 1;
        }
        self.events.lock().push(CommEvent {
            phase: phase.to_string(),
            src,
            dst,
            kind: CommKind::Fine,
            msgs,
            bytes,
        });
        Ok(())
    }

    /// Log `msgs` *dependent* fine-grained transfers (each access waits
    /// for the previous — a remote iterator walk).
    pub fn fine_dependent(
        &self,
        phase: &str,
        src: usize,
        dst: usize,
        msgs: u64,
        bytes: u64,
    ) -> Result<()> {
        if msgs == 0 {
            return Ok(());
        }
        self.check_fault(phase)?;
        {
            let mut cum = self.cumulative.lock();
            cum.0 += msgs;
            cum.2 += bytes;
            *self.calls.lock() += 1;
        }
        self.events.lock().push(CommEvent {
            phase: phase.to_string(),
            src,
            dst,
            kind: CommKind::FineDependent,
            msgs,
            bytes,
        });
        Ok(())
    }

    /// Log one (or `msgs`) bulk transfers of `bytes` total from `src` to
    /// `dst`.
    pub fn bulk(&self, phase: &str, src: usize, dst: usize, msgs: u64, bytes: u64) -> Result<()> {
        if msgs == 0 {
            return Ok(());
        }
        self.check_fault(phase)?;
        {
            let mut cum = self.cumulative.lock();
            cum.1 += msgs;
            cum.2 += bytes;
            *self.calls.lock() += 1;
        }
        self.events.lock().push(CommEvent {
            phase: phase.to_string(),
            src,
            dst,
            kind: CommKind::Bulk,
            msgs,
            bytes,
        });
        Ok(())
    }

    /// Snapshot the event log.
    pub fn events(&self) -> Vec<CommEvent> {
        self.events.lock().clone()
    }

    /// Drain the event log.
    pub fn take_events(&self) -> Vec<CommEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Cumulative `(fine messages, bulk messages, bytes)` over the
    /// context's lifetime. Survives [`Comm::take_events`].
    pub fn totals(&self) -> (u64, u64, u64) {
        *self.cumulative.lock()
    }

    /// Cumulative number of transfer calls (each a potential fault point).
    /// Survives [`Comm::take_events`].
    pub fn call_count(&self) -> u64 {
        *self.calls.lock()
    }
}

/// Retry a communication-bearing closure up to `attempts` times on
/// [`GblasError::CommFailure`], propagating other errors immediately.
/// Deterministic: no backoff randomness.
pub fn with_retry<R>(attempts: usize, mut f: impl FnMut() -> Result<R>) -> Result<R> {
    let mut last = None;
    for _ in 0..attempts.max(1) {
        match f() {
            Ok(r) => return Ok(r),
            Err(GblasError::CommFailure(msg)) => last = Some(GblasError::CommFailure(msg)),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_and_totals() {
        let c = Comm::new();
        c.fine("gather", 0, 1, 100, 800).unwrap();
        c.bulk("gather", 1, 0, 1, 4096).unwrap();
        c.fine("scatter", 2, 0, 50, 400).unwrap();
        let (fine, bulk, bytes) = c.totals();
        assert_eq!((fine, bulk, bytes), (150, 1, 5296));
        assert_eq!(c.events().len(), 3);
    }

    #[test]
    fn zero_message_events_are_elided() {
        let c = Comm::new();
        c.fine("x", 0, 1, 0, 0).unwrap();
        assert!(c.events().is_empty());
    }

    #[test]
    fn fault_fires_once_at_the_right_event() {
        let c = Comm::new();
        c.fail_after(2);
        assert!(c.fine("p", 0, 1, 1, 8).is_ok());
        assert!(c.fine("p", 0, 1, 1, 8).is_ok());
        let err = c.fine("p", 0, 1, 1, 8).unwrap_err();
        assert!(matches!(err, GblasError::CommFailure(_)));
        // disarmed after firing
        assert!(c.fine("p", 0, 1, 1, 8).is_ok());
        // only successful events logged
        assert_eq!(c.events().len(), 3);
    }

    #[test]
    fn retry_recovers_from_injected_fault() {
        let c = Comm::new();
        c.fail_after(0);
        let r = with_retry(3, || c.bulk("p", 0, 1, 1, 64));
        assert!(r.is_ok());
        assert_eq!(c.events().len(), 1);
    }

    #[test]
    fn retry_gives_up_eventually() {
        let mut count = 0;
        let r: Result<()> = with_retry(3, || {
            count += 1;
            Err(GblasError::CommFailure("always".into()))
        });
        assert!(r.is_err());
        assert_eq!(count, 3);
    }

    #[test]
    fn retry_propagates_non_comm_errors_immediately() {
        let mut count = 0;
        let r: Result<()> = with_retry(5, || {
            count += 1;
            Err(GblasError::InvalidArgument("fatal".into()))
        });
        assert!(matches!(r, Err(GblasError::InvalidArgument(_))));
        assert_eq!(count, 1);
    }
}
