//! DCSC — doubly compressed sparse columns for hypersparse blocks.
//!
//! At `p` locales each block of a 2-D-distributed matrix holds roughly
//! `nnz/p` entries over an `n/√p`-sized local index range, so past the
//! paper's 64 nodes `nnz/p ≪ n/√p` and a CSR block's row-pointer array
//! dominates both its memory footprint and its broadcast volume — the
//! hypersparsity regime CombBLAS addresses with doubly compressed blocks
//! (Buluç & Gilbert, "Parallel Sparse Matrix-Matrix Multiplication and
//! Indexing"). [`DcscBlock`] stores only the *nonempty* columns:
//!
//! ```text
//!   jc : ids of the nonempty columns, ascending           (len = nzc)
//!   cp : offsets into ir/val, one span per nonempty col   (len = nzc+1)
//!   ir : row indices, ascending within each column        (len = nnz)
//!   val: values, parallel to ir                           (len = nnz)
//! ```
//!
//! Conversion from/to [`CsrMatrix`] is lossless, and sparse SUMMA slices a
//! DCSC block by a *column range* with two binary searches on `jc` instead
//! of an `O(nrows)` pointer scan — the structural win that makes
//! multi-stage broadcasts affordable on hypersparse blocks.

use gblas_core::container::CsrMatrix;
use gblas_core::par::Counters;

/// Per-block storage format, chosen by [`choose_format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFormat {
    /// Plain CSR: row pointers over every local row.
    Csr,
    /// Doubly compressed: only nonempty columns are represented.
    Dcsc,
}

impl BlockFormat {
    /// Stable lowercase name for trace attributes.
    pub fn name(self) -> &'static str {
        match self {
            BlockFormat::Csr => "csr",
            BlockFormat::Dcsc => "dcsc",
        }
    }
}

/// A block is hypersparse when fewer than `1/HYPERSPARSE_DEN` of its
/// dimension is populated — the CombBLAS `nnz < n/2` switch.
pub const HYPERSPARSE_DEN: usize = 2;

/// Representation policy: doubly compress a block when its nonzeros are
/// sparse relative to its dimension (`nnz · HYPERSPARSE_DEN < dim`), so
/// the pointer arrays scale with `nnz` instead of the block side.
pub fn choose_format(nnz: usize, dim: usize) -> BlockFormat {
    if nnz * HYPERSPARSE_DEN < dim {
        BlockFormat::Dcsc
    } else {
        BlockFormat::Csr
    }
}

/// Wire bytes for broadcasting a full CSR block: the row-pointer array
/// (`nrows+1` words) plus one index word and one value per entry.
pub fn csr_wire_bytes(nrows: usize, nnz: usize, elem: usize) -> u64 {
    let w = std::mem::size_of::<usize>();
    ((nrows + 1) * w + nnz * (w + elem)) as u64
}

/// Wire bytes for broadcasting a full DCSC block: `jc` + `cp`
/// (`2·nzc + 1` words) plus one index word and one value per entry.
pub fn dcsc_wire_bytes(nzc: usize, nnz: usize, elem: usize) -> u64 {
    let w = std::mem::size_of::<usize>();
    ((2 * nzc + 1) * w + nnz * (w + elem)) as u64
}

/// Wire bytes for a compressed stage slice: `(id, len)` per nonempty
/// row/column plus one index word and one value per entry.
pub fn slice_wire_bytes(nz_lines: usize, nnz: usize, elem: usize) -> u64 {
    let w = std::mem::size_of::<usize>();
    (2 * nz_lines * w + nnz * (w + elem)) as u64
}

/// A column slice of an operand block in compressed-row form: only the
/// nonempty rows, each with its entries as `(stage-relative column, value)`
/// pairs ascending by column. This is both the SUMMA broadcast payload for
/// `A` slices and the left-operand shape every local multiply kernel
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ColSlice<T> {
    /// `(local row, entries)` for each nonempty row, ascending by row.
    pub rows: Vec<(usize, Vec<(usize, T)>)>,
}

impl<T> ColSlice<T> {
    /// Number of nonempty rows in the slice.
    pub fn nzr(&self) -> usize {
        self.rows.len()
    }

    /// Number of entries in the slice.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|(_, e)| e.len()).sum()
    }
}

/// A doubly compressed sparse block (see module docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct DcscBlock<T> {
    nrows: usize,
    ncols: usize,
    jc: Vec<usize>,
    cp: Vec<usize>,
    ir: Vec<usize>,
    val: Vec<T>,
}

impl<T: Copy> DcscBlock<T> {
    /// Lossless conversion from CSR. Entries are regrouped column-major;
    /// a stable sort on the row-major entry stream keeps `ir` sorted
    /// within each column.
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        let (nrows, ncols, nnz) = (a.nrows(), a.ncols(), a.nnz());
        let mut triples: Vec<(usize, usize, T)> = a.iter().map(|(i, j, v)| (j, i, *v)).collect();
        triples.sort_by_key(|&(j, _, _)| j);
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        for (j, i, v) in triples {
            if jc.last() != Some(&j) {
                jc.push(j);
                cp.push(ir.len());
            }
            ir.push(i);
            val.push(v);
            *cp.last_mut().expect("cp is never empty") = ir.len();
        }
        DcscBlock { nrows, ncols, jc, cp, ir, val }
    }

    /// Lossless conversion back to CSR (row-major regrouping).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut triplets: Vec<(usize, usize, T)> = Vec::with_capacity(self.nnz());
        for (c, &j) in self.jc.iter().enumerate() {
            for e in self.cp[c]..self.cp[c + 1] {
                triplets.push((self.ir[e], j, self.val[e]));
            }
        }
        // column-major visit order: stable sort by row keeps columns
        // ascending within each row
        triplets.sort_by_key(|&(i, _, _)| i);
        CsrMatrix::from_triplets(self.nrows, self.ncols, &triplets)
            .expect("DCSC round-trip cannot produce invalid triplets")
    }

    /// Number of rows in the block.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns in the block.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of *nonempty* columns.
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Nonempty column ids (ascending).
    pub fn jc(&self) -> &[usize] {
        &self.jc
    }

    /// Column pointer array (`nzc + 1` offsets into `ir`/`val`).
    pub fn cp(&self) -> &[usize] {
        &self.cp
    }

    /// Entries in the column range `[lo, hi)` without touching the other
    /// columns: two binary searches on `jc`, then a scan of just the
    /// covered spans. Returns `(jc index range, entry count)`.
    pub fn col_span(&self, lo: usize, hi: usize) -> (std::ops::Range<usize>, usize) {
        let start = self.jc.partition_point(|&j| j < lo);
        let end = self.jc.partition_point(|&j| j < hi);
        (start..end, self.cp[end] - self.cp[start])
    }

    /// Extract the column range `[lo, hi)` as a compressed-row
    /// [`ColSlice`] with stage-relative column ids (`j - lo`). Work is
    /// charged to `c`: two `jc` probes, a stream over the covered entries,
    /// and the stable row-regrouping sort.
    pub fn col_slice(&self, lo: usize, hi: usize, c: &mut Counters) -> ColSlice<T> {
        let (span, count) = self.col_span(lo, hi);
        c.search_probes += 2 * (self.jc.len().max(1).ilog2() as u64 + 1);
        let mut triples: Vec<(usize, usize, T)> = Vec::with_capacity(count);
        for ci in span {
            let j = self.jc[ci] - lo;
            for e in self.cp[ci]..self.cp[ci + 1] {
                triples.push((self.ir[e], j, self.val[e]));
            }
        }
        c.elems += triples.len() as u64;
        // columns were visited ascending; a stable sort by row yields
        // per-row entries ascending by stage-relative column
        triples.sort_by_key(|&(i, _, _)| i);
        c.sort_elems += (triples.len().max(1).ilog2() as u64 + 1) * triples.len() as u64;
        group_rows(triples)
    }
}

/// Extract the column range `[lo, hi)` of a CSR block as a compressed-row
/// [`ColSlice`] with stage-relative column ids. Costs one row-pointer scan
/// plus two binary probes per nonempty row — the `O(nrows)` scan DCSC
/// blocks avoid.
pub fn csr_col_slice<T: Copy>(
    a: &CsrMatrix<T>,
    lo: usize,
    hi: usize,
    c: &mut Counters,
) -> ColSlice<T> {
    let mut rows = Vec::new();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        if cols.is_empty() {
            continue;
        }
        let s = cols.partition_point(|&j| j < lo);
        let e = cols.partition_point(|&j| j < hi);
        c.search_probes += 2 * (cols.len().max(1).ilog2() as u64 + 1);
        if s < e {
            let entries: Vec<(usize, T)> =
                cols[s..e].iter().zip(&vals[s..e]).map(|(&j, &v)| (j - lo, v)).collect();
            c.elems += entries.len() as u64;
            rows.push((i, entries));
        }
    }
    // the pointer scan itself: one streamed element per local row
    c.elems += a.nrows() as u64;
    ColSlice { rows }
}

/// Group row-major-sorted `(row, col, val)` triples into a [`ColSlice`].
fn group_rows<T: Copy>(triples: Vec<(usize, usize, T)>) -> ColSlice<T> {
    let mut rows: Vec<(usize, Vec<(usize, T)>)> = Vec::new();
    for (i, j, v) in triples {
        match rows.last_mut() {
            Some((r, entries)) if *r == i => entries.push((j, v)),
            _ => rows.push((i, vec![(j, v)])),
        }
    }
    ColSlice { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::gen;

    #[test]
    fn csr_dcsc_round_trip_is_lossless() {
        for (n, deg, seed) in [(50usize, 3usize, 11u64), (80, 1, 12), (64, 7, 13)] {
            let a = gen::erdos_renyi(n, deg, seed);
            let d = DcscBlock::from_csr(&a);
            assert_eq!(d.nnz(), a.nnz());
            assert!(d.nzc() <= a.ncols());
            assert_eq!(d.to_csr(), a, "n={n} deg={deg}");
        }
    }

    #[test]
    fn empty_block_round_trips() {
        let a: CsrMatrix<f64> = CsrMatrix::empty(10, 10);
        let d = DcscBlock::from_csr(&a);
        assert_eq!(d.nzc(), 0);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.to_csr(), a);
    }

    #[test]
    fn col_slice_matches_csr_extraction() {
        let a = gen::erdos_renyi(60, 4, 21);
        let d = DcscBlock::from_csr(&a);
        for (lo, hi) in [(0usize, 60usize), (0, 17), (17, 43), (43, 60), (30, 30)] {
            let mut c1 = Counters::default();
            let mut c2 = Counters::default();
            let from_dcsc = d.col_slice(lo, hi, &mut c1);
            let from_csr = csr_col_slice(&a, lo, hi, &mut c2);
            assert_eq!(from_dcsc, from_csr, "[{lo},{hi})");
        }
    }

    #[test]
    fn format_policy_switches_on_hypersparsity() {
        assert_eq!(choose_format(10, 100), BlockFormat::Dcsc);
        assert_eq!(choose_format(50, 100), BlockFormat::Csr);
        assert_eq!(choose_format(49, 100), BlockFormat::Dcsc);
        assert_eq!(choose_format(0, 1), BlockFormat::Dcsc);
    }

    #[test]
    fn dcsc_wire_bytes_beat_csr_when_hypersparse() {
        // 1024-row block with 64 entries in 60 distinct columns: the CSR
        // row-pointer array alone dwarfs the doubly compressed structure
        let csr = csr_wire_bytes(1024, 64, 8);
        let dcsc = dcsc_wire_bytes(60, 64, 8);
        assert!(dcsc < csr, "dcsc={dcsc} csr={csr}");
        // dense small block: CSR is fine and DCSC saves nothing much
        assert!(dcsc_wire_bytes(100, 400, 8) + 8 * 100 >= csr_wire_bytes(100, 400, 8));
    }
}
