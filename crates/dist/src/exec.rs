//! Distributed execution context and pricing.

use crate::comm::{Comm, CommEvent, CommKind};
use gblas_core::par::{ExecCtx, Profile};
use gblas_sim::{MachineConfig, SimReport};

/// Execution context for distributed operations.
///
/// Holds the simulated [`MachineConfig`] and the communication log for the
/// current operation. Distributed ops execute one locale at a time (the
/// functional result is identical to a concurrent execution because every
/// superstep reads only the *previous* superstep's data — the
/// bulk-synchronous structure the paper's version-2 codes follow), each
/// locale on a fresh [`ExecCtx`] with the machine's `threads_per_locale`.
#[derive(Debug)]
pub struct DistCtx {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Communication log + fault hooks for the current operation.
    pub comm: Comm,
}

impl DistCtx {
    /// A context for the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        DistCtx { machine, comm: Comm::new() }
    }

    /// Total locales of the machine.
    pub fn locales(&self) -> usize {
        self.machine.locales()
    }

    /// A fresh per-locale execution context: `threads_per_locale` logical
    /// threads, serial real execution (deterministic).
    pub fn locale_ctx(&self) -> ExecCtx {
        ExecCtx::new(self.machine.threads_per_locale, 1)
    }

    /// Compute time of one phase across locales: the bulk-synchronous
    /// `max` of each locale's priced counters.
    pub fn price_compute(&self, phase: &str, per_locale: &[Profile]) -> f64 {
        per_locale
            .iter()
            .map(|p| self.machine.cost.phase_time(&p.phase(phase), self.machine.threads_per_locale))
            .fold(0.0, f64::max)
    }

    /// Price all phases of per-locale profiles, mapping each profile phase
    /// through `rename(phase)` into the report (used to fold e.g. the
    /// local SpMSpV's `spa`/`sort`/`output` into the figure's single
    /// "Local Multiply" component).
    pub fn price_compute_all(
        &self,
        per_locale: &[Profile],
        rename: impl Fn(&str) -> String,
    ) -> SimReport {
        let mut names: Vec<String> = Vec::new();
        for p in per_locale {
            for n in p.phase_names() {
                if !names.iter().any(|m| m == n) {
                    names.push(n.to_string());
                }
            }
        }
        let mut report = SimReport::default();
        for n in &names {
            report.push(&rename(n), self.price_compute(n, per_locale));
        }
        report
    }

    /// Price the logged communication events, per phase.
    ///
    /// Rules (see `gblas_sim::NetworkModel`):
    /// * each event is charged to its initiating locale; a phase's comm
    ///   time is the max over locales of their summed event costs;
    /// * `Fine` events pay `α_fine / concurrency` per message — the
    ///   requests come from a parallel loop and pipeline;
    /// * `FineDependent` events pay the full `α_fine` per message (a
    ///   dependent chain cannot pipeline), inflated by the congestion
    ///   factor for the number of locales involved in the phase — the
    ///   mechanism behind the gather's growth in Figs 8–9;
    /// * intra-node traffic (colocated locales) uses the cheaper
    ///   intra-node constants but is additionally multiplied by the
    ///   colocation contention factor (Fig 10's mechanism);
    /// * `Bulk` events pay `α_bulk` per message plus bytes over bandwidth.
    pub fn price_comm(&self, events: &[CommEvent]) -> SimReport {
        let mut report = SimReport::default();
        let net = &self.machine.network;
        let mut phases: Vec<&str> = Vec::new();
        for e in events {
            if !phases.contains(&e.phase.as_str()) {
                phases.push(&e.phase);
            }
        }
        for phase in phases {
            let evs: Vec<&CommEvent> = events.iter().filter(|e| e.phase == phase).collect();
            let mut involved: Vec<usize> =
                evs.iter().flat_map(|e| [e.src, e.dst]).collect();
            involved.sort_unstable();
            involved.dedup();
            let congestion = net.congestion(involved.len());
            let colo = self.machine.colocation_factor();
            let mut per_locale_time = vec![0.0f64; self.machine.locales()];
            for e in &evs {
                let intra = self.machine.same_node(e.src, e.dst);
                let t = match e.kind {
                    CommKind::Fine => {
                        let base = if intra {
                            net.fine_time_intra(e.msgs)
                        } else {
                            net.fine_time(e.msgs)
                        };
                        base * if intra { colo } else { 1.0 }
                    }
                    CommKind::FineDependent => {
                        let base = if intra {
                            net.fine_time_intra(e.msgs)
                        } else {
                            net.fine_time(e.msgs)
                        };
                        base * net.fine_concurrency * congestion * if intra { colo } else { 1.0 }
                    }
                    CommKind::Bulk => {
                        let base = if intra {
                            net.bulk_time_intra(e.msgs, e.bytes)
                        } else {
                            net.bulk_time(e.msgs, e.bytes)
                        };
                        base * if intra { colo } else { 1.0 }
                    }
                };
                per_locale_time[e.src] += t;
            }
            let max = per_locale_time.iter().cloned().fold(0.0, f64::max);
            report.push(phase, max);
        }
        report
    }

    /// The `coforall loc in Locales` fan-out cost for one superstep.
    pub fn spawn_time(&self) -> f64 {
        self.machine.locale_spawn_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::par::Counters;

    #[test]
    fn price_compute_takes_max_locale() {
        let machine = MachineConfig::edison_cluster(2, 24);
        let ctx = DistCtx::new(machine);
        let mut p0 = Profile::default();
        p0.counters_mut("work").elems = 1_000_000;
        let mut p1 = Profile::default();
        p1.counters_mut("work").elems = 4_000_000;
        let t = ctx.price_compute("work", &[p0.clone(), p1.clone()]);
        let t1_alone = ctx.price_compute("work", &[p1]);
        assert!((t - t1_alone).abs() < 1e-12, "slowest locale defines the superstep");
        let t0_alone = ctx.price_compute("work", &[p0]);
        assert!(t > t0_alone);
    }

    #[test]
    fn fine_comm_much_more_expensive_than_bulk_for_same_bytes() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        ctx.comm.fine("f", 0, 1, 100_000, 800_000).unwrap();
        ctx.comm.bulk("b", 0, 1, 1, 800_000).unwrap();
        let r = ctx.price_comm(&ctx.comm.events());
        assert!(r.phase("f") > 20.0 * r.phase("b"));
    }

    #[test]
    fn congestion_grows_with_participants_for_dependent_chains() {
        // Same per-locale message count, more participating locales.
        let ctx2 = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        ctx2.comm.fine_dependent("g", 0, 1, 1000, 8000).unwrap();
        ctx2.comm.fine_dependent("g", 1, 0, 1000, 8000).unwrap();
        let t2 = ctx2.price_comm(&ctx2.comm.events()).phase("g");

        let ctx8 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        for l in 0..8 {
            ctx8.comm.fine_dependent("g", l, (l + 1) % 8, 1000, 8000).unwrap();
        }
        let t8 = ctx8.price_comm(&ctx8.comm.events()).phase("g");
        assert!(t8 > t2, "8-way exchange should be slower per message: {t8} vs {t2}");
    }

    #[test]
    fn pipelined_fine_does_not_congest_but_dependent_does() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        ctx.comm.fine("pipelined", 0, 1, 1000, 8000).unwrap();
        ctx.comm.fine_dependent("dependent", 0, 1, 1000, 8000).unwrap();
        let r = ctx.price_comm(&ctx.comm.events());
        // Dependent pays full latency (no pipelining), so it is at least
        // fine_concurrency times slower even before congestion.
        assert!(r.phase("dependent") >= 3.9 * r.phase("pipelined"));
    }

    #[test]
    fn intra_node_colocation_pays_contention() {
        let one = DistCtx::new(MachineConfig::edison_colocated(2));
        one.comm.fine("p", 0, 1, 10_000, 80_000).unwrap();
        let t2 = one.price_comm(&one.comm.events()).phase("p");

        let many = DistCtx::new(MachineConfig::edison_colocated(16));
        many.comm.fine("p", 0, 1, 10_000, 80_000).unwrap();
        let t16 = many.price_comm(&many.comm.events()).phase("p");
        assert!(t16 > 2.0 * t2, "colocation contention must bite: {t16} vs {t2}");
    }

    #[test]
    fn rename_folds_phases() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(1, 24));
        let mut p = Profile::default();
        p.counters_mut("spa").flops = 1000;
        p.counters_mut("sort").sort_elems = 1000;
        p.counters_mut("output").elems = 100;
        let r = ctx.price_compute_all(&[p], |_| "local".to_string());
        assert_eq!(r.phase_names(), vec!["local"]);
        assert!(r.phase("local") > 0.0);
    }

    #[test]
    fn locale_ctx_uses_machine_threads() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        assert_eq!(ctx.locale_ctx().threads(), 24);
        let c = Counters::default();
        assert!(c.is_empty());
    }
}
