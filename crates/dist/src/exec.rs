//! Distributed execution context, pricing, and op-level tracing.

use crate::comm::{Comm, CommEvent, CommKind};
use crate::sched::{FrontierClass, PlanData, SchedKey, SchedOutcome, ScheduleCache};
use gblas_core::error::{GblasError, Result};
use gblas_core::par::{Counters, ExecCtx, Profile};
use gblas_core::trace::{
    dst_bytes_key, dst_msgs_key, CommSummary, MetricsRegistry, SpanKind, TraceRecorder,
};
use gblas_core::workspace::{WorkspacePool, WorkspaceStats, WsGuard};
use gblas_sim::{MachineConfig, SimReport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How [`DistCtx::for_each_locale`] runs the per-locale bodies of a
/// superstep on the *real* machine (the simulated clock is unaffected —
/// pricing only reads the profiles and the comm log, never wall time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocaleExecutor {
    /// SPMD: scoped worker threads execute one task per locale
    /// concurrently — the wall-clock realization of Chapel's
    /// `coforall loc in Locales do on loc`.
    #[default]
    Threaded,
    /// Locale bodies run back-to-back on the driver thread (the historic
    /// behaviour). Kept as a differential-testing oracle and for
    /// single-core environments; selectable via the
    /// `GBLAS_DIST_EXECUTOR=serial` environment variable.
    Serial,
}

/// One message list per destination locale: the send side of an
/// outbox/inbox superstep. A sender fills `outbox[dst]` for each owner
/// `dst`; after the superstep barrier, owner `o` drains `outboxes[src][o]`
/// in source-locale order, so cross-locale writes resolve exactly as a
/// serial sweep would.
pub type Outbox<M> = Vec<Vec<M>>;

/// One pool-checked-out [`Outbox`] per locale: what a superstep's send
/// side collects into. The guards keep the per-destination buffers alive
/// through the owning superstep and return them to their locale's
/// workspace pool on drop.
pub type PooledOutboxes<M> = Vec<WsGuard<Outbox<M>>>;

/// Execution context for distributed operations.
///
/// Holds the simulated [`MachineConfig`] and the communication log for the
/// current operation. Distributed ops execute SPMD-style through
/// [`DistCtx::for_each_locale`]: one task per locale per superstep, each
/// touching only its own disjoint state, with an implicit barrier between
/// supersteps (the bulk-synchronous structure the paper's version-2 codes
/// follow). Each locale body runs on a fresh [`ExecCtx`] with the
/// machine's `threads_per_locale` *logical* threads; whether the bodies
/// also run concurrently on the real machine is the [`LocaleExecutor`]'s
/// choice and never changes results, comm logs, or simulated times.
///
/// The context also carries the observability handles: a [`TraceRecorder`]
/// (disabled by default — [`DistCtx::enable_tracing`] turns it on) and a
/// shared [`MetricsRegistry`] that accumulates cumulative totals across
/// every operation run under this context.
#[derive(Debug)]
pub struct DistCtx {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Communication log + fault hooks for the current operation.
    pub comm: Comm,
    executor: LocaleExecutor,
    recorder: TraceRecorder,
    metrics: Arc<MetricsRegistry>,
    /// One long-lived workspace pool per locale: every superstep body that
    /// runs "on" locale `l` (via [`DistCtx::locale_ctx_for`]) checks its
    /// scratch out of pool `l`, so outbox/inbox staging and SPA slots are
    /// reused across supersteps and across algorithm iterations.
    pools: Vec<Arc<WorkspacePool>>,
    /// Watermark of per-locale pool stats already mirrored into the
    /// shared [`MetricsRegistry`] — see [`DistCtx::sync_workspace_metrics`].
    ws_synced: Mutex<WorkspaceStats>,
    /// Compiled communication schedules, keyed by (op, grid, frontier
    /// class) and replayed across the iterations of a driver that keeps
    /// one context alive — see [`crate::sched`].
    sched: ScheduleCache,
    /// Whether [`DistCtx::schedule`] caches at all (`GBLAS_SCHED=off`
    /// builds fresh every call — the ablation/differential toggle).
    sched_enabled: AtomicBool,
    /// Whether comm is priced as overlapping local compute
    /// (`max(comm, compute)` per superstep phase) instead of serializing
    /// after it (`comm + compute`). Off by default; `GBLAS_OVERLAP=1` or
    /// [`DistCtx::set_overlap`] turns it on.
    overlap: AtomicBool,
}

impl DistCtx {
    /// A context for the given machine (tracing disabled).
    pub fn new(machine: MachineConfig) -> Self {
        Self::with_instrumentation(
            machine,
            TraceRecorder::disabled(),
            Arc::new(MetricsRegistry::default()),
        )
    }

    /// A context wired to an existing recorder and metrics registry.
    pub fn with_instrumentation(
        machine: MachineConfig,
        recorder: TraceRecorder,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let mut comm = Comm::new();
        comm.instrument(recorder.clone(), Arc::clone(&metrics));
        let executor = match std::env::var("GBLAS_DIST_EXECUTOR").ok().as_deref() {
            Some("serial") => LocaleExecutor::Serial,
            _ => LocaleExecutor::default(),
        };
        let pools = (0..machine.locales()).map(|_| Arc::new(WorkspacePool::from_env())).collect();
        let sched_enabled =
            !matches!(std::env::var("GBLAS_SCHED").ok().as_deref(), Some("off") | Some("0"));
        let overlap =
            matches!(std::env::var("GBLAS_OVERLAP").ok().as_deref(), Some("1") | Some("on"));
        DistCtx {
            machine,
            comm,
            executor,
            recorder,
            metrics,
            pools,
            ws_synced: Mutex::new(WorkspaceStats::default()),
            sched: ScheduleCache::default(),
            sched_enabled: AtomicBool::new(sched_enabled),
            overlap: AtomicBool::new(overlap),
        }
    }

    /// Whether communication schedules are cached and replayed.
    pub fn schedules_enabled(&self) -> bool {
        self.sched_enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable schedule caching (the programmatic form of
    /// `GBLAS_SCHED=off`). Disabling leaves cached entries in place but
    /// unused; kernels build fresh plans every call.
    pub fn set_schedules(&self, on: bool) {
        self.sched_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether split-phase overlap pricing is on.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap.load(Ordering::Relaxed)
    }

    /// Enable or disable split-phase overlap pricing (the programmatic
    /// form of `GBLAS_OVERLAP=1`). Never affects results or comm logs —
    /// only how [`OpTrace::finish`] prices comm against compute.
    pub fn set_overlap(&self, on: bool) {
        self.overlap.store(on, Ordering::Relaxed);
    }

    /// The schedule cache (test introspection).
    pub fn schedules(&self) -> &ScheduleCache {
        &self.sched
    }

    /// Resolve the communication schedule for `(op, class)` on this
    /// context: replay the cached plan when its stamps still match, run
    /// the `build` inspector otherwise (and cache the result). Bumps the
    /// `sched_builds` / `sched_replays` / `sched_invalidations` metrics;
    /// with schedules disabled the inspector always runs and no metric
    /// moves. Called on the driver thread between supersteps, never from
    /// locale tasks.
    pub fn schedule(
        &self,
        op: &'static str,
        class: FrontierClass,
        grid: (usize, usize),
        mat_gen: u64,
        aux: u64,
        build: impl FnOnce() -> PlanData,
    ) -> (Arc<PlanData>, SchedOutcome) {
        let key = SchedKey { op, grid, class };
        let (plan, outcome) =
            self.sched.resolve(self.schedules_enabled(), key, mat_gen, aux, build);
        match outcome {
            SchedOutcome::Built => self.metrics.sched_builds(1),
            SchedOutcome::Replayed => self.metrics.sched_replays(1),
            SchedOutcome::Invalidated => {
                self.metrics.sched_invalidations(1);
                self.metrics.sched_builds(1);
            }
            SchedOutcome::Off => {}
        }
        (plan, outcome)
    }

    /// The wall-clock executor for per-locale superstep bodies.
    pub fn executor(&self) -> LocaleExecutor {
        self.executor
    }

    /// Override the wall-clock executor (results and simulated times are
    /// identical either way; tests pin this).
    pub fn set_executor(&mut self, executor: LocaleExecutor) {
        self.executor = executor;
    }

    /// Turn tracing on; returns the recorder (clone it freely — all clones
    /// share the same trace). Operations run after this call emit spans.
    pub fn enable_tracing(&mut self) -> TraceRecorder {
        let r = TraceRecorder::new();
        self.recorder = r.clone();
        self.comm.instrument(r.clone(), Arc::clone(&self.metrics));
        r
    }

    /// The trace recorder (disabled unless [`DistCtx::enable_tracing`] or
    /// [`DistCtx::with_instrumentation`] provided one).
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// The cumulative metrics registry shared with the comm layer.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Total locales of the machine.
    pub fn locales(&self) -> usize {
        self.machine.locales()
    }

    /// A fresh per-locale execution context: `threads_per_locale` logical
    /// threads, serial real execution (deterministic).
    pub fn locale_ctx(&self) -> ExecCtx {
        ExecCtx::new(self.machine.threads_per_locale, 1)
    }

    /// Like [`DistCtx::locale_ctx`], but attached to locale `l`'s
    /// long-lived workspace pool, so kernel scratch checked out by the
    /// superstep body is returned to the pool when the body's guards drop
    /// and reused by the next superstep that runs on `l`. The context
    /// itself (thread counts, counters, profile) is still fresh.
    pub fn locale_ctx_for(&self, l: usize) -> ExecCtx {
        let mut ctx = self.locale_ctx();
        ctx.set_workspace_pool(Arc::clone(&self.pools[l]));
        ctx
    }

    /// Locale `l`'s workspace pool.
    pub fn workspace_pool(&self, l: usize) -> &Arc<WorkspacePool> {
        &self.pools[l]
    }

    /// Enable or disable workspace pooling on every locale's pool
    /// (disabling drains them). The escape hatch `GBLAS_WORKSPACE=off`
    /// does the same at construction time; this method lets tests compare
    /// pooled and unpooled runs without touching the process environment.
    pub fn set_workspace_enabled(&self, on: bool) {
        for pool in &self.pools {
            pool.set_enabled(on);
        }
    }

    /// Aggregate workspace-pool accounting across every locale.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        let mut total = WorkspaceStats::default();
        for pool in &self.pools {
            total.merge(&pool.stats());
        }
        total
    }

    /// Mirror per-locale pool accounting into the shared metrics
    /// registry. Superstep bodies check scratch out through short-lived
    /// per-locale [`ExecCtx`]s whose registries are discarded, so the
    /// pool-side counters are authoritative; this charges whatever they
    /// accumulated since the last sync to the [`DistCtx`] registry that
    /// the CLI's metrics dump reads. Called by [`OpTrace::finish`], so a
    /// traced run's `pool_hits`/`pool_misses`/`allocs`/`alloc_bytes`
    /// match [`DistCtx::workspace_stats`] after every distributed op.
    /// Returns the delta charged by this call (what the op consumed since
    /// the previous sync) so callers can stamp it onto the op's span.
    pub fn sync_workspace_metrics(&self) -> WorkspaceStats {
        let now = self.workspace_stats();
        let mut synced = self.ws_synced.lock();
        let d = now.saturating_sub(&synced);
        *synced = now;
        drop(synced);
        self.metrics.pool_hits(d.pool_hits);
        self.metrics.pool_misses(d.pool_misses);
        self.metrics.allocs(d.allocs);
        self.metrics.alloc_bytes(d.alloc_bytes);
        d
    }

    /// Run one superstep SPMD-style: `f(l)` once per locale, results in
    /// locale order. See [`DistCtx::for_each_locale_state`].
    ///
    /// Cross-locale writes must be staged through an [`Outbox`] built in
    /// one superstep and drained by the owning locale in the next.
    pub fn for_each_locale<R, F>(&self, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(usize) -> Result<R> + Sync,
    {
        let mut unit = vec![(); self.locales()];
        self.for_each_locale_state(&mut unit, |l, ()| f(l))
    }

    /// Run one superstep SPMD-style with per-locale mutable state: `f(l,
    /// &mut states[l])` once per locale — `states` is split into disjoint
    /// `&mut` borrows, so each task mutates only its own locale's share
    /// (Chapel's `on loc` locality discipline, enforced by the borrow
    /// checker).
    ///
    /// Under [`LocaleExecutor::Threaded`] the bodies run on scoped worker
    /// threads (at most one OS thread per locale); under
    /// [`LocaleExecutor::Serial`] they run in locale order on the caller.
    /// Either way every locale body runs to completion before this
    /// returns (the superstep barrier), results come back in locale
    /// order, and if any bodies fail the error of the *lowest-numbered*
    /// locale is returned — so error propagation is deterministic even
    /// when a fault races between concurrent tasks.
    pub fn for_each_locale_state<S, R, F>(&self, states: &mut [S], f: F) -> Result<Vec<R>>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S) -> Result<R> + Sync,
    {
        let p = states.len();
        let workers = match self.executor {
            LocaleExecutor::Serial => 1,
            LocaleExecutor::Threaded => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(p)
            }
        };
        let mut results: Vec<Option<Result<R>>> = if workers <= 1 {
            states.iter_mut().enumerate().map(|(l, s)| Some(f(l, s))).collect()
        } else {
            // One cell per locale: the worker owning task `l` takes the
            // `&mut S` out exactly once; the Mutex is uncontended.
            let cells: Vec<Mutex<Option<&mut S>>> =
                states.iter_mut().map(|s| Mutex::new(Some(s))).collect();
            let slots: Vec<Mutex<Option<Result<R>>>> = (0..p).map(|_| Mutex::new(None)).collect();
            crossbeam::thread::scope(|scope| {
                for w in 0..workers {
                    let cells = &cells;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut l = w;
                        while l < p {
                            let s = cells[l].lock().take().expect("state taken exactly once");
                            *slots[l].lock() = Some(f(l, s));
                            l += workers;
                        }
                    });
                }
            })
            .expect("locale task panicked");
            slots.into_iter().map(|s| s.into_inner()).collect()
        };
        let mut out = Vec::with_capacity(p);
        let mut first_err: Option<GblasError> = None;
        for r in results.drain(..) {
            match r.expect("every locale task ran to completion") {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Per-locale compute time of one phase: each locale's priced counters.
    pub fn price_compute_per_locale(&self, phase: &str, per_locale: &[Profile]) -> Vec<f64> {
        per_locale
            .iter()
            .map(|p| self.machine.cost.phase_time(&p.phase(phase), self.machine.threads_per_locale))
            .collect()
    }

    /// Compute time of one phase across locales: the bulk-synchronous
    /// `max` of each locale's priced counters.
    pub fn price_compute(&self, phase: &str, per_locale: &[Profile]) -> f64 {
        self.price_compute_per_locale(phase, per_locale).into_iter().fold(0.0, f64::max)
    }

    /// Price all phases of per-locale profiles, mapping each profile phase
    /// through `rename(phase)` into the report (used to fold e.g. the
    /// local SpMSpV's `spa`/`sort`/`output` into the figure's single
    /// "Local Multiply" component).
    pub fn price_compute_all(
        &self,
        per_locale: &[Profile],
        rename: impl Fn(&str) -> String,
    ) -> SimReport {
        let mut names: Vec<String> = Vec::new();
        for p in per_locale {
            for n in p.phase_names() {
                if !names.iter().any(|m| m == n) {
                    names.push(n.to_string());
                }
            }
        }
        let mut report = SimReport::default();
        for n in &names {
            report.push(&rename(n), self.price_compute(n, per_locale));
        }
        report
    }

    /// Detailed communication pricing: per phase, each locale's summed
    /// transfer seconds and a message/byte summary of what it initiated.
    ///
    /// Rules (see `gblas_sim::NetworkModel`):
    /// * each event is charged to its initiating locale; a phase's comm
    ///   time is the max over locales of their summed event costs;
    /// * `Fine` events pay `α_fine / concurrency` per message — the
    ///   requests come from a parallel loop and pipeline;
    /// * `FineDependent` events pay the full `α_fine` per message (a
    ///   dependent chain cannot pipeline), inflated by the congestion
    ///   factor for the number of locales involved in the phase — the
    ///   mechanism behind the gather's growth in Figs 8–9;
    /// * intra-node traffic (colocated locales) uses the cheaper
    ///   intra-node constants but is additionally multiplied by the
    ///   colocation contention factor (Fig 10's mechanism);
    /// * `Bulk` events pay `α_bulk` per message plus bytes over bandwidth.
    pub fn price_comm_detailed(&self, events: &[CommEvent]) -> Vec<CommPhaseCost> {
        let net = &self.machine.network;
        let mut phases: Vec<&str> = Vec::new();
        for e in events {
            if !phases.contains(&e.phase.as_str()) {
                phases.push(&e.phase);
            }
        }
        let mut out = Vec::with_capacity(phases.len());
        for phase in phases {
            let evs: Vec<&CommEvent> = events.iter().filter(|e| e.phase == phase).collect();
            let mut involved: Vec<usize> = evs.iter().flat_map(|e| [e.src, e.dst]).collect();
            involved.sort_unstable();
            involved.dedup();
            let congestion = net.congestion(involved.len());
            let colo = self.machine.colocation_factor();
            let mut per_locale_seconds = vec![0.0f64; self.machine.locales()];
            let mut per_locale_summary = vec![CommSummary::default(); self.machine.locales()];
            let mut peers: Vec<Vec<usize>> = vec![Vec::new(); self.machine.locales()];
            let mut per_pair: Vec<(usize, usize, u64, u64)> = Vec::new();
            for e in &evs {
                let intra = self.machine.same_node(e.src, e.dst);
                let t = match e.kind {
                    CommKind::Fine => {
                        let base =
                            if intra { net.fine_time_intra(e.msgs) } else { net.fine_time(e.msgs) };
                        base * if intra { colo } else { 1.0 }
                    }
                    CommKind::FineDependent => {
                        let base =
                            if intra { net.fine_time_intra(e.msgs) } else { net.fine_time(e.msgs) };
                        base * net.fine_concurrency * congestion * if intra { colo } else { 1.0 }
                    }
                    CommKind::Bulk => {
                        let base = if intra {
                            net.bulk_time_intra(e.msgs, e.bytes)
                        } else {
                            net.bulk_time(e.msgs, e.bytes)
                        };
                        base * if intra { colo } else { 1.0 }
                    }
                };
                per_locale_seconds[e.src] += t;
                let s = &mut per_locale_summary[e.src];
                match e.kind {
                    CommKind::Fine => s.fine_msgs += e.msgs,
                    CommKind::FineDependent => s.fine_dependent_msgs += e.msgs,
                    CommKind::Bulk => s.bulk_msgs += e.msgs,
                }
                s.bytes += e.bytes;
                if !peers[e.src].contains(&e.dst) {
                    peers[e.src].push(e.dst);
                }
                match per_pair.iter_mut().find(|(ps, pd, _, _)| *ps == e.src && *pd == e.dst) {
                    Some(p) => {
                        p.2 += e.msgs;
                        p.3 += e.bytes;
                    }
                    None => per_pair.push((e.src, e.dst, e.msgs, e.bytes)),
                }
            }
            for (s, p) in per_locale_summary.iter_mut().zip(&peers) {
                s.peers = p.len() as u64;
            }
            per_pair.sort_unstable_by_key(|&(s, d, _, _)| (s, d));
            out.push(CommPhaseCost {
                phase: phase.to_string(),
                per_locale_seconds,
                per_locale_summary,
                per_pair,
            });
        }
        out
    }

    /// Price the logged communication events, per phase: the max over
    /// locales of [`DistCtx::price_comm_detailed`]'s per-locale seconds.
    pub fn price_comm(&self, events: &[CommEvent]) -> SimReport {
        let mut report = SimReport::default();
        for c in self.price_comm_detailed(events) {
            report.push_attributed(&c.phase, c.max_seconds(), c.max_locale());
        }
        report
    }

    /// The `coforall loc in Locales` fan-out cost for one superstep.
    pub fn spawn_time(&self) -> f64 {
        self.machine.locale_spawn_time()
    }

    /// Begin an op-level trace. The returned builder is how distributed
    /// operations assemble their [`SimReport`]; when tracing is enabled it
    /// *also* materializes the operation → phase → per-locale span tree on
    /// the recorder, and it always bumps the metrics registry.
    pub fn op<'a>(&'a self, name: &str) -> OpTrace<'a> {
        OpTrace {
            dctx: self,
            name: name.to_string(),
            attrs: Vec::new(),
            nnz: 0,
            report: SimReport::default(),
            detail: if self.recorder.is_enabled() { Some(Vec::new()) } else { None },
            wall_start: std::time::Instant::now(),
        }
    }
}

/// One phase's priced communication: per-locale seconds + traffic summary.
#[derive(Debug, Clone)]
pub struct CommPhaseCost {
    /// Phase name (matches the op's compute phases).
    pub phase: String,
    /// Transfer seconds charged to each initiating locale.
    pub per_locale_seconds: Vec<f64>,
    /// What each locale initiated (messages by kind, bytes, peers).
    pub per_locale_summary: Vec<CommSummary>,
    /// Pairwise `(src, dst, msgs, bytes)` traffic, sorted by `(src, dst)`
    /// — the raw material of the profiler's locale×locale comm matrix.
    pub per_pair: Vec<(usize, usize, u64, u64)>,
}

impl CommPhaseCost {
    /// The phase's bulk-synchronous comm time: slowest locale.
    pub fn max_seconds(&self) -> f64 {
        self.per_locale_seconds.iter().cloned().fold(0.0, f64::max)
    }

    /// The locale whose transfers dominated this phase (lowest index on
    /// ties), `None` when nothing moved.
    pub fn max_locale(&self) -> Option<usize> {
        argmax_positive(&self.per_locale_seconds)
    }
}

/// Index of the strictly-largest positive entry (first on ties), `None`
/// when every entry is zero — the shared "who was slowest" convention.
fn argmax_positive(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v > 0.0 && best.map(|(_, bv)| v > bv).unwrap_or(true) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

/// Per-phase compute detail buffered while an op runs (only when tracing).
#[derive(Debug, Default)]
struct PhaseDetail {
    name: String,
    /// Spawn-overhead seconds folded into this phase.
    spawn_seconds: f64,
    /// `(locale, seconds, counters)` compute segments.
    segments: Vec<(usize, f64, Counters)>,
}

/// Builder that assembles a distributed operation's [`SimReport`] and —
/// when the context's recorder is enabled — the matching span tree.
///
/// Usage inside an op:
///
/// ```ignore
/// let mut op = dctx.op("spmspv_dist");
/// op.spawn("gather", 1);
/// op.compute("gather", &gather_profiles);
/// op.compute_folded("local", &local_profiles);
/// op.compute("scatter", &scatter_profiles);
/// let report = op.finish(); // drains + prices comm, emits spans/metrics
/// ```
///
/// With tracing disabled this produces *exactly* the report the manual
/// `report.push(...)` / `price_comm` assembly used to produce, at the cost
/// of one branch per call.
#[derive(Debug)]
pub struct OpTrace<'a> {
    dctx: &'a DistCtx,
    name: String,
    attrs: Vec<(String, String)>,
    nnz: u64,
    report: SimReport,
    /// Per-locale segment detail; `None` when the recorder is disabled so
    /// the untraced path stays allocation-light.
    detail: Option<Vec<PhaseDetail>>,
    wall_start: std::time::Instant,
}

impl OpTrace<'_> {
    /// Attach a display attribute (dims, strategy, …) to the op span.
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Record how many nonzeros this op processed (metrics + op attr).
    pub fn nnz(&mut self, nnz: u64) -> &mut Self {
        self.nnz = nnz;
        self.attr("nnz", nnz)
    }

    /// Stamp how this op's communication schedule resolved
    /// (`built`/`replayed`/`invalidated`/`off`) on the op span.
    pub fn sched(&mut self, outcome: SchedOutcome) -> &mut Self {
        self.attr("sched", outcome.as_str())
    }

    /// Charge `count` fork-join fan-outs (`coforall loc in Locales`) to
    /// `phase` — the old `spawn_time()` / `spawn_time() * stages` terms.
    pub fn spawn(&mut self, phase: &str, count: usize) -> &mut Self {
        let t = self.dctx.spawn_time() * count as f64;
        self.report.push(phase, t);
        if self.detail.is_some() {
            self.phase_detail(phase).spawn_seconds += t;
        }
        self
    }

    /// Price `profiles`' phase `phase` into the report phase of the same
    /// name (bulk-synchronous max over locales).
    pub fn compute(&mut self, phase: &str, profiles: &[Profile]) -> &mut Self {
        self.compute_as(phase, phase, profiles)
    }

    /// Price `profiles`' phase `profile_phase` into report phase
    /// `report_phase` (the two differ when a dist op reuses a core
    /// kernel's phase name).
    pub fn compute_as(
        &mut self,
        report_phase: &str,
        profile_phase: &str,
        profiles: &[Profile],
    ) -> &mut Self {
        let per_locale = self.dctx.price_compute_per_locale(profile_phase, profiles);
        self.report.push_attributed(
            report_phase,
            per_locale.iter().cloned().fold(0.0, f64::max),
            argmax_positive(&per_locale),
        );
        if self.detail.is_some() {
            let counters: Vec<Counters> = profiles.iter().map(|p| p.phase(profile_phase)).collect();
            let d = self.phase_detail(report_phase);
            for (l, (sec, c)) in per_locale.into_iter().zip(counters).enumerate() {
                d.segments.push((l, sec, c));
            }
        }
        self
    }

    /// Fold *all* phases of `profiles` into one report phase — the old
    /// `price_compute_all(profiles, |_| name)` pattern (each source phase
    /// contributes its own max-over-locales; per-locale segments carry the
    /// summed seconds and counters).
    pub fn compute_folded(&mut self, report_phase: &str, profiles: &[Profile]) -> &mut Self {
        let folded = self.dctx.price_compute_all(profiles, |_| report_phase.to_string());
        self.report.merge(&folded);
        // Per-locale folded totals: the attribution (always) and the
        // traced segment detail both need them. The merge above stays the
        // pricing path so report seconds accumulate bit-identically to
        // the manual `price_compute_all` + `merge` assembly.
        let mut per_locale: Vec<(f64, Counters)> = vec![(0.0, Counters::default()); profiles.len()];
        let mut names: Vec<String> = Vec::new();
        for p in profiles {
            for n in p.phase_names() {
                if !names.iter().any(|m| m == n) {
                    names.push(n.to_string());
                }
            }
        }
        for n in &names {
            let secs = self.dctx.price_compute_per_locale(n, profiles);
            for (l, s) in secs.into_iter().enumerate() {
                per_locale[l].0 += s;
                per_locale[l].1.merge(&profiles[l].phase(n));
            }
        }
        let work: Vec<f64> = per_locale.iter().map(|(s, _)| *s).collect();
        if let Some(l) = argmax_positive(&work) {
            self.report.attribute(report_phase, l, work[l]);
        }
        if self.detail.is_some() {
            let d = self.phase_detail(report_phase);
            for (l, (sec, c)) in per_locale.into_iter().enumerate() {
                d.segments.push((l, sec, c));
            }
        }
        self
    }

    fn phase_detail(&mut self, phase: &str) -> &mut PhaseDetail {
        let detail = self.detail.as_mut().expect("detail buffered only when tracing");
        if let Some(pos) = detail.iter().position(|d| d.name == phase) {
            &mut detail[pos]
        } else {
            detail.push(PhaseDetail { name: phase.to_string(), ..Default::default() });
            detail.last_mut().unwrap()
        }
    }

    /// Drain and price the context's communication log, merge it into the
    /// report, emit the span tree (if tracing) and metrics, and return the
    /// finished report.
    pub fn finish(self) -> SimReport {
        let OpTrace { dctx, name, mut attrs, nnz, mut report, detail, wall_start } = self;
        let comm_costs = dctx.price_comm_detailed(&dctx.comm.take_events());
        // Split-phase pricing: each phase's comm either serializes after
        // its compute (the default sum) or overlaps it, in which case only
        // the comm sticking out past the compute adds time. The off path
        // is bit-identical to the historic `push_attributed(comm)`.
        let overlap = dctx.overlap_enabled();
        let mut overlap_saved = 0.0;
        for c in &comm_costs {
            overlap_saved +=
                report.push_comm_split(&c.phase, c.max_seconds(), overlap, c.max_locale());
        }
        if overlap {
            attrs.push(("overlap_saved_s".to_string(), overlap_saved.to_string()));
        }

        dctx.metrics.ops_executed(1);
        dctx.metrics.nnz_processed(nnz);
        let ws = dctx.sync_workspace_metrics();

        if let Some(detail) = detail {
            let recorder = &dctx.recorder;
            let wall_ns = wall_start.elapsed().as_nanos() as u64;
            let (op_start, _) = recorder.advance(report.total());
            let mut counters_total = Counters::default();
            for d in &detail {
                for (_, _, c) in &d.segments {
                    counters_total.merge(c);
                }
            }
            if !attrs.iter().any(|(k, _)| k == "locales") {
                attrs.push(("locales".to_string(), dctx.locales().to_string()));
            }
            // Workspace-pool accounting for this op, so the summary sink
            // (and any JSONL consumer) sees pool reuse without a separate
            // metrics dump. Deterministic across executors: pools are
            // per-locale and the workload is identical.
            if ws != WorkspaceStats::default() {
                attrs.push(("ws_pool_hits".to_string(), ws.pool_hits.to_string()));
                attrs.push(("ws_pool_misses".to_string(), ws.pool_misses.to_string()));
                attrs.push(("ws_allocs".to_string(), ws.allocs.to_string()));
                attrs.push(("ws_alloc_bytes".to_string(), ws.alloc_bytes.to_string()));
            }
            let op_id = recorder.span(
                None,
                &name,
                SpanKind::Op,
                None,
                op_start,
                report.total(),
                wall_ns,
                counters_total,
                attrs,
                None,
            );
            let mut spans = 1u64;
            let mut phase_start = op_start;
            for pname in report.phase_names() {
                let phase_dur = report.phase(pname);
                let comm = comm_costs.iter().find(|c| c.phase == pname);
                let comm_max = comm.map(|c| c.max_seconds()).unwrap_or(0.0);
                let compute_dur = (phase_dur - comm_max).max(0.0);
                let phase_id = recorder.span(
                    Some(op_id),
                    pname,
                    SpanKind::Phase,
                    None,
                    phase_start,
                    phase_dur,
                    0,
                    Counters::default(),
                    Vec::new(),
                    None,
                );
                spans += 1;
                if let Some(d) = detail.iter().find(|d| d.name == pname) {
                    for (l, sec, c) in &d.segments {
                        if *sec > 0.0 || !c.is_empty() {
                            recorder.span(
                                Some(phase_id),
                                pname,
                                SpanKind::LocaleCompute,
                                Some(*l),
                                phase_start,
                                *sec,
                                0,
                                *c,
                                Vec::new(),
                                None,
                            );
                            spans += 1;
                        }
                    }
                }
                if let Some(c) = comm {
                    // Comm segments start once the slowest locale's compute
                    // (plus spawn) is done — the bulk-synchronous picture.
                    let comm_start = phase_start + compute_dur;
                    for (l, sec) in c.per_locale_seconds.iter().enumerate() {
                        if *sec > 0.0 || !c.per_locale_summary[l].is_empty() {
                            // Per-destination traffic attrs (`dst3_msgs`,
                            // `dst3_bytes`, sorted by destination): what the
                            // profiler's comm matrix is rebuilt from.
                            let mut comm_attrs = Vec::new();
                            for &(src, dst, msgs, bytes) in &c.per_pair {
                                if src == l {
                                    comm_attrs.push((dst_msgs_key(dst), msgs.to_string()));
                                    comm_attrs.push((dst_bytes_key(dst), bytes.to_string()));
                                }
                            }
                            recorder.span(
                                Some(phase_id),
                                pname,
                                SpanKind::LocaleComm,
                                Some(l),
                                comm_start,
                                *sec,
                                0,
                                Counters::default(),
                                comm_attrs,
                                Some(c.per_locale_summary[l].clone()),
                            );
                            spans += 1;
                        }
                    }
                }
                phase_start += phase_dur;
            }
            dctx.metrics.spans_recorded(spans);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::par::Counters;

    #[test]
    fn price_compute_takes_max_locale() {
        let machine = MachineConfig::edison_cluster(2, 24);
        let ctx = DistCtx::new(machine);
        let mut p0 = Profile::default();
        p0.counters_mut("work").elems = 1_000_000;
        let mut p1 = Profile::default();
        p1.counters_mut("work").elems = 4_000_000;
        let t = ctx.price_compute("work", &[p0.clone(), p1.clone()]);
        let t1_alone = ctx.price_compute("work", &[p1]);
        assert!((t - t1_alone).abs() < 1e-12, "slowest locale defines the superstep");
        let t0_alone = ctx.price_compute("work", &[p0]);
        assert!(t > t0_alone);
    }

    #[test]
    fn fine_comm_much_more_expensive_than_bulk_for_same_bytes() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        ctx.comm.fine("f", 0, 1, 100_000, 800_000).unwrap();
        ctx.comm.bulk("b", 0, 1, 1, 800_000).unwrap();
        let r = ctx.price_comm(&ctx.comm.events());
        assert!(r.phase("f") > 20.0 * r.phase("b"));
    }

    #[test]
    fn congestion_grows_with_participants_for_dependent_chains() {
        // Same per-locale message count, more participating locales.
        let ctx2 = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        ctx2.comm.fine_dependent("g", 0, 1, 1000, 8000).unwrap();
        ctx2.comm.fine_dependent("g", 1, 0, 1000, 8000).unwrap();
        let t2 = ctx2.price_comm(&ctx2.comm.events()).phase("g");

        let ctx8 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        for l in 0..8 {
            ctx8.comm.fine_dependent("g", l, (l + 1) % 8, 1000, 8000).unwrap();
        }
        let t8 = ctx8.price_comm(&ctx8.comm.events()).phase("g");
        assert!(t8 > t2, "8-way exchange should be slower per message: {t8} vs {t2}");
    }

    #[test]
    fn pipelined_fine_does_not_congest_but_dependent_does() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        ctx.comm.fine("pipelined", 0, 1, 1000, 8000).unwrap();
        ctx.comm.fine_dependent("dependent", 0, 1, 1000, 8000).unwrap();
        let r = ctx.price_comm(&ctx.comm.events());
        // Dependent pays full latency (no pipelining), so it is at least
        // fine_concurrency times slower even before congestion.
        assert!(r.phase("dependent") >= 3.9 * r.phase("pipelined"));
    }

    #[test]
    fn intra_node_colocation_pays_contention() {
        let one = DistCtx::new(MachineConfig::edison_colocated(2));
        one.comm.fine("p", 0, 1, 10_000, 80_000).unwrap();
        let t2 = one.price_comm(&one.comm.events()).phase("p");

        let many = DistCtx::new(MachineConfig::edison_colocated(16));
        many.comm.fine("p", 0, 1, 10_000, 80_000).unwrap();
        let t16 = many.price_comm(&many.comm.events()).phase("p");
        assert!(t16 > 2.0 * t2, "colocation contention must bite: {t16} vs {t2}");
    }

    #[test]
    fn rename_folds_phases() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(1, 24));
        let mut p = Profile::default();
        p.counters_mut("spa").flops = 1000;
        p.counters_mut("sort").sort_elems = 1000;
        p.counters_mut("output").elems = 100;
        let r = ctx.price_compute_all(&[p], |_| "local".to_string());
        assert_eq!(r.phase_names(), vec!["local"]);
        assert!(r.phase("local") > 0.0);
    }

    #[test]
    fn locale_ctx_uses_machine_threads() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        assert_eq!(ctx.locale_ctx().threads(), 24);
        let c = Counters::default();
        assert!(c.is_empty());
    }

    #[test]
    fn comm_detailed_agrees_with_price_comm_and_summarizes_traffic() {
        let ctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        ctx.comm.fine("g", 0, 1, 100, 800).unwrap();
        ctx.comm.fine_dependent("g", 1, 2, 50, 400).unwrap();
        ctx.comm.bulk("s", 2, 3, 1, 4096).unwrap();
        let events = ctx.comm.events();
        let detailed = ctx.price_comm_detailed(&events);
        let report = ctx.price_comm(&events);
        assert_eq!(detailed.len(), 2);
        for c in &detailed {
            assert!((c.max_seconds() - report.phase(&c.phase)).abs() < 1e-15);
        }
        let g = &detailed[0];
        assert_eq!(g.per_locale_summary[0].fine_msgs, 100);
        assert_eq!(g.per_locale_summary[1].fine_dependent_msgs, 50);
        assert_eq!(g.per_locale_summary[0].peers, 1);
        assert_eq!(detailed[1].per_locale_summary[2].bulk_msgs, 1);
    }

    #[test]
    fn op_trace_report_matches_manual_assembly() {
        // The OpTrace builder must reproduce the legacy push/merge pattern
        // exactly, traced or not.
        let build = |dctx: &DistCtx| {
            let mut p0 = Profile::default();
            p0.counters_mut("gather").elems = 10_000;
            p0.counters_mut("spa").flops = 2_000;
            p0.counters_mut("sort").sort_elems = 5_000;
            let mut p1 = Profile::default();
            p1.counters_mut("gather").elems = 40_000;
            p1.counters_mut("spa").flops = 1_000;
            dctx.comm.fine_dependent("gather", 0, 1, 500, 4000).unwrap();
            dctx.comm.bulk("scatter", 1, 0, 1, 800).unwrap();
            (vec![p0.clone(), p1.clone()], vec![p0, p1])
        };

        // Manual (legacy) assembly.
        let manual_ctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        let (gather, local) = build(&manual_ctx);
        let mut manual = SimReport::default();
        manual
            .push("gather", manual_ctx.spawn_time() + manual_ctx.price_compute("gather", &gather));
        manual.merge(&manual_ctx.price_compute_all(&local, |_| "local".to_string()));
        manual.merge(&manual_ctx.price_comm(&manual_ctx.comm.take_events()));

        for traced in [false, true] {
            let mut dctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
            if traced {
                dctx.enable_tracing();
            }
            let (gather, local) = build(&dctx);
            let mut op = dctx.op("test_op");
            op.spawn("gather", 1);
            op.compute("gather", &gather);
            op.compute_folded("local", &local);
            let report = op.finish();
            assert_eq!(report, manual, "traced={traced}");
        }
    }

    #[test]
    fn op_trace_overlap_prices_max_and_stamps_savings() {
        // Identical workload twice: overlap off (the default sum) and on
        // (max per phase). Comm and compute logs are identical; only the
        // final pricing differs.
        let run = |overlap: bool| {
            let mut dctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
            dctx.set_overlap(overlap);
            let recorder = dctx.enable_tracing();
            let mut p = Profile::default();
            p.counters_mut("work").elems = 1_000_000;
            dctx.comm.bulk("work", 0, 1, 4, 1 << 22).unwrap();
            let mut op = dctx.op("o");
            op.compute("work", &[p.clone(), p]);
            (op.finish(), recorder.snapshot())
        };
        let (off, off_trace) = run(false);
        let (on, on_trace) = run(true);
        let comm = off.phase("work") - on.phase("work"); // hidden part
        assert!(on.phase("work") < off.phase("work"), "overlap must reduce the phase");
        assert!(comm > 0.0);
        // the op span records what overlap hid
        let saved_attr = |t: &gblas_core::trace::Trace| {
            t.spans.iter().find(|s| s.kind == SpanKind::Op).and_then(|s| {
                s.attrs.iter().find(|(k, _)| k == "overlap_saved_s").map(|(_, v)| v.clone())
            })
        };
        assert!(saved_attr(&off_trace).is_none(), "no savings attr when overlap is off");
        let saved: f64 = saved_attr(&on_trace).expect("savings attr").parse().unwrap();
        assert!((saved - comm).abs() < 1e-12, "saved {saved} vs hidden {comm}");
    }

    #[test]
    fn schedule_resolution_counts_metrics() {
        use crate::sched::GatherPlan;
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        dctx.set_schedules(true);
        let grid = crate::grid::ProcGrid::new(2, 2);
        let build = || PlanData::Gather(GatherPlan::build(grid, |l| (l * 10)..(l * 10 + 10)));
        let (_, o) = dctx.schedule("t", FrontierClass::Sparse, (2, 2), 1, 0, build);
        assert_eq!(o, SchedOutcome::Built);
        let (_, o) = dctx.schedule("t", FrontierClass::Sparse, (2, 2), 1, 0, build);
        assert_eq!(o, SchedOutcome::Replayed);
        let (_, o) = dctx.schedule("t", FrontierClass::Sparse, (2, 2), 2, 0, build);
        assert_eq!(o, SchedOutcome::Invalidated);
        let m = dctx.metrics().snapshot();
        assert_eq!((m.sched_builds, m.sched_replays, m.sched_invalidations), (2, 1, 1));
        // disabled: inspector runs, metrics untouched
        dctx.set_schedules(false);
        let (_, o) = dctx.schedule("t", FrontierClass::Sparse, (2, 2), 2, 0, build);
        assert_eq!(o, SchedOutcome::Off);
        assert_eq!(dctx.metrics().snapshot().sched_builds, 2);
    }

    #[test]
    fn op_trace_emits_span_tree_with_locale_segments() {
        let mut dctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        let recorder = dctx.enable_tracing();
        let mut p0 = Profile::default();
        p0.counters_mut("work").elems = 1_000;
        let mut p1 = Profile::default();
        p1.counters_mut("work").elems = 9_000;
        dctx.comm.bulk("work", 0, 1, 1, 4096).unwrap();
        let mut op = dctx.op("unit_op");
        op.attr("n", 10_000).nnz(10_000);
        op.compute("work", &[p0, p1]);
        let report = op.finish();

        let trace = recorder.snapshot();
        let op_span = &trace.spans[0];
        assert_eq!(op_span.kind, SpanKind::Op);
        assert_eq!(op_span.name, "unit_op");
        assert!((op_span.sim_dur - report.total()).abs() < 1e-15);
        assert!(op_span.attrs.iter().any(|(k, v)| k == "nnz" && v == "10000"));
        assert!(op_span.attrs.iter().any(|(k, v)| k == "locales" && v == "2"));

        let phases: Vec<_> = trace.spans.iter().filter(|s| s.kind == SpanKind::Phase).collect();
        assert_eq!(phases.len(), 1);
        assert!((phases[0].sim_dur - report.phase("work")).abs() < 1e-15);

        let computes: Vec<_> =
            trace.spans.iter().filter(|s| s.kind == SpanKind::LocaleCompute).collect();
        assert_eq!(computes.len(), 2);
        assert_eq!(computes[0].locale, Some(0));
        assert_eq!(computes[0].counters.elems, 1_000);
        assert!(computes[1].sim_dur > computes[0].sim_dur, "locale 1 has 9x the work");

        let comms: Vec<_> = trace.spans.iter().filter(|s| s.kind == SpanKind::LocaleComm).collect();
        assert_eq!(comms.len(), 1);
        assert_eq!(comms[0].locale, Some(0));
        let cs = comms[0].comm.as_ref().unwrap();
        assert_eq!(cs.bulk_msgs, 1);
        assert_eq!(cs.bytes, 4096);
        // comm follows the compute portion of the phase
        assert!(comms[0].sim_start > phases[0].sim_start);

        let m = dctx.metrics().snapshot();
        assert_eq!(m.ops_executed, 1);
        assert_eq!(m.nnz_processed, 10_000);
        assert_eq!(m.bulk_msgs, 1);
        assert_eq!(m.spans_recorded, trace.spans.len() as u64);
    }

    #[test]
    fn consecutive_ops_lay_out_end_to_end_on_the_sim_clock() {
        let mut dctx = DistCtx::new(MachineConfig::edison_cluster(2, 24));
        let recorder = dctx.enable_tracing();
        for _ in 0..2 {
            let mut p = Profile::default();
            p.counters_mut("w").elems = 1_000_000;
            let mut op = dctx.op("o");
            op.compute("w", &[p.clone(), p]);
            op.finish();
        }
        let trace = recorder.snapshot();
        let ops: Vec<_> = trace.spans.iter().filter(|s| s.kind == SpanKind::Op).collect();
        assert_eq!(ops.len(), 2);
        assert!((ops[1].sim_start - (ops[0].sim_start + ops[0].sim_dur)).abs() < 1e-15);
    }
}
