//! The locale grid and block partitions (§II-B).

/// A `pr × pc` grid of locales, row-major: locale `l = r·pc + c`.
///
/// "In 2-D block-distribution, locales are organized in a two dimensional
/// grid and array indices are partitioned 'evenly' across the target
/// locales."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    pr: usize,
    pc: usize,
}

impl ProcGrid {
    /// Explicit grid shape.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr >= 1 && pc >= 1, "grid must be at least 1x1");
        ProcGrid { pr, pc }
    }

    /// The most-square grid for `p` locales with `pr ≤ pc` (Chapel's
    /// default factoring for `Block` over a 2-D domain).
    pub fn square_for(p: usize) -> Self {
        assert!(p >= 1);
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        ProcGrid { pr: pr.max(1), pc: p / pr.max(1) }
    }

    /// Rows of the grid.
    pub fn pr(&self) -> usize {
        self.pr
    }

    /// Columns of the grid.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Total locales.
    pub fn locales(&self) -> usize {
        self.pr * self.pc
    }

    /// Locale id at grid position `(r, c)`.
    pub fn locale(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.pr && c < self.pc);
        r * self.pc + c
    }

    /// Grid coordinates of locale `l`.
    pub fn coords(&self, l: usize) -> (usize, usize) {
        debug_assert!(l < self.locales());
        (l / self.pc, l % self.pc)
    }

    /// Locales in grid row `r` (the "processor row" the SpMSpV gather
    /// walks).
    pub fn row_locales(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.pc).map(move |c| self.locale(r, c))
    }

    /// Locales in grid column `c` (the scatter's "processor column").
    pub fn col_locales(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.pr).map(move |r| self.locale(r, c))
    }
}

/// A contiguous block partition of `0..n` into `blocks` pieces:
/// block `b` owns `[b·n/blocks, (b+1)·n/blocks)` (floor arithmetic).
///
/// The floor formula has the alignment property the distributed SpMSpV
/// relies on: partitioning `0..n` into `pr·pc` vector blocks and into `pr`
/// matrix row-blocks makes row-block `r` exactly the union of the vector
/// blocks owned by grid row `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    n: usize,
    blocks: usize,
}

impl BlockDist {
    /// Partition `0..n` into `blocks` contiguous pieces.
    pub fn new(n: usize, blocks: usize) -> Self {
        assert!(blocks >= 1);
        BlockDist { n, blocks }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The index range of block `b`.
    ///
    /// Computed in `u128` so domains near `usize::MAX` don't overflow the
    /// `b·n` product.
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        debug_assert!(b < self.blocks);
        let (n, blocks) = (self.n as u128, self.blocks as u128);
        let lo = (b as u128 * n / blocks) as usize;
        let hi = ((b as u128 + 1) * n / blocks) as usize;
        lo..hi
    }

    /// Which block owns index `i`.
    pub fn owner(&self, i: usize) -> usize {
        // The empty-domain guard must precede any division: with `n == 0`
        // the debug_assert below is compiled out of release builds and
        // `i * blocks / n` would fault.
        if self.n == 0 {
            return 0;
        }
        debug_assert!(i < self.n);
        // Invert the floor formula: the owner is the largest b with
        // b*n/blocks <= i — compute the quotient in u128 (the product
        // `i * blocks` overflows usize for large domains) and fix up
        // boundary effects.
        let mut b = ((i as u128 * self.blocks as u128) / self.n as u128) as usize;
        // floor rounding can land one block early/late; adjust.
        while b + 1 < self.blocks && self.range(b).end <= i {
            b += 1;
        }
        while b > 0 && self.range(b).start > i {
            b -= 1;
        }
        b
    }

    /// Size of block `b`.
    pub fn size(&self, b: usize) -> usize {
        self.range(b).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grids() {
        assert_eq!(ProcGrid::square_for(1), ProcGrid::new(1, 1));
        assert_eq!(ProcGrid::square_for(4), ProcGrid::new(2, 2));
        assert_eq!(ProcGrid::square_for(8), ProcGrid::new(2, 4));
        assert_eq!(ProcGrid::square_for(64), ProcGrid::new(8, 8));
        assert_eq!(ProcGrid::square_for(6), ProcGrid::new(2, 3));
        // primes degrade to 1 x p
        assert_eq!(ProcGrid::square_for(7), ProcGrid::new(1, 7));
    }

    #[test]
    fn locale_coords_round_trip() {
        let g = ProcGrid::new(3, 4);
        for l in 0..12 {
            let (r, c) = g.coords(l);
            assert_eq!(g.locale(r, c), l);
        }
        assert_eq!(g.row_locales(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(g.col_locales(2).collect::<Vec<_>>(), vec![2, 6, 10]);
    }

    #[test]
    fn block_dist_covers_exactly() {
        for (n, b) in [(10, 3), (7, 7), (100, 8), (5, 8), (0, 2), (1_000_000, 64)] {
            let d = BlockDist::new(n, b);
            let mut covered = 0;
            for blk in 0..b {
                let r = d.range(blk);
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn owner_is_consistent_with_range() {
        for (n, b) in [(10usize, 3usize), (100, 8), (97, 13), (64, 64)] {
            let d = BlockDist::new(n, b);
            for i in 0..n {
                let o = d.owner(i);
                assert!(d.range(o).contains(&i), "n={n} b={b} i={i} owner={o}");
            }
        }
    }

    #[test]
    fn owner_on_empty_domain_does_not_divide_by_zero() {
        // Regression: with n == 0 the old guard sat after a debug_assert,
        // so release builds divided by zero.
        let d = BlockDist::new(0, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(17), 0);
    }

    #[test]
    fn owner_with_fewer_indices_than_blocks() {
        let d = BlockDist::new(3, 8);
        for i in 0..3 {
            let o = d.owner(i);
            assert!(d.range(o).contains(&i), "i={i} owner={o}");
        }
        // Exactly 3 of the 8 blocks are non-empty.
        let nonempty = (0..8).filter(|&b| d.size(b) > 0).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn owner_near_usize_max_does_not_overflow() {
        // Regression: `i * blocks` overflowed usize for large domains.
        let n = usize::MAX - 5;
        for blocks in [2usize, 7, 64] {
            let d = BlockDist::new(n, blocks);
            for i in [0usize, 1, n / 2, n - 1] {
                let o = d.owner(i);
                assert!(d.range(o).contains(&i), "n={n} blocks={blocks} i={i} owner={o}");
            }
            assert_eq!(d.range(0).start, 0);
            assert_eq!(d.range(blocks - 1).end, n);
        }
    }

    #[test]
    fn row_block_alignment_property() {
        // Vector blocks over pr*pc locales, matrix row blocks over pr:
        // row block r must equal the union of grid-row r's vector blocks.
        for (n, pr, pc) in [(1000usize, 2usize, 4usize), (97, 3, 3), (1_000_000, 8, 8)] {
            let p = pr * pc;
            let vecd = BlockDist::new(n, p);
            let rowd = BlockDist::new(n, pr);
            for r in 0..pr {
                let start = vecd.range(r * pc).start;
                let end = vecd.range(r * pc + pc - 1).end;
                assert_eq!(rowd.range(r), start..end, "n={n} pr={pr} pc={pc} r={r}");
            }
        }
    }
}
