//! # gblas-dist — simulated distributed-memory GraphBLAS
//!
//! The paper's distributed substrate is Chapel's 2-D block-distributed
//! sparse arrays over *locales* (§II-B): locales are arranged in a `pr×pc`
//! grid, array indices are partitioned "evenly" across them, and each
//! locale holds a non-distributed local block (`LocSparseBlockDom` /
//! `LocSparseBlockArr`). This crate rebuilds that substrate in Rust:
//!
//! * [`grid::ProcGrid`] / [`grid::BlockDist`] — the locale grid and the
//!   contiguous block partition of index ranges;
//! * [`vec::DistSparseVec`] / [`mat::DistCsrMatrix`] — distributed sparse
//!   vectors (one block per locale, row-major locale order) and matrices
//!   (one CSR block per grid cell), physically partitioned into per-locale
//!   shards exactly as Chapel's Block distribution would;
//! * [`comm::Comm`] — the instrumented communication layer: every remote
//!   read/write performs the real copy *and* logs `(phase, src, dst,
//!   fine|bulk, messages, bytes)`; `gblas_sim::NetworkModel` prices the log.
//!   Fault injection hooks allow testing failure propagation;
//! * [`exec::DistCtx`] — per-op execution context: runs one task per
//!   locale (Chapel's `coforall loc in Locales do on loc`), collects
//!   per-locale work profiles, and combines compute and communication into
//!   a phase-structured [`gblas_sim::SimReport`] using the
//!   bulk-synchronous rule *superstep time = max over locales*;
//! * [`ops`] — the paper's four operations, each in the two versions the
//!   paper contrasts (fine-grained "version 1" vs SPMD "version 2"), plus
//!   the distributed SpMSpV of Listing 8 (gather along the processor row,
//!   local multiply, scatter across processor columns).
//!
//! Everything *functional* is real — results are asserted equal to the
//! shared-memory reference in the test suite at every grid shape — while
//! *time* is simulated (see `gblas-sim` for the calibration discipline).
//!
//! ```
//! use gblas_core::gen;
//! use gblas_dist::{DistCsrMatrix, DistCtx, DistSparseVec, ProcGrid};
//! use gblas_dist::ops::spmspv::spmspv_dist;
//! use gblas_sim::MachineConfig;
//!
//! // distribute a 1000-vertex graph over a simulated 2x2 Edison cluster
//! let a = gen::erdos_renyi(1000, 8, 7);
//! let x = gen::random_sparse_vec(1000, 30, 8);
//! let grid = ProcGrid::new(2, 2);
//! let da = DistCsrMatrix::from_global(&a, grid);
//! let dx = DistSparseVec::from_global(&x, grid.locales());
//! let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
//! let (y, report) = spmspv_dist(&da, &dx, &dctx).unwrap();
//! assert!(y.nnz() > 0);
//! // the Fig 8 components:
//! assert!(report.phase("gather") + report.phase("local") + report.phase("scatter") > 0.0);
//! ```

pub mod backend;
pub mod comm;
pub mod dcsc;
pub mod exec;
pub mod grid;
pub mod mat;
pub mod ops;
pub mod sched;
pub mod vec;

pub use backend::DistBackend;
pub use comm::Comm;
pub use dcsc::{BlockFormat, ColSlice, DcscBlock};
pub use exec::{DistCtx, LocaleExecutor, Outbox};
pub use grid::{BlockDist, ProcGrid};
pub use mat::DistCsrMatrix;
pub use ops::expand::DistFrontier;
pub use ops::mxm::{auto_layers, MxmAlgo};
pub use sched::{
    CommSchedule, FrontierClass, PlanData, SchedKey, SchedOutcome, ScheduleCache, SummaPlan,
};
pub use vec::{DistDenseVec, DistSparseVec};
