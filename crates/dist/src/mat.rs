//! 2-D block-distributed CSR matrices.

use crate::grid::{BlockDist, ProcGrid};
use gblas_core::container::{CooMatrix, CsrMatrix, DupPolicy};
use gblas_core::error::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide generation counter: every construction or mutation of a
/// distributed matrix draws a fresh stamp, so a cached communication
/// schedule can tell "same matrix, same structure" from "rebuilt or
/// mutated" with one integer compare.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

fn fresh_gen() -> u64 {
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// An `nrows × ncols` sparse matrix distributed over a [`ProcGrid`]:
/// locale `(r, c)` owns the CSR block covering row range `r` of `pr` and
/// column range `c` of `pc` — Chapel's `Block` distribution with
/// `sparseLayoutType = CSR` (Listing 1).
///
/// Each block is an ordinary [`CsrMatrix`] in **local coordinates**: row
/// ids `0..block_rows`, column ids `0..block_cols`. The global position of
/// a block entry is `(row + row_range.start, col + col_range.start)`.
/// Local column coordinates mirror Listing 7's SPA, which is allocated
/// over the local block's column range `ciLow..ciHigh` only.
#[derive(Debug, Clone)]
pub struct DistCsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    grid: ProcGrid,
    row_dist: BlockDist,
    col_dist: BlockDist,
    blocks: Vec<CsrMatrix<T>>,
    /// Schedule-invalidation stamp; see [`DistCsrMatrix::generation`].
    gen: u64,
}

impl<T: PartialEq> PartialEq for DistCsrMatrix<T> {
    /// The generation stamp is cache-invalidation metadata, not content:
    /// two separately-built matrices with the same entries are equal.
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.grid == other.grid
            && self.row_dist == other.row_dist
            && self.col_dist == other.col_dist
            && self.blocks == other.blocks
    }
}

impl<T: Copy> DistCsrMatrix<T> {
    /// Distribute a global CSR matrix over `grid`.
    ///
    /// `O(nnz)` with no sorting: the global CSR is walked in row-major
    /// order, so each block's entries arrive already in CSR order and can
    /// be appended directly.
    pub fn from_global(a: &CsrMatrix<T>, grid: ProcGrid) -> Self {
        let row_dist = BlockDist::new(a.nrows(), grid.pr());
        let col_dist = BlockDist::new(a.ncols(), grid.pc());
        let p = grid.locales();
        struct Builder<T> {
            rowptr: Vec<usize>,
            colidx: Vec<usize>,
            values: Vec<T>,
        }
        let mut builders: Vec<Builder<T>> = (0..p)
            .map(|l| {
                let (r, _) = grid.coords(l);
                Builder {
                    rowptr: Vec::with_capacity(row_dist.size(r) + 1),
                    colidx: Vec::new(),
                    values: Vec::new(),
                }
            })
            .collect();
        for b in &mut builders {
            b.rowptr.push(0);
        }
        for i in 0..a.nrows() {
            let r = row_dist.owner(i);
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let c = col_dist.owner(j);
                let l = grid.locale(r, c);
                builders[l].colidx.push(j - col_dist.range(c).start);
                builders[l].values.push(v);
            }
            for c in 0..grid.pc() {
                let b = &mut builders[grid.locale(r, c)];
                b.rowptr.push(b.colidx.len());
            }
        }
        let blocks = builders
            .into_iter()
            .enumerate()
            .map(|(l, b)| {
                let (r, c) = grid.coords(l);
                debug_assert_eq!(b.rowptr.len(), row_dist.size(r) + 1);
                CsrMatrix::from_raw_parts(
                    row_dist.size(r),
                    col_dist.size(c),
                    b.rowptr,
                    b.colidx,
                    b.values,
                )
                .expect("row-major walk preserves CSR order")
            })
            .collect();
        DistCsrMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            grid,
            row_dist,
            col_dist,
            blocks,
            gen: fresh_gen(),
        }
    }

    /// Assemble from per-locale blocks in local coordinates. Each block's
    /// shape must match its grid cell's row/column ranges; validated.
    pub fn from_blocks(
        nrows: usize,
        ncols: usize,
        grid: ProcGrid,
        blocks: Vec<CsrMatrix<T>>,
    ) -> Result<Self> {
        use gblas_core::error::GblasError;
        if blocks.len() != grid.locales() {
            return Err(GblasError::InvalidContainer(format!(
                "{} blocks for a {}x{} grid",
                blocks.len(),
                grid.pr(),
                grid.pc()
            )));
        }
        let row_dist = BlockDist::new(nrows, grid.pr());
        let col_dist = BlockDist::new(ncols, grid.pc());
        for (l, b) in blocks.iter().enumerate() {
            let (r, c) = grid.coords(l);
            if b.nrows() != row_dist.size(r) || b.ncols() != col_dist.size(c) {
                return Err(GblasError::InvalidContainer(format!(
                    "block {l} is {}x{}, cell ({r},{c}) needs {}x{}",
                    b.nrows(),
                    b.ncols(),
                    row_dist.size(r),
                    col_dist.size(c)
                )));
            }
        }
        Ok(DistCsrMatrix { nrows, ncols, grid, row_dist, col_dist, blocks, gen: fresh_gen() })
    }

    /// The matrix's generation stamp: unique per construction, bumped on
    /// every mutable block access. Communication schedules key on it and
    /// invalidate automatically when it moves.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Global row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The locale grid.
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// The row partition (over `pr`).
    pub fn row_dist(&self) -> BlockDist {
        self.row_dist
    }

    /// The column partition (over `pc`).
    pub fn col_dist(&self) -> BlockDist {
        self.col_dist
    }

    /// Locale `l`'s global row range.
    pub fn row_range(&self, l: usize) -> std::ops::Range<usize> {
        let (r, _) = self.grid.coords(l);
        self.row_dist.range(r)
    }

    /// Locale `l`'s global column range (`ciLow..ciHigh+1`).
    pub fn col_range(&self, l: usize) -> std::ops::Range<usize> {
        let (_, c) = self.grid.coords(l);
        self.col_dist.range(c)
    }

    /// Global stored-entry count.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// Locale `l`'s CSR block (local coordinates).
    pub fn block(&self, l: usize) -> &CsrMatrix<T> {
        &self.blocks[l]
    }

    /// Mutable access to locale `l`'s block. Conservatively bumps the
    /// generation stamp: any handed-out `&mut` may change the sparsity
    /// pattern, so cached schedules for this matrix stop replaying.
    pub fn block_mut(&mut self, l: usize) -> &mut CsrMatrix<T> {
        self.gen = fresh_gen();
        &mut self.blocks[l]
    }

    /// All blocks in locale order — the shape
    /// [`crate::DistCtx::for_each_locale_state`] splits into one disjoint
    /// `&mut` per locale task. Bumps the generation stamp like
    /// [`DistCsrMatrix::block_mut`].
    pub fn blocks_mut(&mut self) -> &mut [CsrMatrix<T>] {
        self.gen = fresh_gen();
        &mut self.blocks
    }

    /// Reassemble the global matrix (verification path).
    pub fn to_global(&self) -> Result<CsrMatrix<T>> {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for l in 0..self.grid.locales() {
            let row_start = self.row_range(l).start;
            let col_start = self.col_range(l).start;
            for (li, lj, &v) in self.blocks[l].iter() {
                coo.push(li + row_start, lj + col_start, v)?;
            }
        }
        coo.to_csr(DupPolicy::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::gen;

    #[test]
    fn round_trip_all_grid_shapes() {
        let a = gen::erdos_renyi(100, 5, 77);
        for (pr, pc) in [(1, 1), (1, 4), (4, 1), (2, 2), (2, 4), (3, 3)] {
            let d = DistCsrMatrix::from_global(&a, ProcGrid::new(pr, pc));
            assert_eq!(d.nnz(), a.nnz(), "grid {pr}x{pc}");
            assert_eq!(d.to_global().unwrap(), a, "grid {pr}x{pc}");
        }
    }

    #[test]
    fn blocks_are_local_coordinates() {
        let a = gen::erdos_renyi(60, 4, 3);
        let grid = ProcGrid::new(2, 3);
        let d = DistCsrMatrix::from_global(&a, grid);
        for l in 0..6 {
            let rows = d.row_range(l);
            let cols = d.col_range(l);
            let blk = d.block(l);
            assert_eq!(blk.nrows(), rows.len());
            assert_eq!(blk.ncols(), cols.len());
            for (li, lj, &v) in blk.iter() {
                assert_eq!(a.get(li + rows.start, lj + cols.start), Some(&v));
            }
        }
    }

    #[test]
    fn row_union_across_grid_row_matches_global() {
        let a = gen::erdos_renyi(50, 6, 13);
        let grid = ProcGrid::new(2, 2);
        let d = DistCsrMatrix::from_global(&a, grid);
        for gid in 0..50 {
            let r = d.row_dist().owner(gid);
            let mut cols = Vec::new();
            for l in grid.row_locales(r) {
                let local_row = gid - d.row_range(l).start;
                let (bc, _) = d.block(l).row(local_row);
                let off = d.col_range(l).start;
                cols.extend(bc.iter().map(|&j| j + off));
            }
            cols.sort_unstable();
            let (gc, _) = a.row(gid);
            assert_eq!(cols, gc, "row {gid}");
        }
    }

    #[test]
    fn uneven_dimensions_distribute() {
        let a = gen::erdos_renyi(97, 3, 5);
        let d = DistCsrMatrix::from_global(&a, ProcGrid::new(3, 4));
        assert_eq!(d.to_global().unwrap(), a);
    }

    #[test]
    fn generation_moves_on_mutation_not_equality() {
        let a = gen::erdos_renyi(80, 4, 9);
        let grid = ProcGrid::new(2, 2);
        let mut d1 = DistCsrMatrix::from_global(&a, grid);
        let d2 = DistCsrMatrix::from_global(&a, grid);
        // distinct constructions: distinct stamps, but equal content
        assert_ne!(d1.generation(), d2.generation());
        assert_eq!(d1, d2);
        // clone keeps the stamp (same data, schedules stay valid)
        let c = d1.clone();
        assert_eq!(c.generation(), d1.generation());
        // any mutable access conservatively bumps it
        let before = d1.generation();
        let _ = d1.block_mut(0);
        assert_ne!(d1.generation(), before);
        let mid = d1.generation();
        let _ = d1.blocks_mut();
        assert_ne!(d1.generation(), mid);
    }
}
