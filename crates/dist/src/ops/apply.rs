//! Distributed `Apply` (§III-A, Fig 1 right).

use crate::exec::DistCtx;
use crate::vec::DistSparseVec;
use gblas_core::algebra::UnaryOp;
use gblas_core::error::Result;
use gblas_core::ops::apply::apply_vec_inplace;
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase name for both versions.
pub const PHASE: &str = "apply";

/// Listing 2 (`Apply1`): a flat `forall` over the block-distributed sparse
/// array. The locality optimization "is not implemented for sparse arrays
/// yet", so every iteration executes on the initiating locale and each
/// remote element costs a fine-grained GET + PUT — which is why Fig 1
/// (right) shows Apply1 2–4 orders of magnitude slower than Apply2.
pub fn apply_v1<T: Copy + Send + Sync>(
    x: &mut DistSparseVec<T>,
    op: &impl UnaryOp<T, T>,
    dctx: &DistCtx,
) -> Result<SimReport> {
    let p = x.locales();
    // Communication: elements on locales other than the initiating locale
    // (locale 0) are accessed remotely, one element at a time, read +
    // write.
    let elem_bytes = std::mem::size_of::<T>() as u64;
    for l in 1..p {
        let nnz = x.shard(l).nnz() as u64;
        dctx.comm.fine(PHASE, 0, l, 2 * nnz, 2 * nnz * elem_bytes)?;
    }
    // Compute: simulated on locale 0's threads (the flat `forall` runs
    // entirely on the initiating locale). The wall-clock execution still
    // fans out one task per shard; merging the per-shard profiles in
    // locale order reproduces the single shared profile exactly.
    let per_shard = dctx.for_each_locale_state(x.shards_mut(), |l, shard| {
        let ctx = dctx.locale_ctx_for(l);
        apply_vec_inplace(shard, op, &ctx);
        Ok(ctx.take_profile())
    })?;
    let mut profile = Profile::default();
    for sp in &per_shard {
        for (name, c) in sp.iter() {
            profile.counters_mut(name).merge(c);
        }
    }
    let mut trace = dctx.op("apply_v1");
    trace.nnz(x.nnz() as u64);
    trace.compute_as(PHASE, gblas_core::ops::apply::PHASE, &[profile]);
    Ok(trace.finish())
}

/// Listing 3 (`Apply2`): `coforall` one task per locale, each updating
/// only its local block — no communication, near-perfect scaling.
pub fn apply_v2<T: Copy + Send + Sync>(
    x: &mut DistSparseVec<T>,
    op: &impl UnaryOp<T, T>,
    dctx: &DistCtx,
) -> Result<SimReport> {
    let profiles = dctx.for_each_locale_state(x.shards_mut(), |l, shard| {
        let ctx = dctx.locale_ctx_for(l);
        apply_vec_inplace(shard, op, &ctx);
        Ok(ctx.take_profile())
    })?;
    let mut trace = dctx.op("apply_v2");
    trace.nnz(x.nnz() as u64);
    trace.spawn(PHASE, 1);
    trace.compute_as(PHASE, gblas_core::ops::apply::PHASE, &profiles);
    Ok(trace.finish())
}

/// Distributed matrix Apply (SPMD style only — the sensible one): each
/// locale rewrites its own block's values in place. No communication.
pub fn apply_mat_v2<T: Copy + Send + Sync>(
    a: &mut crate::mat::DistCsrMatrix<T>,
    op: &impl UnaryOp<T, T>,
    dctx: &DistCtx,
) -> Result<SimReport> {
    let profiles = dctx.for_each_locale_state(a.blocks_mut(), |l, block| {
        let ctx = dctx.locale_ctx_for(l);
        gblas_core::ops::apply::apply_mat_inplace(block, op, &ctx);
        Ok(ctx.take_profile())
    })?;
    let mut trace = dctx.op("apply_mat_v2");
    trace.nnz(a.nnz() as u64);
    trace.spawn(PHASE, 1);
    trace.compute_as(PHASE, gblas_core::ops::apply::PHASE, &profiles);
    Ok(trace.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    fn dist_pair(nnz: usize, p: usize) -> (DistSparseVec<f64>, DistSparseVec<f64>) {
        let v = gen::random_sparse_vec(nnz * 2, nnz, 123);
        (DistSparseVec::from_global(&v, p), DistSparseVec::from_global(&v, p))
    }

    #[test]
    fn both_versions_compute_the_same_result() {
        for p in [1, 2, 4, 8] {
            let (mut a, mut b) = dist_pair(500, p);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            apply_v1(&mut a, &|v: f64| v + 1.0, &dctx).unwrap();
            let dctx2 = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            apply_v2(&mut b, &|v: f64| v + 1.0, &dctx2).unwrap();
            assert_eq!(a, b, "p={p}");
            // and matches the serial reference
            let mut reference = gen::random_sparse_vec(1000, 500, 123);
            gblas_core::ops::apply::apply_vec_inplace(
                &mut reference,
                &|v: f64| v + 1.0,
                &gblas_core::par::ExecCtx::serial(),
            );
            assert_eq!(a.to_global(), reference);
        }
    }

    #[test]
    fn v1_logs_fine_grained_comm_v2_none() {
        let (mut a, mut b) = dist_pair(1000, 4);
        let d1 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        apply_v1(&mut a, &|v: f64| v, &d1).unwrap();
        let (fine, bulk, _) = d1.comm.totals();
        assert!(fine > 0, "Apply1 must communicate");
        assert_eq!(bulk, 0);

        let d2 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        apply_v2(&mut b, &|v: f64| v, &d2).unwrap();
        assert_eq!(d2.comm.totals().0, 0, "Apply2 must not communicate");
    }

    #[test]
    fn v1_much_slower_than_v2_beyond_one_node() {
        let (mut a, mut b) = dist_pair(100_000, 8);
        let d1 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        let r1 = apply_v1(&mut a, &|v: f64| v * 2.0, &d1).unwrap();
        let d2 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        let r2 = apply_v2(&mut b, &|v: f64| v * 2.0, &d2).unwrap();
        assert!(
            r1.total() > 50.0 * r2.total(),
            "Fig 1 right: Apply1 {} should dwarf Apply2 {}",
            r1.total(),
            r2.total()
        );
    }

    #[test]
    fn single_locale_versions_tie() {
        let (mut a, mut b) = dist_pair(10_000, 1);
        let d1 = DistCtx::new(MachineConfig::edison_cluster(1, 24));
        let r1 = apply_v1(&mut a, &|v: f64| v, &d1).unwrap();
        let d2 = DistCtx::new(MachineConfig::edison_cluster(1, 24));
        let r2 = apply_v2(&mut b, &|v: f64| v, &d2).unwrap();
        // within spawn-overhead of each other
        assert!((r1.total() - r2.total()).abs() < 1e-3);
    }

    #[test]
    fn matrix_apply_matches_global() {
        let a = gen::erdos_renyi(80, 5, 321);
        let mut expect = a.clone();
        gblas_core::ops::apply::apply_mat_inplace(
            &mut expect,
            &|v: f64| v * v,
            &gblas_core::par::ExecCtx::serial(),
        );
        for (pr, pc) in [(1, 1), (2, 3)] {
            let grid = crate::grid::ProcGrid::new(pr, pc);
            let mut da = crate::mat::DistCsrMatrix::from_global(&a, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let r = apply_mat_v2(&mut da, &|v: f64| v * v, &dctx).unwrap();
            assert_eq!(da.to_global().unwrap(), expect, "grid {pr}x{pc}");
            assert!(r.total() > 0.0);
            assert_eq!(dctx.comm.totals(), (0, 0, 0));
        }
    }

    #[test]
    fn v2_scales_down_with_nodes() {
        // The paper's Fig 1 uses 10M nonzeros; build the vector cheaply
        // (even indices) instead of sampling.
        let nnz = 10_000_000;
        let global = gblas_core::container::SparseVec::from_sorted(
            nnz * 2,
            (0..nnz).map(|i| i * 2).collect(),
            vec![1.0f64; nnz],
        )
        .unwrap();
        let mut prev = f64::INFINITY;
        for p in [1usize, 4, 16, 64] {
            let mut a = DistSparseVec::from_global(&global, p);
            let d = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let r = apply_v2(&mut a, &|v: f64| v, &d).unwrap();
            assert!(r.total() < prev, "p={p}: {} !< {prev}", r.total());
            prev = r.total();
        }
    }
}
