//! Distributed `Assign` (§III-B, Figs 2, 3 and 10).

use crate::exec::DistCtx;
use crate::vec::DistSparseVec;
use gblas_core::error::{check_dims, GblasError, Result};
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase name for both versions.
pub const PHASE: &str = "assign";

fn check_conformant<T>(a: &DistSparseVec<T>, b: &DistSparseVec<T>) -> Result<()>
where
    T: Copy,
{
    check_dims("capacity", a.capacity(), b.capacity())?;
    if a.locales() != b.locales() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("{} locales", a.locales()),
            actual: format!("{} locales", b.locales()),
        });
    }
    Ok(())
}

/// Listing 4 (`Assign1`): iterate the destination domain from the
/// initiating locale and copy element-by-element. Every access to a
/// remote element is a fine-grained GET/PUT, and every indexed access —
/// local or remote — pays the `O(log nnz)` search of §III-B.
pub fn assign_v1<T: Copy + Send + Sync + Default + 'static>(
    a: &mut DistSparseVec<T>,
    b: &DistSparseVec<T>,
    dctx: &DistCtx,
) -> Result<SimReport> {
    check_conformant(a, b)?;
    let p = b.locales();
    let elem_bytes = std::mem::size_of::<T>() as u64;
    // Domain rebuild (DA.clear(); DA += DB): the initiating locale walks
    // every remote domain's iterator — a dependent chain — and writes
    // every remote domain entry.
    for l in 1..p {
        let nnz = b.shard(l).nnz() as u64;
        dctx.comm.fine_dependent(PHASE, 0, l, 2 * nnz, 2 * nnz * 8)?;
    }
    // Value copy (forall i in DA do A[i] = B[i]): one remote GET of B[i]
    // and one remote PUT of A[i] per remote element...
    for l in 1..p {
        let nnz = b.shard(l).nnz() as u64;
        dctx.comm.fine(PHASE, 0, l, 2 * nnz, 2 * nnz * elem_bytes)?;
    }
    // ...while the searches are *simulated* on the initiating locale's
    // threads: the per-shard profiles are merged in locale order into one
    // locale-0 profile, identical to a single shared context.
    let per_shard = dctx.for_each_locale_state(a.shards_mut(), |l, shard| {
        let ctx = dctx.locale_ctx_for(l);
        gblas_core::ops::assign::assign_v1(shard, b.shard(l), &ctx)?;
        Ok(ctx.take_profile())
    })?;
    let mut merged = Profile::default();
    for sp in &per_shard {
        for (name, c) in sp.iter() {
            merged.counters_mut(name).merge(c);
        }
    }
    let profile = fold_assign_phases(merged);
    let mut trace = dctx.op("assign_v1");
    trace.nnz(b.nnz() as u64);
    trace.compute(PHASE, &[profile]);
    Ok(trace.finish())
}

/// Listing 5 (`Assign2`): `coforall` per locale, bulk-copying the local
/// domain and value arrays. No communication.
pub fn assign_v2<T: Copy + Send + Sync + Default>(
    a: &mut DistSparseVec<T>,
    b: &DistSparseVec<T>,
    dctx: &DistCtx,
) -> Result<SimReport> {
    check_conformant(a, b)?;
    let profiles = dctx.for_each_locale_state(a.shards_mut(), |l, shard| {
        let ctx = dctx.locale_ctx_for(l);
        gblas_core::ops::assign::assign_v2(shard, b.shard(l), &ctx)?;
        Ok(fold_assign_phases(ctx.take_profile()))
    })?;
    let mut trace = dctx.op("assign_v2");
    trace.nnz(b.nnz() as u64);
    trace.spawn(PHASE, 1);
    trace.compute(PHASE, &profiles);
    Ok(trace.finish())
}

/// Fold the core op's `assign-domain`/`assign-values` phases into the
/// figure's single "assign" component.
fn fold_assign_phases(p: Profile) -> Profile {
    let mut out = Profile::default();
    let c = out.counters_mut(PHASE);
    for (_, counters) in p.iter() {
        c.merge(counters);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    fn setup(nnz: usize, p: usize) -> (DistSparseVec<f64>, DistSparseVec<f64>) {
        let b = gen::random_sparse_vec(nnz * 4, nnz, 7);
        let a = DistSparseVec::empty(nnz * 4, p);
        (a, DistSparseVec::from_global(&b, p))
    }

    #[test]
    fn both_versions_copy_exactly() {
        for p in [1, 2, 6, 9] {
            let (mut a1, b) = setup(400, p);
            let mut a2 = a1.clone();
            let d1 = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            assign_v1(&mut a1, &b, &d1).unwrap();
            let d2 = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            assign_v2(&mut a2, &b, &d2).unwrap();
            assert_eq!(a1, b, "v1 p={p}");
            assert_eq!(a2, b, "v2 p={p}");
        }
    }

    #[test]
    fn v1_pays_comm_and_searches_v2_neither() {
        let (mut a, b) = setup(2000, 4);
        let d1 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assign_v1(&mut a, &b, &d1).unwrap();
        assert!(d1.comm.totals().0 > 0);

        let (a2, b2) = setup(2000, 4);
        let _ = a2;
        let mut a2 = DistSparseVec::empty(b2.capacity(), 4);
        let d2 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assign_v2(&mut a2, &b2, &d2).unwrap();
        assert_eq!(d2.comm.totals().0, 0);
    }

    #[test]
    fn fig2_shape_v1_collapses_v2_scales() {
        // nnz = 1M equivalent, scaled to 50k for test speed; the *ratio*
        // is scale-free.
        let (mut a1, b) = setup(50_000, 16);
        let d1 = DistCtx::new(MachineConfig::edison_cluster(16, 24));
        let r1 = assign_v1(&mut a1, &b, &d1).unwrap();
        let mut a2 = DistSparseVec::empty(b.capacity(), 16);
        let d2 = DistCtx::new(MachineConfig::edison_cluster(16, 24));
        let r2 = assign_v2(&mut a2, &b, &d2).unwrap();
        assert!(
            r1.total() > 20.0 * r2.total(),
            "Fig 2 right: Assign1 {} vs Assign2 {}",
            r1.total(),
            r2.total()
        );
    }

    #[test]
    fn fig10_shape_colocation_degrades_both() {
        // 10K nonzeros, locales colocated on one node, 1 thread each.
        let mut last_v1 = 0.0;
        let mut last_v2 = 0.0;
        let mut first_v1 = 0.0;
        let mut first_v2 = 0.0;
        for (i, locales) in [1usize, 8, 32].iter().enumerate() {
            let (mut a1, b) = setup(10_000, *locales);
            let d1 = DistCtx::new(MachineConfig::edison_colocated(*locales));
            let r1 = assign_v1(&mut a1, &b, &d1).unwrap();
            let mut a2 = DistSparseVec::empty(b.capacity(), *locales);
            let d2 = DistCtx::new(MachineConfig::edison_colocated(*locales));
            let r2 = assign_v2(&mut a2, &b, &d2).unwrap();
            if i == 0 {
                first_v1 = r1.total();
                first_v2 = r2.total();
            }
            last_v1 = r1.total();
            last_v2 = r2.total();
        }
        assert!(last_v1 > 5.0 * first_v1, "Assign1 colocation: {first_v1} -> {last_v1}");
        assert!(last_v2 > 2.0 * first_v2, "Assign2 colocation: {first_v2} -> {last_v2}");
        assert!(last_v1 > last_v2, "Assign1 stays the slower one");
    }

    #[test]
    fn mismatched_locale_counts_error() {
        let b = gen::random_sparse_vec(100, 10, 1);
        let bd = DistSparseVec::from_global(&b, 4);
        let mut a = DistSparseVec::empty(100, 2);
        let d = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assert!(assign_v1(&mut a, &bd, &d).is_err());
        assert!(assign_v2(&mut a, &bd, &d).is_err());
    }

    #[test]
    fn injected_comm_fault_propagates() {
        let (mut a, b) = setup(1000, 4);
        let d = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        d.comm.fail_after(1);
        let err = assign_v1(&mut a, &b, &d).unwrap_err();
        assert!(matches!(err, GblasError::CommFailure(_)));
    }
}
