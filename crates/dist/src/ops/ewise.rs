//! Distributed `eWiseMult` (§III-C, Fig 5).
//!
//! The sparse and dense operands share one block distribution, so the
//! filter is communication-free: each locale filters its own block
//! (Listing 6 is a pure `coforall ... on` with local SPA-free compaction).
//! What Fig 5 shows is therefore a *burdened parallelism* story: 100M
//! nonzeros keep scaling to 32 nodes, 1M stops scaling immediately because
//! per-locale work no longer amortizes the task-spawn overhead
//! ("insufficient work for each thread", §III-C).

use crate::exec::DistCtx;
use crate::vec::{DistDenseVec, DistSparseVec};
use gblas_core::container::{DenseVec, SparseVec};
use gblas_core::error::{check_dims, GblasError, Result};
use gblas_core::ops::ewise::{ewise_filter, EwiseVariant};
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase name for the distributed filter.
pub const PHASE: &str = "ewisemult";

/// Distributed sparse × dense filter: keep `x[i]` where
/// `keep(x[i], y[i])`. Both operands must be distributed over the same
/// number of locales.
pub fn ewise_mult_dist<T, U>(
    x: &DistSparseVec<T>,
    y: &DistDenseVec<U>,
    keep: &(impl Fn(T, U) -> bool + Sync),
    variant: EwiseVariant,
    dctx: &DistCtx,
) -> Result<(DistSparseVec<T>, SimReport)>
where
    T: Copy + Send + Sync + 'static,
    U: Copy + Send + Sync,
{
    check_dims("capacity", x.capacity(), y.len())?;
    if x.locales() != y.locales() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("{} locales", x.locales()),
            actual: format!("{} locales", y.locales()),
        });
    }
    let (profiles, shards): (Vec<Profile>, Vec<SparseVec<T>>) = dctx
        .for_each_locale(|l| {
            let range = x.dist().range(l);
            // Rebase the shard to local coordinates so the local dense
            // segment indexes directly (Listing 6 operates on local arrays).
            let shard = x.shard(l);
            let local_inds: Vec<usize> = shard.indices().iter().map(|&i| i - range.start).collect();
            let local =
                SparseVec::from_sorted(range.len().max(1), local_inds, shard.values().to_vec())
                    .expect("rebased shard stays sorted");
            let seg = DenseVec::from_vec(y.segment(l).to_vec());
            // Guard against the degenerate empty-block case.
            let ctx = dctx.locale_ctx_for(l);
            let filtered = if range.is_empty() {
                SparseVec::new(0)
            } else {
                ewise_filter(&local, &seg, keep, variant, &ctx)?
            };
            let profile = fold_phases(ctx.take_profile());
            // Back to global coordinates.
            let (_, li, lv) = filtered.into_parts();
            let gi: Vec<usize> = li.into_iter().map(|i| i + range.start).collect();
            Ok((profile, SparseVec::from_sorted(x.capacity(), gi, lv)?))
        })?
        .into_iter()
        .unzip();
    let out = DistSparseVec::from_shards(x.capacity(), shards)?;
    let mut trace = dctx.op("ewise_mult_dist");
    trace.nnz(x.nnz() as u64);
    trace.spawn(PHASE, 1);
    trace.compute(PHASE, &profiles);
    Ok((out, trace.finish()))
}

fn fold_phases(p: Profile) -> Profile {
    let mut out = Profile::default();
    let c = out.counters_mut(PHASE);
    for (_, counters) in p.iter() {
        c.merge(counters);
    }
    out
}

fn check_aligned<A: Copy, B: Copy>(a: &DistSparseVec<A>, b: &DistSparseVec<B>) -> Result<()> {
    check_dims("capacity", a.capacity(), b.capacity())?;
    if a.locales() != b.locales() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("{} locales", a.locales()),
            actual: format!("{} locales", b.locales()),
        });
    }
    Ok(())
}

/// Distributed sparse ∩ sparse element-wise multiply. Both vectors share
/// one block distribution, so intersection is shard-local: a pure
/// `coforall` with no communication.
pub fn ewise_mult_dist_ss<A, B, C, Op>(
    a: &DistSparseVec<A>,
    b: &DistSparseVec<B>,
    op: &Op,
    dctx: &DistCtx,
) -> Result<(DistSparseVec<C>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
    Op: gblas_core::algebra::BinaryOp<A, B, C>,
{
    check_aligned(a, b)?;
    let (profiles, shards): (Vec<Profile>, Vec<SparseVec<C>>) = dctx
        .for_each_locale(|l| {
            let ctx = dctx.locale_ctx_for(l);
            let z = gblas_core::ops::ewise::ewise_mult(a.shard(l), b.shard(l), op, &ctx)?;
            Ok((fold_phases(ctx.take_profile()), z))
        })?
        .into_iter()
        .unzip();
    let out = DistSparseVec::from_shards(a.capacity(), shards)?;
    let mut trace = dctx.op("ewise_mult_dist_ss");
    trace.nnz((a.nnz() + b.nnz()) as u64);
    trace.spawn(PHASE, 1);
    trace.compute(PHASE, &profiles);
    Ok((out, trace.finish()))
}

/// Distributed sparse ∪ sparse element-wise add (same alignment rules).
pub fn ewise_add_dist<T, Op>(
    a: &DistSparseVec<T>,
    b: &DistSparseVec<T>,
    op: &Op,
    dctx: &DistCtx,
) -> Result<(DistSparseVec<T>, SimReport)>
where
    T: Copy + Send + Sync,
    Op: gblas_core::algebra::BinaryOp<T, T, T>,
{
    check_aligned(a, b)?;
    let (profiles, shards): (Vec<Profile>, Vec<SparseVec<T>>) = dctx
        .for_each_locale(|l| {
            let ctx = dctx.locale_ctx_for(l);
            let z = gblas_core::ops::ewise::ewise_add(a.shard(l), b.shard(l), op, &ctx)?;
            Ok((fold_phases(ctx.take_profile()), z))
        })?
        .into_iter()
        .unzip();
    let out = DistSparseVec::from_shards(a.capacity(), shards)?;
    let mut trace = dctx.op("ewise_add_dist");
    trace.nnz((a.nnz() + b.nnz()) as u64);
    trace.spawn(PHASE, 1);
    trace.compute(PHASE, &profiles);
    Ok((out, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    fn setup(n: usize, nnz: usize, p: usize) -> (DistSparseVec<f64>, DistDenseVec<bool>) {
        let x = gen::random_sparse_vec(n, nnz, 5);
        let y = gen::random_dense_bool(n, 0.5, 6);
        (DistSparseVec::from_global(&x, p), DistDenseVec::from_global(&y, p))
    }

    #[test]
    fn matches_shared_memory_reference_at_every_grid() {
        let n = 4000;
        let x = gen::random_sparse_vec(n, 700, 5);
        let y = gen::random_dense_bool(n, 0.5, 6);
        let ctx = gblas_core::par::ExecCtx::serial();
        let reference =
            gblas_core::ops::ewise::ewise_filter_prefix(&x, &y, &|_: f64, b| b, &ctx).unwrap();
        for p in [1, 2, 5, 8] {
            for variant in [EwiseVariant::Atomic, EwiseVariant::Prefix] {
                let (dx, dy) = setup(n, 700, p);
                let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
                let (z, _) = ewise_mult_dist(&dx, &dy, &|_: f64, b| b, variant, &dctx).unwrap();
                assert_eq!(z.to_global(), reference, "p={p} {variant:?}");
            }
        }
    }

    #[test]
    fn no_communication() {
        let (dx, dy) = setup(2000, 400, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let _ = ewise_mult_dist(&dx, &dy, &|_: f64, b| b, EwiseVariant::Atomic, &dctx).unwrap();
        assert_eq!(dctx.comm.totals(), (0, 0, 0));
    }

    #[test]
    fn fig5_shape_large_scales_small_does_not() {
        // "large": 2M nonzeros (stands in for the paper's 100M);
        // "small": 20K (stands in for 1M).
        let time_at = |nnz: usize, p: usize| {
            let (dx, dy) = setup(nnz * 2, nnz, p);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (_, r) =
                ewise_mult_dist(&dx, &dy, &|_: f64, b| b, EwiseVariant::Atomic, &dctx).unwrap();
            r.total()
        };
        // Large input: more nodes help substantially.
        let large_1 = time_at(2_000_000, 1);
        let large_16 = time_at(2_000_000, 16);
        assert!(large_16 < large_1 / 4.0, "large: {large_1} -> {large_16}");
        // Small input: 64 nodes are no better than 4 (spawn dominates).
        let small_4 = time_at(20_000, 4);
        let small_64 = time_at(20_000, 64);
        assert!(small_64 > small_4 * 0.8, "small: {small_4} -> {small_64}");
    }

    #[test]
    fn sparse_sparse_dist_ops_match_shared() {
        let a = gen::random_sparse_vec(3000, 500, 7);
        let b = gen::random_sparse_vec(3000, 500, 8);
        let ctx = gblas_core::par::ExecCtx::serial();
        let mult_expect: gblas_core::container::SparseVec<f64> =
            gblas_core::ops::ewise::ewise_mult(&a, &b, &gblas_core::algebra::Times, &ctx).unwrap();
        let add_expect =
            gblas_core::ops::ewise::ewise_add(&a, &b, &gblas_core::algebra::Plus, &ctx).unwrap();
        for p in [1usize, 3, 8] {
            let da = DistSparseVec::from_global(&a, p);
            let db = DistSparseVec::from_global(&b, p);
            let d1 = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (m, rm) =
                ewise_mult_dist_ss::<_, _, f64, _>(&da, &db, &gblas_core::algebra::Times, &d1)
                    .unwrap();
            assert_eq!(m.to_global(), mult_expect, "mult p={p}");
            assert!(rm.total() > 0.0);
            let d2 = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (s, _) = ewise_add_dist(&da, &db, &gblas_core::algebra::Plus, &d2).unwrap();
            assert_eq!(s.to_global(), add_expect, "add p={p}");
            assert_eq!(d1.comm.totals(), (0, 0, 0), "intersection is comm-free");
        }
    }

    #[test]
    fn locale_mismatch_is_error() {
        let (dx, _) = setup(100, 10, 2);
        let (_, dy) = setup(100, 10, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assert!(ewise_mult_dist(&dx, &dy, &|_: f64, b| b, EwiseVariant::Atomic, &dctx).is_err());
    }
}
