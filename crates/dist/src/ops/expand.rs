//! Distributed batched (multi-source) frontier expansion: one masked
//! SpGEMM sweep per traversal level instead of k SpMSpVs.
//!
//! The CombBLAS 2.0 observation: a level of k concurrent traversals
//! gathers, multiplies and scatters k sparse vectors over the *same*
//! 2-D matrix distribution, so the per-superstep communication fuses —
//! every locale pair exchanges **one** bulk message carrying all k
//! sources' payloads, paying the per-message latency α once instead of
//! k (or 2k, for the request/reply gather) times. At serving batch
//! sizes the α term dominates small frontiers' traffic, which is where
//! the simulated-QPS win of `gblas serve-bench` comes from.
//!
//! Structure mirrors [`crate::ops::spmspv`] superstep for superstep:
//!
//! 1. **`gather`** — each locale pulls its row-block slices of all k
//!    frontiers from its processor-row peers, one combined bulk message
//!    per remote peer (the pattern is static — every row peer always
//!    needs the whole slice — so no request round is needed).
//! 2. **`local`** — each locale runs the *shared-memory single-source
//!    kernel once per source* on its block. This is what makes the
//!    batched result bit-identical per source to k single-source runs:
//!    the per-source local multiply is literally the same code on the
//!    same operands in the same order.
//! 3. **`scatter`** — claims `(source, offset, value)` from all k
//!    sources travel in one bulk message per locale pair; owners drain
//!    inboxes in ascending sender order per source, so first-writer-wins
//!    (and the accumulation order) resolves exactly as the serial
//!    schedule — and exactly as the single-source distributed kernel.
//!    Per-source visited masks are enforced owner-side, like
//!    [`crate::ops::spmspv::DistMask`].

use crate::exec::{DistCtx, PooledOutboxes};
use crate::mat::DistCsrMatrix;
use crate::ops::spmspv::{PHASE_GATHER, PHASE_LOCAL, PHASE_SCATTER};
use crate::vec::{DistDenseVec, DistSparseVec};
use gblas_core::algebra::{BinaryOp, Monoid, Semiring};
use gblas_core::container::SparseVec;
use gblas_core::error::{check_dims, GblasError, Result};
use gblas_core::ops::spmspv::{spmspv_first_visitor, spmspv_semiring_masked, SpMSpVOpts};
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase: combine partial dense products down processor columns (the
/// batched dense SpMM reuses the SpMV phase names).
pub const PHASE_COMBINE: &str = "combine";

/// A batch of `k` block-distributed sparse frontiers over one capacity —
/// the distributed layout of the conceptual `n×k` frontier matrix. Every
/// per-source vector shares the same block distribution, so a batched
/// kernel's communication pattern is the single-source pattern with k×
/// the payload and 1× the messages.
#[derive(Debug, Clone)]
pub struct DistFrontier<T> {
    capacity: usize,
    locales: usize,
    rows: Vec<DistSparseVec<T>>,
}

impl<T: Copy + Send + Sync + 'static> DistFrontier<T> {
    /// Build from per-source entry lists (unsorted; duplicate indices
    /// within one source are an error), block-distributed over `locales`.
    pub fn from_entries(
        capacity: usize,
        entries: Vec<Vec<(usize, T)>>,
        locales: usize,
    ) -> Result<Self> {
        let rows = entries
            .into_iter()
            .map(|pairs| {
                let global = SparseVec::from_pairs(capacity, pairs)?;
                Ok(DistSparseVec::from_global(&global, locales))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DistFrontier { capacity, locales, rows })
    }

    /// Wrap `k` distributed sparse vectors sharing `capacity`/`locales`.
    pub fn new(capacity: usize, locales: usize, rows: Vec<DistSparseVec<T>>) -> Result<Self> {
        for r in &rows {
            check_dims("frontier row capacity", capacity, r.capacity())?;
            check_dims("frontier row locales", locales, r.locales())?;
        }
        Ok(DistFrontier { capacity, locales, rows })
    }

    /// A batch of `k` empty frontiers.
    pub fn empty(capacity: usize, k: usize, locales: usize) -> Self {
        DistFrontier {
            capacity,
            locales,
            rows: (0..k).map(|_| DistSparseVec::empty(capacity, locales)).collect(),
        }
    }

    /// Shared index-space size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locale count of the block distribution.
    pub fn locales(&self) -> usize {
        self.locales
    }

    /// Number of sources in the batch.
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// Total stored entries across all sources.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.nnz()).sum()
    }

    /// Source `s`'s frontier.
    pub fn row(&self, s: usize) -> &DistSparseVec<T> {
        &self.rows[s]
    }

    /// All per-source frontiers, batch order.
    pub fn rows(&self) -> &[DistSparseVec<T>] {
        &self.rows
    }

    /// Export every source's entries in ascending global index order.
    pub fn to_entries(&self) -> Vec<Vec<(usize, T)>> {
        self.rows
            .iter()
            .map(|r| {
                let g = r.to_global();
                g.iter().map(|(i, &v)| (i, v)).collect()
            })
            .collect()
    }
}

/// Validate the operands every batched kernel shares.
fn check_batch<T: Copy + Send + Sync + 'static, B: Copy + Send + Sync>(
    a: &DistCsrMatrix<B>,
    f: &DistFrontier<T>,
    dctx: &DistCtx,
) -> Result<()> {
    check_dims("frontier capacity vs matrix rows", a.nrows(), f.capacity())?;
    let p = a.grid().locales();
    if f.locales() != p || dctx.locales() != p {
        return Err(GblasError::DimensionMismatch {
            expected: format!("{p} locales"),
            actual: format!("{} / {} locales", f.locales(), dctx.locales()),
        });
    }
    Ok(())
}

/// Fused gather: each locale assembles all k sources' row-block slices
/// (local row coordinates) from its processor-row peers, paying **one**
/// bulk message per remote peer for the whole batch.
#[allow(clippy::type_complexity)] // (per-locale profiles, per-locale k gathered slices)
fn gather_batch<V: Copy + Send + Sync + 'static>(
    plan: &crate::sched::GatherPlan,
    f: &DistFrontier<V>,
    elem_bytes: u64,
    dctx: &DistCtx,
) -> Result<(Vec<Profile>, Vec<Vec<SparseVec<V>>>)> {
    let k = f.k();
    Ok(dctx
        .for_each_locale(|l| {
            let (rs, re) = plan.row_ranges[l];
            let gctx = dctx.locale_ctx_for(l);
            let mut inds: Vec<Vec<usize>> = (0..k).map(|_| Vec::new()).collect();
            let mut vals: Vec<Vec<V>> = (0..k).map(|_| Vec::new()).collect();
            for &src in &plan.row_peers[l] {
                let payload: u64 =
                    (0..k).map(|s| f.row(s).shard(src).nnz() as u64).sum::<u64>() * elem_bytes;
                if src != l && payload > 0 {
                    dctx.comm.bulk(PHASE_GATHER, l, src, 1, payload)?;
                }
                for s in 0..k {
                    let shard = f.row(s).shard(src);
                    inds[s].extend(shard.indices().iter().map(|&i| i - rs));
                    vals[s].extend_from_slice(shard.values());
                }
            }
            let total: u64 = inds.iter().map(|i| i.len() as u64).sum();
            gctx.record(PHASE_GATHER, |c| {
                c.elems += total;
                c.bytes_moved += total * elem_bytes;
            });
            let lxs = inds
                .into_iter()
                .zip(vals)
                .map(|(i, v)| {
                    SparseVec::from_sorted((re - rs).max(1), i, v)
                        .expect("row-ordered shards concatenate sorted")
                })
                .collect::<Vec<_>>();
            Ok((gctx.take_profile(), lxs))
        })?
        .into_iter()
        .unzip())
}

/// Resolve the batched-expand gather schedule for `a` on `dctx`. The
/// pattern is the row-aligned [`crate::sched::GatherPlan`] keyed per
/// batch width `k` (class `Batched(k)`), so the `_multi` drivers replay
/// one plan per width across iterations.
fn expand_schedule<B: Copy>(
    a: &DistCsrMatrix<B>,
    k: usize,
    dctx: &DistCtx,
) -> (std::sync::Arc<crate::sched::PlanData>, crate::sched::SchedOutcome) {
    let grid = a.grid();
    dctx.schedule(
        "expand_gather",
        crate::sched::FrontierClass::Batched(k),
        (grid.pr(), grid.pc()),
        a.generation(),
        0,
        || {
            crate::sched::PlanData::Gather(crate::sched::GatherPlan::build(grid, |l| {
                a.row_range(l)
            }))
        },
    )
}

/// Batched distributed first-visitor expansion under per-source visited
/// masks (complement semantics hardcoded: a claim is dropped where
/// `visited[s]` is `true`). Row `s` of the result is bit-identical to the
/// single-source distributed kernel on source `s` alone — and therefore
/// to the serial shared-memory kernel.
pub fn expand_dist_first_visitor<T: Copy + Send + Sync>(
    a: &DistCsrMatrix<T>,
    f: &DistFrontier<usize>,
    visited: &[DistDenseVec<bool>],
    opts: SpMSpVOpts,
    dctx: &DistCtx,
) -> Result<(DistFrontier<usize>, SimReport)> {
    check_batch(a, f, dctx)?;
    let grid = a.grid();
    let p = grid.locales();
    let n = a.ncols();
    let k = f.k();
    check_dims("visited masks vs batch width", k, visited.len())?;
    for m in visited {
        check_dims("mask length vs matrix cols", n, m.len())?;
        if m.locales() != p {
            return Err(GblasError::DimensionMismatch {
                expected: format!("mask over {p} locales"),
                actual: format!("mask over {} locales", m.locales()),
            });
        }
    }
    let elem_bytes = (2 * std::mem::size_of::<usize>()) as u64;
    // A batched claim carries (source slot, destination offset, parent).
    let claim_bytes = (3 * std::mem::size_of::<usize>()) as u64;

    // ---- Superstep 1: fused gather (one message per locale pair),
    // executed from the cached or freshly-inspected schedule.
    let (sched_plan, sched) = expand_schedule(a, k, dctx);
    let (gather_profiles, lxs) = gather_batch(sched_plan.gather(), f, elem_bytes, dctx)?;

    // ---- Local multiply: the shared single-source kernel, once per
    // source, on this locale's block.
    let mut local_profiles: Vec<Profile> = Vec::with_capacity(p);
    let mut local_results: Vec<Vec<Vec<(usize, usize)>>> = Vec::with_capacity(p);
    for (local, results) in dctx.for_each_locale(|l| {
        let row_range = a.row_range(l);
        let col_range = a.col_range(l);
        let lctx = dctx.locale_ctx_for(l);
        let mut per_source: Vec<Vec<(usize, usize)>> = Vec::with_capacity(k);
        for lx in &lxs[l] {
            let ly = if row_range.is_empty() || col_range.is_empty() {
                SparseVec::new(col_range.len().max(1))
            } else {
                spmspv_first_visitor(a.block(l), lx, None, opts, &lctx)?
            };
            per_source.push(
                ly.iter()
                    .map(|(lj, &lrid)| (lj + col_range.start, lrid + row_range.start))
                    .collect(),
            );
        }
        Ok((lctx.take_profile(), per_source))
    })? {
        local_profiles.push(local);
        local_results.push(results);
    }

    // ---- Superstep 2 (scatter, send side): all k sources' claims for an
    // owner share one outbox — and one bulk message per pair.
    let out_dist = crate::grid::BlockDist::new(n, p);
    let (send_profiles, outboxes): (Vec<Profile>, PooledOutboxes<(usize, usize, usize)>) = dctx
        .for_each_locale(|l| {
            let sctx = dctx.locale_ctx_for(l);
            let mut c = gblas_core::par::Counters::default();
            let mut outbox = sctx.ws_nested_vec::<(usize, usize, usize)>(p);
            let mut per_dst = sctx.ws_filled_vec::<u64>(p, 0);
            for (s, claims) in local_results[l].iter().enumerate() {
                for &(col, rid) in claims {
                    let owner = out_dist.owner(col);
                    if owner != l {
                        per_dst[owner] += 1;
                    }
                    c.atomics += 1;
                    outbox[owner].push((s, col - out_dist.range(owner).start, rid));
                }
            }
            for (dst, msgs) in per_dst.iter().enumerate() {
                if *msgs > 0 {
                    dctx.comm.bulk(PHASE_SCATTER, l, dst, 1, *msgs * claim_bytes)?;
                }
            }
            sctx.record(PHASE_SCATTER, |pc| pc.merge(&c));
            Ok((sctx.take_profile(), outbox))
        })?
        .into_iter()
        .unzip();

    // ---- Superstep 3 (scatter, owner side): per source, drain senders in
    // ascending locale order — the single-source resolution order — with
    // the source's own visited bit checked at the owner.
    let (apply_profiles, owner_shards): (Vec<Profile>, Vec<Vec<SparseVec<usize>>>) = dctx
        .for_each_locale(|o| {
            let octx = dctx.locale_ctx_for(o);
            let range = out_dist.range(o);
            let mut c = gblas_core::par::Counters::default();
            let mut shards: Vec<SparseVec<usize>> = Vec::with_capacity(k);
            // `s` filters outbox entries (`es != s`) *and* indexes the
            // source's visited vector — not a plain slice walk.
            #[allow(clippy::needless_range_loop)]
            for s in 0..k {
                let mut isthere = octx.ws_filled_vec::<bool>(range.len(), false);
                let mut value = octx.ws_filled_vec::<usize>(range.len(), 0);
                for outbox in &outboxes {
                    for &(es, off, rid) in &outbox[o] {
                        if es != s {
                            continue;
                        }
                        c.rand_access += 1;
                        if visited[s].segment(o)[off] {
                            continue;
                        }
                        if !isthere[off] {
                            isthere[off] = true;
                            value[off] = rid;
                        }
                    }
                }
                let mut inds = Vec::new();
                let mut vals = Vec::new();
                for (off, &set) in isthere.iter().enumerate() {
                    if set {
                        inds.push(range.start + off);
                        vals.push(value[off]);
                    }
                }
                c.elems += range.len() as u64;
                shards.push(SparseVec::from_sorted(n, inds, vals)?);
            }
            octx.record(PHASE_SCATTER, |pc| pc.merge(&c));
            Ok((octx.take_profile(), shards))
        })?
        .into_iter()
        .unzip();
    let mut scatter_profiles = send_profiles;
    for (l, apply) in apply_profiles.iter().enumerate() {
        for (name, cs) in apply.iter() {
            scatter_profiles[l].counters_mut(name).merge(cs);
        }
    }
    let rows = (0..k)
        .map(|s| {
            DistSparseVec::from_shards(n, owner_shards.iter().map(|sh| sh[s].clone()).collect())
        })
        .collect::<Result<Vec<_>>>()?;
    let out = DistFrontier { capacity: n, locales: p, rows };

    let mut op = dctx.op("expand_dist_first_visitor");
    op.attr("k", k)
        .attr("nrows", a.nrows())
        .attr("ncols", n)
        .attr("masked", true)
        .sched(sched)
        .nnz(f.nnz() as u64);
    op.spawn(PHASE_GATHER, 1);
    op.compute(PHASE_GATHER, &gather_profiles);
    op.compute_folded(PHASE_LOCAL, &local_profiles);
    op.compute(PHASE_SCATTER, &scatter_profiles);
    Ok((out, op.finish()))
}

/// Batched distributed semiring expansion (unmasked): row `s` of the
/// result is `y_s[j] = ⊕_i f_s[i] ⊗ A[i,j]`, accumulated at the owner in
/// ascending sender order — the single-source kernel's exact
/// floating-point order, so each row matches its solo run bit for bit.
pub fn expand_dist_semiring<A, B, C, AddM, MulOp>(
    a: &DistCsrMatrix<B>,
    f: &DistFrontier<A>,
    ring: &Semiring<AddM, MulOp>,
    opts: SpMSpVOpts,
    dctx: &DistCtx,
) -> Result<(DistFrontier<C>, SimReport)>
where
    A: Copy + Send + Sync + 'static,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + PartialEq + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    check_batch(a, f, dctx)?;
    let grid = a.grid();
    let p = grid.locales();
    let n = a.ncols();
    let k = f.k();
    let elem_bytes = (std::mem::size_of::<usize>() + std::mem::size_of::<A>()) as u64;
    let claim_bytes = (2 * std::mem::size_of::<usize>() + std::mem::size_of::<C>()) as u64;

    let (sched_plan, sched) = expand_schedule(a, k, dctx);
    let (gather_profiles, lxs) = gather_batch(sched_plan.gather(), f, elem_bytes, dctx)?;

    let mut local_profiles: Vec<Profile> = Vec::with_capacity(p);
    let mut local_results: Vec<Vec<Vec<(usize, C)>>> = Vec::with_capacity(p);
    for (local, results) in dctx.for_each_locale(|l| {
        let row_range = a.row_range(l);
        let col_range = a.col_range(l);
        let lctx = dctx.locale_ctx_for(l);
        let mut per_source: Vec<Vec<(usize, C)>> = Vec::with_capacity(k);
        for lx in &lxs[l] {
            let ly = if row_range.is_empty() || col_range.is_empty() {
                SparseVec::new(col_range.len().max(1))
            } else {
                spmspv_semiring_masked(a.block(l), lx, ring, None, opts, &lctx)?.vector
            };
            per_source.push(ly.iter().map(|(lj, &v)| (lj + col_range.start, v)).collect());
        }
        Ok((lctx.take_profile(), per_source))
    })? {
        local_profiles.push(local);
        local_results.push(results);
    }

    let out_dist = crate::grid::BlockDist::new(n, p);
    let (send_profiles, outboxes): (Vec<Profile>, PooledOutboxes<(usize, usize, C)>) = dctx
        .for_each_locale(|l| {
            let sctx = dctx.locale_ctx_for(l);
            let mut c = gblas_core::par::Counters::default();
            let mut outbox = sctx.ws_nested_vec::<(usize, usize, C)>(p);
            let mut per_dst = sctx.ws_filled_vec::<u64>(p, 0);
            for (s, claims) in local_results[l].iter().enumerate() {
                for &(col, v) in claims {
                    let owner = out_dist.owner(col);
                    if owner != l {
                        per_dst[owner] += 1;
                    }
                    c.atomics += 1;
                    outbox[owner].push((s, col - out_dist.range(owner).start, v));
                }
            }
            for (dst, msgs) in per_dst.iter().enumerate() {
                if *msgs > 0 {
                    dctx.comm.bulk(PHASE_SCATTER, l, dst, 1, *msgs * claim_bytes)?;
                }
            }
            sctx.record(PHASE_SCATTER, |pc| pc.merge(&c));
            Ok((sctx.take_profile(), outbox))
        })?
        .into_iter()
        .unzip();

    let (apply_profiles, owner_shards): (Vec<Profile>, Vec<Vec<SparseVec<C>>>) = dctx
        .for_each_locale(|o| {
            let octx = dctx.locale_ctx_for(o);
            let range = out_dist.range(o);
            let mut c = gblas_core::par::Counters::default();
            let mut shards: Vec<SparseVec<C>> = Vec::with_capacity(k);
            for s in 0..k {
                let mut occupied = octx.ws_filled_vec::<bool>(range.len(), false);
                let mut value = octx.ws_filled_vec::<C>(range.len(), ring.zero::<C>());
                for outbox in &outboxes {
                    for &(es, off, v) in &outbox[o] {
                        if es != s {
                            continue;
                        }
                        if occupied[off] {
                            value[off] = ring.accumulate(value[off], v);
                            c.flops += 1;
                        } else {
                            occupied[off] = true;
                            value[off] = v;
                        }
                    }
                }
                let mut inds = Vec::new();
                let mut vals = Vec::new();
                for (off, &set) in occupied.iter().enumerate() {
                    if set {
                        inds.push(range.start + off);
                        vals.push(value[off]);
                    }
                }
                c.elems += range.len() as u64;
                shards.push(SparseVec::from_sorted(n, inds, vals)?);
            }
            octx.record(PHASE_SCATTER, |pc| pc.merge(&c));
            Ok((octx.take_profile(), shards))
        })?
        .into_iter()
        .unzip();
    let mut scatter_profiles = send_profiles;
    for (l, apply) in apply_profiles.iter().enumerate() {
        for (name, cs) in apply.iter() {
            scatter_profiles[l].counters_mut(name).merge(cs);
        }
    }
    let rows = (0..k)
        .map(|s| {
            DistSparseVec::from_shards(n, owner_shards.iter().map(|sh| sh[s].clone()).collect())
        })
        .collect::<Result<Vec<_>>>()?;
    let out = DistFrontier { capacity: n, locales: p, rows };

    let mut op = dctx.op("expand_dist_semiring");
    op.attr("k", k).attr("nrows", a.nrows()).attr("ncols", n).sched(sched).nnz(f.nnz() as u64);
    op.spawn(PHASE_GATHER, 1);
    op.compute(PHASE_GATHER, &gather_profiles);
    op.compute_folded(PHASE_LOCAL, &local_profiles);
    op.compute(PHASE_SCATTER, &scatter_profiles);
    Ok((out, op.finish()))
}

/// Batched distributed dense SpMM: `ys[s] = xs[s] · A` for the whole
/// batch with the [`crate::ops::spmv::spmv_dist`] superstep structure,
/// but every gather / combine / placement message carries all k columns —
/// 1× the messages, k× the payload. Each column's values are accumulated
/// in the single-column kernel's exact order, so `ys[s]` matches a solo
/// `spmv_dist` run bit for bit.
pub fn spmm_dense_dist<A, B, C, AddM, MulOp>(
    a: &DistCsrMatrix<B>,
    xs: &[DistDenseVec<A>],
    ring: &Semiring<AddM, MulOp>,
    dctx: &DistCtx,
) -> Result<(Vec<DistDenseVec<C>>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    let grid = a.grid();
    let p = grid.locales();
    let k = xs.len();
    for x in xs {
        check_dims("x length vs matrix rows", a.nrows(), x.len())?;
        if x.locales() != p {
            return Err(GblasError::DimensionMismatch {
                expected: format!("{p} locales"),
                actual: format!("{} locales", x.locales()),
            });
        }
    }
    if dctx.locales() != p {
        return Err(GblasError::DimensionMismatch {
            expected: format!("machine with {p} locales"),
            actual: format!("machine with {} locales", dctx.locales()),
        });
    }
    let n = a.ncols();
    let a_bytes = std::mem::size_of::<A>() as u64;
    let c_bytes = std::mem::size_of::<C>() as u64;

    // ---- Superstep 1: fused gather + per-column local multiply.
    struct GatherLocal<C> {
        gather: Profile,
        local: Profile,
        partials: Vec<Vec<C>>,
    }
    let gl: Vec<GatherLocal<C>> = dctx.for_each_locale(|l| {
        let (r, _) = grid.coords(l);
        let row_range = a.row_range(l);
        let gctx = dctx.locale_ctx_for(l);
        let mut lx: Vec<Vec<A>> = (0..k).map(|_| Vec::with_capacity(row_range.len())).collect();
        for src in grid.row_locales(r) {
            if src != l && k > 0 {
                let seg_len = xs[0].segment(src).len() as u64;
                if seg_len > 0 {
                    dctx.comm.bulk(PHASE_GATHER, l, src, 1, k as u64 * seg_len * a_bytes)?;
                }
            }
            for (s, x) in xs.iter().enumerate() {
                lx[s].extend_from_slice(x.segment(src));
            }
        }
        let moved: u64 = lx.iter().map(|v| v.len() as u64).sum();
        gctx.record(PHASE_GATHER, |c| {
            c.elems += moved;
            c.bytes_moved += moved * a_bytes;
        });
        let lctx = dctx.locale_ctx_for(l);
        let block = a.block(l);
        let width = a.col_range(l).len();
        let mut partials: Vec<Vec<C>> = Vec::with_capacity(k);
        for v in lx {
            let partial = {
                let lx_dense = gblas_core::container::DenseVec::from_vec(v);
                if row_range.is_empty() || width == 0 {
                    vec![ring.zero::<C>(); width]
                } else {
                    gblas_core::ops::spmv::spmv_col(block, &lx_dense, ring, &lctx)?.into_vec()
                }
            };
            partials.push(partial);
        }
        let mut folded = Profile::default();
        let cc = folded.counters_mut(PHASE_LOCAL);
        for (_, counters) in lctx.take_profile().iter() {
            cc.merge(counters);
        }
        Ok(GatherLocal { gather: gctx.take_profile(), local: folded, partials })
    })?;
    let gather_profiles: Vec<Profile> = gl.iter().map(|g| g.gather.clone()).collect();
    let local_profiles: Vec<Profile> = gl.iter().map(|g| g.local.clone()).collect();
    let partials: Vec<Vec<Vec<C>>> = gl.into_iter().map(|g| g.partials).collect();

    // ---- Superstep 2: combine down each processor column, all k columns
    // in one message per non-leader.
    #[allow(clippy::type_complexity)] // (per-locale profiles, leader-only k accumulators)
    let (combine_profiles, accs): (Vec<Profile>, Vec<Option<Vec<Vec<C>>>>) = dctx
        .for_each_locale(|l| {
            let (_, c) = grid.coords(l);
            let leader = grid.locale(0, c);
            let col_range = a.col_range(leader);
            if l != leader {
                let payload = k as u64 * col_range.len() as u64 * c_bytes;
                if payload > 0 {
                    dctx.comm.bulk(PHASE_COMBINE, l, leader, 1, payload)?;
                }
                return Ok((Profile::default(), None));
            }
            let mut acc_k: Vec<Vec<C>> = Vec::with_capacity(k);
            // `s` selects source slot `partials[src][s]` across every
            // sender `src`, so it is not a single-slice index.
            #[allow(clippy::needless_range_loop)]
            for s in 0..k {
                let mut acc: Vec<C> = vec![ring.zero::<C>(); col_range.len()];
                for src in grid.col_locales(c) {
                    for (slot, &v) in acc.iter_mut().zip(&partials[src][s]) {
                        *slot = ring.accumulate(*slot, v);
                    }
                }
                acc_k.push(acc);
            }
            let mut profile = Profile::default();
            let elems = (col_range.len() * grid.pr() * k) as u64;
            profile.counters_mut(PHASE_COMBINE).elems += elems;
            profile.counters_mut(PHASE_COMBINE).flops += elems;
            Ok((profile, Some(acc_k)))
        })?
        .into_iter()
        .unzip();

    // ---- Placement: leaders hand output blocks to owners, one fused
    // message per (leader, owner) pair for the whole batch.
    let out_dist = crate::grid::BlockDist::new(n, p);
    let mut segments: Vec<Vec<Vec<C>>> = (0..k)
        .map(|_| (0..p).map(|b| vec![ring.zero::<C>(); out_dist.size(b)]).collect())
        .collect();
    for c in 0..grid.pc() {
        let leader = grid.locale(0, c);
        let col_range = a.col_range(leader);
        let acc_k = match accs[leader].as_ref() {
            Some(a) => a,
            None => continue,
        };
        for (s, acc) in acc_k.iter().enumerate() {
            for (off, &v) in acc.iter().enumerate() {
                let j = col_range.start + off;
                let owner = out_dist.owner(j);
                segments[s][owner][j - out_dist.range(owner).start] = v;
            }
        }
        let first_owner = if col_range.is_empty() { 0 } else { out_dist.owner(col_range.start) };
        let last_owner = if col_range.is_empty() { 0 } else { out_dist.owner(col_range.end - 1) };
        for owner in first_owner..=last_owner {
            if !col_range.is_empty() && owner != leader {
                let overlap = out_dist.range(owner);
                let lo = overlap.start.max(col_range.start);
                let hi = overlap.end.min(col_range.end);
                if lo < hi && k > 0 {
                    dctx.comm.bulk(
                        PHASE_COMBINE,
                        leader,
                        owner,
                        1,
                        k as u64 * (hi - lo) as u64 * c_bytes,
                    )?;
                }
            }
        }
    }

    let ys = segments
        .into_iter()
        .map(|segs| DistDenseVec::from_segments(n, segs))
        .collect::<Result<Vec<_>>>()?;
    let mut trace = dctx.op("spmm_dense_dist");
    trace.attr("k", k).attr("nrows", a.nrows()).attr("ncols", n).nnz(a.nnz() as u64);
    trace.spawn(PHASE_GATHER, 1);
    trace.compute(PHASE_GATHER, &gather_profiles);
    trace.compute(PHASE_LOCAL, &local_profiles);
    trace.compute(PHASE_COMBINE, &combine_profiles);
    Ok((ys, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use crate::ops::spmspv::{spmspv_dist_with, CommStrategy, DistMask};
    use gblas_core::algebra::semirings;
    use gblas_core::container::DenseVec;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    fn machine_for(grid: ProcGrid) -> MachineConfig {
        MachineConfig::edison_cluster(grid.locales(), 24)
    }

    #[test]
    fn batched_rows_match_single_source_dist_runs() {
        let n = 400;
        let a = gen::erdos_renyi(n, 6, 211);
        let sources = [0usize, 7, 7, 390];
        for (pr, pc) in [(1, 1), (2, 2), (2, 3)] {
            let grid = ProcGrid::new(pr, pc);
            let p = grid.locales();
            let da = DistCsrMatrix::from_global(&a, grid);
            let f =
                DistFrontier::from_entries(n, sources.iter().map(|&s| vec![(s, s)]).collect(), p)
                    .unwrap();
            let visited: Vec<DistDenseVec<bool>> = sources
                .iter()
                .map(|&s| DistDenseVec::from_global(&DenseVec::from_fn(n, |i| i == s), p))
                .collect();
            let dctx = DistCtx::new(machine_for(grid));
            let (batched, report) =
                expand_dist_first_visitor(&da, &f, &visited, SpMSpVOpts::default(), &dctx).unwrap();
            assert!(report.total() > 0.0);
            for (s, &src) in sources.iter().enumerate() {
                let x = DistSparseVec::from_global(
                    &SparseVec::from_sorted(n, vec![src], vec![src]).unwrap(),
                    p,
                );
                let sctx = DistCtx::new(machine_for(grid));
                let (single, _) = spmspv_dist_with(
                    &da,
                    &x,
                    Some(DistMask::complement(&visited[s])),
                    CommStrategy::Bulk,
                    SpMSpVOpts::default(),
                    &sctx,
                )
                .unwrap();
                assert_eq!(
                    batched.row(s).to_global(),
                    single.to_global(),
                    "grid {pr}x{pc} slot {s}"
                );
            }
        }
    }

    #[test]
    fn batched_gather_pays_one_message_per_pair() {
        let n = 600;
        let a = gen::erdos_renyi(n, 6, 221);
        let grid = ProcGrid::new(2, 4);
        let p = grid.locales();
        let da = DistCsrMatrix::from_global(&a, grid);
        let k = 8;
        let f = DistFrontier::from_entries(n, (0..k).map(|s| vec![(s * 50, s * 50)]).collect(), p)
            .unwrap();
        let visited: Vec<DistDenseVec<bool>> =
            (0..k).map(|_| DistDenseVec::filled(n, false, p)).collect();
        let dctx = DistCtx::new(machine_for(grid));
        dctx.comm.record_history();
        let _ = expand_dist_first_visitor(&da, &f, &visited, SpMSpVOpts::default(), &dctx).unwrap();
        let gather_msgs: u64 =
            dctx.comm.history().iter().filter(|e| e.phase == PHASE_GATHER).map(|e| e.msgs).sum();
        // one fused message per (locale, remote row peer) pair, at most
        let peers = grid.pc() - 1;
        assert!(
            gather_msgs <= (p * peers) as u64,
            "{gather_msgs} gather msgs for {p} locales x {peers} peers"
        );
    }

    #[test]
    fn batched_semiring_rows_match_single_source_dist_runs() {
        let n = 300;
        let a = gen::erdos_renyi(n, 5, 231);
        let ring = semirings::min_plus();
        for (pr, pc) in [(1, 1), (2, 2)] {
            let grid = ProcGrid::new(pr, pc);
            let p = grid.locales();
            let da = DistCsrMatrix::from_global(&a, grid);
            let f =
                DistFrontier::from_entries(n, vec![vec![(0, 0.0)], vec![(100, 0.0)]], p).unwrap();
            let dctx = DistCtx::new(machine_for(grid));
            let (batched, _) =
                expand_dist_semiring(&da, &f, &ring, SpMSpVOpts::default(), &dctx).unwrap();
            for (s, x) in f.rows().iter().enumerate() {
                let sctx = DistCtx::new(machine_for(grid));
                let (single, _) = crate::ops::spmspv::spmspv_dist_semiring(
                    &da,
                    x,
                    &ring,
                    CommStrategy::Bulk,
                    &sctx,
                )
                .unwrap();
                assert_eq!(
                    batched.row(s).to_global(),
                    single.to_global(),
                    "grid {pr}x{pc} slot {s}"
                );
            }
        }
    }

    #[test]
    fn spmm_columns_match_single_spmv_dist_runs() {
        let n = 250;
        let a = gen::erdos_renyi(n, 5, 241);
        let ring = semirings::plus_times_f64();
        for (pr, pc) in [(1, 1), (2, 2), (2, 3)] {
            let grid = ProcGrid::new(pr, pc);
            let p = grid.locales();
            let da = DistCsrMatrix::from_global(&a, grid);
            let xs: Vec<DistDenseVec<f64>> = (0..3)
                .map(|s| {
                    DistDenseVec::from_global(&DenseVec::from_fn(n, |i| ((i + s) % 7) as f64), p)
                })
                .collect();
            let dctx = DistCtx::new(machine_for(grid));
            let (ys, report) = spmm_dense_dist(&da, &xs, &ring, &dctx).unwrap();
            assert!(report.total() > 0.0);
            for (s, x) in xs.iter().enumerate() {
                let sctx = DistCtx::new(machine_for(grid));
                let (y, _) = crate::ops::spmv::spmv_dist(&da, x, &ring, &sctx).unwrap();
                let got = ys[s].to_global();
                let want = y.to_global();
                for j in 0..n {
                    assert_eq!(got[j], want[j], "grid {pr}x{pc} col {s} entry {j}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let a = gen::erdos_renyi(100, 4, 251);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(machine_for(grid));
        let f = DistFrontier::<usize>::empty(100, 0, 4);
        let (out, _) =
            expand_dist_first_visitor(&da, &f, &[], SpMSpVOpts::default(), &dctx).unwrap();
        assert_eq!(out.k(), 0);
        let (ys, _) =
            spmm_dense_dist::<f64, f64, f64, _, _>(&da, &[], &semirings::plus_times_f64(), &dctx)
                .unwrap();
        assert!(ys.is_empty());
    }

    #[test]
    fn shape_validation() {
        let a = gen::erdos_renyi(100, 4, 261);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(machine_for(grid));
        // wrong capacity
        let f = DistFrontier::from_entries(99, vec![vec![(0, 0usize)]], 4).unwrap();
        let m = vec![DistDenseVec::filled(100, false, 4)];
        assert!(expand_dist_first_visitor(&da, &f, &m, SpMSpVOpts::default(), &dctx).is_err());
        // mask count mismatch
        let f = DistFrontier::from_entries(100, vec![vec![(0, 0usize)]], 4).unwrap();
        assert!(expand_dist_first_visitor(&da, &f, &[], SpMSpVOpts::default(), &dctx).is_err());
        // wrong locale count
        let f2 = DistFrontier::from_entries(100, vec![vec![(0, 0usize)]], 2).unwrap();
        assert!(expand_dist_first_visitor(&da, &f2, &m, SpMSpVOpts::default(), &dctx).is_err());
    }
}
