//! Distributed general extract: `z = x(I)` with redistribution.
//!
//! The unrestricted Assign/Extract pair is the primitive the paper flags
//! as expensive: "assign is a very powerful primitive that can require
//! O((nnz(A)+nnz(B))/√p) communication" (§III-B, citing \[8\]). Extract
//! shows the same structure: every selected element must travel from the
//! locale owning its *source* position to the locale owning its
//! *destination* position in the renumbered domain. This implementation
//! routes each element accordingly (aggregated into one bulk message per
//! locale pair — the §IV style) and reports the communication volume, so
//! the √p cost is observable in the simulated report.

use crate::exec::{DistCtx, PooledOutboxes};
use crate::sched::{fingerprint_indices, ExtractPlan, FrontierClass, PlanData};
use crate::vec::DistSparseVec;
use gblas_core::error::{GblasError, Result};
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase: local selection.
pub const PHASE_SELECT: &str = "extract-select";
/// Phase: the redistribution exchange.
pub const PHASE_EXCHANGE: &str = "extract-exchange";

/// `z[k] = x[I[k]]` wherever `x` stores `I[k]`, with `z` block-distributed
/// over the same locale count. `I` must be strictly increasing.
pub fn extract_dist<T: Copy + Send + Sync + 'static>(
    x: &DistSparseVec<T>,
    index_set: &[usize],
    dctx: &DistCtx,
) -> Result<(DistSparseVec<T>, SimReport)> {
    let p = x.locales();
    if dctx.locales() != p {
        return Err(GblasError::DimensionMismatch {
            expected: format!("machine with {p} locales"),
            actual: format!("machine with {} locales", dctx.locales()),
        });
    }
    for w in index_set.windows(2) {
        if w[0] >= w[1] {
            return Err(GblasError::InvalidArgument(
                "extract index set must be strictly increasing".into(),
            ));
        }
    }
    if let Some(&last) = index_set.last() {
        if last >= x.capacity() {
            return Err(GblasError::IndexOutOfBounds { index: last, capacity: x.capacity() });
        }
    }
    let out_dist = crate::grid::BlockDist::new(index_set.len(), p);
    let elem_bytes = (std::mem::size_of::<usize>() + std::mem::size_of::<T>()) as u64;
    // ---- Inspect or replay the extract schedule: per-locale windows of
    // the index set, keyed on a full-content fingerprint of `I` (the
    // windows depend on the set, not on `x`'s values) plus the source
    // distribution shape. Repeated extracts with the same index set —
    // the per-query pattern of the serving harness — skip the binary
    // searches and bound the merge walk to each locale's window.
    let x_dist = x.dist();
    let (sched_plan, sched) = dctx.schedule(
        "extract",
        FrontierClass::Index,
        (1, p),
        x.capacity() as u64,
        fingerprint_indices(index_set),
        || PlanData::Extract(ExtractPlan::build(p, |l| x_dist.range(l), index_set)),
    );
    let plan = sched_plan.extract();
    // Superstep 1 (select): each source locale walks its shard against its
    // plan window of the index set (merge-walk, the shard and I are both
    // sorted), builds one outbox per destination, and logs its own
    // aggregated exchange messages (one bulk message per communicating
    // pair).
    let (select_profiles, outboxes): (Vec<Profile>, PooledOutboxes<(usize, T)>) = dctx
        .for_each_locale(|l| {
            let sctx = dctx.locale_ctx_for(l);
            let mut c = gblas_core::par::Counters::default();
            // outbox[dst] = (dest index, value) pairs bound for locale dst,
            // in pooled per-destination buffers reused across calls.
            let mut outbox = sctx.ws_nested_vec::<(usize, T)>(p);
            let shard = x.shard(l);
            let (si, sv) = (shard.indices(), shard.values());
            let (window_lo, window_hi) = plan.index_windows[l];
            let (mut a, mut b) = (0usize, window_lo);
            while a < si.len() && b < window_hi {
                c.elems += 1;
                match si[a].cmp(&index_set[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let dest_pos = b; // renumbered index
                        let owner = out_dist.owner(dest_pos);
                        outbox[owner].push((dest_pos, sv[a]));
                        a += 1;
                        b += 1;
                    }
                }
            }
            for (dst, pairs) in outbox.iter().enumerate() {
                if dst != l && !pairs.is_empty() {
                    dctx.comm.bulk(PHASE_EXCHANGE, l, dst, 1, pairs.len() as u64 * elem_bytes)?;
                }
            }
            sctx.record(PHASE_SELECT, |pc| pc.merge(&c));
            Ok((sctx.take_profile(), outbox))
        })?
        .into_iter()
        .unzip();
    // Superstep 2 (apply): each destination locale concatenates its
    // inboxes in source-locale order (arrivals from different sources
    // interleave) and sorts, building only its own shard.
    let (exchange_profiles, shards): (Vec<Profile>, Vec<gblas_core::container::SparseVec<T>>) =
        dctx.for_each_locale(|o| {
            let ctx = dctx.locale_ctx_for(o);
            let mut pairs: Vec<(usize, T)> = Vec::new();
            for outbox in &outboxes {
                pairs.extend_from_slice(&outbox[o]);
            }
            pairs.sort_unstable_by_key(|(i, _)| *i);
            ctx.record(PHASE_EXCHANGE, |c| {
                c.sort_elems += pairs.len() as u64;
                c.elems += pairs.len() as u64;
            });
            let (inds, vals): (Vec<usize>, Vec<T>) = pairs.into_iter().unzip();
            let shard = gblas_core::container::SparseVec::from_sorted(index_set.len(), inds, vals)?;
            Ok((ctx.take_profile(), shard))
        })?
        .into_iter()
        .unzip();
    let z = DistSparseVec::from_shards(index_set.len(), shards)?;
    let mut trace = dctx.op("extract_dist");
    trace.sched(sched).nnz(x.nnz() as u64);
    trace.spawn(PHASE_SELECT, 1);
    trace.compute(PHASE_SELECT, &select_profiles);
    trace.compute(PHASE_EXCHANGE, &exchange_profiles);
    Ok((z, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn matches_shared_extract_at_every_locale_count() {
        let x = gen::random_sparse_vec(2000, 350, 61);
        let index_set: Vec<usize> = (0..2000).step_by(3).collect();
        let ctx = gblas_core::par::ExecCtx::serial();
        let expect = gblas_core::ops::extract::extract_vec(&x, &index_set, &ctx).unwrap();
        for p in [1usize, 2, 5, 8] {
            let dx = DistSparseVec::from_global(&x, p);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (z, report) = extract_dist(&dx, &index_set, &dctx).unwrap();
            assert_eq!(z.to_global(), expect, "p={p}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn identity_extract_is_communication_free_but_renumbering_moves_data() {
        // Selecting everything keeps each element on its owner (the block
        // partitions align), so no traffic; a strided selection renumbers
        // destinations onto different owners and must communicate.
        let x = gen::random_sparse_vec(4000, 1000, 62);
        let all: Vec<usize> = (0..4000).collect();
        // the upper half renumbers to 0..2000: owners shift wholesale
        let upper_half: Vec<usize> = (2000..4000).collect();
        let d1 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        let _ = extract_dist(&DistSparseVec::from_global(&x, 8), &all, &d1).unwrap();
        assert_eq!(d1.comm.totals().2, 0, "aligned extract must not communicate");
        let d2 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        let _ = extract_dist(&DistSparseVec::from_global(&x, 8), &upper_half, &d2).unwrap();
        assert!(d2.comm.totals().2 > 0, "renumbering extract must communicate");
    }

    #[test]
    fn identity_extract_round_trips() {
        let x = gen::random_sparse_vec(500, 120, 63);
        let all: Vec<usize> = (0..500).collect();
        let dx = DistSparseVec::from_global(&x, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (z, _) = extract_dist(&dx, &all, &dctx).unwrap();
        assert_eq!(z.to_global(), x);
    }

    #[test]
    fn validates_input() {
        let x = gen::random_sparse_vec(100, 10, 64);
        let dx = DistSparseVec::from_global(&x, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assert!(extract_dist(&dx, &[5, 3], &dctx).is_err());
        assert!(extract_dist(&dx, &[100], &dctx).is_err());
        let (empty, _) = extract_dist(&dx, &[], &dctx).unwrap();
        assert_eq!(empty.nnz(), 0);
    }
}
