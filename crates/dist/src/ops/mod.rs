//! Distributed GraphBLAS operations.
//!
//! Each operation returns its functional result *and* a
//! [`gblas_sim::SimReport`] of simulated phase times for the machine held
//! by the [`crate::DistCtx`]. The version-1/version-2 pairs reproduce the
//! paper's contrast between Chapel's convenient-but-slow data-parallel
//! style and the SPMD style the authors adopt:
//!
//! | op | v1 (fine-grained) | v2 (SPMD/local) | figures |
//! |---|---|---|---|
//! | Apply | [`apply::apply_v1`] | [`apply::apply_v2`] | Fig 1 |
//! | Assign | [`assign::assign_v1`] | [`assign::assign_v2`] | Figs 2, 3, 10 |
//! | eWiseMult | — (local by construction) | [`ewise::ewise_mult_dist`] | Fig 5 |
//! | SpMSpV | [`spmspv::spmspv_dist`] (fine-grained gather/scatter, Listing 8) | [`spmspv::spmspv_dist_bulk`] (aggregated, §IV's suggested fix) | Figs 8, 9 |
//!
//! Beyond the paper's subset, the crate also ships the distributed
//! operations a complete library needs, all bulk-synchronous:
//! [`spmspv::spmspv_dist_masked`] (masks in distributed memory, §V) and
//! [`spmspv::spmspv_dist_semiring`] (general accumulation), [`spmv`]
//! (dense vectors), [`mxm`] (sparse SUMMA SpGEMM), [`transpose`]
//! (mirror-block exchange), and [`reduce`] (binomial-tree all-reduce).

pub mod apply;
pub mod assign;
pub mod ewise;
pub mod expand;
pub mod extract;
pub mod mxm;
pub mod pull;
pub mod reduce;
pub mod select;
pub mod spmspv;
pub mod spmv;
pub mod transpose;
