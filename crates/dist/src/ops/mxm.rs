//! Distributed SpGEMM: `C = A ⊗ B` by multi-stage sparse SUMMA.
//!
//! The paper cites the 2-D sparse SUMMA algorithm for matrix-matrix
//! multiply and general indexing \[8\] (Buluç & Gilbert) as the natural
//! companion to its block distribution. Stationary-C formulation: in
//! stage `s` covering the inner-dimension interval `[lo, hi)`, the owners
//! of `A`'s covering column-block broadcast that interval's *column
//! slice* along their grid row, the owners of `B`'s covering row-block
//! broadcast the interval's *row slice* down their grid column, every
//! locale multiplies the received pair locally and accumulates into its
//! stationary `C` block with an element-wise add.
//!
//! Three algorithm variants ([`MxmAlgo`]):
//!
//! * **`Single`** — the legacy single-stage-per-block SUMMA: whole CSR
//!   blocks are broadcast (row pointers included), one stage per grid
//!   column. Requires a square grid; kept as the measured baseline.
//! * **`Summa2d`** — multi-stage DCSC SUMMA on arbitrary rectangular
//!   `pr×pc` grids. The stage bounds are the sorted union of `A`'s column
//!   split and `B`'s row split ([`SummaPlan`]), so no `lcm`-sized
//!   re-blocking is needed; broadcasts carry doubly compressed slices
//!   ([`crate::dcsc`]) whose wire bytes scale with the slice's nonzeros,
//!   not the block side — the hypersparsity win. Each block pair's local
//!   multiply picks a density-adaptive kernel (heap merge / hash
//!   accumulator / pooled dense SPA) via
//!   [`gblas_core::ops::selection::decide_mxm_kernel`].
//! * **`Summa3d`** — the communication-avoiding 3-D variant: the machine
//!   is split into `c` replication layers of `p` locales each, stages are
//!   dealt round-robin to layers, operand blocks are replicated to the
//!   layer that consumes them (priced point-to-point), and the layers'
//!   partial `C` blocks are merged by a binomial-tree allreduce. Fewer,
//!   larger blocks per layer mean smaller broadcast fan-out; the price is
//!   the `log₂ c` merge rounds over the (sparse) partial products.
//!
//! All variants produce identical results: every local kernel
//! accumulates each output position in ascending inner-dimension order,
//! so integer-semiring products are bit-identical across variants, grid
//! shapes, and executors (floating-point products agree to rounding, as
//! the stage grouping associates the sums differently).

use crate::dcsc::{self, choose_format, BlockFormat, ColSlice, DcscBlock};
use crate::exec::DistCtx;
use crate::mat::DistCsrMatrix;
use crate::sched::{fingerprint_indices, FrontierClass, PlanData, SummaPlan};
use gblas_core::algebra::{BinaryOp, Monoid, Semiring};
use gblas_core::container::CsrMatrix;
use gblas_core::error::{GblasError, Result};
use gblas_core::ops::selection::{decide_mxm_kernel, MxmKernel};
use gblas_core::par::{Counters, ExecCtx, Profile};
use gblas_sim::SimReport;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Phase: slice/block broadcasts.
pub const PHASE_BCAST: &str = "broadcast";
/// Phase: local multiplies + accumulation.
pub const PHASE_LOCAL: &str = "local";
/// Phase: DCSC conversion and stage-slice extraction on the owners.
pub const PHASE_EXTRACT: &str = "extract";
/// Phase: operand block replication to 3-D layers.
pub const PHASE_REPLICATE: &str = "replicate";
/// Phase: binomial allreduce merging the layers' partial `C` blocks.
pub const PHASE_MERGE: &str = "allreduce";

/// Which SUMMA variant a distributed multiply runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MxmAlgo {
    /// Legacy single-stage-per-block broadcast SUMMA (square grids only),
    /// full CSR blocks on the wire. The measured baseline.
    Single,
    /// Multi-stage DCSC SUMMA on rectangular grids (the default).
    #[default]
    Summa2d,
    /// Communication-avoiding 3-D SUMMA with `layers` replication layers
    /// (`layers = 0` derives the layer count from the machine:
    /// `dctx.locales() / grid.locales()`).
    Summa3d {
        /// Replication layer count; 0 = derive from the machine size.
        layers: usize,
    },
}

impl MxmAlgo {
    /// Stable lowercase name (trace attributes, figure series).
    pub fn name(self) -> &'static str {
        match self {
            MxmAlgo::Single => "single",
            MxmAlgo::Summa2d => "summa2d",
            MxmAlgo::Summa3d { .. } => "summa3d",
        }
    }

    /// Parse the CLI spelling (`single` | `2d` | `3d`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "single" => Some(MxmAlgo::Single),
            "2d" => Some(MxmAlgo::Summa2d),
            "3d" => Some(MxmAlgo::Summa3d { layers: 0 }),
            _ => None,
        }
    }
}

/// Replication layer count for a machine of `total` locales: the largest
/// power of two `c` with `c³ ≤ total` that divides `total` — the classic
/// `c ≤ ∛p` bound that keeps the allreduce from dominating.
pub fn auto_layers(total: usize) -> usize {
    let mut best = 1;
    let mut cand = 2usize;
    while cand.saturating_mul(cand).saturating_mul(cand) <= total {
        if total.is_multiple_of(cand) {
            best = cand;
        }
        cand *= 2;
    }
    best
}

/// `C = A ⊗ B` over `ring` with both operands on the same grid
/// (multi-stage DCSC SUMMA, the default variant).
pub fn mxm_dist<T, AddM, MulOp>(
    a: &DistCsrMatrix<T>,
    b: &DistCsrMatrix<T>,
    ring: &Semiring<AddM, MulOp>,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<T>, SimReport)>
where
    T: Copy + Send + Sync + PartialEq + 'static,
    AddM: Monoid<T>,
    MulOp: BinaryOp<T, T, T>,
{
    mxm_dist_masked::<T, T, T, AddM, MulOp, bool>(a, b, ring, None, dctx)
}

/// Masked, mixed-type multi-stage SUMMA: `C⟨M⟩ = A ⊗ B` (default
/// variant). See [`mxm_dist_masked_with`] for the variant-selecting form.
pub fn mxm_dist_masked<A, B, C, AddM, MulOp, M>(
    a: &DistCsrMatrix<A>,
    b: &DistCsrMatrix<B>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&DistCsrMatrix<M>>,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<C>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    M: Copy + Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    mxm_dist_masked_with(a, b, ring, mask, MxmAlgo::default(), dctx)
}

/// Masked, mixed-type sparse SUMMA with an explicit algorithm variant.
///
/// The mask is structural and distributed on the *same grid* as the
/// stationary `C` blocks, so each stage applies its locale's mask block to
/// the local multiply — masking commutes with the stage-wise element-wise
/// accumulation (`(Σ Pₖ) ∩ M = Σ (Pₖ ∩ M)`), and suppressed entries never
/// enter a stationary block. This is what masked distributed triangle
/// counting (`C⟨L⟩ = L · Lᵀ`) needs.
pub fn mxm_dist_masked_with<A, B, C, AddM, MulOp, M>(
    a: &DistCsrMatrix<A>,
    b: &DistCsrMatrix<B>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&DistCsrMatrix<M>>,
    algo: MxmAlgo,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<C>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    M: Copy + Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    let grid = a.grid();
    if b.grid() != grid {
        return Err(GblasError::DimensionMismatch {
            expected: format!("B on the same {}x{} grid", grid.pr(), grid.pc()),
            actual: format!("B on {}x{}", b.grid().pr(), b.grid().pc()),
        });
    }
    if a.ncols() != b.nrows() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("inner dimension {}", a.ncols()),
            actual: format!("inner dimension {}", b.nrows()),
        });
    }
    if let Some(m) = mask {
        if m.grid() != grid {
            return Err(GblasError::DimensionMismatch {
                expected: format!("mask on the same {}x{} grid", grid.pr(), grid.pc()),
                actual: format!("mask on {}x{}", m.grid().pr(), m.grid().pc()),
            });
        }
        if m.nrows() != a.nrows() || m.ncols() != b.ncols() {
            return Err(GblasError::DimensionMismatch {
                expected: format!("{}x{} mask", a.nrows(), b.ncols()),
                actual: format!("{}x{} mask", m.nrows(), m.ncols()),
            });
        }
    }
    let p = grid.locales();
    match algo {
        MxmAlgo::Single => {
            if grid.pr() != grid.pc() {
                return Err(GblasError::InvalidArgument(
                    "single-stage SUMMA needs a square process grid".into(),
                ));
            }
            if dctx.locales() != p {
                return Err(GblasError::DimensionMismatch {
                    expected: format!("machine with {p} locales"),
                    actual: format!("machine with {} locales", dctx.locales()),
                });
            }
            single_stage(a, b, ring, mask, dctx)
        }
        MxmAlgo::Summa2d => {
            if dctx.locales() != p {
                return Err(GblasError::DimensionMismatch {
                    expected: format!("machine with {p} locales"),
                    actual: format!("machine with {} locales", dctx.locales()),
                });
            }
            summa_engine(a, b, ring, mask, 1, dctx)
        }
        MxmAlgo::Summa3d { layers } => {
            let total = dctx.locales();
            let derived = if layers == 0 {
                if !total.is_multiple_of(p) {
                    return Err(GblasError::DimensionMismatch {
                        expected: format!("machine locales divisible by grid size {p}"),
                        actual: format!("{total} locales"),
                    });
                }
                total / p
            } else {
                layers
            };
            if p * derived != total {
                return Err(GblasError::DimensionMismatch {
                    expected: format!(
                        "machine with {} locales ({p} grid x {derived} layers)",
                        p * derived
                    ),
                    actual: format!("machine with {total} locales"),
                });
            }
            summa_engine(a, b, ring, mask, derived, dctx)
        }
    }
}

/// The multi-stage engine shared by the 2-D (`layers == 1`) and 3-D
/// (`layers > 1`) variants. See the module docs for the structure.
fn summa_engine<A, B, C, AddM, MulOp, M>(
    a: &DistCsrMatrix<A>,
    b: &DistCsrMatrix<B>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&DistCsrMatrix<M>>,
    layers: usize,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<C>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    M: Copy + Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    let grid = a.grid();
    let p = grid.locales();
    let total = p * layers;
    let a_elem = std::mem::size_of::<A>();
    let b_elem = std::mem::size_of::<B>();

    // The stage plan is purely shape-derived (dimensions + grid), so
    // iterative callers replay it across fresh matrices of the same shape
    // — the generation stamp is unused (0) and the shapes fingerprint
    // gates reuse instead.
    let (plan_arc, sched_outcome) = dctx.schedule(
        "mxm_summa",
        FrontierClass::Mat,
        (grid.pr(), grid.pc()),
        0,
        fingerprint_indices(&[a.nrows(), a.ncols(), b.ncols()]),
        || PlanData::Summa(SummaPlan::build(a.ncols(), &a.col_dist(), &b.row_dist())),
    );
    let plan = plan_arc.summa();
    let stages = plan.stages();

    // Prepare superstep: every locale picks its A block's representation
    // (DCSC when hypersparse) and converts once; conversion work lands in
    // the extract phase. B blocks stay CSR — row slices are contiguous.
    let mut prep: Vec<(Option<DcscBlock<A>>, Profile)> =
        (0..p).map(|_| (None, Profile::default())).collect();
    dctx.for_each_locale_state(&mut prep, |l, (slot, prof)| {
        let blk = a.block(l);
        if choose_format(blk.nnz(), blk.nrows().max(blk.ncols())) == BlockFormat::Dcsc {
            let c = prof.counters_mut(PHASE_EXTRACT);
            c.elems += blk.nnz() as u64;
            c.sort_elems += (blk.nnz().max(1).ilog2() as u64 + 1) * blk.nnz() as u64;
            *slot = Some(DcscBlock::from_csr(blk));
        }
        Ok(())
    })?;
    let mut a_dcsc: Vec<Option<DcscBlock<A>>> = Vec::with_capacity(p);
    let mut extract_profiles: Vec<Profile> = vec![Profile::default(); total];
    for (l, (slot, prof)) in prep.into_iter().enumerate() {
        a_dcsc.push(slot);
        extract_profiles[l] = prof;
    }

    // Driver-side kernel decisions, per (stage, grid position): pure
    // integer estimates from block structure, so every locale — and both
    // executors — agree without additional communication (the estimates
    // ride on the slice headers the broadcasts already carry).
    let mut decisions: Vec<Vec<MxmKernel>> = Vec::with_capacity(stages);
    let mut kernel_counts = [0u64; 3];
    let mut est_total: u64 = 0;
    let mut stage_cost: Vec<u64> = vec![0; stages];
    for (s, cost) in stage_cost.iter_mut().enumerate() {
        let (lo, hi) = plan.bounds[s];
        let w = hi - lo;
        let mut per_locale = Vec::with_capacity(p);
        for l in 0..p {
            let (r, c) = grid.coords(l);
            let a_blk = a.block(grid.locale(r, plan.ka[s]));
            let b_blk = b.block(grid.locale(plan.kb[s], c));
            let brange = b.row_dist().range(plan.kb[s]);
            let (blo, bhi) = (lo - brange.start, hi - brange.start);
            let b_nnz = b_blk.rowptr()[bhi] - b_blk.rowptr()[blo];
            let a_est = a_blk.nnz() * w / a_blk.ncols().max(1);
            let est_flops = a_est * b_nnz / w.max(1);
            let q_l = b.col_range(l).len();
            let k = decide_mxm_kernel(est_flops, q_l);
            kernel_counts[match k {
                MxmKernel::Heap => 0,
                MxmKernel::Hash => 1,
                MxmKernel::Spa => 2,
            }] += 1;
            est_total += est_flops as u64;
            *cost = (*cost).max(est_flops as u64);
            per_locale.push(k);
        }
        decisions.push(per_locale);
    }

    // Stage -> layer assignment (3-D only): LPT greedy on the driver-side
    // critical-path estimates, heaviest stage to the least-loaded layer.
    // Round-robin dealing loses badly on skewed (RMAT) inputs, where hub
    // block-columns concentrate the flops in a few stages; balancing on
    // the same integer estimates the kernel selection already computes
    // keeps the layers' critical paths even — and stays deterministic
    // across executors and grid shapes.
    let stage_layer: Vec<usize> = {
        let mut order: Vec<usize> = (0..stages).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(stage_cost[s]), s));
        let mut load = vec![0u64; layers];
        let mut assign = vec![0usize; stages];
        for s in order {
            let target = (0..layers).min_by_key(|&j| (load[j], j)).unwrap_or(0);
            assign[s] = target;
            load[target] += stage_cost[s].max(1);
        }
        assign
    };
    let mut select_trace = dctx.op("select");
    select_trace
        .attr("algo", "mxm")
        .attr("stages", stages)
        .attr("heap", kernel_counts[0])
        .attr("hash", kernel_counts[1])
        .attr("spa", kernel_counts[2])
        .nnz(est_total);
    let select_report = select_trace.finish();

    // 3-D replication: each operand block moves once to every layer > 0
    // that consumes one of its stages, point-to-point from its resident
    // locale to the layer counterpart. DCSC-converted blocks ship doubly
    // compressed.
    if layers > 1 {
        let mut moves: BTreeSet<(usize, usize, bool)> = BTreeSet::new(); // (base locale, layer, is_b)
        for (s, &layer) in stage_layer.iter().enumerate() {
            if layer == 0 {
                continue;
            }
            for r in 0..grid.pr() {
                moves.insert((grid.locale(r, plan.ka[s]), layer, false));
            }
            for c in 0..grid.pc() {
                moves.insert((grid.locale(plan.kb[s], c), layer, true));
            }
        }
        for &(base, layer, is_b) in &moves {
            let bytes = if is_b {
                let blk = b.block(base);
                dcsc::csr_wire_bytes(blk.nrows(), blk.nnz(), b_elem)
            } else {
                match &a_dcsc[base] {
                    Some(d) => dcsc::dcsc_wire_bytes(d.nzc(), d.nnz(), a_elem),
                    None => {
                        let blk = a.block(base);
                        dcsc::csr_wire_bytes(blk.nrows(), blk.nnz(), a_elem)
                    }
                }
            };
            dctx.comm.bulk(PHASE_REPLICATE, base, layer * p + base, 1, bytes)?;
        }
    }

    // Stationary C blocks (one per layer-locale), accumulated stage by
    // stage. Layer j's locale l holds the partial sum of its stage subset.
    let mut state: Vec<(CsrMatrix<C>, Profile, Profile)> = (0..total)
        .map(|g| {
            let l = g % p;
            let rows = a.row_range(l).len();
            let cols = b.col_range(l).len();
            (CsrMatrix::empty(rows, cols), Profile::default(), Profile::default())
        })
        .collect();

    // The whole stage pipeline runs inside ONE SPMD superstep: every
    // locale task loops its stages locally, with the per-stage exchange
    // expressed as owner-logged point-to-point sends. This is the
    // multi-stage engine's structural advantage over the legacy
    // single-stage baseline, which re-spawns a machine-wide superstep per
    // stage and pays the `locales × c_remote_task` coforall fan-out every
    // time — at 256 nodes that fan-out, not the wire, dominates its
    // broadcast phase.
    {
        let decisions_ref = &decisions;
        let a_dcsc_ref = &a_dcsc;
        let plan_ref = plan;
        dctx.for_each_locale_state(&mut state, |g, (c_block, local_profile, bcast_profile)| {
            let l = g % p;
            for s in 0..stages {
                let layer = stage_layer[s];
                if g / p != layer {
                    continue; // another layer's stage
                }
                let (lo, hi) = plan_ref.bounds[s];
                let (ka, kb) = (plan_ref.ka[s], plan_ref.kb[s]);
                let a_cols = a.col_dist().range(ka);
                let b_rows = b.row_dist().range(kb);
                let decisions_s = &decisions_ref[s];
                let (r, c) = grid.coords(l);
                let a_owner = grid.locale(r, ka);
                let b_owner = grid.locale(kb, c);
                let a_blk = a.block(a_owner);
                let b_blk = b.block(b_owner);
                // Extract the A column slice. Every receiver re-derives it
                // (simulating the received payload); only the owner charges
                // the extraction work.
                let mut scratch = Counters::default();
                let slice: ColSlice<A> = {
                    let cnt =
                        if l == a_owner { extract_counters(local_profile) } else { &mut scratch };
                    match &a_dcsc_ref[a_owner] {
                        Some(d) => d.col_slice(lo - a_cols.start, hi - a_cols.start, cnt),
                        None => {
                            dcsc::csr_col_slice(a_blk, lo - a_cols.start, hi - a_cols.start, cnt)
                        }
                    }
                };
                // B's slice is the contiguous local row range [blo, bhi); the
                // owner charges the nonempty-row scan that sizes the payload.
                let (blo, bhi) = (lo - b_rows.start, hi - b_rows.start);
                let b_nnz = b_blk.rowptr()[bhi] - b_blk.rowptr()[blo];
                let b_nzr =
                    (blo..bhi).filter(|&i| b_blk.rowptr()[i] < b_blk.rowptr()[i + 1]).count();
                if l == b_owner {
                    extract_counters(local_profile).elems += (bhi - blo) as u64;
                }
                // Broadcasts: sends are logged by the *owner*'s task — one
                // writer per source keeps the comm log's per-src order
                // deterministic under the threaded executor. Empty slices
                // never hit the wire: DCSC's `jc` array answers "is this
                // k-range empty?" without touching a rowptr, so hypersparse
                // stages cost zero messages — the payoff the legacy full-CSR
                // baseline (which always ships `(rows+1)` pointer words)
                // cannot see.
                let a_bytes = if slice.nnz() == 0 {
                    0
                } else {
                    dcsc::slice_wire_bytes(slice.nzr(), slice.nnz(), a_elem)
                };
                let b_bytes =
                    if b_nnz == 0 { 0 } else { dcsc::slice_wire_bytes(b_nzr, b_nnz, b_elem) };
                if l == a_owner && a_bytes > 0 {
                    for peer in grid.row_locales(r) {
                        if peer != l {
                            dctx.comm.bulk(PHASE_BCAST, g, layer * p + peer, 1, a_bytes)?;
                        }
                    }
                }
                if l == b_owner && b_bytes > 0 {
                    for peer in grid.col_locales(c) {
                        if peer != l {
                            dctx.comm.bulk(PHASE_BCAST, g, layer * p + peer, 1, b_bytes)?;
                        }
                    }
                }
                bcast_profile.counters_mut(PHASE_BCAST).bytes_moved += a_bytes + b_bytes;
                // Local multiply with the stage's density-adaptive kernel,
                // accumulated into the stationary block. The locale's mask
                // block covers exactly its stationary C block.
                if slice.nnz() > 0 && b_nnz > 0 {
                    let lctx = dctx.locale_ctx_for(l);
                    let m_l = a.row_range(l).len();
                    let q_l = b.col_range(l).len();
                    let partial: CsrMatrix<C> = multiply_slice(
                        &slice,
                        b_blk,
                        blo,
                        m_l,
                        q_l,
                        ring,
                        mask.map(|m| m.block(l)),
                        decisions_s[l],
                        &lctx,
                    )?;
                    let accumulated = gblas_core::ops::ewise_mat::ewise_add_mat(
                        &*c_block, &partial, &ring.add, &lctx,
                    )?;
                    *c_block = accumulated;
                    let folded = local_profile.counters_mut(PHASE_LOCAL);
                    for (_, cs) in lctx.take_profile().iter() {
                        folded.merge(cs);
                    }
                }
            }
            Ok(())
        })?;
    }

    // 3-D merge: binomial-tree allreduce of the layers' partial C blocks
    // into layer 0. Driver-side (the rounds are inherently sequential);
    // compute is charged to the receiving locale, sends are logged from
    // the sending layer's locale.
    let mut merge_profiles: Vec<Profile> = vec![Profile::default(); total];
    if layers > 1 {
        let mut half = 1usize;
        while half < layers {
            for j in (0..layers).step_by(2 * half) {
                let src_layer = j + half;
                if src_layer >= layers {
                    continue;
                }
                for l in 0..p {
                    let src = src_layer * p + l;
                    let dst = j * p + l;
                    let (rows, cols) = (state[src].0.nrows(), state[src].0.ncols());
                    let partial =
                        std::mem::replace(&mut state[src].0, CsrMatrix::empty(rows, cols));
                    let nzr = (0..partial.nrows()).filter(|&i| partial.row_nnz(i) > 0).count();
                    let bytes =
                        dcsc::slice_wire_bytes(nzr, partial.nnz(), std::mem::size_of::<C>());
                    dctx.comm.bulk(PHASE_MERGE, src, dst, 1, bytes)?;
                    let mc = merge_profiles[dst].counters_mut(PHASE_MERGE);
                    mc.elems += partial.nrows() as u64; // payload sizing scan
                    mc.bytes_moved += bytes;
                    let lctx = dctx.locale_ctx_for(l);
                    let merged = gblas_core::ops::ewise_mat::ewise_add_mat(
                        &state[dst].0,
                        &partial,
                        &ring.add,
                        &lctx,
                    )?;
                    state[dst].0 = merged;
                    let folded = merge_profiles[dst].counters_mut(PHASE_MERGE);
                    for (_, cs) in lctx.take_profile().iter() {
                        folded.merge(cs);
                    }
                }
            }
            half *= 2;
        }
    }

    let mut c_blocks: Vec<CsrMatrix<C>> = Vec::with_capacity(p);
    let mut local_profiles: Vec<Profile> = Vec::with_capacity(total);
    let mut bcast_profiles: Vec<Profile> = Vec::with_capacity(total);
    for (g, (blk, local, bcast)) in state.into_iter().enumerate() {
        if g < p {
            c_blocks.push(blk);
        }
        local_profiles.push(local);
        bcast_profiles.push(bcast);
    }

    let c = DistCsrMatrix::from_blocks(a.nrows(), b.ncols(), grid, c_blocks)?;
    let mut trace = dctx.op("mxm_dist");
    trace
        .attr("algo", if layers > 1 { "summa3d" } else { "summa2d" })
        .attr("stages", stages)
        .attr("grid", format_args!("{}x{}", grid.pr(), grid.pc()))
        .nnz((a.nnz() + b.nnz()) as u64)
        .sched(sched_outcome);
    if layers > 1 {
        trace.attr("layers", layers);
    }
    if mask.is_some() {
        trace.attr("masked", true);
    }
    // Two coforalls for the whole multiply — format preparation and the
    // fused stage pipeline (whose trailing barrier also covers the 3-D
    // merge rounds, which are point-to-point between already-live
    // tasks). The legacy single-stage path spawns per stage instead.
    trace.spawn(PHASE_EXTRACT, 1);
    trace.spawn(PHASE_BCAST, 1);
    trace.compute(PHASE_EXTRACT, &extract_profiles);
    trace.compute(PHASE_BCAST, &bcast_profiles);
    trace.compute(PHASE_LOCAL, &local_profiles);
    if layers > 1 {
        trace.compute(PHASE_MERGE, &merge_profiles);
    }
    let mut report = trace.finish();
    report.merge(&select_report);
    Ok((c, report))
}

/// Counter slot for owner-side extraction charges. The local profile is
/// keyed by phase, so the slices' preparation lands under
/// [`PHASE_EXTRACT`] while the multiply stays under [`PHASE_LOCAL`].
fn extract_counters(profile: &mut Profile) -> &mut Counters {
    profile.counters_mut(PHASE_EXTRACT)
}

/// One locale's stage-local multiply: `partial = slice ⊗ B[blo..bhi, :]`
/// over `ring`, masked by the locale's stationary mask block, with the
/// selected density-adaptive accumulator. All three kernels visit each
/// output position's contributions in ascending inner-dimension order and
/// emit rows with sorted column ids, so they are bit-interchangeable.
#[allow(clippy::too_many_arguments)]
fn multiply_slice<A, B, C, AddM, MulOp, M>(
    a_slice: &ColSlice<A>,
    b_blk: &CsrMatrix<B>,
    b_off: usize,
    m_l: usize,
    q_l: usize,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&CsrMatrix<M>>,
    kernel: MxmKernel,
    ctx: &ExecCtx,
) -> Result<CsrMatrix<C>>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    M: Copy + Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    // Pooled receive/accumulate buffers: the partial's column/value
    // streams come from the workspace pool and are copied out exactly
    // sized at the end, so per-stage scratch is reused across stages and
    // iterations.
    let mut colidx_ws = ctx.ws_vec::<usize>();
    let mut values_ws = ctx.ws_vec::<C>();
    let mut row_ends: Vec<(usize, usize)> = Vec::with_capacity(a_slice.rows.len());
    let mut row_inds: Vec<usize> = Vec::new();
    let mut row_vals: Vec<C> = Vec::new();
    match kernel {
        MxmKernel::Spa => {
            let mut spa = ctx.ws_dense_spa(q_l, ring.zero::<C>());
            ctx.record(gblas_core::ops::mxm::PHASE, |c| {
                for (i, entries) in &a_slice.rows {
                    for &(k, av) in entries {
                        let (bcols, bvals) = b_blk.row(b_off + k);
                        c.flops += bcols.len() as u64;
                        for (&j, &bv) in bcols.iter().zip(bvals) {
                            spa.accumulate(j, ring.multiply(av, bv), &ring.add, c);
                        }
                    }
                    let mut inds = spa.nzinds().to_vec();
                    inds.sort_unstable();
                    c.sort_elems += (inds.len().max(1).ilog2() as u64 + 1) * inds.len() as u64;
                    row_inds.clear();
                    row_vals.clear();
                    for &j in &inds {
                        row_inds.push(j);
                        row_vals.push(spa.get(j).expect("collected index occupied"));
                    }
                    let _ = spa.drain(c);
                    emit_row(*i, &row_inds, &row_vals, mask, &mut colidx_ws, &mut values_ws, c);
                    row_ends.push((*i, colidx_ws.len()));
                }
            });
        }
        MxmKernel::Hash => {
            ctx.record(gblas_core::ops::mxm::PHASE, |c| {
                let mut tbl: HashMap<usize, C> = HashMap::new();
                for (i, entries) in &a_slice.rows {
                    tbl.clear();
                    for &(k, av) in entries {
                        let (bcols, bvals) = b_blk.row(b_off + k);
                        c.flops += bcols.len() as u64;
                        for (&j, &bv) in bcols.iter().zip(bvals) {
                            let prod = ring.multiply(av, bv);
                            c.rand_access += 1; // open-addressing probe
                            tbl.entry(j)
                                .and_modify(|v| *v = ring.add.combine(*v, prod))
                                .or_insert(prod);
                        }
                    }
                    let mut inds: Vec<usize> = tbl.keys().copied().collect();
                    inds.sort_unstable();
                    c.sort_elems += (inds.len().max(1).ilog2() as u64 + 1) * inds.len() as u64;
                    row_inds.clear();
                    row_vals.clear();
                    for &j in &inds {
                        row_inds.push(j);
                        row_vals.push(tbl[&j]);
                    }
                    emit_row(*i, &row_inds, &row_vals, mask, &mut colidx_ws, &mut values_ws, c);
                    row_ends.push((*i, colidx_ws.len()));
                }
            });
        }
        MxmKernel::Heap => {
            ctx.record(gblas_core::ops::mxm::PHASE, |c| {
                // t-way merge of the B rows the A entries select; the heap
                // orders by (column, A-entry index) so equal columns pop in
                // ascending inner-dimension order — the same accumulation
                // order as the SPA.
                let mut heap: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
                for (i, entries) in &a_slice.rows {
                    heap.clear();
                    let t = entries.len();
                    let push_charge = t.max(1).ilog2() as u64 + 1;
                    for (kidx, &(k, _)) in entries.iter().enumerate() {
                        let (bcols, _) = b_blk.row(b_off + k);
                        if !bcols.is_empty() {
                            heap.push(Reverse((bcols[0], kidx, 0)));
                            c.sort_elems += push_charge;
                        }
                    }
                    row_inds.clear();
                    row_vals.clear();
                    while let Some(Reverse((j, kidx, pos))) = heap.pop() {
                        let (k, av) = entries[kidx];
                        let (bcols, bvals) = b_blk.row(b_off + k);
                        let prod = ring.multiply(av, bvals[pos]);
                        c.flops += 1;
                        match row_inds.last() {
                            Some(&last) if last == j => {
                                let v = row_vals.last_mut().expect("vals track inds");
                                *v = ring.add.combine(*v, prod);
                            }
                            _ => {
                                row_inds.push(j);
                                row_vals.push(prod);
                            }
                        }
                        if pos + 1 < bcols.len() {
                            heap.push(Reverse((bcols[pos + 1], kidx, pos + 1)));
                            c.sort_elems += push_charge;
                        }
                    }
                    emit_row(*i, &row_inds, &row_vals, mask, &mut colidx_ws, &mut values_ws, c);
                    row_ends.push((*i, colidx_ws.len()));
                }
            });
        }
    }
    // Assemble the partial CSR: rows absent from the slice are empty.
    let mut rowptr = Vec::with_capacity(m_l + 1);
    rowptr.push(0usize);
    let mut cursor = 0usize;
    let mut last_end = 0usize;
    for i in 0..m_l {
        if cursor < row_ends.len() && row_ends[cursor].0 == i {
            last_end = row_ends[cursor].1;
            cursor += 1;
        }
        rowptr.push(last_end);
    }
    CsrMatrix::from_raw_parts(m_l, q_l, rowptr, colidx_ws.clone(), values_ws.clone())
}

/// Append one finished row to the partial's output streams, applying the
/// structural mask by sorted intersection (one streamed element per
/// candidate, the shared-memory idiom).
fn emit_row<C: Copy, M>(
    i: usize,
    inds: &[usize],
    vals: &[C],
    mask: Option<&CsrMatrix<M>>,
    colidx: &mut Vec<usize>,
    values: &mut Vec<C>,
    c: &mut Counters,
) {
    match mask {
        Some(m) => {
            let (mcols, _) = m.row(i);
            let mut p = 0usize;
            for (&j, &v) in inds.iter().zip(vals) {
                while p < mcols.len() && mcols[p] < j {
                    p += 1;
                }
                c.elems += 1;
                if p < mcols.len() && mcols[p] == j {
                    colidx.push(j);
                    values.push(v);
                }
            }
        }
        None => {
            colidx.extend_from_slice(inds);
            values.extend_from_slice(vals);
        }
    }
}

/// The legacy single-stage-per-block sparse SUMMA (square grids): whole
/// CSR blocks on the wire, shared-memory Gustavson per stage. Kept as the
/// measured baseline for the `--fig spgemm` sweep; its broadcast bytes
/// now honestly include the `(rows+1)`-word row-pointer array that
/// dominates in the hypersparse regime.
fn single_stage<A, B, C, AddM, MulOp, M>(
    a: &DistCsrMatrix<A>,
    b: &DistCsrMatrix<B>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&DistCsrMatrix<M>>,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<C>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync + 'static,
    M: Copy + Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    let grid = a.grid();
    let p = grid.locales();
    let stages = grid.pc();
    let a_elem = std::mem::size_of::<A>();
    let b_elem = std::mem::size_of::<B>();

    let mut state: Vec<(CsrMatrix<C>, Profile, Profile)> = (0..p)
        .map(|l| {
            let rows = a.row_range(l).len();
            let cols = b.col_range(l).len();
            (CsrMatrix::empty(rows, cols), Profile::default(), Profile::default())
        })
        .collect();

    for k in 0..stages {
        dctx.for_each_locale_state(&mut state, |l, (c_block, local_profile, bcast_profile)| {
            let (r, c) = grid.coords(l);
            let a_owner = grid.locale(r, k);
            let a_blk = a.block(a_owner);
            let b_owner = grid.locale(k, c);
            let b_blk = b.block(b_owner);
            let a_bytes = dcsc::csr_wire_bytes(a_blk.nrows(), a_blk.nnz(), a_elem);
            let b_bytes = dcsc::csr_wire_bytes(b_blk.nrows(), b_blk.nnz(), b_elem);
            if l == a_owner {
                for peer in grid.row_locales(r) {
                    if peer != l {
                        dctx.comm.bulk(PHASE_BCAST, l, peer, 1, a_bytes)?;
                    }
                }
            }
            if l == b_owner {
                for peer in grid.col_locales(c) {
                    if peer != l {
                        dctx.comm.bulk(PHASE_BCAST, l, peer, 1, b_bytes)?;
                    }
                }
            }
            bcast_profile.counters_mut(PHASE_BCAST).bytes_moved += a_bytes + b_bytes;
            let lctx = dctx.locale_ctx_for(l);
            let partial: CsrMatrix<C> = gblas_core::ops::mxm::mxm::<_, _, C, _, _, M>(
                a_blk,
                b_blk,
                ring,
                mask.map(|m| m.block(l)),
                &lctx,
            )?;
            let accumulated =
                gblas_core::ops::ewise_mat::ewise_add_mat(&*c_block, &partial, &ring.add, &lctx)?;
            *c_block = accumulated;
            let folded = local_profile.counters_mut(PHASE_LOCAL);
            for (_, cs) in lctx.take_profile().iter() {
                folded.merge(cs);
            }
            Ok(())
        })?;
    }

    let mut c_blocks: Vec<CsrMatrix<C>> = Vec::with_capacity(p);
    let mut local_profiles: Vec<Profile> = Vec::with_capacity(p);
    let mut bcast_profiles: Vec<Profile> = Vec::with_capacity(p);
    for (blk, local, bcast) in state {
        c_blocks.push(blk);
        local_profiles.push(local);
        bcast_profiles.push(bcast);
    }

    let c = DistCsrMatrix::from_blocks(a.nrows(), b.ncols(), grid, c_blocks)?;
    let mut trace = dctx.op("mxm_dist");
    trace
        .attr("algo", "single")
        .attr("stages", stages)
        .attr("grid", format_args!("{}x{}", grid.pr(), grid.pc()))
        .nnz((a.nnz() + b.nnz()) as u64);
    if mask.is_some() {
        trace.attr("masked", true);
    }
    trace.spawn(PHASE_BCAST, stages);
    trace.compute(PHASE_BCAST, &bcast_profiles);
    trace.compute(PHASE_LOCAL, &local_profiles);
    Ok((c, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use gblas_core::algebra::semirings;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn matches_shared_memory_spgemm_at_every_square_grid() {
        let a = gen::erdos_renyi(90, 4, 221);
        let b = gen::erdos_renyi(90, 4, 222);
        let ctx = gblas_core::par::ExecCtx::serial();
        let expect = gblas_core::ops::mxm::mxm::<_, _, f64, _, _, bool>(
            &a,
            &b,
            &semirings::plus_times_f64(),
            None,
            &ctx,
        )
        .unwrap();
        for s in [1usize, 2, 3] {
            let grid = ProcGrid::new(s, s);
            let p = grid.locales();
            let da = DistCsrMatrix::from_global(&a, grid);
            let db = DistCsrMatrix::from_global(&b, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (dc, report) = mxm_dist(&da, &db, &semirings::plus_times_f64(), &dctx).unwrap();
            let got = dc.to_global().unwrap();
            assert_eq!(got.rowptr(), expect.rowptr(), "grid {s}x{s}");
            assert_eq!(got.colidx(), expect.colidx(), "grid {s}x{s}");
            for (x, y) in got.values().iter().zip(expect.values()) {
                assert!((x - y).abs() < 1e-9, "grid {s}x{s}");
            }
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn rectangular_grids_match_shared_exactly_on_integer_rings() {
        // u64 plus-times: addition is associative, so every grid shape and
        // stage blocking must produce bit-identical results
        let af = gen::erdos_renyi(77, 4, 231);
        let ctx = gblas_core::par::ExecCtx::serial();
        let a = gblas_core::ops::apply::map_mat(&af, &|_, _, _: f64| 3u64, &ctx);
        let ring = semirings::plus_times::<u64>();
        let expect: CsrMatrix<u64> =
            gblas_core::ops::mxm::mxm::<_, _, u64, _, _, bool>(&a, &a, &ring, None, &ctx).unwrap();
        for (pr, pc) in [(1usize, 2usize), (2, 1), (2, 3), (3, 2), (1, 4), (4, 3)] {
            let grid = ProcGrid::new(pr, pc);
            let da = DistCsrMatrix::from_global(&a, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (dc, report) = mxm_dist(&da, &da, &ring, &dctx).unwrap();
            assert_eq!(dc.to_global().unwrap(), expect, "grid {pr}x{pc}");
            assert!(report.total() > 0.0, "grid {pr}x{pc}");
        }
    }

    #[test]
    fn masked_mixed_type_summa_matches_shared() {
        // the triangle-counting shape: C⟨L⟩ = L · Lᵀ over plus-pair,
        // f64 operands producing u64 counts — exact, so rectangular grids
        // are held to bit-identity too
        let a = gen::erdos_renyi_symmetric(80, 5, 225);
        let ctx = gblas_core::par::ExecCtx::serial();
        let l = gblas_core::ops::select::tril(&a, &ctx);
        let u = gblas_core::ops::transpose::transpose(&l, &ctx).unwrap();
        let ring = semirings::plus_pair();
        let expect: gblas_core::container::CsrMatrix<u64> =
            gblas_core::ops::mxm::mxm(&l, &u, &ring, Some(&l), &ctx).unwrap();
        for (pr, pc) in [(1usize, 1usize), (2, 2), (3, 3), (2, 3), (3, 2)] {
            let grid = ProcGrid::new(pr, pc);
            let dl = DistCsrMatrix::from_global(&l, grid);
            let du = DistCsrMatrix::from_global(&u, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (dc, report) =
                mxm_dist_masked::<_, _, u64, _, _, f64>(&dl, &du, &ring, Some(&dl), &dctx).unwrap();
            assert_eq!(dc.to_global().unwrap(), expect, "grid {pr}x{pc}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn single_stage_baseline_matches_summa2d() {
        let af = gen::erdos_renyi(64, 4, 233);
        let ctx = gblas_core::par::ExecCtx::serial();
        let a = gblas_core::ops::apply::map_mat(&af, &|_, _, _: f64| 2u64, &ctx);
        let ring = semirings::plus_times::<u64>();
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (c_single, _) = mxm_dist_masked_with::<_, _, u64, _, _, bool>(
            &da,
            &da,
            &ring,
            None,
            MxmAlgo::Single,
            &dctx,
        )
        .unwrap();
        let (c_multi, _) = mxm_dist(&da, &da, &ring, &dctx).unwrap();
        assert_eq!(c_single.to_global().unwrap(), c_multi.to_global().unwrap());
        // single still refuses rectangular grids
        let dr = DistCsrMatrix::from_global(&a, ProcGrid::new(1, 4));
        assert!(mxm_dist_masked_with::<_, _, u64, _, _, bool>(
            &dr,
            &dr,
            &ring,
            None,
            MxmAlgo::Single,
            &dctx
        )
        .is_err());
    }

    #[test]
    fn summa3d_matches_2d_and_prices_merge() {
        let af = gen::erdos_renyi(60, 4, 235);
        let ctx = gblas_core::par::ExecCtx::serial();
        let a = gblas_core::ops::apply::map_mat(&af, &|_, _, _: f64| 1u64, &ctx);
        let ring = semirings::plus_times::<u64>();
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx2 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (c2, _) = mxm_dist(&da, &da, &ring, &dctx2).unwrap();
        // 2x2 grid x 2 layers = 8 machine locales
        let dctx3 = DistCtx::new(MachineConfig::edison_cluster(8, 24));
        let (c3, r3) = mxm_dist_masked_with::<_, _, u64, _, _, bool>(
            &da,
            &da,
            &ring,
            None,
            MxmAlgo::Summa3d { layers: 2 },
            &dctx3,
        )
        .unwrap();
        assert_eq!(c3.to_global().unwrap(), c2.to_global().unwrap());
        assert!(r3.phase(PHASE_MERGE) > 0.0, "allreduce merge must be priced");
        assert!(r3.phase(PHASE_REPLICATE) > 0.0, "replication must be priced");
        // derived layer count (layers: 0) resolves from the machine size
        let (c3b, _) = mxm_dist_masked_with::<_, _, u64, _, _, bool>(
            &da,
            &da,
            &ring,
            None,
            MxmAlgo::Summa3d { layers: 0 },
            &dctx3,
        )
        .unwrap();
        assert_eq!(c3b.to_global().unwrap(), c2.to_global().unwrap());
        // mismatched machine/layer product is an error
        assert!(mxm_dist_masked_with::<_, _, u64, _, _, bool>(
            &da,
            &da,
            &ring,
            None,
            MxmAlgo::Summa3d { layers: 3 },
            &dctx3
        )
        .is_err());
    }

    #[test]
    fn masked_summa_validates_mask_shape() {
        let a = gen::erdos_renyi(40, 3, 226);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        // mask on a different grid
        let m1 = DistCsrMatrix::from_global(&a, ProcGrid::new(1, 1));
        assert!(mxm_dist_masked::<_, _, f64, _, _, f64>(
            &da,
            &da,
            &semirings::plus_times_f64(),
            Some(&m1),
            &dctx
        )
        .is_err());
        // mask with the wrong shape
        let small = gen::erdos_renyi(39, 3, 227);
        let m2 = DistCsrMatrix::from_global(&small, grid);
        assert!(mxm_dist_masked::<_, _, f64, _, _, f64>(
            &da,
            &da,
            &semirings::plus_times_f64(),
            Some(&m2),
            &dctx
        )
        .is_err());
    }

    #[test]
    fn accepts_rectangular_grids_and_rejects_mismatches() {
        let a = gen::erdos_renyi(40, 3, 223);
        let dctx4 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        // rectangular grids are first-class now
        let g_rect = ProcGrid::new(1, 4);
        let da = DistCsrMatrix::from_global(&a, g_rect);
        assert!(mxm_dist(&da, &da, &semirings::plus_times_f64(), &dctx4).is_ok());
        // grid mismatch between the operands is still rejected
        let g2 = ProcGrid::new(2, 2);
        let da2 = DistCsrMatrix::from_global(&a, g2);
        let da1 = DistCsrMatrix::from_global(&a, ProcGrid::new(1, 1));
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assert!(mxm_dist(&da2, &da1, &semirings::plus_times_f64(), &dctx).is_err());
        // and so is a machine/grid size mismatch
        let dctx6 = DistCtx::new(MachineConfig::edison_cluster(6, 24));
        assert!(mxm_dist(&da2, &da2, &semirings::plus_times_f64(), &dctx6).is_err());
    }

    #[test]
    fn broadcast_volume_is_bounded_by_stages() {
        let a = gen::erdos_renyi(60, 4, 224);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let db = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let _ = mxm_dist(&da, &db, &semirings::plus_times_f64(), &dctx).unwrap();
        let (fine, bulk, _) = dctx.comm.totals();
        assert_eq!(fine, 0, "SUMMA is all-bulk");
        // per stage: each locale receives at most 2 remote slices;
        // 2 stages x 4 locales x 2 = 16 upper bound (diagonal owners skip)
        assert!((4..=16).contains(&bulk), "bulk = {bulk}");
    }

    #[test]
    fn iterative_callers_replay_the_stage_plan() {
        let af = gen::erdos_renyi(50, 4, 237);
        let ctx = gblas_core::par::ExecCtx::serial();
        let a = gblas_core::ops::apply::map_mat(&af, &|_, _, _: f64| 1u64, &ctx);
        let ring = semirings::plus_times::<u64>();
        let grid = ProcGrid::new(2, 3);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(6, 24));
        let (c1, _) = mxm_dist(&da, &da, &ring, &dctx).unwrap();
        let before = dctx.metrics().snapshot();
        // a *fresh* matrix of the same shape (new generation) still
        // replays: the plan is shape-keyed, not content-keyed
        let (_, _) = mxm_dist(&c1, &c1, &ring, &dctx).unwrap();
        let after = dctx.metrics().snapshot();
        assert_eq!(after.sched_replays, before.sched_replays + 1, "expected a plan replay");
        assert_eq!(after.sched_builds, before.sched_builds);
    }

    #[test]
    fn auto_layer_count_follows_cbrt_rule() {
        assert_eq!(auto_layers(1), 1);
        assert_eq!(auto_layers(4), 1);
        assert_eq!(auto_layers(8), 2);
        assert_eq!(auto_layers(16), 2);
        assert_eq!(auto_layers(64), 4);
        assert_eq!(auto_layers(256), 4);
        assert_eq!(MxmAlgo::parse("2d"), Some(MxmAlgo::Summa2d));
        assert_eq!(MxmAlgo::parse("3d"), Some(MxmAlgo::Summa3d { layers: 0 }));
        assert_eq!(MxmAlgo::parse("single"), Some(MxmAlgo::Single));
        assert_eq!(MxmAlgo::parse("4d"), None);
    }
}
