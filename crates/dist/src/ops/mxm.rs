//! Distributed SpGEMM: `C = A ⊗ B` by sparse SUMMA on the 2-D grid.
//!
//! The paper cites the 2-D sparse SUMMA algorithm for matrix-matrix
//! multiply and general indexing \[8\] (Buluç & Gilbert) as the natural
//! companion to its block distribution. Stationary-C formulation: in
//! stage `k`, the owners of `A`'s column-block `k` broadcast their blocks
//! along their grid *row*, the owners of `B`'s row-block `k` broadcast
//! along their grid *column*, every locale multiplies the received pair
//! locally (Gustavson with a SPA, `gblas_core::ops::mxm`) and accumulates
//! into its stationary `C` block with an element-wise add.
//!
//! Requires a square grid (SUMMA's stage structure) and square-conformant
//! operands (`A: m×n`, `B: n×q`).

use crate::exec::DistCtx;
use crate::mat::DistCsrMatrix;
use gblas_core::algebra::{BinaryOp, Monoid, Semiring};
use gblas_core::container::CsrMatrix;
use gblas_core::error::{GblasError, Result};
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase: block broadcasts.
pub const PHASE_BCAST: &str = "broadcast";
/// Phase: local multiplies + accumulation.
pub const PHASE_LOCAL: &str = "local";

/// `C = A ⊗ B` over `ring` with both operands on the same square grid.
pub fn mxm_dist<T, AddM, MulOp>(
    a: &DistCsrMatrix<T>,
    b: &DistCsrMatrix<T>,
    ring: &Semiring<AddM, MulOp>,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<T>, SimReport)>
where
    T: Copy + Send + Sync + PartialEq,
    AddM: Monoid<T>,
    MulOp: BinaryOp<T, T, T>,
{
    mxm_dist_masked::<T, T, T, AddM, MulOp, bool>(a, b, ring, None, dctx)
}

/// Masked, mixed-type sparse SUMMA: `C⟨M⟩ = A ⊗ B`.
///
/// The mask is structural and distributed on the *same grid* as the
/// stationary `C` blocks, so each stage applies its locale's mask block to
/// the local Gustavson multiply — masking commutes with the stage-wise
/// element-wise accumulation (`(Σ Pₖ) ∩ M = Σ (Pₖ ∩ M)`), and suppressed
/// entries never enter a stationary block. This is what masked distributed
/// triangle counting (`C⟨L⟩ = L · Lᵀ`) needs.
pub fn mxm_dist_masked<A, B, C, AddM, MulOp, M>(
    a: &DistCsrMatrix<A>,
    b: &DistCsrMatrix<B>,
    ring: &Semiring<AddM, MulOp>,
    mask: Option<&DistCsrMatrix<M>>,
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<C>, SimReport)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    C: Copy + Send + Sync,
    M: Copy + Send + Sync,
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    let grid = a.grid();
    if grid.pr() != grid.pc() {
        return Err(GblasError::InvalidArgument("sparse SUMMA needs a square process grid".into()));
    }
    if b.grid() != grid {
        return Err(GblasError::DimensionMismatch {
            expected: format!("B on the same {}x{} grid", grid.pr(), grid.pc()),
            actual: format!("B on {}x{}", b.grid().pr(), b.grid().pc()),
        });
    }
    if a.ncols() != b.nrows() {
        return Err(GblasError::DimensionMismatch {
            expected: format!("inner dimension {}", a.ncols()),
            actual: format!("inner dimension {}", b.nrows()),
        });
    }
    // SUMMA's stage alignment requires A's column split and B's row split
    // to agree; with the floor block partition that holds exactly when the
    // inner dimension is shared, which was checked above.
    let p = grid.locales();
    if dctx.locales() != p {
        return Err(GblasError::DimensionMismatch {
            expected: format!("machine with {p} locales"),
            actual: format!("machine with {} locales", dctx.locales()),
        });
    }
    if let Some(m) = mask {
        if m.grid() != grid {
            return Err(GblasError::DimensionMismatch {
                expected: format!("mask on the same {}x{} grid", grid.pr(), grid.pc()),
                actual: format!("mask on {}x{}", m.grid().pr(), m.grid().pc()),
            });
        }
        if m.nrows() != a.nrows() || m.ncols() != b.ncols() {
            return Err(GblasError::DimensionMismatch {
                expected: format!("{}x{} mask", a.nrows(), b.ncols()),
                actual: format!("{}x{} mask", m.nrows(), m.ncols()),
            });
        }
    }
    let stages = grid.pc();
    let a_bytes = (2 * std::mem::size_of::<usize>() + std::mem::size_of::<A>()) as u64;
    let b_bytes = (2 * std::mem::size_of::<usize>() + std::mem::size_of::<B>()) as u64;

    // Stationary C blocks, accumulated stage by stage. Each locale's
    // superstep state bundles its C block with its two profiles.
    let mut state: Vec<(CsrMatrix<C>, Profile, Profile)> = (0..p)
        .map(|l| {
            let rows = a.row_range(l).len();
            let cols = b.col_range(l).len();
            (CsrMatrix::empty(rows, cols), Profile::default(), Profile::default())
        })
        .collect();

    for k in 0..stages {
        dctx.for_each_locale_state(&mut state, |l, (c_block, local_profile, bcast_profile)| {
            let (r, c) = grid.coords(l);
            // A(r, k) arrives along the grid row, B(k, c) down the grid
            // column. The broadcast sends are logged by the *owner*'s task
            // — one writer per source locale keeps the comm log's per-src
            // order deterministic under the threaded executor.
            let a_owner = grid.locale(r, k);
            let a_blk = a.block(a_owner);
            let b_owner = grid.locale(k, c);
            let b_blk = b.block(b_owner);
            if l == a_owner {
                for peer in grid.row_locales(r) {
                    if peer != l {
                        dctx.comm.bulk(PHASE_BCAST, l, peer, 1, a_blk.nnz() as u64 * a_bytes)?;
                    }
                }
            }
            if l == b_owner {
                for peer in grid.col_locales(c) {
                    if peer != l {
                        dctx.comm.bulk(PHASE_BCAST, l, peer, 1, b_blk.nnz() as u64 * b_bytes)?;
                    }
                }
            }
            bcast_profile.counters_mut(PHASE_BCAST).bytes_moved +=
                a_blk.nnz() as u64 * a_bytes + b_blk.nnz() as u64 * b_bytes;
            // Local multiply + accumulate into the stationary block. The
            // locale's mask block covers exactly its stationary C block.
            let lctx = dctx.locale_ctx_for(l);
            let partial: CsrMatrix<C> = gblas_core::ops::mxm::mxm::<_, _, C, _, _, M>(
                a_blk,
                b_blk,
                ring,
                mask.map(|m| m.block(l)),
                &lctx,
            )?;
            let accumulated =
                gblas_core::ops::ewise_mat::ewise_add_mat(&*c_block, &partial, &ring.add, &lctx)?;
            *c_block = accumulated;
            let folded = local_profile.counters_mut(PHASE_LOCAL);
            for (_, cs) in lctx.take_profile().iter() {
                folded.merge(cs);
            }
            Ok(())
        })?;
    }

    let mut c_blocks: Vec<CsrMatrix<C>> = Vec::with_capacity(p);
    let mut local_profiles: Vec<Profile> = Vec::with_capacity(p);
    let mut bcast_profiles: Vec<Profile> = Vec::with_capacity(p);
    for (blk, local, bcast) in state {
        c_blocks.push(blk);
        local_profiles.push(local);
        bcast_profiles.push(bcast);
    }

    let c = DistCsrMatrix::from_blocks(a.nrows(), b.ncols(), grid, c_blocks)?;
    let mut trace = dctx.op("mxm_dist");
    trace.attr("stages", stages).nnz((a.nnz() + b.nnz()) as u64);
    if mask.is_some() {
        trace.attr("masked", true);
    }
    trace.spawn(PHASE_BCAST, stages);
    trace.compute(PHASE_BCAST, &bcast_profiles);
    trace.compute(PHASE_LOCAL, &local_profiles);
    Ok((c, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use gblas_core::algebra::semirings;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn matches_shared_memory_spgemm_at_every_square_grid() {
        let a = gen::erdos_renyi(90, 4, 221);
        let b = gen::erdos_renyi(90, 4, 222);
        let ctx = gblas_core::par::ExecCtx::serial();
        let expect = gblas_core::ops::mxm::mxm::<_, _, f64, _, _, bool>(
            &a,
            &b,
            &semirings::plus_times_f64(),
            None,
            &ctx,
        )
        .unwrap();
        for s in [1usize, 2, 3] {
            let grid = ProcGrid::new(s, s);
            let p = grid.locales();
            let da = DistCsrMatrix::from_global(&a, grid);
            let db = DistCsrMatrix::from_global(&b, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (dc, report) = mxm_dist(&da, &db, &semirings::plus_times_f64(), &dctx).unwrap();
            let got = dc.to_global().unwrap();
            assert_eq!(got.rowptr(), expect.rowptr(), "grid {s}x{s}");
            assert_eq!(got.colidx(), expect.colidx(), "grid {s}x{s}");
            for (x, y) in got.values().iter().zip(expect.values()) {
                assert!((x - y).abs() < 1e-9, "grid {s}x{s}");
            }
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn masked_mixed_type_summa_matches_shared() {
        // the triangle-counting shape: C⟨L⟩ = L · Lᵀ over plus-pair,
        // f64 operands producing u64 counts
        let a = gen::erdos_renyi_symmetric(80, 5, 225);
        let ctx = gblas_core::par::ExecCtx::serial();
        let l = gblas_core::ops::select::tril(&a, &ctx);
        let u = gblas_core::ops::transpose::transpose(&l, &ctx).unwrap();
        let ring = semirings::plus_pair();
        let expect: gblas_core::container::CsrMatrix<u64> =
            gblas_core::ops::mxm::mxm(&l, &u, &ring, Some(&l), &ctx).unwrap();
        for s in [1usize, 2, 3] {
            let grid = ProcGrid::new(s, s);
            let dl = DistCsrMatrix::from_global(&l, grid);
            let du = DistCsrMatrix::from_global(&u, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (dc, report) =
                mxm_dist_masked::<_, _, u64, _, _, f64>(&dl, &du, &ring, Some(&dl), &dctx).unwrap();
            assert_eq!(dc.to_global().unwrap(), expect, "grid {s}x{s}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn masked_summa_validates_mask_shape() {
        let a = gen::erdos_renyi(40, 3, 226);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        // mask on a different grid
        let m1 = DistCsrMatrix::from_global(&a, ProcGrid::new(1, 1));
        assert!(mxm_dist_masked::<_, _, f64, _, _, f64>(
            &da,
            &da,
            &semirings::plus_times_f64(),
            Some(&m1),
            &dctx
        )
        .is_err());
        // mask with the wrong shape
        let small = gen::erdos_renyi(39, 3, 227);
        let m2 = DistCsrMatrix::from_global(&small, grid);
        assert!(mxm_dist_masked::<_, _, f64, _, _, f64>(
            &da,
            &da,
            &semirings::plus_times_f64(),
            Some(&m2),
            &dctx
        )
        .is_err());
    }

    #[test]
    fn rejects_non_square_grid_and_mismatches() {
        let a = gen::erdos_renyi(40, 3, 223);
        let dctx4 = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        // non-square grid
        let g_rect = ProcGrid::new(1, 4);
        let da = DistCsrMatrix::from_global(&a, g_rect);
        assert!(mxm_dist(&da, &da, &semirings::plus_times_f64(), &dctx4).is_err());
        // grid mismatch
        let g2 = ProcGrid::new(2, 2);
        let da2 = DistCsrMatrix::from_global(&a, g2);
        let da1 = DistCsrMatrix::from_global(&a, ProcGrid::new(1, 1));
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        assert!(mxm_dist(&da2, &da1, &semirings::plus_times_f64(), &dctx).is_err());
    }

    #[test]
    fn broadcast_volume_is_bounded_by_stages() {
        let a = gen::erdos_renyi(60, 4, 224);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let db = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let _ = mxm_dist(&da, &db, &semirings::plus_times_f64(), &dctx).unwrap();
        let (fine, bulk, _) = dctx.comm.totals();
        assert_eq!(fine, 0, "SUMMA is all-bulk");
        // per stage: each locale receives at most 2 remote blocks;
        // 2 stages x 4 locales x 2 = 16 upper bound (diagonal owners skip)
        assert!((4..=16).contains(&bulk), "bulk = {bulk}");
    }
}
