//! Distributed pull-direction BFS kernel: the dense-frontier counterpart
//! of the fine-grained SpMSpV expansion, with the bulk communication the
//! paper recommends (§IV).
//!
//! The input matrix is the **transpose** `Aᵀ` on the 2-D grid, so each
//! block row holds destinations and each block column holds in-neighbor
//! sources. Per iteration every locale `(r, c)`:
//!
//! 1. **`gather`** — bulk-gathers the `visited` bits over its row range
//!    (one message per remote row-peer segment, exactly like the dense
//!    SpMV gather) and the `frontier` bits over its column range (one
//!    message per overlapping remote vector block);
//! 2. **`local`** — scans its block's rows in ascending destination
//!    order, skipping visited destinations and exiting each row at the
//!    first in-frontier in-neighbor — the early exit that makes pull win
//!    on heavy frontiers, priced through the recorded probe counters;
//! 3. **`scatter`** — sends its claims (one bulk message per owner) to
//!    the destinations' owning locales, which drain inboxes in ascending
//!    source-locale order. Ascending locale order within a grid row is
//!    ascending column-block order, so the first writer holds the
//!    globally **minimum** in-frontier in-neighbor: the same parent the
//!    push kernel's deterministic schedule produces.

use crate::exec::DistCtx;
use crate::mat::DistCsrMatrix;
use crate::ops::spmspv::{PHASE_GATHER, PHASE_LOCAL, PHASE_SCATTER};
use crate::sched::{FrontierClass, PlanData, PullPlan};
use crate::vec::{DistDenseVec, DistSparseVec};
use gblas_core::container::SparseVec;
use gblas_core::error::{check_dims, GblasError, Result};
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Bytes per scattered claim: `(destination, parent)`.
const CLAIM_BYTES: u64 = 2 * std::mem::size_of::<usize>() as u64;

/// Distributed [`gblas_core::ops::selection::pull_first_visitor`]:
/// `at = Aᵀ` block-distributed, `frontier`/`visited` bitmaps block-
/// distributed with the output. Returns the claimed `(dest, parent)`
/// sparse vector and the op's [`SimReport`].
pub fn pull_first_visitor_dist<T: Copy + Send + Sync>(
    at: &DistCsrMatrix<T>,
    frontier: &DistDenseVec<bool>,
    visited: &DistDenseVec<bool>,
    dctx: &DistCtx,
) -> Result<(DistSparseVec<usize>, SimReport)> {
    check_dims("frontier length vs matrix cols", at.ncols(), frontier.len())?;
    check_dims("visited length vs matrix rows", at.nrows(), visited.len())?;
    let grid = at.grid();
    let p = grid.locales();
    for (what, got) in [("frontier", frontier.locales()), ("visited", visited.locales())] {
        if got != p {
            return Err(GblasError::DimensionMismatch {
                expected: format!("{p} locales"),
                actual: format!("{got} locales ({what})"),
            });
        }
    }
    if dctx.locales() != p {
        return Err(GblasError::DimensionMismatch {
            expected: format!("machine with {p} locales"),
            actual: format!("machine with {} locales", dctx.locales()),
        });
    }
    let n = at.nrows();
    let in_dist = frontier.dist();
    let out_dist = crate::grid::BlockDist::new(n, p);
    let nnz_f: usize = (0..p).map(|l| frontier.segment(l).iter().filter(|&&b| b).count()).sum();

    // ---- Inspect or replay the pull gather schedule: the visited
    // segments and frontier-block overlaps are pure distribution metadata,
    // so across BFS iterations the cached plan replays untouched.
    let (sched_plan, sched) = dctx.schedule(
        "pull_gather",
        FrontierClass::Bitmap,
        (grid.pr(), grid.pc()),
        at.generation(),
        0,
        || {
            PlanData::Pull(PullPlan::build(
                grid,
                |l| at.col_range(l),
                |src| visited.segment(src).len(),
                &in_dist,
            ))
        },
    );
    let plan = sched_plan.pull();

    // ---- Superstep 1: gather bitmaps, scan the local block, send claims.
    struct GatherLocal {
        gather: Profile,
        local: Profile,
        /// `(global dest, global parent)` in ascending dest order.
        claims: Vec<(usize, usize)>,
    }
    let gl: Vec<GatherLocal> = dctx.for_each_locale(|l| {
        let row_range = at.row_range(l);
        let col_range = at.col_range(l);
        let gctx = dctx.locale_ctx_for(l);
        // Visited bits over the row range: the row block is the union of
        // the row peers' vector blocks (the alignment property), so this
        // is one contiguous segment per peer — the plan's visited lines.
        let mut lvisited: Vec<bool> = Vec::with_capacity(row_range.len());
        for &(src, seg_len) in &plan.visited_segs[l] {
            if src != l && seg_len > 0 {
                dctx.comm.bulk(PHASE_GATHER, l, src, 1, seg_len as u64)?;
            }
            lvisited.extend_from_slice(visited.segment(src));
        }
        // Frontier bits over the column range: not block-aligned, so copy
        // the overlap from every owning vector block (one bulk message per
        // remote owner) — the plan's overlap windows.
        let mut lfrontier: Vec<bool> = Vec::with_capacity(col_range.len());
        for &(owner, lo, hi) in &plan.frontier_overlaps[l] {
            if owner != l {
                dctx.comm.bulk(PHASE_GATHER, l, owner, 1, (hi - lo) as u64)?;
            }
            let block_start = in_dist.range(owner).start;
            let seg = frontier.segment(owner);
            lfrontier.extend_from_slice(&seg[lo - block_start..hi - block_start]);
        }
        gctx.record(PHASE_GATHER, |c| {
            c.elems += (lvisited.len() + lfrontier.len()) as u64;
            c.bytes_moved += (lvisited.len() + lfrontier.len()) as u64;
        });

        // Local destination scan with early exit, in ascending local row
        // (= ascending global destination) order.
        let block = at.block(l);
        let mut claims: Vec<(usize, usize)> = Vec::new();
        let mut local = Profile::default();
        let c = local.counters_mut(PHASE_LOCAL);
        for (j_local, &seen) in lvisited.iter().enumerate().take(row_range.len()) {
            c.rand_access += 1; // visited-bit probe
            if seen {
                continue;
            }
            let (cols, _) = block.row(j_local);
            for &u_local in cols {
                c.rand_access += 1; // frontier-bit probe
                if lfrontier[u_local] {
                    claims.push((row_range.start + j_local, col_range.start + u_local));
                    c.elems += 1;
                    break; // first hit = block-minimum in-neighbor
                }
            }
        }
        // Send side of the scatter: claims are dest-sorted, so each
        // owner's slice is contiguous — one bulk message per owner.
        let mut i = 0;
        while i < claims.len() {
            let owner = out_dist.owner(claims[i].0);
            let mut j = i;
            while j < claims.len() && out_dist.owner(claims[j].0) == owner {
                j += 1;
            }
            if owner != l {
                dctx.comm.bulk(PHASE_SCATTER, l, owner, 1, (j - i) as u64 * CLAIM_BYTES)?;
            }
            i = j;
        }
        let mut gather = gctx.take_profile();
        gather.counters_mut(PHASE_GATHER); // ensure the phase exists even when empty
        Ok(GatherLocal { gather, local, claims })
    })?;
    let gather_profiles: Vec<Profile> = gl.iter().map(|g| g.gather.clone()).collect();
    let local_profiles: Vec<Profile> = gl.iter().map(|g| g.local.clone()).collect();
    let claims: Vec<Vec<(usize, usize)>> = gl.into_iter().map(|g| g.claims).collect();

    // ---- Superstep 2: owners drain their inboxes in ascending source-
    // locale order; the first writer per destination wins. Within one
    // grid row, ascending locale order is ascending column-block order,
    // so the surviving parent is the global minimum in-frontier
    // in-neighbor — push's deterministic answer.
    let (scatter_profiles, shards): (Vec<Profile>, Vec<SparseVec<usize>>) = dctx
        .for_each_locale(|o| {
            let range = out_dist.range(o);
            let mut isthere = vec![false; range.len()];
            let mut value = vec![0usize; range.len()];
            let mut profile = Profile::default();
            let c = profile.counters_mut(PHASE_SCATTER);
            for src_claims in claims.iter() {
                for &(j, u) in src_claims {
                    if j < range.start || j >= range.end {
                        continue;
                    }
                    let off = j - range.start;
                    c.rand_access += 1;
                    if !isthere[off] {
                        isthere[off] = true;
                        value[off] = u;
                        c.elems += 1;
                    }
                }
            }
            let mut inds = Vec::new();
            let mut vals = Vec::new();
            for off in 0..range.len() {
                if isthere[off] {
                    inds.push(range.start + off);
                    vals.push(value[off]);
                }
            }
            Ok((profile, SparseVec::from_sorted(n, inds, vals)?))
        })?
        .into_iter()
        .unzip();

    let y = DistSparseVec::from_shards(n, shards)?;
    let mut trace = dctx.op("pull_first_visitor");
    trace.attr("nrows", n).attr("ncols", at.ncols()).sched(sched).nnz(nnz_f as u64);
    trace.spawn(PHASE_GATHER, 1);
    trace.compute(PHASE_GATHER, &gather_profiles);
    trace.compute(PHASE_LOCAL, &local_profiles);
    trace.compute(PHASE_SCATTER, &scatter_profiles);
    Ok((y, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use gblas_core::container::DenseVec;
    use gblas_core::gen;
    use gblas_core::ops::selection::pull_first_visitor;
    use gblas_core::ops::transpose::transpose;
    use gblas_core::par::ExecCtx;
    use gblas_sim::MachineConfig;

    #[test]
    fn matches_shared_pull_at_every_grid() {
        let n = 240;
        let a = gen::erdos_renyi(n, 6, 811);
        let ctx = ExecCtx::serial();
        let at = transpose(&a, &ctx).unwrap();
        let fbits = DenseVec::from_fn(n, |i| i % 3 == 0);
        let visited = DenseVec::from_fn(n, |i| i % 5 == 0);
        let expect = pull_first_visitor(&at, &fbits, &visited, &ctx).unwrap();
        for (pr, pc) in [(1, 1), (1, 3), (3, 1), (2, 2), (3, 3)] {
            let grid = ProcGrid::new(pr, pc);
            let p = grid.locales();
            let dat = DistCsrMatrix::from_global(&at, grid);
            let df = DistDenseVec::from_global(&fbits, p);
            let dv = DistDenseVec::from_global(&visited, p);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (y, report) = pull_first_visitor_dist(&dat, &df, &dv, &dctx).unwrap();
            assert_eq!(y.to_global(), expect, "grid {pr}x{pc}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn uses_only_bulk_communication() {
        let a = gen::erdos_renyi(200, 5, 812);
        let ctx = ExecCtx::serial();
        let at = transpose(&a, &ctx).unwrap();
        let grid = ProcGrid::new(2, 2);
        let dat = DistCsrMatrix::from_global(&at, grid);
        let fbits = DenseVec::from_fn(200, |i| i % 2 == 0);
        let visited = DenseVec::filled(200, false);
        let df = DistDenseVec::from_global(&fbits, 4);
        let dv = DistDenseVec::from_global(&visited, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let _ = pull_first_visitor_dist(&dat, &df, &dv, &dctx).unwrap();
        let (fine, bulk, _) = dctx.comm.totals();
        assert_eq!(fine, 0, "pull is an aggregated bulk kernel");
        assert!(bulk > 0);
    }

    #[test]
    fn dimension_and_locale_checks() {
        let a = gen::erdos_renyi(100, 4, 813);
        let grid = ProcGrid::new(2, 2);
        let da = DistCsrMatrix::from_global(&a, grid);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let ok = DistDenseVec::filled(100, false, 4);
        let wrong_len = DistDenseVec::filled(99, false, 4);
        let wrong_p = DistDenseVec::filled(100, false, 2);
        assert!(pull_first_visitor_dist(&da, &wrong_len, &ok, &dctx).is_err());
        assert!(pull_first_visitor_dist(&da, &ok, &wrong_len, &dctx).is_err());
        assert!(pull_first_visitor_dist(&da, &wrong_p, &ok, &dctx).is_err());
    }
}
