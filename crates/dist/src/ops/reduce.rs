//! Distributed reductions: local fold + simulated all-reduce.
//!
//! §IV: "MPI provides functions for a number of team collectives. Support
//! for these operations is expected to improve the productivity and
//! performance of graph algorithms." This module supplies the collective
//! the library actually needs — a commutative-monoid all-reduce — with a
//! binomial-tree cost model (`⌈log₂ p⌉` rounds of one small bulk message
//! per participating locale).

use crate::exec::DistCtx;
use crate::mat::DistCsrMatrix;
use crate::vec::DistSparseVec;
use gblas_core::algebra::{ComMonoid, Monoid};
use gblas_core::error::Result;
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase for the local fold.
pub const PHASE_LOCAL: &str = "reduce-local";
/// Phase for the all-reduce combine.
pub const PHASE_COMBINE: &str = "reduce-combine";

/// Reduce all stored values of a distributed sparse vector with a
/// commutative monoid. Every locale ends with the result (all-reduce
/// semantics), and the report prices the tree combine.
pub fn reduce_dist<T, M>(x: &DistSparseVec<T>, monoid: &M, dctx: &DistCtx) -> Result<(T, SimReport)>
where
    T: Copy + Send + Sync,
    M: ComMonoid<T>,
{
    let p = x.locales();
    // Local folds (one task per locale, 24-way within each).
    let (partials, profiles): (Vec<T>, Vec<Profile>) = dctx
        .for_each_locale(|l| {
            let ctx = dctx.locale_ctx_for(l);
            let local = gblas_core::ops::reduce::reduce_vec(x.shard(l), monoid, &ctx);
            let mut folded = Profile::default();
            let c = folded.counters_mut(PHASE_LOCAL);
            for (_, counters) in ctx.take_profile().iter() {
                c.merge(counters);
            }
            Ok((local, folded))
        })?
        .into_iter()
        .unzip();
    // Binomial-tree all-reduce: log2(p) rounds, one message per active
    // pair per round.
    let mut value = monoid.identity();
    for &partial in &partials {
        value = monoid.combine(value, partial);
    }
    let mut stride = 1usize;
    while stride < p {
        for l in (0..p).step_by(stride * 2) {
            let peer = l + stride;
            if peer < p {
                dctx.comm.bulk(PHASE_COMBINE, peer, l, 1, std::mem::size_of::<T>() as u64)?;
            }
        }
        stride *= 2;
    }
    let mut trace = dctx.op("reduce_dist");
    trace.nnz(x.nnz() as u64);
    trace.spawn(PHASE_LOCAL, 1);
    trace.compute(PHASE_LOCAL, &profiles);
    Ok((value, trace.finish()))
}

/// Row-wise reduction of a distributed matrix: `y[i] = ⊕_j A[i,j]`,
/// returned as a *global* driver-side vector (identity for empty rows).
///
/// Each locale folds its block's rows locally; then every off-leader
/// locale of a grid row ships its partial row-slice to the row leader
/// (column 0) in one bulk message, and the leader combines partials in
/// ascending column-block order — the same order a serial row fold visits
/// the values, so the result is exact whenever inserting extra identities
/// is (integers, min/max, and `+0.0` sums).
pub fn reduce_rows_dist<T, M>(
    a: &DistCsrMatrix<T>,
    monoid: &M,
    dctx: &DistCtx,
) -> Result<(Vec<T>, SimReport)>
where
    T: Copy + Send + Sync,
    M: Monoid<T>,
{
    let grid = a.grid();
    let elem_bytes = std::mem::size_of::<T>() as u64;
    // Local per-block row folds (block rows are local coordinates).
    let (partials, profiles): (Vec<gblas_core::container::DenseVec<T>>, Vec<Profile>) = dctx
        .for_each_locale(|l| {
            if l >= grid.locales() {
                // 3-D replication layer: no block, identity partial
                return Ok((
                    gblas_core::container::DenseVec::from_vec(Vec::new()),
                    Profile::default(),
                ));
            }
            let ctx = dctx.locale_ctx_for(l);
            let local = gblas_core::ops::reduce::reduce_rows(a.block(l), monoid, &ctx);
            let mut folded = Profile::default();
            let c = folded.counters_mut(PHASE_LOCAL);
            for (_, counters) in ctx.take_profile().iter() {
                c.merge(counters);
            }
            // Off-leader locales send their slice to the grid-row leader.
            let (r, c_coord) = grid.coords(l);
            if c_coord != 0 {
                let leader = grid.locale(r, 0);
                dctx.comm.bulk(PHASE_COMBINE, l, leader, 1, local.len() as u64 * elem_bytes)?;
            }
            Ok((local, folded))
        })?
        .into_iter()
        .unzip();
    // Leaders combine in ascending column-block order = serial fold order.
    let mut y: Vec<T> = Vec::with_capacity(a.nrows());
    for r in 0..grid.pr() {
        let leader = grid.locale(r, 0);
        let rows = a.row_range(leader).len();
        let mut combined: Vec<T> = partials[leader].as_slice().to_vec();
        for c in 1..grid.pc() {
            let part = partials[grid.locale(r, c)].as_slice();
            for (acc, &v) in combined.iter_mut().zip(part) {
                *acc = monoid.combine(*acc, v);
            }
        }
        debug_assert_eq!(combined.len(), rows);
        y.extend(combined);
    }
    let mut trace = dctx.op("reduce_rows_dist");
    trace.attr("nrows", a.nrows()).attr("ncols", a.ncols()).nnz(a.nnz() as u64);
    trace.spawn(PHASE_LOCAL, 1);
    trace.compute(PHASE_LOCAL, &profiles);
    Ok((y, trace.finish()))
}

/// Whole-matrix reduction of a distributed matrix with a commutative
/// monoid: local per-block folds plus the binomial-tree combine of
/// [`reduce_dist`].
pub fn reduce_mat_dist<T, M>(
    a: &DistCsrMatrix<T>,
    monoid: &M,
    dctx: &DistCtx,
) -> Result<(T, SimReport)>
where
    T: Copy + Send + Sync,
    M: ComMonoid<T>,
{
    let p = a.grid().locales();
    let (partials, profiles): (Vec<T>, Vec<Profile>) = dctx
        .for_each_locale(|l| {
            if l >= p {
                return Ok((monoid.identity(), Profile::default()));
            }
            let ctx = dctx.locale_ctx_for(l);
            let local = gblas_core::ops::reduce::reduce_mat(a.block(l), monoid, &ctx);
            let mut folded = Profile::default();
            let c = folded.counters_mut(PHASE_LOCAL);
            for (_, counters) in ctx.take_profile().iter() {
                c.merge(counters);
            }
            Ok((local, folded))
        })?
        .into_iter()
        .unzip();
    let mut value = monoid.identity();
    for &partial in &partials {
        value = monoid.combine(value, partial);
    }
    let mut stride = 1usize;
    while stride < p {
        for l in (0..p).step_by(stride * 2) {
            let peer = l + stride;
            if peer < p {
                dctx.comm.bulk(PHASE_COMBINE, peer, l, 1, std::mem::size_of::<T>() as u64)?;
            }
        }
        stride *= 2;
    }
    let mut trace = dctx.op("reduce_mat_dist");
    trace.nnz(a.nnz() as u64);
    trace.spawn(PHASE_LOCAL, 1);
    trace.compute(PHASE_LOCAL, &profiles);
    Ok((value, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::algebra::{Max, Plus};
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn matches_global_fold_at_every_locale_count() {
        let v = gen::random_sparse_vec(4000, 900, 71);
        let expect: f64 = v.values().iter().sum();
        for p in [1usize, 2, 5, 8, 16] {
            let d = DistSparseVec::from_global(&v, p);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (sum, report) = reduce_dist(&d, &Plus, &dctx).unwrap();
            assert!((sum - expect).abs() < 1e-9, "p={p}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn max_reduce() {
        let v = gen::random_sparse_vec(1000, 200, 72);
        let expect = v.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let d = DistSparseVec::from_global(&v, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (m, _) = reduce_dist(&d, &Max, &dctx).unwrap();
        assert_eq!(m, expect);
    }

    #[test]
    fn tree_combine_messages_are_logarithmic() {
        let v = gen::random_sparse_vec(1000, 200, 73);
        let d = DistSparseVec::from_global(&v, 16);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(16, 24));
        let _ = reduce_dist(&d, &Plus, &dctx).unwrap();
        let (_, bulk, _) = dctx.comm.totals();
        assert_eq!(bulk, 15, "p-1 messages in a binomial tree");
    }

    #[test]
    fn row_reduce_matches_shared_at_every_grid() {
        let a = gen::erdos_renyi(300, 6, 74);
        let ctx = gblas_core::par::ExecCtx::serial();
        let expect = gblas_core::ops::reduce::reduce_rows(&a, &Plus, &ctx).as_slice().to_vec();
        for (pr, pc) in [(1, 1), (1, 4), (2, 2), (3, 2)] {
            let grid = crate::grid::ProcGrid::new(pr, pc);
            let da = crate::mat::DistCsrMatrix::from_global(&a, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (y, report) = reduce_rows_dist(&da, &Plus, &dctx).unwrap();
            assert_eq!(y.len(), 300, "grid {pr}x{pc}");
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-9, "grid {pr}x{pc}");
            }
            assert!(report.total() > 0.0);
            // one combine message per off-leader locale, all bulk
            let (fine, bulk, _) = dctx.comm.totals();
            assert_eq!(fine, 0);
            assert_eq!(bulk as usize, pr * (pc - 1), "grid {pr}x{pc}");
        }
    }

    #[test]
    fn mat_reduce_matches_shared() {
        let a = gen::erdos_renyi(200, 5, 75);
        let ctx = gblas_core::par::ExecCtx::serial();
        let ones = gblas_core::ops::apply::map_mat(&a, &|_, _, _| 1u64, &ctx);
        let expect = gblas_core::ops::reduce::reduce_mat(&ones, &Plus, &ctx);
        for (pr, pc) in [(1, 1), (2, 3), (2, 2)] {
            let grid = crate::grid::ProcGrid::new(pr, pc);
            let dones = crate::mat::DistCsrMatrix::from_global(&ones, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (total, report) = reduce_mat_dist(&dones, &Plus, &dctx).unwrap();
            assert_eq!(total, expect, "grid {pr}x{pc}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn empty_vector_reduces_to_identity() {
        let d = DistSparseVec::<f64>::empty(100, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (sum, _) = reduce_dist(&d, &Plus, &dctx).unwrap();
        assert_eq!(sum, 0.0);
    }
}
