//! Distributed reductions: local fold + simulated all-reduce.
//!
//! §IV: "MPI provides functions for a number of team collectives. Support
//! for these operations is expected to improve the productivity and
//! performance of graph algorithms." This module supplies the collective
//! the library actually needs — a commutative-monoid all-reduce — with a
//! binomial-tree cost model (`⌈log₂ p⌉` rounds of one small bulk message
//! per participating locale).

use crate::exec::DistCtx;
use crate::vec::DistSparseVec;
use gblas_core::algebra::ComMonoid;
use gblas_core::error::Result;
use gblas_core::par::Profile;
use gblas_sim::SimReport;

/// Phase for the local fold.
pub const PHASE_LOCAL: &str = "reduce-local";
/// Phase for the all-reduce combine.
pub const PHASE_COMBINE: &str = "reduce-combine";

/// Reduce all stored values of a distributed sparse vector with a
/// commutative monoid. Every locale ends with the result (all-reduce
/// semantics), and the report prices the tree combine.
pub fn reduce_dist<T, M>(x: &DistSparseVec<T>, monoid: &M, dctx: &DistCtx) -> Result<(T, SimReport)>
where
    T: Copy + Send + Sync,
    M: ComMonoid<T>,
{
    let p = x.locales();
    // Local folds (one task per locale, 24-way within each).
    let (partials, profiles): (Vec<T>, Vec<Profile>) = dctx
        .for_each_locale(|l| {
            let ctx = dctx.locale_ctx();
            let local = gblas_core::ops::reduce::reduce_vec(x.shard(l), monoid, &ctx);
            let mut folded = Profile::default();
            let c = folded.counters_mut(PHASE_LOCAL);
            for (_, counters) in ctx.take_profile().iter() {
                c.merge(counters);
            }
            Ok((local, folded))
        })?
        .into_iter()
        .unzip();
    // Binomial-tree all-reduce: log2(p) rounds, one message per active
    // pair per round.
    let mut value = monoid.identity();
    for &partial in &partials {
        value = monoid.combine(value, partial);
    }
    let mut stride = 1usize;
    while stride < p {
        for l in (0..p).step_by(stride * 2) {
            let peer = l + stride;
            if peer < p {
                dctx.comm.bulk(PHASE_COMBINE, peer, l, 1, std::mem::size_of::<T>() as u64)?;
            }
        }
        stride *= 2;
    }
    let mut trace = dctx.op("reduce_dist");
    trace.nnz(x.nnz() as u64);
    trace.spawn(PHASE_LOCAL, 1);
    trace.compute(PHASE_LOCAL, &profiles);
    Ok((value, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gblas_core::algebra::{Max, Plus};
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn matches_global_fold_at_every_locale_count() {
        let v = gen::random_sparse_vec(4000, 900, 71);
        let expect: f64 = v.values().iter().sum();
        for p in [1usize, 2, 5, 8, 16] {
            let d = DistSparseVec::from_global(&v, p);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(p, 24));
            let (sum, report) = reduce_dist(&d, &Plus, &dctx).unwrap();
            assert!((sum - expect).abs() < 1e-9, "p={p}");
            assert!(report.total() > 0.0);
        }
    }

    #[test]
    fn max_reduce() {
        let v = gen::random_sparse_vec(1000, 200, 72);
        let expect = v.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let d = DistSparseVec::from_global(&v, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (m, _) = reduce_dist(&d, &Max, &dctx).unwrap();
        assert_eq!(m, expect);
    }

    #[test]
    fn tree_combine_messages_are_logarithmic() {
        let v = gen::random_sparse_vec(1000, 200, 73);
        let d = DistSparseVec::from_global(&v, 16);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(16, 24));
        let _ = reduce_dist(&d, &Plus, &dctx).unwrap();
        let (_, bulk, _) = dctx.comm.totals();
        assert_eq!(bulk, 15, "p-1 messages in a binomial tree");
    }

    #[test]
    fn empty_vector_reduces_to_identity() {
        let d = DistSparseVec::<f64>::empty(100, 4);
        let dctx = DistCtx::new(MachineConfig::edison_cluster(4, 24));
        let (sum, _) = reduce_dist(&d, &Plus, &dctx).unwrap();
        assert_eq!(sum, 0.0);
    }
}
