//! Distributed `select` and coordinate-aware `map` — purely local ops
//! (SPMD "version 2" by construction, like [`crate::ops::apply`]'s matrix
//! Apply): each locale rewrites its own block, no communication.
//!
//! Predicates and map functions receive **global** coordinates; the block
//! offsets are translated before the callback so algorithm code never sees
//! the partition.

use crate::exec::DistCtx;
use crate::mat::DistCsrMatrix;
use gblas_core::container::CsrMatrix;
use gblas_core::error::Result;
use gblas_sim::SimReport;

/// Phase name for both ops.
pub const PHASE: &str = "select";

/// Keep the entries of `a` where `pred(global_row, global_col, v)` holds.
pub fn select_mat_dist<T: Copy + Send + Sync>(
    a: &DistCsrMatrix<T>,
    pred: &(impl Fn(usize, usize, T) -> bool + Sync),
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<T>, SimReport)> {
    let grid = a.grid();
    let p = grid.locales();
    let mut blocks: Vec<CsrMatrix<T>> = Vec::with_capacity(p);
    let mut profiles = Vec::with_capacity(p);
    for out in dctx.for_each_locale(|l| {
        if l >= p {
            return Ok(None); // 3-D replication layer: no block here
        }
        let ctx = dctx.locale_ctx_for(l);
        let r0 = a.row_range(l).start;
        let c0 = a.col_range(l).start;
        let kept = gblas_core::ops::select::select_mat(
            a.block(l),
            &|i, j, v| pred(i + r0, j + c0, v),
            &ctx,
        );
        Ok(Some((kept, ctx.take_profile())))
    })? {
        let Some((block, profile)) = out else { continue };
        blocks.push(block);
        profiles.push(profile);
    }
    let out = DistCsrMatrix::from_blocks(a.nrows(), a.ncols(), grid, blocks)?;
    let mut trace = dctx.op("select_mat_dist");
    trace.nnz(a.nnz() as u64);
    trace.spawn(PHASE, 1);
    trace.compute_as(PHASE, gblas_core::ops::select::PHASE, &profiles);
    Ok((out, trace.finish()))
}

/// `B[i,j] = f(global_row, global_col, A[i,j])` over stored entries,
/// possibly changing the value type. Structure is preserved per block.
pub fn map_mat_dist<T: Copy + Send + Sync, U: Copy + Send + Sync>(
    a: &DistCsrMatrix<T>,
    f: &(impl Fn(usize, usize, T) -> U + Sync),
    dctx: &DistCtx,
) -> Result<(DistCsrMatrix<U>, SimReport)> {
    let grid = a.grid();
    let p = grid.locales();
    let mut blocks: Vec<CsrMatrix<U>> = Vec::with_capacity(p);
    let mut profiles = Vec::with_capacity(p);
    for out in dctx.for_each_locale(|l| {
        if l >= p {
            return Ok(None); // 3-D replication layer: no block here
        }
        let ctx = dctx.locale_ctx_for(l);
        let r0 = a.row_range(l).start;
        let c0 = a.col_range(l).start;
        let mapped =
            gblas_core::ops::apply::map_mat(a.block(l), &|i, j, v| f(i + r0, j + c0, v), &ctx);
        Ok(Some((mapped, ctx.take_profile())))
    })? {
        let Some((block, profile)) = out else { continue };
        blocks.push(block);
        profiles.push(profile);
    }
    let out = DistCsrMatrix::from_blocks(a.nrows(), a.ncols(), grid, blocks)?;
    let mut trace = dctx.op("map_mat_dist");
    trace.nnz(a.nnz() as u64);
    trace.spawn(PHASE, 1);
    trace.compute_as(PHASE, gblas_core::ops::apply::PHASE, &profiles);
    Ok((out, trace.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use gblas_core::gen;
    use gblas_sim::MachineConfig;

    #[test]
    fn select_uses_global_coordinates() {
        let a = gen::erdos_renyi_symmetric(90, 5, 331);
        let ctx = gblas_core::par::ExecCtx::serial();
        let expect = gblas_core::ops::select::tril(&a, &ctx);
        for (pr, pc) in [(1, 1), (2, 2), (2, 3)] {
            let grid = ProcGrid::new(pr, pc);
            let da = DistCsrMatrix::from_global(&a, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (dl, report) = select_mat_dist(&da, &|i, j, _| j < i, &dctx).unwrap();
            assert_eq!(dl.to_global().unwrap(), expect, "grid {pr}x{pc}");
            assert!(report.total() > 0.0);
            assert_eq!(dctx.comm.totals(), (0, 0, 0), "select must not communicate");
        }
    }

    #[test]
    fn map_uses_global_coordinates_and_changes_type() {
        let a = gen::erdos_renyi(80, 4, 332);
        let ctx = gblas_core::par::ExecCtx::serial();
        let expect = gblas_core::ops::apply::map_mat(&a, &|i, j, _| (i * 1000 + j) as u64, &ctx);
        for (pr, pc) in [(1, 1), (3, 2)] {
            let grid = ProcGrid::new(pr, pc);
            let da = DistCsrMatrix::from_global(&a, grid);
            let dctx = DistCtx::new(MachineConfig::edison_cluster(grid.locales(), 24));
            let (dm, _) = map_mat_dist(&da, &|i, j, _| (i * 1000 + j) as u64, &dctx).unwrap();
            assert_eq!(dm.to_global().unwrap(), expect, "grid {pr}x{pc}");
            assert_eq!(dctx.comm.totals(), (0, 0, 0), "map must not communicate");
        }
    }
}
